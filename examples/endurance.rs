//! Endurance study: PCM cells survive ~10⁸ programming pulses, so the
//! pulses a write scheme delivers per line write directly map to lifetime.
//! Compare per-scheme cell wear on the device model and on a full run.
//!
//! ```text
//! cargo run --release --example endurance
//! ```

use pcm_device::{FsmExecutor, PcmBank, ScheduledBitWrite, WriteOp};
use pcm_memsim::prelude::*;
use tetris_experiments::{run_one, RunConfig, SchemeKind, WorkloadProfile};
use tetris_write::{build_jobs, read_stage};

fn main() {
    device_level();
    println!();
    system_level();
}

/// Drive a real (modeled) bank with Tetris schedules and read the wear
/// counters back from the cells.
fn device_level() {
    println!("device level — wear after 200 Tetris-scheduled line writes");
    let cfg = TetrisConfig::paper_baseline();
    let mut bank = PcmBank::new(1, 8, PowerParams::paper_baseline(), true).unwrap();
    let exec = FsmExecutor::new(PcmTimings::paper_baseline()).unwrap();
    let mut logical = LineData::zeroed(64);
    let mut flips = 0u32;
    let mut stored = LineData::zeroed(64);
    let mut rng_state = 0x12345u64;
    let mut rand_bits = move |n: u32| {
        // xorshift for a dependency-free example
        let mut mask = 0u64;
        for _ in 0..n {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            mask |= 1 << (rng_state % 64);
        }
        mask
    };
    for _ in 0..200 {
        let mut new = logical;
        for i in 0..8 {
            new.xor_unit(i, rand_bits(5));
        }
        let ctx = WriteCtx {
            old_stored: &stored,
            old_flips: flips,
            new_logical: &new,
            cfg: &cfg.scheme,
        };
        let out = read_stage(&ctx);
        let analysis = analyze(&out.demand, &cfg).unwrap();
        let jobs: Vec<ScheduledBitWrite> = build_jobs(&stored, flips, &out, &analysis).unwrap();
        exec.execute(&mut bank, &jobs).unwrap();
        let _ = WriteOp::Set; // (re-exported for users writing custom jobs)
        stored = *out.stored();
        flips = out.flips();
        logical = new;
    }
    println!(
        "  total cell pulses: {}   max per-cell wear: {}",
        bank.total_wear(),
        bank.max_wear()
    );
    println!("  (differential scheduling: only changed cells were pulsed)");
}

/// Pulses per line write across schemes on a full simulated run.
fn system_level() {
    println!("system level — cell pulses per line write (ferret, quick run)");
    let p = WorkloadProfile::by_name("ferret").unwrap();
    let cfg = RunConfig::builder()
        .quick()
        .build()
        .expect("valid run configuration");
    println!(
        "  {:<20} {:>14} {:>18}",
        "scheme", "pulses/write", "relative lifetime"
    );
    let mut baseline_wear = None;
    for kind in [
        SchemeKind::Conventional,
        SchemeKind::Dcw,
        SchemeKind::TwoStage,
        SchemeKind::ThreeStage,
        SchemeKind::Tetris,
    ] {
        let r = run_one(p, kind, &cfg);
        let per_write = (r.cell_sets + r.cell_resets) as f64 / r.mem_writes.max(1) as f64;
        let rel = match baseline_wear {
            None => {
                baseline_wear = Some(per_write);
                1.0
            }
            Some(b) => b / per_write,
        };
        println!("  {:<20} {:>14.1} {:>17.1}x", kind.name(), per_write, rel);
    }
    println!("  (2SW programs every bit — Table I's 'does not reduce energy' column");
    println!("   is also an endurance penalty; differential schemes wear ~10x less)");
}
