//! Quickstart: plan one cache-line write with every scheme and inspect the
//! Tetris schedule.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use pcm_memsim::prelude::*;

fn main() {
    // Table II baseline: 64 B lines, 8 B write units, 430/53/50 ns pulses,
    // 128 SET-equivalents of instantaneous current per bank.
    let cfg = SchemeConfig::paper_baseline();

    // The array currently holds `old`; the CPU writes back `new`.
    // Typical content (paper Observation 1): a handful of bits change per
    // 64-bit unit, mostly 0→1.
    let old = LineData::from_units(&[
        0x0123_4567_89AB_CDEF,
        0x0000_0000_0000_FFFF,
        0xAAAA_AAAA_0000_0000,
        0x1111_2222_3333_4444,
        0,
        0xF0F0_F0F0_F0F0_F0F0,
        0x8000_0000_0000_0001,
        0x00FF_00FF_00FF_00FF,
    ]);
    let mut new = old;
    new.xor_unit(0, 0b0111_0001); // 4 changed bits
    new.xor_unit(1, 0x0000_0000_00FF_0000); // 8 SETs
    new.xor_unit(3, 0x0000_0000_0000_000F); // mixed
    new.xor_unit(5, 0x0F00_0000_0000_0000);
    new.xor_unit(7, 0xFF00_0000_0000_0000);

    let ctx = WriteCtx {
        old_stored: &old,
        old_flips: 0,
        new_logical: &new,
        cfg: &cfg,
    };

    println!("Planning one 64 B cache-line write under each scheme:\n");
    println!(
        "{:<20} {:>12} {:>12} {:>12}",
        "scheme", "service", "energy (pJ)", "write units"
    );
    let schemes: Vec<Box<dyn WriteScheme>> = vec![
        Box::new(DcwWrite),
        Box::new(FlipNWrite),
        Box::new(TwoStageWrite),
        Box::new(ThreeStageWrite),
        Box::new(TetrisWrite::paper_baseline()),
    ];
    for s in &schemes {
        let plan = s.plan(&ctx);
        plan.check_decodes_to(&new)
            .expect("plan must realize the write");
        println!(
            "{:<20} {:>12} {:>12} {:>12.2}",
            s.name(),
            plan.service_time.to_string(),
            plan.energy.as_pj(),
            plan.write_units_equiv
        );
    }

    // Look inside Tetris Write's analysis stage.
    let tetris = TetrisWrite::paper_baseline();
    let (_plan, analysis, read_out) = tetris.plan_detailed(&ctx);
    println!(
        "\nTetris analysis: result={} write units, subresult={} overflow sub-units",
        analysis.result, analysis.subresult
    );
    println!(
        "per-unit demand (SET/RESET): {:?}",
        read_out
            .demand
            .units()
            .iter()
            .map(|u| (u.sets, u.resets))
            .collect::<Vec<_>>()
    );
    println!("\nChip-level schedule (rows = data units, columns = Treset sub-slots):");
    println!("{}", render_gantt(&analysis, 8));
}
