//! Explore the mobile power-budget regimes from the paper's introduction:
//! "when the amount of current the system can provide decreases, the number
//! of cells that can be written concurrently must be reduced down to 4 and
//! 2 bits" — how do Tetris Write and the baselines degrade?
//!
//! ```text
//! cargo run --release --example power_budget_explorer
//! ```

use pcm_memsim::prelude::*;
use pcm_schemes::analytic;
use tetris_experiments::{ablation::sample_demands, WorkloadProfile};

fn main() {
    let profiles = ["blackscholes", "ferret", "vips"];
    // Per-chip SET-equivalents. 32 = the X16 baseline; 16/8/4 model the
    // mobile division modes (X8/X4/X2).
    let budgets = [32u32, 16, 8, 4];

    println!("average write units per cache-line write (lower is better)\n");
    println!(
        "{:<14} {:>6} {:>8} {:>8} {:>8} {:>8}",
        "workload", "budget", "FNW", "3SW", "Tetris", "Tetris/3SW"
    );
    for name in profiles {
        let p = WorkloadProfile::by_name(name).expect("known workload");
        let demands = sample_demands(p, 400, 99);
        for &chip_budget in &budgets {
            let mut cfg = TetrisConfig::paper_baseline();
            cfg.scheme.power = PowerParams {
                l_ratio: 2,
                budget_per_bank: chip_budget * 4,
                chips_per_bank: 4,
            };
            let tetris: f64 = demands
                .iter()
                .map(|d| analyze(d, &cfg).expect("packs").write_units_equiv())
                .sum::<f64>()
                / demands.len() as f64;
            let theory = analytic::theoretical_write_units(&cfg.scheme);
            // theory rows: Conv, FNW, 2SW, 3SW — but the closed forms assume
            // the baseline budget; rescale the concurrency-derived entries.
            // FNW: 2 units/slot needs budget ≥ 64; below that it degrades to
            // ceil(units / max(1, budget/64·2)).
            let fnw = fnw_units(chip_budget * 4);
            let three = three_stage_units(chip_budget * 4);
            println!(
                "{:<14} {:>6} {:>8.2} {:>8.2} {:>8.2} {:>9.2}x",
                name,
                chip_budget,
                fnw,
                three,
                tetris,
                three / tetris,
            );
            let _ = theory;
        }
        println!();
    }
    println!("Tetris's advantage *grows* as the budget shrinks: the static");
    println!("schemes provision for worst-case demand that sparse writes never");
    println!("exhibit, while Tetris packs the actual demand into the budget.");
}

/// FNW write units at an arbitrary bank budget: worst case a unit RESETs
/// 32 bits (64 SET-equivalents); concurrency = max(1, budget/64).
fn fnw_units(bank_budget: u32) -> f64 {
    let conc = (bank_budget / 64).max(1) as f64;
    (8.0 / conc).ceil()
}

/// 3SW write units: stage-0 concurrency budget/64, stage-1 budget/32,
/// in Tset-equivalents (stage-0 slots are Treset = Tset/8).
fn three_stage_units(bank_budget: u32) -> f64 {
    let c0 = (bank_budget / 64).max(1) as f64;
    let c1 = (bank_budget / 32).max(1) as f64;
    (8.0 / c0).ceil() / 8.0 + (8.0 / c1).ceil()
}
