//! Inter-line batching: schedule several queued writes as one Tetris batch
//! and watch write units amortize (algorithm level), then run the batched
//! drain through the full system.
//!
//! ```text
//! cargo run --release --example batch_scheduler
//! ```

use tetris_experiments::ablation::sample_demands;
use tetris_experiments::{run_one, RunConfig, SchemeKind, WorkloadProfile};
use tetris_write::{analyze, analyze_batch, render_gantt, TetrisConfig};

fn main() {
    let cfg = TetrisConfig::paper_baseline();
    let p = WorkloadProfile::by_name("ferret").unwrap();
    let demands = sample_demands(p, 64, 5);

    // Algorithm level: pack two queued lines together.
    let a = &demands[0];
    let b = &demands[1];
    let single_a = analyze(a, &cfg).unwrap();
    let single_b = analyze(b, &cfg).unwrap();
    let batch = analyze_batch(&[*a, *b], &cfg).unwrap();
    println!(
        "line A alone : {:.2} write units",
        single_a.write_units_equiv()
    );
    println!(
        "line B alone : {:.2} write units",
        single_b.write_units_equiv()
    );
    println!(
        "A + B batched: {:.2} write units total = {:.2} per line\n",
        batch.analysis.write_units_equiv(),
        batch.write_units_per_line()
    );
    println!("batched schedule (rows 0-7 = line A, 8-15 = line B):");
    println!("{}", render_gantt(&batch.analysis, 16));

    // System level: drain the write queue in batches of 1/2/4.
    println!("full-system effect on ferret (write-queue drains):");
    let mut run_cfg = RunConfig::builder()
        .instructions_per_core(1_000_000)
        .build()
        .expect("valid run configuration");
    let mut baseline = None;
    for batch_writes in [1usize, 2, 4] {
        run_cfg.system.controller.batch_writes = batch_writes;
        let r = run_one(p, SchemeKind::Tetris, &run_cfg);
        let runtime_us = r.runtime.as_ns_f64() / 1000.0;
        let norm = match baseline {
            None => {
                baseline = Some(runtime_us);
                1.0
            }
            Some(b) => runtime_us / b,
        };
        println!(
            "  batch={batch_writes}: runtime {runtime_us:8.1} µs ({norm:.3}x), \
             write latency {:7.1} ns, {:.2} units/write",
            r.write_latency.mean_ns(),
            r.avg_write_units
        );
    }
    println!("\nbatching amortizes the fixed read+analysis overhead across the");
    println!("batch and lets one line's SET slack swallow another's RESETs.");
}
