//! Run one synthetic PARSEC workload through the full system under every
//! scheme and print the per-workload slice of Figs. 11–14.
//!
//! ```text
//! cargo run --release --example parsec_sim -- vips [instructions-per-core]
//! ```

use tetris_experiments::{run_one, RunConfig, SchemeKind, WorkloadProfile};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("vips");
    let profile = WorkloadProfile::by_name(name).unwrap_or_else(|| {
        eprintln!("unknown workload {name}; try blackscholes/bodytrack/canneal/dedup/ferret/freqmine/swaptions/vips");
        std::process::exit(1);
    });
    let mut cfg = RunConfig::default();
    if let Some(n) = args.get(1).and_then(|v| v.parse().ok()) {
        cfg.instructions_per_core = n;
    } else {
        cfg.instructions_per_core = 2_000_000;
    }

    println!(
        "workload {} (RPKI {}, WPKI {}), {} instructions/core on {} cores\n",
        profile.name, profile.rpki, profile.wpki, cfg.instructions_per_core, cfg.system.cores
    );
    println!(
        "{:<20} {:>10} {:>12} {:>12} {:>8} {:>10} {:>12}",
        "scheme", "runtime", "read lat", "write lat", "IPC", "wr units", "energy (uJ)"
    );

    let mut baseline: Option<(f64, f64, f64, f64)> = None;
    for kind in SchemeKind::COMPARED {
        let r = run_one(profile, kind, &cfg);
        let runtime_us = r.runtime.as_ns_f64() / 1000.0;
        let ipc = r.ipc();
        println!(
            "{:<20} {:>8.1}us {:>10.1}ns {:>10.1}ns {:>8.3} {:>10.2} {:>12.1}",
            kind.name(),
            runtime_us,
            r.read_latency.mean_ns(),
            r.write_latency.mean_ns(),
            ipc,
            r.avg_write_units,
            r.energy.as_pj() as f64 / 1e6,
        );
        match &baseline {
            None => {
                baseline = Some((
                    runtime_us,
                    r.read_latency.mean_ns(),
                    r.write_latency.mean_ns(),
                    ipc,
                ))
            }
            Some((bt, br, bw, bipc)) => {
                if kind == SchemeKind::Tetris {
                    println!(
                        "\nTetris vs baseline: runtime -{:.0}%, read latency -{:.0}%, write latency -{:.0}%, IPC {:.2}x",
                        (1.0 - runtime_us / bt) * 100.0,
                        (1.0 - r.read_latency.mean_ns() / br) * 100.0,
                        (1.0 - r.write_latency.mean_ns() / bw) * 100.0,
                        ipc / bipc,
                    );
                }
            }
        }
    }
}
