//! Adaptive write scheduling: run the paper's write-heaviest workload
//! (vips) under the fixed fill-to-capacity drain policy and under the
//! adaptive policy layer (burst-headroom watermarks + least-utilized-first
//! bank steering + read-priority windows), then diff the two runs from
//! their telemetry traces.
//!
//! ```text
//! cargo run --release --example adaptive_scheduling
//! ```

use pcm_memsim::SchedConfig;
use tetris_experiments::sched_ablation::run_sched_ablation;
use tetris_experiments::{delta_table, regression_check, RunConfig, WorkloadProfile};

fn main() {
    let p = WorkloadProfile::by_name("vips").unwrap();
    let cfg = RunConfig::builder()
        .quick()
        .build()
        .expect("valid run configuration");

    // The policy knobs are plain config — any run can opt in piecemeal:
    let piecemeal = SchedConfig {
        bank_steering: true,
        ..SchedConfig::fixed()
    };
    println!(
        "piecemeal example config: steering={}, adaptive watermarks={}\n",
        piecemeal.bank_steering, piecemeal.adaptive_watermarks
    );

    // The ablation runs both presets head-to-head and traces each run.
    let dir = std::env::temp_dir().join("adaptive_scheduling_example");
    let out = run_sched_ablation(p, &cfg, &dir).expect("ablation runs");
    println!("{}", delta_table(&out.base, &out.adaptive));

    let violations = regression_check(&out.base, &out.adaptive);
    if violations.is_empty() {
        println!("adaptive is no worse than fixed on every gated metric.");
    } else {
        for v in &violations {
            println!("regression: {v}");
        }
    }
    println!(
        "\ntraces left in {} — render with `tetris-experiments report <file>`",
        dir.display()
    );
}
