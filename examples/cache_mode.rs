//! CPU-level trace mode: drive the full L1/L2/L3 hierarchy and watch LLC
//! misses and write-backs reach the PCM.
//!
//! ```text
//! cargo run --release --example cache_mode
//! ```

use pcm_memsim::prelude::*;
use tetris_experiments::SchemeKind;

fn main() {
    let cfg = SystemConfig::builder()
        .small_caches()
        .cores(2)
        .build()
        .expect("valid system configuration");

    // Each core: a pointer-chase over a hot footprint (cache-resident)
    // interleaved with a streaming writer whose footprint exceeds the L3.
    let l3_lines = cfg.l3.size_bytes / 64;
    let mk_core = |core: u64| -> Vec<TraceOp> {
        let mut ops = Vec::new();
        for i in 0..(l3_lines * 2) {
            // Hot reads: 256-line private region, revisited constantly.
            ops.push(TraceOp {
                gap: 10,
                kind: AccessKind::Read,
                addr: 0x100_0000 * (core + 1) + (i % 256) * 64,
            });
            // Streaming writes: march across 2× the L3.
            ops.push(TraceOp {
                gap: 10,
                kind: AccessKind::Write,
                addr: 0x4000_0000 + core * 0x1000_0000 + i * 64,
            });
        }
        ops
    };

    for kind in [SchemeKind::Dcw, SchemeKind::Tetris] {
        let mut cfg = cfg;
        cfg.level = TraceLevel::CpuLevel;
        cfg.mem.select = kind.select();
        let mut sys = System::build(cfg)
            .expect("valid config")
            .with_trace(Box::new(VecTrace::new(vec![mk_core(0), mk_core(1)])))
            .with_content(Box::new(UniformRandomContent::new(12)));
        sys.set_workload_name("cache-mode-demo");
        let r = sys.run();
        let (l1, l2) = sys.hierarchy().unwrap().core_stats(0);
        let l3 = sys.hierarchy().unwrap().l3_stats();
        println!("scheme: {kind:?}");
        println!(
            "  L1 hit rate {:.1}%   L2 hit rate {:.1}%   L3 hit rate {:.1}%",
            (1.0 - l1.miss_ratio()) * 100.0,
            (1.0 - l2.miss_ratio()) * 100.0,
            (1.0 - l3.miss_ratio()) * 100.0
        );
        println!(
            "  PCM traffic: {} reads, {} writes (write-backs)",
            r.mem_reads, r.mem_writes
        );
        println!(
            "  runtime {:.2} ms, IPC {:.3}, read latency {:.0} ns, write latency {:.0} ns\n",
            r.runtime.as_ns_f64() / 1e6,
            r.ipc(),
            r.read_latency.mean_ns(),
            r.write_latency.mean_ns()
        );
    }
    println!("the hot read region stays cache-resident; the streaming writer's");
    println!("dirty lines spill out of the L3 and their service time is set by");
    println!("the PCM write scheme — Tetris shortens exactly that path.");
}
