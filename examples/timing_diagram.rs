//! Reproduce the paper's Fig. 4: the chip-level timing diagram of the
//! worked example, plus the same write under the baseline schemes.
//!
//! ```text
//! cargo run --example timing_diagram
//! ```

use pcm_memsim::prelude::*;
use pcm_schemes::analytic;

fn main() {
    // The paper's example: 64 B line, four X16 chips, budget 32 per chip,
    // power ratio L = 2 — "32 SET and 16 RESET operations can be operated
    // concurrently per chip".
    let mut cfg = TetrisConfig::paper_baseline();
    cfg.scheme.power = PowerParams {
        l_ratio: 2,
        budget_per_bank: 32,
        chips_per_bank: 4,
    };

    // Per-unit demand from Fig. 4: write-1 loads 8,7,7,6,6,6,5,3 and
    // write-0 loads 0,1,1,2,3,2,2,5.
    let demand = LineDemand::from_units(&[
        UnitDemand::new(8, 0),
        UnitDemand::new(7, 1),
        UnitDemand::new(7, 1),
        UnitDemand::new(6, 2),
        UnitDemand::new(6, 3),
        UnitDemand::new(6, 2),
        UnitDemand::new(5, 2),
        UnitDemand::new(3, 5),
    ]);

    let analysis = analyze(&demand, &cfg).expect("the example packs");
    println!("Fig. 4 — Tetris Write schedule of the worked example");
    println!("(write-1s of units 0-3 and 7 share write unit 1: 8+7+7+6+3 = 31 ≤ 32;");
    println!(" write-0s steal the second write unit's slack — no extra time)\n");
    println!("{}", render_gantt(&analysis, 8));

    let t = cfg.scheme.timings;
    let tetris_write_time = analysis.write_time(t.t_set);
    println!("completion times for the same cache line:");
    // The baselines under the same (chip-level) budget geometry; Eq. 1–4
    // with N/M = 8.
    let mut scheme_cfg: SchemeConfig = cfg.scheme;
    scheme_cfg.power = cfg.scheme.power;
    println!(
        "  Conventional      : {}",
        analytic::t_conventional(&scheme_cfg)
    );
    println!(
        "  Flip-N-Write      : {}  (T4 in the paper)",
        analytic::t_flip_n_write(&scheme_cfg)
    );
    println!(
        "  2-Stage-Write     : {}  (T3)",
        analytic::t_two_stage(&scheme_cfg)
    );
    println!(
        "  Three-Stage-Write : {}  (T2)",
        analytic::t_three_stage(&scheme_cfg)
    );
    println!(
        "  Tetris Write      : {}  (T1: read {} + analysis {} + write {})",
        t.t_read + cfg.analysis_overhead + tetris_write_time,
        t.t_read,
        cfg.analysis_overhead,
        tetris_write_time,
    );
    assert_eq!(
        analysis.result, 2,
        "the example finishes in two write units"
    );
    assert_eq!(analysis.subresult, 0);
}
