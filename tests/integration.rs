//! Cross-crate integration tests: the full pipeline from workload content
//! through scheme planning, memory state, controller and system run.

use pcm_memsim::cpu::VecTrace;
use pcm_memsim::{
    AccessKind, PcmMainMemory, ShardedSystem, System, SystemConfig, TraceOp, UniformRandomContent,
};
use pcm_schemes::{
    DcwWrite, FlipNWrite, SchemeConfig, ThreeStageWrite, TwoStageWrite, WriteScheme,
};
use pcm_types::rng::{Rng, StdRng};
use pcm_types::LineData;
use pcm_workloads::{
    generator::{GeneratorConfig, SyntheticParsec},
    trace::{write_trace, TraceFileSource},
    ProfileContent, WorkloadProfile, ALL_PROFILES,
};
use tetris_write::TetrisWrite;

fn all_schemes() -> Vec<Box<dyn WriteScheme>> {
    vec![
        Box::new(DcwWrite),
        Box::new(FlipNWrite),
        Box::new(TwoStageWrite),
        Box::new(ThreeStageWrite),
        Box::new(TetrisWrite::paper_baseline()),
    ]
}

/// Every scheme, applied to the same random write stream through the
/// memory model, must leave identical *logical* contents.
#[test]
fn all_schemes_preserve_logical_contents() {
    let cfg = SchemeConfig::paper_baseline();
    let mut rng = StdRng::seed_from_u64(77);
    let writes: Vec<(u64, LineData)> = (0..200)
        .map(|_| {
            let addr = (rng.gen_range(0..1024u64)) * 64;
            let units: Vec<u64> = (0..8).map(|_| rng.gen()).collect();
            (addr, LineData::from_units(&units))
        })
        .collect();

    let mut finals: Vec<Vec<LineData>> = Vec::new();
    for scheme in all_schemes() {
        let mut mem = PcmMainMemory::new(cfg, scheme).unwrap();
        for (addr, line) in &writes {
            mem.write_line(*addr, line).unwrap();
        }
        let snapshot: Vec<LineData> = (0..1024u64)
            .map(|i| mem.peek_line(i * 64).unwrap())
            .collect();
        finals.push(snapshot);
    }
    for other in &finals[1..] {
        assert_eq!(&finals[0], other, "schemes disagree on logical contents");
    }
}

/// The profile content model drives a real memory-model write stream whose
/// demand the Tetris scheme can always schedule within budget.
#[test]
fn profile_content_through_tetris_memory() {
    let cfg = SchemeConfig::paper_baseline();
    for p in &ALL_PROFILES {
        let mut mem = PcmMainMemory::new(cfg, Box::new(TetrisWrite::paper_baseline())).unwrap();
        let mut content = ProfileContent::new(p, 5);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            let addr = rng.gen_range(0..64u64) * 64;
            let old = mem.peek_line(addr).unwrap();
            let new = pcm_memsim::WriteContent::generate(&mut content, 0, &old);
            let out = mem.write_line(addr, &new).unwrap();
            assert!(out.write_units_equiv >= 1.0);
            assert!(
                out.write_units_equiv <= 4.0,
                "{}: {}",
                p.name,
                out.write_units_equiv
            );
            assert_eq!(mem.peek_line(addr).unwrap(), new);
        }
    }
}

/// Generated traces survive a JSON round trip and replay to the same
/// simulation result as the live generator.
#[test]
fn recorded_trace_replays_identically() {
    let p = WorkloadProfile::by_name("ferret").unwrap();
    let gen_cfg = GeneratorConfig {
        instructions_per_core: 100_000,
        cores: 2,
        ..Default::default()
    };
    let mut cfg = SystemConfig::paper_baseline();
    cfg.cores = 2;

    let run = |trace: Box<dyn pcm_memsim::RequestSource>| {
        let mut sys = System::build(cfg)
            .unwrap()
            .with_trace(trace)
            .with_content(Box::new(UniformRandomContent::new(3)));
        sys.run()
    };

    let live = run(Box::new(SyntheticParsec::new(p, gen_cfg)));

    let mut gen = SyntheticParsec::new(p, gen_cfg);
    let recorded = VecTrace::capture(&mut gen, 2);
    let mut buf = Vec::new();
    write_trace(&mut buf, recorded.ops()).unwrap();
    let replayed = run(Box::new(
        TraceFileSource::from_reader(std::io::BufReader::new(&buf[..])).unwrap(),
    ));

    assert_eq!(live.runtime, replayed.runtime);
    assert_eq!(live.mem_reads, replayed.mem_reads);
    assert_eq!(live.mem_writes, replayed.mem_writes);
    assert_eq!(live.read_latency.sum_ps, replayed.read_latency.sum_ps);
}

/// Memory-level and CPU-level modes agree on conservation laws: every op
/// issued is eventually serviced, none invented.
#[test]
fn cpu_mode_conserves_work() {
    let cfg = SystemConfig::builder()
        .small_caches()
        .cores(1)
        .cpu_level()
        .build()
        .unwrap();
    let lines = 4096u64;
    let ops: Vec<TraceOp> = (0..lines)
        .map(|i| TraceOp {
            gap: 2,
            kind: if i % 3 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
            addr: i * 64,
        })
        .collect();
    let n_reads = ops.iter().filter(|o| o.kind == AccessKind::Read).count() as u64;
    let mut sys = System::build(cfg)
        .unwrap()
        .with_trace(Box::new(VecTrace::new(vec![ops])))
        .with_content(Box::new(UniformRandomContent::new(8)));
    let r = sys.run();
    // Every distinct line misses exactly once (footprint streams, no reuse).
    assert_eq!(r.mem_reads, lines, "write-allocate fetch per line");
    // Every dirtied line eventually lands in PCM (evictions + final flush).
    assert_eq!(r.mem_writes, lines.div_ceil(3));
    assert!(r.instructions[0] >= n_reads);
}

/// Determinism across the whole stack: same seeds → byte-identical results
/// for every scheme.
#[test]
fn end_to_end_determinism() {
    let p = WorkloadProfile::by_name("dedup").unwrap();
    for kind in [
        tetris_experiments::SchemeKind::Dcw,
        tetris_experiments::SchemeKind::Tetris,
    ] {
        let cfg = tetris_experiments::RunConfig::builder()
            .instructions_per_core(150_000)
            .build()
            .unwrap();
        let a = tetris_experiments::run_one(p, kind, &cfg);
        let b = tetris_experiments::run_one(p, kind, &cfg);
        assert_eq!(a.runtime, b.runtime);
        assert_eq!(a.energy, b.energy);
        assert_eq!(a.cell_sets, b.cell_sets);
        assert_eq!(a.write_latency.sum_ps, b.write_latency.sum_ps);
    }
}

/// The controller services every write exactly once (no loss, no
/// duplication) even under backpressure.
#[test]
fn writes_conserved_under_backpressure() {
    let ops: Vec<TraceOp> = (0..500)
        .map(|i| TraceOp {
            gap: 0,
            kind: AccessKind::Write,
            addr: i * 64,
        })
        .collect();
    let mut sys = System::build(SystemConfig::paper_baseline())
        .unwrap()
        .with_trace(Box::new(VecTrace::new(vec![ops])))
        .with_content(Box::new(UniformRandomContent::new(1)));
    let r = sys.run();
    assert_eq!(r.mem_writes, 500);
    assert_eq!(r.write_latency.count, 500);
    assert!(
        r.write_stall.as_ps() > 0,
        "32-entry queue must backpressure 500 writes"
    );
}

/// A recorded workload trace sharded across 4 ranks conserves traffic and
/// instruction counts against the single-controller run of the same trace.
#[test]
fn sharded_replay_conserves_traffic() {
    let p = WorkloadProfile::by_name("vips").unwrap();
    let gen_cfg = GeneratorConfig {
        instructions_per_core: 100_000,
        cores: 2,
        ..Default::default()
    };
    let mut gen = SyntheticParsec::new(p, gen_cfg);
    let ops = VecTrace::capture(&mut gen, 2);
    let mut cfg = SystemConfig::paper_baseline();
    cfg.cores = 2;

    let mut single = System::build(cfg)
        .unwrap()
        .with_trace(Box::new(ops.clone()));
    let one = single.run();

    cfg.mem.org.ranks = 4;
    let four = ShardedSystem::build(cfg, &mut ops.clone())
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(four.mem_reads, one.mem_reads);
    assert_eq!(four.mem_writes, one.mem_writes);
    assert_eq!(four.instructions, one.instructions);
    assert!(four.runtime <= one.runtime);
}

/// The traced-run path writes a JSONL telemetry file that round-trips
/// through the reader into a non-trivial summary: run metadata, per-bank
/// activity and queue-depth samples all survive the disk hop.
#[test]
fn traced_run_roundtrips_through_jsonl() {
    use pcm_telemetry::{read_events, JsonlSink, TraceDetail, TraceSummary};
    let path = std::env::temp_dir().join(format!(
        "tetris-trace-roundtrip-{}.jsonl",
        std::process::id()
    ));
    let sink = JsonlSink::create(&path, TraceDetail::Fine).unwrap();
    let p = WorkloadProfile::by_name("vips").unwrap();
    let cfg = tetris_experiments::RunConfig::builder()
        .instructions_per_core(100_000)
        .build()
        .unwrap();
    let r = tetris_experiments::run_one_traced(
        p,
        tetris_experiments::SchemeKind::Tetris,
        &cfg,
        Box::new(sink),
    );
    let file = std::io::BufReader::new(std::fs::File::open(&path).unwrap());
    let events = read_events(file).unwrap();
    std::fs::remove_file(&path).ok();
    let s = TraceSummary::from_events(&events);
    assert_eq!(s.workload, "vips");
    assert_eq!(s.scheme, "Tetris Write");
    assert_eq!(s.banks.len(), cfg.system.mem.org.total_banks() as usize);
    let reads: u64 = s.banks.iter().map(|b| b.reads).sum();
    let writes: u64 = s.banks.iter().map(|b| b.writes).sum();
    assert_eq!(reads, r.mem_reads, "every memory read is traced");
    assert!(writes > 0 && !s.read_depths.is_empty());
    // The rendered tables carry one row per bank / queue.
    let banks = tetris_experiments::report::trace_bank_table(&s);
    let queues = tetris_experiments::report::trace_queue_table(&s);
    assert_eq!(banks.to_csv().lines().count(), 2 + s.banks.len());
    assert!(queues.to_csv().contains("\nread,"));
}
