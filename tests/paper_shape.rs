//! Shape tests against the paper's headline claims (§V): who wins, by
//! roughly what factor, and where the anomalies fall. Absolute numbers are
//! not compared — the substrate is a simulator, not the authors' testbed.

use pcm_workloads::{WorkloadProfile, ALL_PROFILES};
use tetris_experiments::figures::{self, MatrixView};
use tetris_experiments::{run_matrix, run_one, RunConfig, SchemeKind};

fn cfg() -> RunConfig {
    RunConfig::builder()
        .instructions_per_core(400_000)
        .build()
        .unwrap()
}

fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len() as f64
}

/// One matrix reused across all shape assertions (kept small for test
/// speed; the `tetris-experiments` binary runs the full-size version).
fn matrix() -> (
    Vec<pcm_memsim::SimResult>,
    Vec<WorkloadProfile>,
    Vec<SchemeKind>,
) {
    let profiles: Vec<WorkloadProfile> = ALL_PROFILES.to_vec();
    let schemes: Vec<SchemeKind> = SchemeKind::COMPARED.to_vec();
    let results = run_matrix(&profiles, &schemes, &cfg());
    (results, profiles, schemes)
}

#[test]
fn headline_shape_holds() {
    let (results, profiles, schemes) = matrix();
    let m = MatrixView::new(&results, &profiles, &schemes);

    // Collect per-scheme averages of the normalized metrics.
    let avg_norm = |metric: &dyn Fn(&pcm_memsim::SimResult) -> f64| -> Vec<f64> {
        (0..schemes.len())
            .map(|s| {
                mean(
                    &(0..profiles.len())
                        .map(|p| metric(m.get(p, s)) / metric(m.get(p, 0)).max(1e-12))
                        .collect::<Vec<_>>(),
                )
            })
            .collect()
    };

    // Fig. 11: read latency — Tetris < 3SW < 2SW < FNW < baseline.
    let read = avg_norm(&|r| r.read_latency.mean_ns());
    assert!(
        read[4] < read[3] && read[3] < read[2] && read[2] < read[1] && read[1] < read[0],
        "read latency ordering: {read:?}"
    );
    assert!(
        read[4] < 0.55,
        "Tetris removes well over a third of read latency: {read:?}"
    );

    // Fig. 12: write latency — same ordering on average.
    let write = avg_norm(&|r| r.write_latency.mean_ns());
    assert!(
        write[4] < write[3] && write[3] < write[1],
        "write latency ordering: {write:?}"
    );
    assert!(write[4] < 0.75, "Tetris write latency reduction: {write:?}");

    // Fig. 13: IPC — 1 < FNW < 2SW < 3SW < Tetris, Tetris ≈ 2×.
    let ipc = avg_norm(&|r| r.ipc());
    assert!(
        ipc[1] > 1.0 && ipc[2] > ipc[1] && ipc[3] > ipc[2] && ipc[4] > ipc[3],
        "IPC ordering: {ipc:?}"
    );
    assert!(
        (1.5..=2.6).contains(&ipc[4]),
        "Tetris IPC improvement ≈ 2x: {}",
        ipc[4]
    );
    assert!(
        (1.1..=1.7).contains(&ipc[1]),
        "FNW IPC improvement ≈ 1.4x: {}",
        ipc[1]
    );

    // Fig. 14: running time — Tetris < 3SW < 2SW < FNW < baseline.
    let rt = avg_norm(&|r| r.runtime.as_ns_f64());
    assert!(
        rt[4] < rt[3] && rt[3] < rt[2] && rt[2] < rt[1] && rt[1] < 1.0,
        "running time ordering: {rt:?}"
    );
    assert!(
        rt[4] < 0.75,
        "Tetris removes a large share of runtime: {rt:?}"
    );

    // Fig. 10: write units — Tetris in ≈ [1, 1.5]; baselines at theory.
    let tetris_units: Vec<f64> = (0..profiles.len())
        .map(|p| m.get(p, 4).avg_write_units)
        .collect();
    for (p, &u) in profiles.iter().zip(&tetris_units) {
        assert!((1.0..=1.8).contains(&u), "{}: Tetris units {u}", p.name);
    }
    let avg_units = mean(&tetris_units);
    assert!(
        (1.0..=1.5).contains(&avg_units),
        "paper range 1.06-1.46: {avg_units}"
    );
    for p in 0..profiles.len() {
        assert_eq!(m.get(p, 0).avg_write_units, 8.0, "baseline is 8 units");
    }

    // Energy (Table I): 2SW does NOT reduce energy; FNW/3SW/Tetris do.
    for p in 0..profiles.len() {
        let base = m.get(p, 0).energy.as_pj() as f64;
        assert!(
            m.get(p, 2).energy.as_pj() as f64 >= base,
            "2SW must not use less energy than differential DCW"
        );
        assert!(
            (m.get(p, 4).energy.as_pj() as f64) < base * 1.2,
            "Tetris energy stays near-differential"
        );
    }
}

#[test]
fn blackscholes_swaptions_write_anomaly() {
    // Paper §V-B3: in the read-dominant workloads the write queue rarely
    // fills, so writes wait enormously and Tetris's edge (nearly) vanishes;
    // the analysis overhead can even make it slightly worse.
    for name in ["blackscholes", "swaptions"] {
        let p = WorkloadProfile::by_name(name).unwrap();
        let dcw = run_one(p, SchemeKind::Dcw, &cfg());
        let tetris = run_one(p, SchemeKind::Tetris, &cfg());
        let norm = tetris.write_latency.mean_ns() / dcw.write_latency.mean_ns();
        assert!(
            norm > 0.80,
            "{name}: write-latency gain should be small, got {norm}"
        );
        // The writes dwarf their own service time: queue-dominated.
        assert!(
            dcw.write_latency.mean_ns() > 10_000.0,
            "{name}: writes should wait ~the whole run"
        );
    }
}

#[test]
fn heavy_workloads_show_biggest_gains() {
    // vips (WPKI 1.56) must gain much more than blackscholes (WPKI 0.02).
    let c = cfg();
    let gain = |name: &str| {
        let p = WorkloadProfile::by_name(name).unwrap();
        let dcw = run_one(p, SchemeKind::Dcw, &c);
        let t = run_one(p, SchemeKind::Tetris, &c);
        dcw.runtime.as_ns_f64() / t.runtime.as_ns_f64()
    };
    let heavy = gain("vips");
    let light = gain("blackscholes");
    assert!(
        heavy > light + 0.5,
        "vips {heavy:.2}x vs blackscholes {light:.2}x"
    );
}

#[test]
fn tetris_units_track_workload_weight() {
    // Fig. 10's second observation: dedup/vips (many RESET+SET) reduce
    // write units the least.
    let (results, profiles, schemes) = matrix();
    let m = MatrixView::new(&results, &profiles, &schemes);
    let units: Vec<(String, f64)> = profiles
        .iter()
        .enumerate()
        .map(|(p, prof)| (prof.name.to_string(), m.get(p, 4).avg_write_units))
        .collect();
    let get = |n: &str| units.iter().find(|(name, _)| name == n).unwrap().1;
    assert!(get("dedup") > get("blackscholes"));
    assert!(get("vips") > get("blackscholes"));
    assert!(get("dedup") >= get("freqmine"));
}

#[test]
fn figure_tables_render_from_matrix() {
    let (results, profiles, schemes) = matrix();
    let m = MatrixView::new(&results, &profiles, &schemes);
    // All artifact generators run on full-suite data without panicking and
    // carry the right row counts (8 workloads + average).
    for t in [
        figures::fig10(&m, &pcm_schemes::SchemeConfig::paper_baseline()),
        figures::fig11(&m),
        figures::fig12(&m),
        figures::fig13(&m),
        figures::fig14(&m),
    ] {
        assert_eq!(t.num_rows(), 9, "{}", t.title());
    }
    assert_eq!(figures::table3(Some(&m)).num_rows(), 8);
}
