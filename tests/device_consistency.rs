//! Device-level consistency: schedules produced by the Tetris analysis
//! stage, executed tick-by-tick on the modeled bank through FSM0/FSM1,
//! must realize exactly the planned write within the metered power budget,
//! and the executed makespan must equal Eq. 5.

use pcm_device::{FsmExecutor, PcmBank};
use pcm_schemes::{SchemeConfig, WriteCtx};
use pcm_types::rng::{Rng, StdRng};
use pcm_types::{LineData, PcmTimings, PowerParams, Ps};
use pcm_workloads::{ProfileContent, ALL_PROFILES};
use tetris_write::{analyze, build_jobs, read_stage, validate_on_bank, TetrisConfig};

/// Eq. 5 equals the FSM-executed makespan, for workload-realistic content.
#[test]
fn eq5_matches_fsm_makespan() {
    let cfg = TetrisConfig::paper_baseline();
    let timings = PcmTimings::paper_baseline();
    let exec = FsmExecutor::new(timings).unwrap();
    let mut rng = StdRng::seed_from_u64(42);

    for p in &ALL_PROFILES {
        let mut content = ProfileContent::new(p, 21);
        let mut stored = LineData::zeroed(64);
        let mut flips = 0u32;
        for round in 0..20 {
            // Logical old = decode(stored, flips).
            let mut logical = stored;
            for i in 0..8 {
                if flips & (1 << i) != 0 {
                    logical.set_unit(i, !logical.unit(i));
                }
            }
            let new = pcm_memsim::WriteContent::generate(&mut content, 0, &logical);
            let ctx = WriteCtx {
                old_stored: &stored,
                old_flips: flips,
                new_logical: &new,
                cfg: &cfg.scheme,
            };
            let out = read_stage(&ctx);
            let analysis = analyze(&out.demand, &cfg).unwrap();
            analysis.validate(&out.demand).unwrap();

            let mut bank = PcmBank::new(1, 8, PowerParams::paper_baseline(), true).unwrap();
            for i in 0..8 {
                bank.write_unit_immediate(i, stored.unit(i), flips & (1 << i) != 0)
                    .unwrap();
            }
            let jobs = build_jobs(&stored, flips, &out, &analysis).unwrap();
            let report = exec.execute(&mut bank, &jobs).unwrap();

            // Eq. 5: (result + subresult/K) · Tset — exactly the executed
            // makespan (sub-slot = Tset/K = 53.75 ns divides evenly).
            let eq5 = analysis.write_time(timings.t_set);
            if !jobs.is_empty() {
                assert_eq!(
                    report.makespan, eq5,
                    "{} round {round}: makespan {} vs Eq.5 {}",
                    p.name, report.makespan, eq5
                );
            }
            assert!(report.peak_current <= 128);
            assert_eq!(report.cell_sets, out.demand.total_sets() as u64);
            assert_eq!(report.cell_resets, out.demand.total_resets() as u64);

            stored = *out.stored();
            flips = out.flips();
            let _ = rng.gen::<u8>();
        }
    }
}

/// Random adversarial content (not profile-shaped) across budgets: the
/// whole pipeline validates on the bank.
#[test]
fn random_content_validates_on_bank() {
    let mut rng = StdRng::seed_from_u64(1234);
    for budget in [128u32, 64, 32] {
        let mut cfg = TetrisConfig::paper_baseline();
        cfg.scheme.power = PowerParams {
            l_ratio: 2,
            budget_per_bank: budget,
            chips_per_bank: 4,
        };
        for _ in 0..30 {
            let old: Vec<u64> = (0..8).map(|_| rng.gen()).collect();
            let flips = rng.gen::<u32>() & 0xFF;
            let new: Vec<u64> = old
                .iter()
                .map(|&o| {
                    if rng.gen_bool(0.5) {
                        rng.gen()
                    } else {
                        o ^ (rng.gen::<u64>() & 0xFFFF)
                    }
                })
                .collect();
            let old_line = LineData::from_units(&old);
            let new_line = LineData::from_units(&new);
            let ctx = WriteCtx {
                old_stored: &old_line,
                old_flips: flips,
                new_logical: &new_line,
                cfg: &cfg.scheme,
            };
            let out = read_stage(&ctx);
            let analysis = analyze(&out.demand, &cfg).unwrap();
            let mut bank = PcmBank::new(1, 8, cfg.scheme.power, true).unwrap();
            let report = validate_on_bank(
                &mut bank,
                &cfg.scheme.timings,
                0,
                &old_line,
                flips,
                &out,
                &analysis,
            )
            .unwrap();
            assert!(report.peak_current <= budget);
            // Final array contents decode to the requested logical data.
            for (i, expect) in new.iter().enumerate() {
                let (data, flip) = bank.read_unit(i).unwrap();
                let logical = if flip { !data } else { data };
                assert_eq!(logical, *expect, "unit {i}");
            }
        }
    }
}

/// GCP matters: a schedule valid under the fungible bank budget can exceed
/// a single chip's pump; with GCP disabled the executor catches it.
#[test]
fn gcp_disabled_catches_chip_local_overload() {
    let cfg = TetrisConfig::paper_baseline();
    // All 20 changed bits in chip 0's slice (bits 0..16 per unit):
    // 16 bits/unit × 2 units in chip 0 exceeds its 32-unit pump at overlap.
    let old_line = LineData::zeroed(64);
    let mut new_line = LineData::zeroed(64);
    for i in 0..4 {
        new_line.set_unit(i, 0xFFFF); // 16 SETs, all chip 0
    }
    let ctx = WriteCtx {
        old_stored: &old_line,
        old_flips: 0,
        new_logical: &new_line,
        cfg: &cfg.scheme,
    };
    let out = read_stage(&ctx);
    let analysis = analyze(&out.demand, &cfg).unwrap();
    // Bank-level budget is fine (4 × 16 = 64 ≤ 128)…
    assert!(analysis.peak_current() <= 128);

    // …and with GCP the execution succeeds.
    let mut bank = PcmBank::new(1, 8, PowerParams::paper_baseline(), true).unwrap();
    let jobs = build_jobs(&old_line, 0, &out, &analysis).unwrap();
    let exec = FsmExecutor::new(PcmTimings::paper_baseline()).unwrap();
    assert!(exec.execute(&mut bank, &jobs).is_ok());

    // Without GCP, chip 0 alone would need 64 > 32: rejected.
    let mut bank = PcmBank::new(1, 8, PowerParams::paper_baseline(), false).unwrap();
    let jobs = build_jobs(&old_line, 0, &out, &analysis).unwrap();
    assert!(exec.execute(&mut bank, &jobs).is_err());
}

/// The memory model and the device model agree on pulse counts for the
/// same write stream.
#[test]
fn memory_and_device_pulse_counts_agree() {
    let scheme_cfg = SchemeConfig::paper_baseline();
    let tetris_cfg = TetrisConfig::paper_baseline();
    let mut mem = pcm_memsim::PcmMainMemory::new(
        scheme_cfg,
        Box::new(tetris_write::TetrisWrite::paper_baseline()),
    )
    .unwrap();
    let exec = FsmExecutor::new(scheme_cfg.timings).unwrap();
    let mut bank = PcmBank::new(1, 8, PowerParams::paper_baseline(), true).unwrap();

    let mut stored = LineData::zeroed(64);
    let mut flips = 0u32;
    let mut device_pulses = 0u64;
    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..25 {
        let mut logical = stored;
        for i in 0..8 {
            if flips & (1 << i) != 0 {
                logical.set_unit(i, !logical.unit(i));
            }
        }
        let mut new = logical;
        for unit in 0..8 {
            new.xor_unit(unit, rng.gen::<u64>() & 0x3FF);
        }
        mem.write_line(0x40, &new).unwrap();

        let ctx = WriteCtx {
            old_stored: &stored,
            old_flips: flips,
            new_logical: &new,
            cfg: &scheme_cfg,
        };
        let out = read_stage(&ctx);
        let analysis = analyze(&out.demand, &tetris_cfg).unwrap();
        for i in 0..8 {
            bank.write_unit_immediate(i, stored.unit(i), flips & (1 << i) != 0)
                .unwrap();
        }
        let jobs = build_jobs(&stored, flips, &out, &analysis).unwrap();
        let r = exec.execute(&mut bank, &jobs).unwrap();
        device_pulses += r.cell_sets + r.cell_resets;
        stored = *out.stored();
        flips = out.flips();
    }
    let mem_pulses = mem.stats().cell_sets + mem.stats().cell_resets;
    assert_eq!(
        mem_pulses, device_pulses,
        "two independent models, same physics"
    );
}

/// Sub-write-unit duration must cover a RESET pulse and tile a SET pulse
/// exactly, or Eq. 5 and the FSM makespan could diverge.
#[test]
fn slot_geometry_is_exact() {
    let t = PcmTimings::paper_baseline();
    assert_eq!(t.k_ratio(), 8);
    assert!(t.sub_unit_duration() >= t.t_reset);
    assert_eq!(t.sub_unit_duration() * t.k_ratio(), t.t_set);
    assert_eq!(t.sub_unit_duration(), Ps(53_750));
}
