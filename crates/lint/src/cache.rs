//! The warm-scan cache (`target/lint-cache.json`).
//!
//! A full workspace scan lexes, parses and file-rule-checks every `.rs`
//! file. Between two consecutive runs almost nothing changes, so the scan
//! persists, per file, a content fingerprint plus the two artifacts that
//! are expensive to recompute: the parsed [`FileFacts`] and the per-file
//! rule diagnostics. A warm run re-reads sources (diagnostic snippets need
//! the text anyway), fingerprints them, and restores facts and findings
//! for every unchanged file — only edited files are re-lexed and
//! re-parsed. Cross-file (graph) rules always run live: they are cheap
//! index walks over the restored facts, and their findings depend on
//! *other* files' contents, which a per-file cache cannot key.
//!
//! Invalidation policy (DESIGN.md §15):
//!
//! * **content** — the FNV-1a 64 fingerprint of the file's bytes must
//!   match; any edit, however small, re-parses that file (and only it).
//! * **schema** — [`CACHE_VERSION`] must match; bumped whenever
//!   [`FileFacts`]' serialized shape changes.
//! * **rule catalog** — the cache records [`RULE_IDS`]; adding, removing
//!   or renaming a rule discards the whole cache, since cached per-file
//!   diagnostics would silently miss the new rule.
//!
//! Any decode failure — truncated file, hand-edited JSON, unknown rule id
//! in a cached diagnostic — degrades to a cold scan for the affected
//! entry (or the whole cache), never to an error: the cache is an
//! optimization, not a source of truth, and a warm run's *output* must be
//! byte-identical to a cold run's (`tests/cache.rs` pins this).

use crate::diag::Diagnostic;
use crate::items::FileFacts;
use crate::rules::RULE_IDS;
use pcm_types::{Json, JsonCodec};
use std::collections::BTreeMap;
use std::path::Path;

/// Bump when the serialized [`FileFacts`] or entry layout changes.
pub const CACHE_VERSION: u64 = 1;

/// Schema marker in the cache file.
const SCHEMA: &str = "pcm-lint-cache";

/// FNV-1a 64-bit content fingerprint. Not cryptographic — it only needs
/// to make accidental collisions between source revisions implausible.
pub fn fingerprint(src: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in src.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One cached file: fingerprint, parsed facts, per-file rule findings.
#[derive(Clone, Debug, PartialEq)]
pub struct CacheEntry {
    /// [`fingerprint`] of the file contents this entry was built from.
    pub fp: u64,
    /// Parsed facts, restored verbatim on a hit.
    pub facts: FileFacts,
    /// Per-file rule diagnostics (unfiltered: waivers and `--allow` are
    /// applied after the scan, so the cache is allow-independent).
    pub diags: Vec<Diagnostic>,
}

impl JsonCodec for CacheEntry {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("fp", Json::UInt(self.fp)),
            ("facts", self.facts.to_json()),
            (
                "diags",
                Json::Arr(self.diags.iter().map(JsonCodec::to_json).collect()),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<CacheEntry, pcm_types::JsonError> {
        let err = || pcm_types::json::field_error("cache entry");
        let fp = v.get("fp").and_then(Json::as_u64).ok_or_else(err)?;
        let facts = FileFacts::from_json(v.get("facts").ok_or_else(err)?)?;
        let diags = v
            .get("diags")
            .and_then(Json::as_array)
            .ok_or_else(err)?
            .iter()
            .map(Diagnostic::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CacheEntry { fp, facts, diags })
    }
}

/// The whole cache: path → entry, insertion-order-independent.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Cache {
    entries: BTreeMap<String, CacheEntry>,
}

impl Cache {
    /// An empty cache (every lookup misses).
    pub fn empty() -> Cache {
        Cache::default()
    }

    /// Number of cached files.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry for `path`, but only when its fingerprint still matches.
    pub fn lookup(&self, path: &str, fp: u64) -> Option<&CacheEntry> {
        self.entries.get(path).filter(|e| e.fp == fp)
    }

    /// Record (or replace) the entry for `path`.
    pub fn insert(&mut self, path: String, entry: CacheEntry) {
        self.entries.insert(path, entry);
    }

    /// Load from `path`. Any failure — missing file, parse error, schema
    /// or version or rule-catalog mismatch, undecodable entry — returns an
    /// empty cache (a cold scan), never an error.
    pub fn load(path: &Path) -> Cache {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Cache::empty();
        };
        let Ok(v) = Json::parse(&text) else {
            return Cache::empty();
        };
        if v.get("schema").and_then(Json::as_str) != Some(SCHEMA)
            || v.get("version").and_then(Json::as_u64) != Some(CACHE_VERSION)
        {
            return Cache::empty();
        }
        let rules: Vec<&str> = match v.get("rules").and_then(Json::as_array) {
            Some(a) => a.iter().filter_map(Json::as_str).collect(),
            None => return Cache::empty(),
        };
        if rules != RULE_IDS {
            return Cache::empty();
        }
        let Some(Json::Obj(files)) = v.get("files") else {
            return Cache::empty();
        };
        let mut cache = Cache::empty();
        for (p, ev) in files {
            // One bad entry degrades that file to a cold parse; the rest
            // of the cache stays usable.
            if let Ok(e) = CacheEntry::from_json(ev) {
                cache.entries.insert(p.clone(), e);
            }
        }
        cache
    }

    /// Persist to `path`, creating parent directories as needed.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_json_string())
    }
}

impl JsonCodec for Cache {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::str(SCHEMA)),
            ("version", Json::UInt(CACHE_VERSION)),
            (
                "rules",
                Json::Arr(RULE_IDS.iter().map(|r| Json::str(*r)).collect()),
            ),
            (
                "files",
                Json::Obj(
                    self.entries
                        .iter()
                        .map(|(p, e)| (p.clone(), e.to_json()))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Cache, pcm_types::JsonError> {
        // Lenient decoding lives in `load`; this strict form backs tests.
        let mut cache = Cache::empty();
        if let Some(Json::Obj(files)) = v.get("files") {
            for (p, ev) in files {
                cache.entries.insert(p.clone(), CacheEntry::from_json(ev)?);
            }
        }
        Ok(cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        assert_eq!(fingerprint(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fingerprint("fn main() {}"), fingerprint("fn main() {}"));
        assert_ne!(fingerprint("fn main() {}"), fingerprint("fn main() { }"));
    }

    #[test]
    fn lookup_requires_matching_fingerprint() {
        let mut c = Cache::empty();
        c.insert(
            "a.rs".into(),
            CacheEntry {
                fp: 7,
                facts: FileFacts::default(),
                diags: Vec::new(),
            },
        );
        assert!(c.lookup("a.rs", 7).is_some());
        assert!(c.lookup("a.rs", 8).is_none());
        assert!(c.lookup("b.rs", 7).is_none());
    }

    #[test]
    fn version_and_rule_catalog_gate_the_load() {
        let dir = std::env::temp_dir().join("pcm-lint-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("cache.json");

        let mut c = Cache::empty();
        c.insert(
            "x.rs".into(),
            CacheEntry {
                fp: 1,
                facts: FileFacts::default(),
                diags: Vec::new(),
            },
        );
        c.save(&p).unwrap();
        assert_eq!(Cache::load(&p).len(), 1);

        // Tamper with the version: the whole cache is discarded.
        let tampered = std::fs::read_to_string(&p)
            .unwrap()
            .replace("\"version\":1", "\"version\":999");
        std::fs::write(&p, tampered).unwrap();
        assert!(Cache::load(&p).is_empty());

        // Garbage is a cold scan, not an error.
        std::fs::write(&p, "not json").unwrap();
        assert!(Cache::load(&p).is_empty());
        std::fs::remove_file(&p).unwrap();
        assert!(Cache::load(&p).is_empty());
    }
}
