//! Span-accurate diagnostics and their human / JSON renderings.

use pcm_types::{Json, JsonCodec, JsonError};

/// One lint finding, anchored to a source span.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Stable rule identifier (e.g. `no-wall-clock`).
    pub rule: &'static str,
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-based line of the span start.
    pub line: u32,
    /// 1-based column (in bytes) of the span start.
    pub col: u32,
    /// Span length in bytes (caret width; 1 when unknown).
    pub len: u32,
    /// What is wrong and what to do instead.
    pub msg: String,
    /// The full source line the span starts on (trimmed of trailing `\n`).
    pub snippet: String,
}

impl Diagnostic {
    /// Render in the familiar `path:line:col` compiler style with the
    /// offending line and a caret underline.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}:{}:{}: [{}] {}\n",
            self.path, self.line, self.col, self.rule, self.msg
        );
        let gutter = format!("{:>5} | ", self.line);
        out.push_str(&gutter);
        out.push_str(&self.snippet);
        out.push('\n');
        out.push_str(&" ".repeat(gutter.len() - 2));
        out.push_str("| ");
        out.push_str(&" ".repeat(self.col.saturating_sub(1) as usize));
        out.push_str(&"^".repeat((self.len.max(1) as usize).min(80)));
        out
    }
}

impl JsonCodec for Diagnostic {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("rule", Json::str(self.rule)),
            ("path", Json::str(self.path.clone())),
            ("line", Json::UInt(u64::from(self.line))),
            ("col", Json::UInt(u64::from(self.col))),
            ("len", Json::UInt(u64::from(self.len))),
            ("msg", Json::str(self.msg.clone())),
            ("snippet", Json::str(self.snippet.clone())),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, JsonError> {
        use pcm_types::json::field_error;
        let get_str = |f: &str| {
            v.get(f)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| field_error(f))
        };
        let get_u32 = |f: &str| {
            v.get(f)
                .and_then(Json::as_u64)
                .and_then(|x| u32::try_from(x).ok())
                .ok_or_else(|| field_error(f))
        };
        let rule_name = get_str("rule")?;
        let rule = crate::rules::RULE_IDS
            .iter()
            .copied()
            .find(|r| *r == rule_name)
            .ok_or_else(|| field_error("rule"))?;
        Ok(Diagnostic {
            rule,
            path: get_str("path")?,
            line: get_u32("line")?,
            col: get_u32("col")?,
            len: get_u32("len")?,
            msg: get_str("msg")?,
            snippet: get_str("snippet")?,
        })
    }
}

/// Render a findings list as one JSON document (the `--json` format):
/// `{"findings": [...], "count": N}`.
pub fn to_json_report(diags: &[Diagnostic]) -> String {
    let obj = Json::obj(vec![
        ("count", Json::UInt(diags.len() as u64)),
        (
            "findings",
            Json::Arr(diags.iter().map(JsonCodec::to_json).collect()),
        ),
    ]);
    obj.to_string_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            rule: "no-wall-clock",
            path: "crates/memsim/src/engine.rs".into(),
            line: 42,
            col: 17,
            len: 12,
            msg: "wall-clock read in deterministic crate".into(),
            snippet: "        let t = Instant::now();".into(),
        }
    }

    #[test]
    fn render_points_at_the_span() {
        let r = sample().render();
        assert!(r.starts_with("crates/memsim/src/engine.rs:42:17: [no-wall-clock]"));
        assert!(r.contains("   42 |         let t = Instant::now();"));
        let caret_line = r.lines().last().unwrap();
        assert_eq!(caret_line.find('^').unwrap(), "   42 | ".len() + 16);
        assert!(caret_line.ends_with("^^^^^^^^^^^^"));
    }

    #[test]
    fn json_round_trips() {
        let d = sample();
        let back = Diagnostic::from_json_str(&d.to_json_string()).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn json_report_shape() {
        let report = to_json_report(&[sample()]);
        let v = Json::parse(&report).unwrap();
        assert_eq!(v.get("count").and_then(Json::as_u64), Some(1));
        assert!(matches!(v.get("findings"), Some(Json::Arr(a)) if a.len() == 1));
    }

    #[test]
    fn unknown_rule_rejected() {
        let v = Json::obj(vec![
            ("rule", Json::str("made-up")),
            ("path", Json::str("x")),
            ("line", Json::UInt(1)),
            ("col", Json::UInt(1)),
            ("len", Json::UInt(1)),
            ("msg", Json::str("m")),
            ("snippet", Json::str("s")),
        ]);
        assert!(Diagnostic::from_json(&v).is_err());
    }
}
