//! A zero-dependency recursive-descent **item parser** on top of the
//! lexer.
//!
//! This is the second analysis layer (DESIGN.md §15): where the lexer
//! gives rules a flat token stream, this module recovers the *item
//! structure* of each file — modules, `fn` signatures with named/typed
//! parameters, `struct`/`enum` definitions with field spans, `impl` and
//! `trait` blocks with their self types, `const`s with their initializer
//! spans — plus the per-body facts the cross-file rules consume: call
//! sites with unit-classified arguments, `let` bindings, field
//! assignments and struct-literal field initializers.
//!
//! It is an *approximate* parser by design. It never fails: unknown
//! constructs are skipped one token at a time, and every recognized item
//! records its exact byte span so diagnostics stay caret-accurate. The
//! approximations each consumer makes are documented on the rule that
//! makes them; this module's contract is only that what it *does* report
//! is positionally exact.
//!
//! Everything here is [`JsonCodec`]-serializable with compact positional
//! arrays — the warm-scan cache (`target/lint-cache.json`) persists
//! `FileFacts` verbatim so unchanged files skip lexing and parsing
//! entirely.

use crate::lexer::{Tok, TokKind};
use crate::units::{classify_expr, UnitClass};
use pcm_types::json::field_error;
use pcm_types::{Json, JsonCodec, JsonError};

/// What kind of item a span is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemKind {
    /// `mod name { … }` or `mod name;` (also `extern "C" { … }` blocks).
    Module,
    /// `fn name(…) -> Ty { … }` (free, inherent, or trait).
    Fn,
    /// `struct` / `union` definition.
    Struct,
    /// `enum` definition; variants land in [`Item::fields`].
    Enum,
    /// `trait` definition; members are parsed as nested items.
    Trait,
    /// `impl` block; members are parsed as nested items.
    Impl,
    /// `const NAME: Ty = …;`
    Const,
    /// `static NAME: Ty = …;`
    Static,
    /// `type Name = …;`
    TypeAlias,
    /// `use …;`
    Use,
    /// `macro_rules! name { … }`
    MacroDef,
    /// `extern crate …;`
    ExternCrate,
}

impl ItemKind {
    fn to_u64(self) -> u64 {
        match self {
            ItemKind::Module => 0,
            ItemKind::Fn => 1,
            ItemKind::Struct => 2,
            ItemKind::Enum => 3,
            ItemKind::Trait => 4,
            ItemKind::Impl => 5,
            ItemKind::Const => 6,
            ItemKind::Static => 7,
            ItemKind::TypeAlias => 8,
            ItemKind::Use => 9,
            ItemKind::MacroDef => 10,
            ItemKind::ExternCrate => 11,
        }
    }

    fn from_u64(v: u64) -> Result<ItemKind, JsonError> {
        Ok(match v {
            0 => ItemKind::Module,
            1 => ItemKind::Fn,
            2 => ItemKind::Struct,
            3 => ItemKind::Enum,
            4 => ItemKind::Trait,
            5 => ItemKind::Impl,
            6 => ItemKind::Const,
            7 => ItemKind::Static,
            8 => ItemKind::TypeAlias,
            9 => ItemKind::Use,
            10 => ItemKind::MacroDef,
            11 => ItemKind::ExternCrate,
            _ => return Err(field_error("item.kind")),
        })
    }
}

/// A named, typed slot: a `fn` parameter, a `struct` field, or an `enum`
/// variant (variants have an empty `ty`).
#[derive(Clone, Debug, PartialEq)]
pub struct Param {
    /// Slot name (`"self"` for receivers, `""` for tuple/pattern slots).
    pub name: String,
    /// Type text, significant tokens joined by spaces (`"Vec < u32 >"`).
    pub ty: String,
    /// Byte offset of the name (or of the slot when unnamed).
    pub lo: usize,
}

/// One argument at a call site.
#[derive(Clone, Debug, PartialEq)]
pub struct CallArg {
    /// Unit class of the argument expression.
    pub class: UnitClass,
    /// Byte span of the argument tokens.
    pub lo: usize,
    /// Byte length of the argument tokens.
    pub len: usize,
    /// The argument's sole identifier when it is a bare name, else `""`.
    pub ident: String,
}

/// A call site inside a body: `callee(args…)` or `recv.callee(args…)`.
#[derive(Clone, Debug, PartialEq)]
pub struct CallSite {
    /// The called name (method or function; paths keep only the last
    /// segment).
    pub callee: String,
    /// Byte offset of the callee identifier.
    pub lo: usize,
    /// Parsed arguments, in order.
    pub args: Vec<CallArg>,
}

/// A simple `let [mut] name [: Ty] = init;` binding.
#[derive(Clone, Debug, PartialEq)]
pub struct LetBind {
    /// Bound name.
    pub name: String,
    /// Unit class of the initializer (`Neutral` when the binding is
    /// `Ps`-typed — the newtype already states the unit).
    pub class: UnitClass,
    /// Byte offset of the bound name.
    pub lo: usize,
}

/// A field assignment (`x.field = rhs`, compound ops included) or a
/// struct-literal field initializer (`Foo { field: rhs }`).
#[derive(Clone, Debug, PartialEq)]
pub struct FieldAssign {
    /// The assigned field's name.
    pub field: String,
    /// Unit class of the right-hand side.
    pub class: UnitClass,
    /// Byte offset of the field name.
    pub lo: usize,
    /// Byte length of the field name.
    pub len: usize,
}

/// One parsed item.
#[derive(Clone, Debug, PartialEq)]
pub struct Item {
    /// What the item is.
    pub kind: ItemKind,
    /// Its name (`impl` blocks use the self type; `""` when anonymous).
    pub name: String,
    /// Byte span start (includes leading attributes).
    pub lo: usize,
    /// Byte span end (exclusive).
    pub hi: usize,
    /// True when the item sits inside a `#[cfg(test)]` / `#[test]` region.
    pub in_test: bool,
    /// Enclosing `impl`/`trait` self type, `""` at module level.
    pub self_ty: String,
    /// `fn` return type / `const`/`static`/field type text, else `""`.
    pub ty: String,
    /// Nesting depth: `0` for top-level items, `+1` per enclosing
    /// `mod`/`trait`/`impl`.
    pub depth: u32,
    /// `fn` parameters.
    pub params: Vec<Param>,
    /// `struct` fields or `enum` variants.
    pub fields: Vec<Param>,
    /// Call sites inside the body.
    pub calls: Vec<CallSite>,
    /// `let` bindings inside the body.
    pub lets: Vec<LetBind>,
    /// Field assignments / struct-literal initializers inside the body.
    pub assigns: Vec<FieldAssign>,
}

/// A `Upper::Upper` path reference anywhere in the file (enum-variant
/// constructions, match patterns, `use` leaves — deliberately inclusive).
#[derive(Clone, Debug, PartialEq)]
pub struct PathRef {
    /// Segment before `::`.
    pub head: String,
    /// Segment after `::`.
    pub tail: String,
    /// Byte offset of the tail segment.
    pub lo: usize,
    /// True when inside a test region.
    pub in_test: bool,
}

/// A `.field` access anywhere in the file (method calls excluded).
#[derive(Clone, Debug, PartialEq)]
pub struct FieldAccess {
    /// Accessed field name.
    pub name: String,
    /// Byte offset of the field name.
    pub lo: usize,
    /// True when the access is the target of an assignment.
    pub write: bool,
    /// True when inside a test region.
    pub in_test: bool,
}

/// A short, whitespace-free string literal (registry tags, CLI phrases).
#[derive(Clone, Debug, PartialEq)]
pub struct StrRef {
    /// Literal contents, without quotes.
    pub text: String,
    /// Byte offset of the literal token.
    pub lo: usize,
}

/// Everything the cross-file rules need from one file. Cached by content
/// fingerprint; must round-trip through [`JsonCodec`] byte-exactly.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FileFacts {
    /// All items, post-order for containers: a `mod`/`impl`'s children
    /// precede it (the parent is pushed once its span closes).
    pub items: Vec<Item>,
    /// All `Upper::Upper` path references.
    pub path_refs: Vec<PathRef>,
    /// All `.field` accesses.
    pub field_accesses: Vec<FieldAccess>,
    /// Short string literals.
    pub strings: Vec<StrRef>,
    /// `Some("tag") =>` match arms (CLI subcommand dispatch).
    pub subcommand_arms: Vec<StrRef>,
}

impl FileFacts {
    /// Items of `kind`.
    pub fn of_kind(&self, kind: ItemKind) -> impl Iterator<Item = &Item> {
        self.items.iter().filter(move |i| i.kind == kind)
    }

    /// The first item of `kind` named `name`.
    pub fn named(&self, kind: ItemKind, name: &str) -> Option<&Item> {
        self.items.iter().find(|i| i.kind == kind && i.name == name)
    }
}

/// Keywords that can precede `(`/`{` without being a call or a struct
/// literal.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where",
    "while", "yield",
];

fn is_keyword(t: &str) -> bool {
    KEYWORDS.contains(&t)
}

fn upper_initial(t: &str) -> bool {
    t.chars().next().is_some_and(|c| c.is_ascii_uppercase())
}

/// Parse a lexed file into [`FileFacts`].
pub fn parse(src: &str, toks: &[Tok], test_regions: &[(usize, usize)]) -> FileFacts {
    let mut p = Parser::new(src, toks, test_regions);
    let mut items = Vec::new();
    p.items(usize::MAX, 0, "", &mut items);
    let mut facts = FileFacts {
        items,
        ..FileFacts::default()
    };
    p.flat_passes(&mut facts);
    facts
}

struct Parser<'a> {
    text: Vec<&'a str>,
    kind: Vec<TokKind>,
    lo: Vec<usize>,
    hi: Vec<usize>,
    test_regions: &'a [(usize, usize)],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str, toks: &'a [Tok], test_regions: &'a [(usize, usize)]) -> Parser<'a> {
        let sig: Vec<&Tok> = toks.iter().filter(|t| t.significant()).collect();
        Parser {
            text: sig.iter().map(|t| t.text(src)).collect(),
            kind: sig.iter().map(|t| t.kind).collect(),
            lo: sig.iter().map(|t| t.lo).collect(),
            hi: sig.iter().map(|t| t.hi).collect(),
            test_regions,
            pos: 0,
        }
    }

    fn len(&self) -> usize {
        self.text.len()
    }

    /// Text of token `i`, `""` past the end.
    fn t(&self, i: usize) -> &'a str {
        self.text.get(i).copied().unwrap_or("")
    }

    fn k(&self, i: usize) -> TokKind {
        self.kind.get(i).copied().unwrap_or(TokKind::Whitespace)
    }

    fn in_test(&self, i: usize) -> bool {
        crate::lexer::in_regions(self.test_regions, self.lo[i])
    }

    /// Index just past the delimiter group opening at `i` (`text[i]` must
    /// be the opener). Counts only `open`/`close`.
    fn skip_group(&self, i: usize, open: &str, close: &str) -> usize {
        let mut depth = 0i64;
        let mut j = i;
        while j < self.len() {
            let t = self.t(j);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        self.len()
    }

    /// Index just past a `<…>` generics group opening at `i`. A `>`
    /// preceded by `-` is an arrow (`fn(…) -> T` inside generic args) and
    /// does not close the group.
    fn skip_generics(&self, i: usize) -> usize {
        let mut depth = 0i64;
        let mut j = i;
        while j < self.len() {
            match self.t(j) {
                "<" => depth += 1,
                ">" if j == 0 || self.t(j - 1) != "-" => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        self.len()
    }

    /// Skip leading `#[…]` / `#![…]` attributes from `self.pos`.
    fn skip_attrs(&mut self) {
        while self.t(self.pos) == "#" {
            let mut j = self.pos + 1;
            if self.t(j) == "!" {
                j += 1;
            }
            if self.t(j) != "[" {
                break;
            }
            self.pos = self.skip_group(j, "[", "]");
        }
    }

    /// Advance to the matching top-level `;` from `self.pos`, tracking all
    /// three delimiter pairs; stops (without consuming) at an unbalanced
    /// `}`. Returns the index of the last consumed token.
    fn consume_until_semi(&mut self) -> usize {
        let mut depth = 0i64;
        while self.pos < self.len() {
            match self.t(self.pos) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" => depth -= 1,
                "}" => {
                    if depth == 0 {
                        return self.pos.saturating_sub(1);
                    }
                    depth -= 1;
                }
                ";" if depth == 0 => {
                    self.pos += 1;
                    return self.pos - 1;
                }
                _ => {}
            }
            self.pos += 1;
        }
        self.len().saturating_sub(1)
    }

    /// Parse items until an unmatched `}` or `end`/EOF, appending to
    /// `out`. `self.pos` is left on the `}` (not consumed).
    fn items(&mut self, end: usize, depth: u32, self_ty: &str, out: &mut Vec<Item>) {
        let end = end.min(self.len());
        while self.pos < end && self.t(self.pos) != "}" {
            self.item(depth, self_ty, out);
        }
    }

    /// Parse one item (or recover by one token) at `self.pos`.
    fn item(&mut self, depth: u32, self_ty: &str, out: &mut Vec<Item>) {
        let start = self.pos;
        self.skip_attrs();
        // Visibility.
        if self.t(self.pos) == "pub" {
            self.pos += 1;
            if self.t(self.pos) == "(" {
                self.pos = self.skip_group(self.pos, "(", ")");
            }
        }
        // Modifiers: `unsafe fn`, `async fn`, `default fn`, `const fn`,
        // `extern "C" fn`.
        loop {
            match self.t(self.pos) {
                "unsafe" | "async" | "default" => self.pos += 1,
                "const" if self.t(self.pos + 1) == "fn" => self.pos += 1,
                "extern" if self.k(self.pos + 1) == TokKind::StrLit => self.pos += 2,
                _ => break,
            }
        }
        if self.pos >= self.len() || self.t(self.pos) == "}" {
            return;
        }
        let item_lo = self.lo[start.min(self.len() - 1)];
        let in_test = self.in_test(start.min(self.len() - 1));
        let mut item = Item {
            kind: ItemKind::Use,
            name: String::new(),
            lo: item_lo,
            hi: item_lo,
            in_test,
            self_ty: self_ty.to_string(),
            ty: String::new(),
            depth,
            params: Vec::new(),
            fields: Vec::new(),
            calls: Vec::new(),
            lets: Vec::new(),
            assigns: Vec::new(),
        };
        match self.t(self.pos) {
            "mod" => {
                item.kind = ItemKind::Module;
                item.name = self.t(self.pos + 1).to_string();
                self.pos += 2;
                if self.t(self.pos) == "{" {
                    self.pos += 1;
                    self.items(usize::MAX, depth + 1, "", out);
                    if self.t(self.pos) == "}" {
                        self.pos += 1;
                    }
                } else if self.t(self.pos) == ";" {
                    self.pos += 1;
                }
            }
            "fn" => {
                item.kind = ItemKind::Fn;
                self.parse_fn(&mut item);
            }
            "struct" | "union" => {
                item.kind = ItemKind::Struct;
                self.parse_struct(&mut item);
            }
            "enum" => {
                item.kind = ItemKind::Enum;
                self.parse_enum(&mut item);
            }
            "trait" => {
                item.kind = ItemKind::Trait;
                item.name = self.t(self.pos + 1).to_string();
                self.pos += 2;
                if self.t(self.pos) == "<" {
                    self.pos = self.skip_generics(self.pos);
                }
                while self.pos < self.len() && self.t(self.pos) != "{" && self.t(self.pos) != ";" {
                    self.pos += 1;
                }
                if self.t(self.pos) == "{" {
                    self.pos += 1;
                    let name = item.name.clone();
                    self.body_items(depth, &name, out);
                } else if self.t(self.pos) == ";" {
                    self.pos += 1;
                }
            }
            "impl" => {
                item.kind = ItemKind::Impl;
                self.pos += 1;
                if self.t(self.pos) == "<" {
                    self.pos = self.skip_generics(self.pos);
                }
                item.name = self.impl_self_ty();
                item.self_ty = item.name.clone();
                if self.t(self.pos) == "{" {
                    self.pos += 1;
                    let name = item.name.clone();
                    self.body_items(depth, &name, out);
                } else if self.t(self.pos) == ";" {
                    self.pos += 1;
                }
            }
            "const" | "static" => {
                item.kind = if self.t(self.pos) == "const" {
                    ItemKind::Const
                } else {
                    ItemKind::Static
                };
                self.pos += 1;
                if self.t(self.pos) == "mut" {
                    self.pos += 1;
                }
                item.name = self.t(self.pos).to_string();
                self.pos += 1;
                if self.t(self.pos) == ":" {
                    self.pos += 1;
                    item.ty = self.type_until(&["=", ";"]);
                }
                self.consume_until_semi();
            }
            "type" => {
                item.kind = ItemKind::TypeAlias;
                item.name = self.t(self.pos + 1).to_string();
                self.pos += 2;
                self.consume_until_semi();
            }
            "use" => {
                item.kind = ItemKind::Use;
                self.pos += 1;
                self.consume_until_semi();
            }
            "macro_rules" if self.t(self.pos + 1) == "!" => {
                item.kind = ItemKind::MacroDef;
                item.name = self.t(self.pos + 2).to_string();
                self.pos += 3;
                match self.t(self.pos) {
                    "{" => self.pos = self.skip_group(self.pos, "{", "}"),
                    "(" => {
                        self.pos = self.skip_group(self.pos, "(", ")");
                        self.consume_until_semi();
                    }
                    _ => {}
                }
            }
            "extern" if self.t(self.pos + 1) == "crate" => {
                item.kind = ItemKind::ExternCrate;
                item.name = self.t(self.pos + 2).to_string();
                self.pos += 3;
                self.consume_until_semi();
            }
            "extern" => {
                // `extern "C" { … }` foreign block (the `extern "C" fn`
                // modifier form was consumed above).
                item.kind = ItemKind::Module;
                item.name = "extern".to_string();
                self.pos += 1;
                while self.pos < self.len() && self.t(self.pos) != "{" && self.t(self.pos) != ";" {
                    self.pos += 1;
                }
                if self.t(self.pos) == "{" {
                    self.pos = self.skip_group(self.pos, "{", "}");
                } else if self.t(self.pos) == ";" {
                    self.pos += 1;
                }
            }
            _ => {
                // Recovery: not an item head we know. Advance one token so
                // progress is guaranteed; emit nothing.
                self.pos += 1;
                return;
            }
        }
        let last = self.pos.min(self.len()).saturating_sub(1);
        item.hi = self.hi[last].max(item.lo);
        out.push(item);
    }

    /// Parse the members of a `trait`/`impl` block; consumes the closing
    /// `}`. The parent item is pushed by the caller *after* its children
    /// only in source order terms — children carry `depth + 1`.
    fn body_items(&mut self, depth: u32, self_ty: &str, out: &mut Vec<Item>) {
        self.items(usize::MAX, depth + 1, self_ty, out);
        if self.t(self.pos) == "}" {
            self.pos += 1;
        }
    }

    /// Self-type name of an `impl` header: the last generic-depth-0
    /// identifier before the body, restricted to the segment after a
    /// top-level `for` (trait impls) and cut at `where`.
    fn impl_self_ty(&mut self) -> String {
        let mut depth = 0i64;
        let mut last_ident: Option<&str> = None;
        while self.pos < self.len() {
            let t = self.t(self.pos);
            match t {
                "{" | ";" if depth == 0 => break,
                "<" => depth += 1,
                ">" if self.t(self.pos.wrapping_sub(1)) != "-" => depth -= 1,
                "(" => {
                    self.pos = self.skip_group(self.pos, "(", ")");
                    continue;
                }
                "where" if depth == 0 => {
                    // Self type precedes the where clause; skip the rest.
                    while self.pos < self.len()
                        && self.t(self.pos) != "{"
                        && self.t(self.pos) != ";"
                    {
                        self.pos += 1;
                    }
                    break;
                }
                "for" if depth == 0 && self.t(self.pos + 1) != "<" => {
                    // Trait impl: the self type is what follows `for`.
                    last_ident = None;
                }
                _ if depth == 0 && self.k(self.pos) == TokKind::Ident && !is_keyword(t) => {
                    last_ident = Some(t);
                }
                _ => {}
            }
            self.pos += 1;
        }
        last_ident.unwrap_or("").to_string()
    }

    /// Collect type text until one of `stops` at delimiter depth 0; the
    /// stop token is not consumed.
    fn type_until(&mut self, stops: &[&str]) -> String {
        let mut depth = 0i64;
        let mut parts: Vec<&str> = Vec::new();
        while self.pos < self.len() {
            let t = self.t(self.pos);
            if depth == 0 && (stops.contains(&t) || t == "}") {
                break;
            }
            match t {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "<" => depth += 1,
                ">" if self.t(self.pos.wrapping_sub(1)) != "-" => depth -= 1,
                _ => {}
            }
            parts.push(t);
            self.pos += 1;
        }
        parts.join(" ")
    }

    /// `fn` after the keyword: name, generics, params, return type, body.
    fn parse_fn(&mut self, item: &mut Item) {
        item.name = self.t(self.pos + 1).to_string();
        self.pos += 2;
        if self.t(self.pos) == "<" {
            self.pos = self.skip_generics(self.pos);
        }
        if self.t(self.pos) == "(" {
            let close = self.skip_group(self.pos, "(", ")");
            self.parse_params(self.pos + 1, close - 1, item);
            self.pos = close;
        }
        if self.t(self.pos) == "-" && self.t(self.pos + 1) == ">" {
            self.pos += 2;
            item.ty = self.type_until(&["where", "{", ";"]);
        }
        if self.t(self.pos) == "where" {
            while self.pos < self.len() && self.t(self.pos) != "{" && self.t(self.pos) != ";" {
                if self.t(self.pos) == "<" {
                    self.pos = self.skip_generics(self.pos);
                } else {
                    self.pos += 1;
                }
            }
        }
        if self.t(self.pos) == "{" {
            let close = self.skip_group(self.pos, "{", "}");
            self.scan_body(self.pos + 1, close - 1, item);
            self.pos = close;
        } else if self.t(self.pos) == ";" {
            self.pos += 1;
        }
    }

    /// Split the parameter range `[i, end)` on depth-0 commas and parse
    /// each slot.
    fn parse_params(&mut self, i: usize, end: usize, item: &mut Item) {
        let mut depth = 0i64;
        let mut seg = i;
        let mut j = i;
        while j <= end {
            let at_end = j == end;
            let t = if at_end { "," } else { self.t(j) };
            match t {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "<" => depth += 1,
                ">" if self.t(j.wrapping_sub(1)) != "-" => depth -= 1,
                "," if depth == 0 => {
                    if seg < j {
                        item.params.push(self.param_slot(seg, j));
                    }
                    seg = j + 1;
                }
                _ => {}
            }
            j += 1;
        }
    }

    /// One parameter slot in `[i, end)`.
    fn param_slot(&self, i: usize, end: usize) -> Param {
        let mut j = i;
        // Leading attributes on the slot.
        while self.t(j) == "#" && self.t(j + 1) == "[" {
            j = self.skip_group(j + 1, "[", "]");
        }
        // Receiver forms: `self`, `&self`, `&mut self`, `&'a mut self`,
        // `mut self`, `self: Ty`.
        let mut r = j;
        while r < end && (self.t(r) == "&" || self.t(r) == "mut" || self.k(r) == TokKind::Lifetime)
        {
            r += 1;
        }
        if self.t(r) == "self" {
            return Param {
                name: "self".to_string(),
                ty: String::new(),
                lo: self.lo[r],
            };
        }
        if self.t(j) == "mut" {
            j += 1;
        }
        let lo = self.lo[j.min(self.len() - 1)];
        // Find the top-level `:` separating pattern from type.
        let mut depth = 0i64;
        let mut colon = None;
        for c in j..end {
            match self.t(c) {
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ">" if self.t(c.wrapping_sub(1)) != "-" => depth -= 1,
                ":" if depth == 0 && self.t(c + 1) != ":" && self.t(c.wrapping_sub(1)) != ":" => {
                    colon = Some(c);
                    break;
                }
                _ => {}
            }
        }
        let name = if self.k(j) == TokKind::Ident && colon.map_or(end == j + 1, |c| c == j + 1) {
            self.t(j).to_string()
        } else {
            String::new()
        };
        let ty = match colon {
            Some(c) => self.text[c + 1..end].join(" "),
            None => String::new(),
        };
        Param { name, ty, lo }
    }

    /// `struct`/`union` after the keyword.
    fn parse_struct(&mut self, item: &mut Item) {
        item.name = self.t(self.pos + 1).to_string();
        self.pos += 2;
        if self.t(self.pos) == "<" {
            self.pos = self.skip_generics(self.pos);
        }
        if self.t(self.pos) == "where" {
            while self.pos < self.len() && !matches!(self.t(self.pos), "{" | "(" | ";") {
                self.pos += 1;
            }
        }
        match self.t(self.pos) {
            "{" => {
                let close = self.skip_group(self.pos, "{", "}");
                self.parse_named_fields(self.pos + 1, close - 1, item);
                self.pos = close;
            }
            "(" => {
                let close = self.skip_group(self.pos, "(", ")");
                // Tuple fields: unnamed, positional types.
                let save = self.pos;
                self.pos = close;
                let mut tmp = Item {
                    params: Vec::new(),
                    ..item.clone()
                };
                self.parse_params(save + 1, close - 1, &mut tmp);
                item.fields = tmp.params;
                self.consume_until_semi();
            }
            ";" => self.pos += 1,
            _ => {}
        }
    }

    /// Named fields in `[i, end)`: `vis name : Ty ,`.
    fn parse_named_fields(&mut self, i: usize, end: usize, item: &mut Item) {
        let mut j = i;
        while j < end {
            while self.t(j) == "#" && self.t(j + 1) == "[" {
                j = self.skip_group(j + 1, "[", "]");
            }
            if self.t(j) == "pub" {
                j += 1;
                if self.t(j) == "(" {
                    j = self.skip_group(j, "(", ")");
                }
            }
            if j >= end {
                break;
            }
            if self.k(j) == TokKind::Ident && self.t(j + 1) == ":" {
                let name = self.t(j).to_string();
                let lo = self.lo[j];
                // Type runs to the next depth-0 comma.
                let mut depth = 0i64;
                let mut c = j + 2;
                let ty_start = c;
                while c < end {
                    match self.t(c) {
                        "(" | "[" | "{" | "<" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        ">" if self.t(c.wrapping_sub(1)) != "-" => depth -= 1,
                        "," if depth == 0 => break,
                        _ => {}
                    }
                    c += 1;
                }
                item.fields.push(Param {
                    name,
                    ty: self.text[ty_start..c].join(" "),
                    lo,
                });
                j = c + 1;
            } else {
                j += 1;
            }
        }
    }

    /// `enum` after the keyword: collect variant names and spans.
    fn parse_enum(&mut self, item: &mut Item) {
        item.name = self.t(self.pos + 1).to_string();
        self.pos += 2;
        if self.t(self.pos) == "<" {
            self.pos = self.skip_generics(self.pos);
        }
        if self.t(self.pos) == "where" {
            while self.pos < self.len() && self.t(self.pos) != "{" {
                self.pos += 1;
            }
        }
        if self.t(self.pos) != "{" {
            return;
        }
        let close = self.skip_group(self.pos, "{", "}");
        let mut j = self.pos + 1;
        let end = close - 1;
        while j < end {
            while self.t(j) == "#" && self.t(j + 1) == "[" {
                j = self.skip_group(j + 1, "[", "]");
            }
            if j >= end {
                break;
            }
            if self.k(j) == TokKind::Ident {
                item.fields.push(Param {
                    name: self.t(j).to_string(),
                    ty: String::new(),
                    lo: self.lo[j],
                });
                j += 1;
                // Skip payload and discriminant to the next depth-0 comma.
                let mut depth = 0i64;
                while j < end {
                    match self.t(j) {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "," if depth == 0 => {
                            j += 1;
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
            } else {
                j += 1;
            }
        }
        self.pos = close;
    }

    /// Scan a `fn` body `[start, end)` for calls, simple `let` bindings,
    /// field assignments and struct-literal initializers.
    fn scan_body(&mut self, start: usize, end: usize, item: &mut Item) {
        let mut i = start;
        while i < end {
            let t = self.t(i);
            let k = self.k(i);
            // Call site: `ident(` — macros are `ident!(` so they never
            // match; `fn name(` is excluded by the look-behind.
            if k == TokKind::Ident
                && !is_keyword(t)
                && t != "self"
                && self.t(i + 1) == "("
                && self.t(i.wrapping_sub(1)) != "fn"
            {
                let close = self.skip_group(i + 1, "(", ")");
                let args = self.call_args(i + 2, close - 1);
                item.calls.push(CallSite {
                    callee: t.to_string(),
                    lo: self.lo[i],
                    args,
                });
                i += 1;
                continue;
            }
            // Simple let binding: `let [mut] name [: Ty] = init ;`
            if t == "let" {
                let mut j = i + 1;
                if self.t(j) == "mut" {
                    j += 1;
                }
                if self.k(j) == TokKind::Ident
                    && !is_keyword(self.t(j))
                    && (self.t(j + 1) == ":" || self.t(j + 1) == "=")
                    && self.t(j + 2) != "="
                {
                    let name = self.t(j).to_string();
                    let lo = self.lo[j];
                    let mut c = j + 1;
                    let mut ps_typed = false;
                    if self.t(c) == ":" {
                        let save = self.pos;
                        self.pos = c + 1;
                        let ty = self.type_until(&["=", ";"]);
                        c = self.pos;
                        self.pos = save;
                        ps_typed = ty.split(' ').any(|s| s == "Ps");
                    }
                    if self.t(c) == "=" {
                        let init = self.expr_span(c + 1, end, &[";"]);
                        let class = if ps_typed {
                            UnitClass::Neutral
                        } else {
                            classify_expr(self.text[c + 1..init].iter().copied())
                        };
                        item.lets.push(LetBind { name, class, lo });
                    }
                    i = j + 1;
                    continue;
                }
            }
            // Field assignment: `.field =` / `.field +=` (all compound
            // assignment operators).
            if t == "." && self.k(i + 1) == TokKind::Ident && self.t(i.wrapping_sub(1)) != "." {
                if let Some(rhs) = self.assign_rhs_start(i + 2) {
                    let stop = self.expr_span(rhs, end, &[";"]);
                    item.assigns.push(FieldAssign {
                        field: self.t(i + 1).to_string(),
                        class: classify_expr(self.text[rhs..stop].iter().copied()),
                        lo: self.lo[i + 1],
                        len: self.hi[i + 1] - self.lo[i + 1],
                    });
                    i += 2;
                    continue;
                }
            }
            // Struct literal: `Type { field: rhs, … }`.
            if k == TokKind::Ident
                && (upper_initial(t) || t == "Self")
                && self.t(i + 1) == "{"
                && !is_keyword(self.t(i.wrapping_sub(1)))
            {
                let close = self.skip_group(i + 1, "{", "}");
                self.struct_literal_fields(i + 2, close - 1, item);
                i += 2;
                continue;
            }
            i += 1;
        }
    }

    /// If an assignment operator starts at `i`, return the index where its
    /// right-hand side begins. Handles `=`, `+= -= *= /= %= &= |= ^=`,
    /// `<<=`, `>>=`; rejects `==`, `<=`, `>=`, `=>`.
    fn assign_rhs_start(&self, i: usize) -> Option<usize> {
        let a = self.t(i);
        let b = self.t(i + 1);
        let c = self.t(i + 2);
        match a {
            "=" if b != "=" && b != ">" => Some(i + 1),
            "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^" if b == "=" && c != "=" => Some(i + 2),
            "<" | ">" if b == a && c == "=" => Some(i + 3),
            _ => None,
        }
    }

    /// End (exclusive) of the expression starting at `i`: the first
    /// depth-0 `stops` token, an unbalanced closer, or `end`.
    fn expr_span(&self, i: usize, end: usize, stops: &[&str]) -> usize {
        let mut depth = 0i64;
        let mut j = i;
        while j < end {
            let t = self.t(j);
            if depth == 0 && stops.contains(&t) {
                return j;
            }
            match t {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        return j;
                    }
                    depth -= 1;
                }
                _ => {}
            }
            j += 1;
        }
        end
    }

    /// Split call arguments `[i, end)` on depth-0 commas.
    fn call_args(&self, i: usize, end: usize) -> Vec<CallArg> {
        let mut args = Vec::new();
        if i >= end {
            return args;
        }
        let mut depth = 0i64;
        let mut seg = i;
        let mut j = i;
        loop {
            let at_end = j == end;
            let t = if at_end { "," } else { self.t(j) };
            match t {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "," if depth == 0 => {
                    if seg < j {
                        let texts = &self.text[seg..j];
                        args.push(CallArg {
                            class: classify_expr(texts.iter().copied()),
                            lo: self.lo[seg],
                            len: self.hi[j - 1] - self.lo[seg],
                            ident: if j == seg + 1 && self.k(seg) == TokKind::Ident {
                                self.t(seg).to_string()
                            } else {
                                String::new()
                            },
                        });
                    }
                    seg = j + 1;
                }
                _ => {}
            }
            if at_end {
                break;
            }
            j += 1;
        }
        args
    }

    /// Depth-0 `field : rhs` pairs inside a struct literal body.
    fn struct_literal_fields(&self, i: usize, end: usize, item: &mut Item) {
        let mut depth = 0i64;
        let mut j = i;
        while j < end {
            match self.t(j) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                _ if depth == 0
                    && self.k(j) == TokKind::Ident
                    && self.t(j + 1) == ":"
                    && self.t(j + 2) != ":"
                    && (j == i || self.t(j - 1) == ",") =>
                {
                    let stop = self.expr_span(j + 2, end, &[","]);
                    item.assigns.push(FieldAssign {
                        field: self.t(j).to_string(),
                        class: classify_expr(self.text[j + 2..stop].iter().copied()),
                        lo: self.lo[j],
                        len: self.hi[j] - self.lo[j],
                    });
                    j = stop;
                    continue;
                }
                _ => {}
            }
            j += 1;
        }
    }

    /// The whole-file passes that don't depend on item structure.
    fn flat_passes(&self, facts: &mut FileFacts) {
        for i in 0..self.len() {
            let t = self.t(i);
            let k = self.k(i);
            // `Upper::Upper` path references.
            if k == TokKind::Ident
                && upper_initial(t)
                && self.t(i + 1) == ":"
                && self.t(i + 2) == ":"
                && self.k(i + 3) == TokKind::Ident
                && upper_initial(self.t(i + 3))
            {
                facts.path_refs.push(PathRef {
                    head: t.to_string(),
                    tail: self.t(i + 3).to_string(),
                    lo: self.lo[i + 3],
                    in_test: self.in_test(i),
                });
            }
            // `.field` accesses (method calls and ranges excluded).
            if t == "."
                && self.k(i + 1) == TokKind::Ident
                && !is_keyword(self.t(i + 1))
                && self.t(i + 2) != "("
                && self.t(i.wrapping_sub(1)) != "."
                && self.t(i + 2) != "!"
            {
                facts.field_accesses.push(FieldAccess {
                    name: self.t(i + 1).to_string(),
                    lo: self.lo[i + 1],
                    write: self.assign_rhs_start(i + 2).is_some(),
                    in_test: self.in_test(i + 1),
                });
            }
            // Short whitespace-free string literals (registry tags).
            if k == TokKind::StrLit {
                let inner = t.trim_start_matches('"').trim_end_matches('"');
                if !inner.is_empty() && inner.len() <= 24 && !inner.contains(char::is_whitespace) {
                    facts.strings.push(StrRef {
                        text: inner.to_string(),
                        lo: self.lo[i],
                    });
                }
            }
            // `Some("tag") =>` subcommand-dispatch arms.
            if t == "Some"
                && self.t(i + 1) == "("
                && self.k(i + 2) == TokKind::StrLit
                && self.t(i + 3) == ")"
                && self.t(i + 4) == "="
                && self.t(i + 5) == ">"
            {
                let lit = self.t(i + 2);
                facts.subcommand_arms.push(StrRef {
                    text: lit.trim_matches('"').to_string(),
                    lo: self.lo[i + 2],
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// JSON codec: compact positional arrays, cache-stable.
// ---------------------------------------------------------------------------

fn ju(v: &Json, what: &'static str) -> Result<u64, JsonError> {
    v.as_u64().ok_or_else(|| field_error(what))
}

fn js(v: &Json, what: &'static str) -> Result<String, JsonError> {
    v.as_str()
        .map(str::to_string)
        .ok_or_else(|| field_error(what))
}

fn jb(v: &Json, what: &'static str) -> Result<bool, JsonError> {
    v.as_bool().ok_or_else(|| field_error(what))
}

fn jarr<'a>(v: &'a Json, n: usize, what: &'static str) -> Result<&'a [Json], JsonError> {
    match v.as_array() {
        Some(a) if a.len() >= n => Ok(a),
        _ => Err(field_error(what)),
    }
}

fn jvec<T: JsonCodec>(v: &Json, what: &'static str) -> Result<Vec<T>, JsonError> {
    v.as_array()
        .ok_or_else(|| field_error(what))?
        .iter()
        .map(T::from_json)
        .collect()
}

impl JsonCodec for Param {
    fn to_json(&self) -> Json {
        Json::Arr(vec![
            Json::str(&self.name),
            Json::str(&self.ty),
            Json::UInt(self.lo as u64),
        ])
    }

    fn from_json(v: &Json) -> Result<Param, JsonError> {
        let a = jarr(v, 3, "param")?;
        Ok(Param {
            name: js(&a[0], "param.name")?,
            ty: js(&a[1], "param.ty")?,
            lo: ju(&a[2], "param.lo")? as usize,
        })
    }
}

impl JsonCodec for CallArg {
    fn to_json(&self) -> Json {
        Json::Arr(vec![
            Json::UInt(self.class.to_u64()),
            Json::UInt(self.lo as u64),
            Json::UInt(self.len as u64),
            Json::str(&self.ident),
        ])
    }

    fn from_json(v: &Json) -> Result<CallArg, JsonError> {
        let a = jarr(v, 4, "arg")?;
        Ok(CallArg {
            class: UnitClass::from_u64(ju(&a[0], "arg.class")?),
            lo: ju(&a[1], "arg.lo")? as usize,
            len: ju(&a[2], "arg.len")? as usize,
            ident: js(&a[3], "arg.ident")?,
        })
    }
}

impl JsonCodec for CallSite {
    fn to_json(&self) -> Json {
        Json::Arr(vec![
            Json::str(&self.callee),
            Json::UInt(self.lo as u64),
            Json::Arr(self.args.iter().map(JsonCodec::to_json).collect()),
        ])
    }

    fn from_json(v: &Json) -> Result<CallSite, JsonError> {
        let a = jarr(v, 3, "call")?;
        Ok(CallSite {
            callee: js(&a[0], "call.callee")?,
            lo: ju(&a[1], "call.lo")? as usize,
            args: jvec(&a[2], "call.args")?,
        })
    }
}

impl JsonCodec for LetBind {
    fn to_json(&self) -> Json {
        Json::Arr(vec![
            Json::str(&self.name),
            Json::UInt(self.class.to_u64()),
            Json::UInt(self.lo as u64),
        ])
    }

    fn from_json(v: &Json) -> Result<LetBind, JsonError> {
        let a = jarr(v, 3, "let")?;
        Ok(LetBind {
            name: js(&a[0], "let.name")?,
            class: UnitClass::from_u64(ju(&a[1], "let.class")?),
            lo: ju(&a[2], "let.lo")? as usize,
        })
    }
}

impl JsonCodec for FieldAssign {
    fn to_json(&self) -> Json {
        Json::Arr(vec![
            Json::str(&self.field),
            Json::UInt(self.class.to_u64()),
            Json::UInt(self.lo as u64),
            Json::UInt(self.len as u64),
        ])
    }

    fn from_json(v: &Json) -> Result<FieldAssign, JsonError> {
        let a = jarr(v, 4, "assign")?;
        Ok(FieldAssign {
            field: js(&a[0], "assign.field")?,
            class: UnitClass::from_u64(ju(&a[1], "assign.class")?),
            lo: ju(&a[2], "assign.lo")? as usize,
            len: ju(&a[3], "assign.len")? as usize,
        })
    }
}

impl JsonCodec for Item {
    fn to_json(&self) -> Json {
        Json::Arr(vec![
            Json::UInt(self.kind.to_u64()),
            Json::str(&self.name),
            Json::UInt(self.lo as u64),
            Json::UInt(self.hi as u64),
            Json::Bool(self.in_test),
            Json::str(&self.self_ty),
            Json::str(&self.ty),
            Json::UInt(self.depth as u64),
            Json::Arr(self.params.iter().map(JsonCodec::to_json).collect()),
            Json::Arr(self.fields.iter().map(JsonCodec::to_json).collect()),
            Json::Arr(self.calls.iter().map(JsonCodec::to_json).collect()),
            Json::Arr(self.lets.iter().map(JsonCodec::to_json).collect()),
            Json::Arr(self.assigns.iter().map(JsonCodec::to_json).collect()),
        ])
    }

    fn from_json(v: &Json) -> Result<Item, JsonError> {
        let a = jarr(v, 13, "item")?;
        Ok(Item {
            kind: ItemKind::from_u64(ju(&a[0], "item.kind")?)?,
            name: js(&a[1], "item.name")?,
            lo: ju(&a[2], "item.lo")? as usize,
            hi: ju(&a[3], "item.hi")? as usize,
            in_test: jb(&a[4], "item.in_test")?,
            self_ty: js(&a[5], "item.self_ty")?,
            ty: js(&a[6], "item.ty")?,
            depth: ju(&a[7], "item.depth")? as u32,
            params: jvec(&a[8], "item.params")?,
            fields: jvec(&a[9], "item.fields")?,
            calls: jvec(&a[10], "item.calls")?,
            lets: jvec(&a[11], "item.lets")?,
            assigns: jvec(&a[12], "item.assigns")?,
        })
    }
}

impl JsonCodec for PathRef {
    fn to_json(&self) -> Json {
        Json::Arr(vec![
            Json::str(&self.head),
            Json::str(&self.tail),
            Json::UInt(self.lo as u64),
            Json::Bool(self.in_test),
        ])
    }

    fn from_json(v: &Json) -> Result<PathRef, JsonError> {
        let a = jarr(v, 4, "path")?;
        Ok(PathRef {
            head: js(&a[0], "path.head")?,
            tail: js(&a[1], "path.tail")?,
            lo: ju(&a[2], "path.lo")? as usize,
            in_test: jb(&a[3], "path.in_test")?,
        })
    }
}

impl JsonCodec for FieldAccess {
    fn to_json(&self) -> Json {
        Json::Arr(vec![
            Json::str(&self.name),
            Json::UInt(self.lo as u64),
            Json::Bool(self.write),
            Json::Bool(self.in_test),
        ])
    }

    fn from_json(v: &Json) -> Result<FieldAccess, JsonError> {
        let a = jarr(v, 4, "access")?;
        Ok(FieldAccess {
            name: js(&a[0], "access.name")?,
            lo: ju(&a[1], "access.lo")? as usize,
            write: jb(&a[2], "access.write")?,
            in_test: jb(&a[3], "access.in_test")?,
        })
    }
}

impl JsonCodec for StrRef {
    fn to_json(&self) -> Json {
        Json::Arr(vec![Json::str(&self.text), Json::UInt(self.lo as u64)])
    }

    fn from_json(v: &Json) -> Result<StrRef, JsonError> {
        let a = jarr(v, 2, "str")?;
        Ok(StrRef {
            text: js(&a[0], "str.text")?,
            lo: ju(&a[1], "str.lo")? as usize,
        })
    }
}

impl JsonCodec for FileFacts {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "items",
                Json::Arr(self.items.iter().map(JsonCodec::to_json).collect()),
            ),
            (
                "paths",
                Json::Arr(self.path_refs.iter().map(JsonCodec::to_json).collect()),
            ),
            (
                "accesses",
                Json::Arr(self.field_accesses.iter().map(JsonCodec::to_json).collect()),
            ),
            (
                "strings",
                Json::Arr(self.strings.iter().map(JsonCodec::to_json).collect()),
            ),
            (
                "arms",
                Json::Arr(
                    self.subcommand_arms
                        .iter()
                        .map(JsonCodec::to_json)
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<FileFacts, JsonError> {
        Ok(FileFacts {
            items: jvec(v.get("items").ok_or_else(|| field_error("items"))?, "items")?,
            path_refs: jvec(v.get("paths").ok_or_else(|| field_error("paths"))?, "paths")?,
            field_accesses: jvec(
                v.get("accesses").ok_or_else(|| field_error("accesses"))?,
                "accesses",
            )?,
            strings: jvec(
                v.get("strings").ok_or_else(|| field_error("strings"))?,
                "strings",
            )?,
            subcommand_arms: jvec(v.get("arms").ok_or_else(|| field_error("arms"))?, "arms")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn facts(src: &str) -> FileFacts {
        let toks = lexer::lex(src);
        let regions = lexer::test_regions(src, &toks);
        parse(src, &toks, &regions)
    }

    #[test]
    fn parses_fn_signature_and_body() {
        let f = facts(
            "pub fn sub_unit_duration(t_ns: u64, freq_mhz: u32) -> Ps {\n\
             \x20   let total_cycles = t_ns * 2;\n\
             \x20   convert(total_cycles, freq_mhz)\n\
             }\n",
        );
        let it = f.named(ItemKind::Fn, "sub_unit_duration").expect("fn");
        assert_eq!(it.ty, "Ps");
        assert_eq!(it.depth, 0);
        let names: Vec<&str> = it.params.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["t_ns", "freq_mhz"]);
        assert_eq!(it.params[0].ty, "u64");
        assert_eq!(it.lets.len(), 1);
        assert_eq!(it.lets[0].name, "total_cycles");
        assert_eq!(it.lets[0].class, UnitClass::Ns);
        let call = it
            .calls
            .iter()
            .find(|c| c.callee == "convert")
            .expect("call");
        assert_eq!(call.args.len(), 2);
        assert_eq!(call.args[0].class, UnitClass::Cycles);
        assert_eq!(call.args[0].ident, "total_cycles");
    }

    #[test]
    fn parses_struct_enum_const() {
        let f = facts(
            "struct Cfg { mean_gap_ns: u64, pub frames: usize }\n\
             enum Sel { #[default] A, B(u32), C { x: u8 } }\n\
             const ALL: [Sel; 3] = [Sel::A, Sel::B, Sel::C];\n",
        );
        let s = f.named(ItemKind::Struct, "Cfg").expect("struct");
        let fields: Vec<&str> = s.fields.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(fields, ["mean_gap_ns", "frames"]);
        assert_eq!(s.fields[0].ty, "u64");
        let e = f.named(ItemKind::Enum, "Sel").expect("enum");
        let vars: Vec<&str> = e.fields.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(vars, ["A", "B", "C"]);
        let c = f.named(ItemKind::Const, "ALL").expect("const");
        assert_eq!(c.ty, "[ Sel ; 3 ]");
        // The const's span covers its initializer, so the `Sel::X` path
        // refs inside it can be attributed to the const.
        let inside = f
            .path_refs
            .iter()
            .filter(|r| r.lo >= c.lo && r.lo < c.hi)
            .count();
        assert_eq!(inside, 3);
    }

    #[test]
    fn impl_blocks_set_self_ty() {
        let f = facts(
            "impl Cfg { fn frames(&self) -> usize { self.frames } }\n\
             impl Default for Cfg { fn default() -> Cfg { Cfg { frames: 4 } } }\n\
             impl<'a> View<'a> { fn len(&self) -> usize { 0 } }\n",
        );
        let frames = f.named(ItemKind::Fn, "frames").expect("frames");
        assert_eq!(frames.self_ty, "Cfg");
        assert_eq!(frames.params[0].name, "self");
        assert_eq!(frames.depth, 1);
        let default = f.named(ItemKind::Fn, "default").expect("default");
        assert_eq!(default.self_ty, "Cfg");
        assert_eq!(default.assigns.len(), 1);
        assert_eq!(default.assigns[0].field, "frames");
        let len = f.named(ItemKind::Fn, "len").expect("len");
        assert_eq!(len.self_ty, "View");
    }

    #[test]
    fn field_assigns_and_accesses() {
        let f = facts(
            "fn tick(&mut self, gap_cycles: u64) {\n\
             \x20   self.at_ns += gap_cycles;\n\
             \x20   let x = self.depth;\n\
             \x20   if self.at_ns == 3 { }\n\
             }\n",
        );
        let it = f.named(ItemKind::Fn, "tick").expect("fn");
        assert_eq!(it.assigns.len(), 1);
        assert_eq!(it.assigns[0].field, "at_ns");
        assert_eq!(it.assigns[0].class, UnitClass::Cycles);
        let writes: Vec<(&str, bool)> = f
            .field_accesses
            .iter()
            .map(|a| (a.name.as_str(), a.write))
            .collect();
        assert_eq!(
            writes,
            [("at_ns", true), ("depth", false), ("at_ns", false)]
        );
    }

    #[test]
    fn test_regions_mark_items() {
        let f = facts(
            "fn live() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   #[test]\n\
             \x20   fn check() { probe(1); }\n\
             }\n",
        );
        assert!(!f.named(ItemKind::Fn, "live").unwrap().in_test);
        assert!(f.named(ItemKind::Fn, "check").unwrap().in_test);
        assert!(f.named(ItemKind::Module, "tests").unwrap().in_test);
    }

    #[test]
    fn top_level_items_tile_the_file() {
        let src = "use std::fmt;\n\
                   const N: usize = 3;\n\
                   struct S { a: u32 }\n\
                   impl S { fn a(&self) -> u32 { self.a } }\n\
                   fn free(x: u64) -> u64 { x }\n";
        let f = facts(src);
        let toks = lexer::lex(src);
        for t in toks.iter().filter(|t| t.significant()) {
            let cover = f
                .items
                .iter()
                .filter(|i| i.depth == 0 && t.lo >= i.lo && t.lo < i.hi)
                .count();
            assert_eq!(cover, 1, "token `{}` at {}", t.text(src), t.lo);
        }
    }

    #[test]
    fn subcommand_arms_and_strings() {
        let f = facts(
            "fn main() { match arg() { Some(\"run\") => run(), Some(\"report\") => rep(), _ => {} } }\n",
        );
        let arms: Vec<&str> = f.subcommand_arms.iter().map(|a| a.text.as_str()).collect();
        assert_eq!(arms, ["run", "report"]);
        let strs: Vec<&str> = f.strings.iter().map(|s| s.text.as_str()).collect();
        assert_eq!(strs, ["run", "report"]);
    }

    #[test]
    fn facts_round_trip_json() {
        let f = facts(
            "pub struct Cfg { at_ns: u64 }\n\
             impl Cfg { fn set(&mut self, v_cycles: u64) { self.at_ns = v_cycles; } }\n\
             #[cfg(test)] mod t { fn x() { Cfg::default(); } }\n",
        );
        let back = FileFacts::from_json_str(&f.to_json_string()).expect("round-trip");
        assert_eq!(f, back);
    }

    #[test]
    fn generics_with_fn_pointer_arrow() {
        let f = facts("fn apply(map: Vec<fn(u32) -> u64>, n_cycles: u64) -> u64 { n_cycles }\n");
        let it = f.named(ItemKind::Fn, "apply").expect("fn");
        assert_eq!(it.params.len(), 2);
        assert_eq!(it.params[1].name, "n_cycles");
        assert_eq!(it.ty, "u64");
    }
}
