//! `pcm-lint` — zero-dependency static analysis for the Tetris-Write
//! workspace.
//!
//! The simulator's headline guarantees (bit-for-bit Eq. 5 service times,
//! 1-rank sharded ≡ unsharded, thread-count-independent results) rest on
//! source-level invariants no test asserts: no wall-clock in sim logic, no
//! unordered-container iteration on deterministic paths, timing constants
//! only via `pcm_types` newtypes, ns/cycles kept apart across call
//! boundaries. This crate machine-checks them in two layers: a
//! comment/string-aware Rust lexer ([`lexer`]) feeds a recursive-descent
//! item parser ([`items`]) whose per-file facts power both per-file rules
//! and workspace-wide graph rules ([`rules`], [`graph`]) producing
//! span-accurate diagnostics ([`diag`]), filtered through a
//! justification-carrying waiver file ([`allowlist`]).
//!
//! Scanning is parallel (the `tetris_experiments::pool` work-stealing
//! pool) and incremental: each file's parsed facts and per-file findings
//! are cached by content fingerprint in `target/lint-cache.json`
//! ([`cache`]), so a warm re-run re-parses only changed files. Graph
//! rules run on every scan — their findings depend on *other* files,
//! which a per-file cache cannot key — but they consume only facts,
//! never tokens, so cache-restored files are full participants. Warm and
//! cold scans produce byte-identical reports by construction (the cache
//! stores exactly what the scan would recompute); `tests/cache.rs` pins
//! that equivalence.
//!
//! Run it as `cargo run -p pcm-lint -- --workspace`; the `static-analysis`
//! CI job gates on a clean cold run *and* a fully-cached warm run. See
//! `DESIGN.md` §10 and §15 for the rule catalog, waiver policy, item-graph
//! design and cache-invalidation policy.

pub mod allowlist;
pub mod cache;
pub mod diag;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod rules;
pub mod units;
pub mod workspace;

use diag::Diagnostic;
use std::path::{Path, PathBuf};
use workspace::{SourceFile, Workspace};

/// Name of the waiver file at the workspace root.
pub const ALLOWLIST_FILE: &str = "lint-allow.txt";

/// Default location of the warm-scan cache, relative to the root.
pub const CACHE_FILE: &str = "target/lint-cache.json";

/// Outcome of a full workspace scan.
pub struct LintReport {
    /// Findings that fail the gate (allowlist problems included).
    pub findings: Vec<Diagnostic>,
    /// Findings silenced by a justified waiver (informational).
    pub waived: Vec<Diagnostic>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Files restored from the warm cache (fingerprint hit).
    pub cache_hits: usize,
    /// Files lexed + parsed this run (fingerprint miss or cache off).
    pub cache_misses: usize,
}

/// Knobs for [`run_with`]. `Default` is the library/test configuration:
/// no cache (hermetic), all rules, one thread per available core.
#[derive(Default)]
pub struct RunOptions {
    /// Rule ids to suppress entirely (the CLI's `--allow`).
    pub allow: Vec<String>,
    /// Load/store `target/lint-cache.json` (the CLI default; off for
    /// library callers so tests stay hermetic).
    pub use_cache: bool,
    /// Override the cache location (defaults to [`CACHE_FILE`] under the
    /// root).
    pub cache_path: Option<PathBuf>,
    /// Worker threads for the parse/scan phase; `0` means one per core.
    pub threads: usize,
}

/// In-memory result of the scan phase (parse + per-file rules + graph
/// rules), before waivers. This is the unit the benches time: hand it a
/// warm [`cache::Cache`] and it skips every unchanged file's lex/parse.
pub struct ScanOutcome {
    /// All raw findings, unsorted and unwaived.
    pub diags: Vec<Diagnostic>,
    /// The refreshed cache (an entry for every scanned file).
    pub cache: cache::Cache,
    /// Files restored from `old` without re-parsing.
    pub hits: usize,
    /// Files parsed from source.
    pub misses: usize,
    /// Files scanned in total.
    pub files: usize,
}

/// Scan in-memory sources: restore unchanged files from `old`, lex/parse
/// the rest in parallel on `threads` workers (0 = one per core), run the
/// per-file rules on parsed files and the graph rules on everything.
pub fn scan(
    sources: &[(String, String)],
    ci_yml: Option<String>,
    old: &cache::Cache,
    threads: usize,
) -> ScanOutcome {
    let threads = if threads == 0 {
        tetris_experiments::pool::default_threads()
    } else {
        threads
    };
    let frules = rules::file_rules();
    let scanned: Vec<(SourceFile, Vec<Diagnostic>, u64, bool)> =
        tetris_experiments::pool::parallel_map(sources, threads, |(rel, src)| {
            let fp = cache::fingerprint(src);
            match old.lookup(rel, fp) {
                Some(entry) => (
                    SourceFile::restored(rel, src.clone(), entry.facts.clone()),
                    entry.diags.clone(),
                    fp,
                    true,
                ),
                None => {
                    let file = SourceFile::new(rel, src.clone());
                    let diags = frules.iter().flat_map(|r| r.check_file(&file)).collect();
                    (file, diags, fp, false)
                }
            }
        });
    let mut files = Vec::with_capacity(scanned.len());
    let mut diags = Vec::new();
    let mut fresh = cache::Cache::empty();
    let (mut hits, mut misses) = (0usize, 0usize);
    for (file, file_diags, fp, hit) in scanned {
        if hit {
            hits += 1;
        } else {
            misses += 1;
        }
        fresh.insert(
            file.path.clone(),
            cache::CacheEntry {
                fp,
                facts: file.facts.clone(),
                diags: file_diags.clone(),
            },
        );
        diags.extend(file_diags);
        files.push(file);
    }
    let ws = Workspace {
        root: PathBuf::new(),
        files,
        ci_yml,
    };
    for rule in rules::graph_rules() {
        diags.extend(rule.check(&ws));
    }
    ScanOutcome {
        diags,
        cache: fresh,
        hits,
        misses,
        files: ws.files.len(),
    }
}

/// Lint the workspace rooted at `root` with explicit options.
pub fn run_with(root: &Path, opts: &RunOptions) -> std::io::Result<LintReport> {
    let mut sources = Vec::new();
    for (rel, abs) in workspace::source_paths(root)? {
        sources.push((rel, std::fs::read_to_string(&abs)?));
    }
    let ci_yml = std::fs::read_to_string(root.join(".github/workflows/ci.yml")).ok();
    let cache_file = opts
        .cache_path
        .clone()
        .unwrap_or_else(|| root.join(CACHE_FILE));
    let old = if opts.use_cache {
        cache::Cache::load(&cache_file)
    } else {
        cache::Cache::empty()
    };
    let outcome = scan(&sources, ci_yml, &old, opts.threads);
    if opts.use_cache {
        // Best-effort: a read-only checkout still lints fine, just cold.
        let _ = outcome.cache.save(&cache_file);
    }
    let mut diags = outcome.diags;
    diags.retain(|d| !opts.allow.iter().any(|a| a == d.rule));
    let allowlist_text = std::fs::read_to_string(root.join(ALLOWLIST_FILE)).unwrap_or_default();
    let al = allowlist::Allowlist::parse(ALLOWLIST_FILE, &allowlist_text);
    let (mut findings, waived) = al.apply(diags);
    findings.extend(al.problems);
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    Ok(LintReport {
        findings,
        waived,
        files_scanned: outcome.files,
        cache_hits: outcome.hits,
        cache_misses: outcome.misses,
    })
}

/// Lint the workspace rooted at `root` hermetically (no cache). `allow`
/// suppresses whole rules by id.
pub fn run(root: &Path, allow: &[String]) -> std::io::Result<LintReport> {
    run_with(
        root,
        &RunOptions {
            allow: allow.to_vec(),
            ..RunOptions::default()
        },
    )
}
