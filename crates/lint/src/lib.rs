//! `pcm-lint` — zero-dependency static analysis for the Tetris-Write
//! workspace.
//!
//! The simulator's headline guarantees (bit-for-bit Eq. 5 service times,
//! 1-rank sharded ≡ unsharded, thread-count-independent results) rest on
//! source-level invariants no test asserts: no wall-clock in sim logic, no
//! unordered-container iteration on deterministic paths, timing constants
//! only via `pcm_types` newtypes. This crate machine-checks them: a small
//! comment/string-aware Rust lexer ([`lexer`]) feeds a rule catalog
//! ([`rules`]) producing span-accurate diagnostics ([`diag`]), filtered
//! through a justification-carrying waiver file ([`allowlist`]).
//!
//! Run it as `cargo run -p pcm-lint -- --workspace`; the `static-analysis`
//! CI job gates on a clean exit. See `DESIGN.md` §10 for the rule catalog
//! and waiver policy.

pub mod allowlist;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod workspace;

use diag::Diagnostic;
use std::path::Path;

/// Name of the waiver file at the workspace root.
pub const ALLOWLIST_FILE: &str = "lint-allow.txt";

/// Outcome of a full workspace scan.
pub struct LintReport {
    /// Findings that fail the gate (allowlist problems included).
    pub findings: Vec<Diagnostic>,
    /// Findings silenced by a justified waiver (informational).
    pub waived: Vec<Diagnostic>,
    /// Files scanned.
    pub files_scanned: usize,
}

/// Lint the workspace rooted at `root`. `allow` suppresses whole rules by
/// id (the CLI's `--allow`, for local iteration; CI passes none).
pub fn run(root: &Path, allow: &[String]) -> std::io::Result<LintReport> {
    let ws = workspace::load(root)?;
    let mut diags: Vec<Diagnostic> = Vec::new();
    for rule in rules::all_rules() {
        if allow.iter().any(|a| a == rule.id()) {
            continue;
        }
        diags.extend(rule.check(&ws));
    }
    let allowlist_text = std::fs::read_to_string(root.join(ALLOWLIST_FILE)).unwrap_or_default();
    let al = allowlist::Allowlist::parse(ALLOWLIST_FILE, &allowlist_text);
    let (mut findings, waived) = al.apply(diags);
    findings.extend(al.problems);
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    Ok(LintReport {
        findings,
        waived,
        files_scanned: ws.files.len(),
    })
}
