//! `dead-config-knob`: a config field nobody reads is a lie in the
//! experiment matrix.
//!
//! The config structs (`SystemConfig`, `SchemeConfig`, `WriteCacheConfig`)
//! are the sweep surface: every field is a knob the experiment runner may
//! vary, and readers of a results table assume each knob *did something*.
//! A field that is written by the builder, validated, serialized — and
//! then never read by the model — silently produces identical rows for
//! every setting. That is worse than a missing feature: it is a published
//! number with a false caption.
//!
//! Mechanics: for each field of the target structs, count `.field` read
//! accesses across the whole workspace (facts layer, so cache-restored
//! files participate). Accesses inside builder impls (`self_ty`
//! containing `Builder`), inside `validate` functions, and inside tests
//! don't count — those surfaces touch every field by construction.
//! Matching is name-based: a same-named field on an unrelated struct
//! counts as a read, which can *hide* a dead knob but never flags a live
//! one.

use super::Rule;
use crate::diag::Diagnostic;
use crate::graph::ItemGraph;
use crate::items::ItemKind;
use crate::workspace::{SourceFile, Workspace};

/// The sweep-surface structs whose fields must all be live.
const TARGETS: &[&str] = &["SystemConfig", "SchemeConfig", "WriteCacheConfig"];

/// See module docs.
pub struct DeadConfigKnob;

/// Is the access at `lo` inside a builder impl or a `validate` fn?
fn in_plumbing(file: &SourceFile, lo: usize) -> bool {
    file.facts.items.iter().any(|it| {
        lo >= it.lo
            && lo < it.hi
            && matches!(it.kind, ItemKind::Fn | ItemKind::Impl)
            && (it.self_ty.contains("Builder")
                || it.name == "validate"
                || it.name.contains("Builder"))
    })
}

impl Rule for DeadConfigKnob {
    fn id(&self) -> &'static str {
        "dead-config-knob"
    }

    fn describe(&self) -> &'static str {
        "config-struct fields must be read somewhere outside their builder/validate plumbing"
    }

    fn check(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let g = ItemGraph::build(ws);
        let mut out = Vec::new();
        for target in TARGETS {
            let Some(decls) = g.structs.get(target) else {
                continue;
            };
            for decl in decls {
                if decl.item.in_test || !decl.file.path.contains("/src/") {
                    continue;
                }
                for field in &decl.item.fields {
                    let read = ws.files.iter().any(|file| {
                        file.facts.field_accesses.iter().any(|a| {
                            a.name == field.name
                                && !a.write
                                && !a.in_test
                                && !in_plumbing(file, a.lo)
                        })
                    });
                    if !read {
                        out.push(decl.file.diag(
                            self.id(),
                            field.lo,
                            field.name.len(),
                            format!(
                                "`{}::{}` is never read outside its builder/validate \
                                 plumbing — a dead config knob publishes identical \
                                 results for every setting; wire it into the model or \
                                 delete it",
                                target, field.name,
                            ),
                        ));
                    }
                }
            }
        }
        out
    }
}
