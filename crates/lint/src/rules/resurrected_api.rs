//! `no-resurrected-apis`: constructors removed by the builder-API
//! migrations must not quietly come back.
//!
//! PR 3 removed the `SystemConfig::small_test` / `RunConfig::quick`
//! deprecation shims; PR 4 replaced `System::new` with the validating
//! `System::build`. Each removal was a one-way door: the replacements
//! validate configuration the old paths did not. A merge-conflict
//! resolution or an LLM-assisted edit that re-introduces a call (or a
//! fresh definition) re-opens the unvalidated path for every caller that
//! follows. The rule bans the path expressions outright — in tests and
//! examples too, since those are exactly where copy-paste resurrection
//! starts.

use super::{FileRule, SigView};
use crate::diag::Diagnostic;
use crate::workspace::SourceFile;

/// Banned `Type::method` paths and what to use instead.
const BANNED: &[(&str, &str, &str)] = &[
    (
        "System",
        "new",
        "System::build(SystemConfig) — validates before constructing",
    ),
    (
        "SystemConfig",
        "small_test",
        "SystemConfig::builder().small_caches().build()",
    ),
    ("RunConfig", "quick", "RunConfig::builder().quick().build()"),
];

/// See module docs.
pub struct NoResurrectedApis;

impl FileRule for NoResurrectedApis {
    fn id(&self) -> &'static str {
        "no-resurrected-apis"
    }

    fn describe(&self) -> &'static str {
        "removed constructors (System::new, SystemConfig::small_test, RunConfig::quick) stay removed"
    }

    fn check_file(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        if file.crate_name == "lint" {
            return out; // this file spells the banned names in its tables
        }
        {
            let v = SigView::new(file);
            for i in 0..v.len() {
                for (ty, method, instead) in BANNED {
                    if v.text(i) == *ty && v.matches(i + 1, &[":", ":", method]) {
                        let lo = v.tok(i).lo;
                        let hi = v.tok(i + 3).hi;
                        out.push(file.diag(
                            self.id(),
                            lo,
                            hi - lo,
                            format!(
                                "`{ty}::{method}` was removed by the builder-API migration; \
                                 use {instead}"
                            ),
                        ));
                    }
                }
            }
        }
        out
    }
}
