//! `no-wall-clock`: simulator logic must never read the host clock.
//!
//! Simulation time is [`pcm_types::Ps`], advanced by the event engine; a
//! wall-clock read anywhere in a deterministic crate makes results depend
//! on host speed and destroys the bit-for-bit reproducibility the paper
//! comparison rests on (Eq. 5 service times, 1-rank shard equivalence,
//! thread-count independence). `Instant`/`SystemTime` are legitimate only
//! for *reporting* how long the simulation took — the runner's throughput
//! display and the bench harness — which is why those two files carry
//! justified waivers rather than exemptions baked into the rule.

use super::{FileRule, SigView};
use crate::diag::Diagnostic;
use crate::workspace::SourceFile;

/// See module docs.
pub struct NoWallClock;

impl FileRule for NoWallClock {
    fn id(&self) -> &'static str {
        "no-wall-clock"
    }

    fn describe(&self) -> &'static str {
        "Instant/SystemTime reads are forbidden outside the runner's timing display and bench"
    }

    fn check_file(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let v = SigView::new(file);
        for i in 0..v.len() {
            if v.kind(i) != crate::lexer::TokKind::Ident {
                continue;
            }
            let name = v.text(i);
            if name != "Instant" && name != "SystemTime" {
                continue;
            }
            if v.in_test(i) {
                continue;
            }
            let t = v.tok(i);
            out.push(file.diag(
                self.id(),
                t.lo,
                t.hi - t.lo,
                format!(
                    "`{name}` reads the wall clock; simulation logic must use `Ps` event \
                     time. If this is pure reporting, add a justified waiver to \
                     lint-allow.txt"
                ),
            ));
        }
        out
    }
}
