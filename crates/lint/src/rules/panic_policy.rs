//! `panic-policy`: library crates must not panic on fallible paths.
//!
//! `unwrap()` in library code turns a recoverable condition into an abort
//! with no context; `expect()` is acceptable only as an *invariant
//! assertion* — a condition the surrounding code has just established — and
//! every such use must be recorded in the allowlist with a justification
//! naming the invariant. `#[cfg(test)]` code is exempt (a panicking test is
//! a failing test, which is the desired behaviour).
//!
//! The matcher looks for `.unwrap()` and `.expect("…")` method-call shapes.
//! Requiring a string-literal argument for `expect` keeps the rule from
//! firing on unrelated methods that happen to share the name (e.g. the
//! JSON parser's `expect(b'{')` byte-matcher).

use super::{FileRule, SigView};
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::workspace::{SourceFile, LIBRARY_CRATES};

/// See module docs.
pub struct PanicPolicy;

impl FileRule for PanicPolicy {
    fn id(&self) -> &'static str {
        "panic-policy"
    }

    fn describe(&self) -> &'static str {
        "unwrap()/expect() in library crates outside #[cfg(test)] need typed errors or a waiver"
    }

    fn check_file(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        if !LIBRARY_CRATES.contains(&file.crate_name.as_str()) || !file.path.contains("/src/") {
            return out;
        }
        {
            let v = SigView::new(file);
            for i in 0..v.len() {
                if v.text(i) != "." || i + 2 >= v.len() {
                    continue;
                }
                let method = v.text(i + 1);
                let flagged = match method {
                    "unwrap" => v.matches(i + 2, &["(", ")"]),
                    "expect" => {
                        v.text(i + 2) == "(" && i + 3 < v.len() && v.kind(i + 3) == TokKind::StrLit
                    }
                    _ => false,
                };
                if !flagged || v.in_test(i) {
                    continue;
                }
                let lo = v.tok(i).lo;
                let hi = v.tok(i + 1).hi;
                out.push(file.diag(
                    self.id(),
                    lo,
                    hi - lo,
                    format!(
                        "`.{method}(…)` in library crate `{}`: return a typed error \
                         (`PcmError`), or keep it as an invariant assertion and record the \
                         invariant in lint-allow.txt",
                        file.crate_name
                    ),
                ));
            }
        }
        out
    }
}
