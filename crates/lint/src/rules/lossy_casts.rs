//! `no-lossy-cycle-casts`: narrowing `as` casts on cycle/latency-typed
//! values.
//!
//! Simulated time is `u64` picoseconds ([`pcm_types::Ps`]); long runs
//! overflow `u32` after ~4.3 ms of simulated time, and `as` truncates
//! silently. The rule flags `<expr> as u8/u16/u32/i32/usize` when the
//! expression's postfix subject is recognizably time-valued: a call to
//! `as_ps()`/`as_ns()`/`as_cycles()` or an identifier whose name says time
//! (`*_ps`, `*_cycles`, `latency`, `service_time`, `runtime`, `span`,
//! `until`, `busy`). Use `u64` arithmetic, `Ps` helpers, or an explicit
//! `u32::try_from` whose failure path is handled.

use super::{postfix_subject, FileRule, SigView};
use crate::diag::Diagnostic;
use crate::workspace::{SourceFile, DETERMINISTIC_CRATES};

/// Narrow targets worth flagging (`as u64`/`f64` are not lossy for Ps).
const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "usize"];

/// Time-suggesting method / identifier names.
fn is_timey(name: &str) -> bool {
    name.ends_with("_ps")
        || name.ends_with("_ns")
        || name.ends_with("_cycles")
        || matches!(
            name,
            "as_ps"
                | "as_ns"
                | "as_cycles"
                | "cycles"
                | "cycle"
                | "latency"
                | "service_time"
                | "runtime"
                | "span"
                | "until"
                | "busy"
        )
}

/// See module docs.
pub struct NoLossyCycleCasts;

impl FileRule for NoLossyCycleCasts {
    fn id(&self) -> &'static str {
        "no-lossy-cycle-casts"
    }

    fn describe(&self) -> &'static str {
        "narrowing `as` casts on cycle/latency-typed expressions truncate silently"
    }

    fn check_file(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        if !DETERMINISTIC_CRATES.contains(&file.crate_name.as_str()) || !file.path.contains("/src/")
        {
            return out;
        }
        {
            let v = SigView::new(file);
            for i in 0..v.len() {
                if v.text(i) != "as" || i + 1 >= v.len() || !NARROW.contains(&v.text(i + 1)) {
                    continue;
                }
                if v.in_test(i) {
                    continue;
                }
                let Some(subj) = postfix_subject(&v, i) else {
                    continue;
                };
                let name = v.text(subj);
                if !is_timey(name) {
                    continue;
                }
                let lo = v.tok(i).lo;
                let hi = v.tok(i + 1).hi;
                out.push(file.diag(
                    self.id(),
                    lo,
                    hi - lo,
                    format!(
                        "`{name} as {}` truncates a time-valued quantity after ~4.3 ms of \
                         simulated time; keep u64 / `Ps`, or use `{}::try_from` and handle \
                         the overflow",
                        v.text(i + 1),
                        v.text(i + 1),
                    ),
                ));
            }
        }
        out
    }
}
