//! `ci-phase-parity`: every CLI subcommand wired into `tetris-experiments`
//! must be exercised by the CI workflow.
//!
//! The experiment binary is the repo's acceptance surface — `report`,
//! `sched-ablation` and friends are how regressions are *demonstrated*.
//! A subcommand that CI never runs rots invisibly (flag parsing drifts,
//! output formats break) until someone needs it mid-investigation. The
//! rule extracts the `Some("…") =>` dispatch arms from the binary's
//! top-level match and requires each subcommand name to appear as a
//! whitespace-delimited word in `.github/workflows/ci.yml`.

use super::{Rule, SigView};
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::workspace::Workspace;

const BIN_FILE: &str = "crates/experiments/src/bin/tetris-experiments.rs";

/// Extract `(subcommand, byte-offset)` pairs from `Some("name") =>` arms.
pub fn subcommands(ws: &Workspace) -> Vec<(String, usize)> {
    let Some(file) = ws.file(BIN_FILE) else {
        return Vec::new();
    };
    let v = SigView::new(file);
    let mut out = Vec::new();
    for i in 0..v.len() {
        if v.text(i) == "Some"
            && v.matches(i + 1, &["("])
            && i + 2 < v.len()
            && v.kind(i + 2) == TokKind::StrLit
            && v.matches(i + 3, &[")", "=", ">"])
        {
            let lit = v.text(i + 2);
            let name = lit.trim_matches('"').to_string();
            if !name.is_empty() {
                out.push((name, v.tok(i + 2).lo));
            }
        }
    }
    out
}

/// See module docs.
pub struct CiPhaseParity;

impl Rule for CiPhaseParity {
    fn id(&self) -> &'static str {
        "ci-phase-parity"
    }

    fn describe(&self) -> &'static str {
        "every tetris-experiments subcommand must be exercised in ci.yml"
    }

    fn check(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let cmds = subcommands(ws);
        if cmds.is_empty() {
            return Vec::new();
        }
        let Some(ci) = &ws.ci_yml else {
            return Vec::new();
        };
        let Some(file) = ws.file(BIN_FILE) else {
            return Vec::new();
        };
        // Word-exact matching so `--trace` / `sched-traces` don't satisfy
        // the `trace` subcommand.
        let words: std::collections::BTreeSet<&str> = ci.split_whitespace().collect();
        let mut out = Vec::new();
        for (name, lo) in cmds {
            if !words.contains(name.as_str()) {
                out.push(file.diag(
                    self.id(),
                    lo,
                    name.len() + 2,
                    format!(
                        "subcommand `{name}` is wired in tetris-experiments but never run \
                         in .github/workflows/ci.yml — add a smoke step so it cannot rot"
                    ),
                ));
            }
        }
        out
    }
}
