//! `ci-phase-parity`: every CLI subcommand wired into `tetris-experiments`
//! must be exercised by the CI workflow.
//!
//! The experiment binary is the repo's acceptance surface — `report`,
//! `sched-ablation` and friends are how regressions are *demonstrated*.
//! A subcommand that CI never runs rots invisibly (flag parsing drifts,
//! output formats break) until someone needs it mid-investigation. The
//! rule reads the `Some("…") =>` dispatch arms the item parser records in
//! [`crate::items::FileFacts::subcommand_arms`] and requires each
//! subcommand name to appear as a whitespace-delimited word in
//! `.github/workflows/ci.yml`. Working from facts (not tokens) keeps the
//! rule valid on cache-restored files, which carry no token stream.

use super::Rule;
use crate::diag::Diagnostic;
use crate::workspace::Workspace;

const BIN_FILE: &str = "crates/experiments/src/bin/tetris-experiments.rs";

/// Extract `(subcommand, byte-offset)` pairs from `Some("name") =>` arms.
pub fn subcommands(ws: &Workspace) -> Vec<(String, usize)> {
    let Some(file) = ws.file(BIN_FILE) else {
        return Vec::new();
    };
    file.facts
        .subcommand_arms
        .iter()
        .filter(|arm| !arm.text.is_empty())
        .map(|arm| (arm.text.clone(), arm.lo))
        .collect()
}

/// See module docs.
pub struct CiPhaseParity;

impl Rule for CiPhaseParity {
    fn id(&self) -> &'static str {
        "ci-phase-parity"
    }

    fn describe(&self) -> &'static str {
        "every tetris-experiments subcommand must be exercised in ci.yml"
    }

    fn check(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let cmds = subcommands(ws);
        if cmds.is_empty() {
            return Vec::new();
        }
        let Some(ci) = &ws.ci_yml else {
            return Vec::new();
        };
        let Some(file) = ws.file(BIN_FILE) else {
            return Vec::new();
        };
        // Word-exact matching so `--trace` / `sched-traces` don't satisfy
        // the `trace` subcommand.
        let words: std::collections::BTreeSet<&str> = ci.split_whitespace().collect();
        let mut out = Vec::new();
        for (name, lo) in cmds {
            if !words.contains(name.as_str()) {
                out.push(file.diag(
                    self.id(),
                    lo,
                    name.len() + 2,
                    format!(
                        "subcommand `{name}` is wired in tetris-experiments but never run \
                         in .github/workflows/ci.yml — add a smoke step so it cannot rot"
                    ),
                ));
            }
        }
        out
    }
}
