//! `typed-units`: the paper's timing/current constants must come from
//! `pcm_types` newtypes, not be re-typed as raw literals.
//!
//! The Table II numbers — READ 50 ns, RESET 53 ns, SET 430 ns — and their
//! picosecond forms are load-bearing: every scheme's service-time model and
//! the K = ⌊Tset/Treset⌋ sub-slot division derive from them. A raw `430`
//! in scheme or simulator code silently forks the configuration: change
//! `PcmTimings` and the fork keeps the old value. Outside `pcm-types`
//! (where the constants are *defined*) and test code (where literal
//! expected values are the point), these numbers must be spelled
//! `cfg.timing.t_set` etc.

use super::{FileRule, SigView};
use crate::diag::Diagnostic;
use crate::lexer::{num_value, TokKind};
use crate::workspace::{SourceFile, DETERMINISTIC_CRATES};

/// The magic values, in both ns and ps spellings.
const MAGIC: &[(f64, &str)] = &[
    (50.0, "t_read (50 ns)"),
    (53.0, "t_reset (53 ns)"),
    (430.0, "t_set (430 ns)"),
    (50_000.0, "t_read in ps"),
    (53_000.0, "t_reset in ps"),
    (430_000.0, "t_set in ps"),
];

/// See module docs.
pub struct TypedUnits;

impl FileRule for TypedUnits {
    fn id(&self) -> &'static str {
        "typed-units"
    }

    fn describe(&self) -> &'static str {
        "raw PCM timing literals (50/53/430 ns) outside pcm-types must use PcmTimings"
    }

    fn check_file(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        if !DETERMINISTIC_CRATES.contains(&file.crate_name.as_str())
            || file.crate_name == "pcm-types"
            || !file.path.contains("/src/")
        {
            return out;
        }
        {
            let v = SigView::new(file);
            for i in 0..v.len() {
                if v.kind(i) != TokKind::NumLit || v.in_test(i) {
                    continue;
                }
                let Some(val) = num_value(v.text(i)) else {
                    continue;
                };
                let Some((_, what)) = MAGIC.iter().find(|(m, _)| *m == val) else {
                    continue;
                };
                let t = v.tok(i);
                out.push(file.diag(
                    self.id(),
                    t.lo,
                    t.hi - t.lo,
                    format!(
                        "raw PCM timing literal `{}` ({what}): use the `PcmTimings` \
                         constants so a config change cannot fork the model",
                        v.text(i)
                    ),
                ));
            }
        }
        out
    }
}
