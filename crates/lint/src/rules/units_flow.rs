//! `units-flow`: ns-born values must not flow into cycles-typed slots (and
//! vice versa), across call and assignment boundaries.
//!
//! The paper's model lives in two clocks: wall-time nanoseconds (the Table
//! II device timings, `PcmTimings` fields) and memory-controller cycles
//! (the scheduler's slot arithmetic). `typed-units` pins the *literals*;
//! this rule tracks the *flow*. A value born from a `*_ns` field or a
//! `PcmTimings` accessor that lands in a parameter, binding, or struct
//! field whose name/type says cycles is a unit error the type system
//! cannot see (both sides are `u64`), and it scales every service time by
//! the clock ratio — exactly the class of bug that shifted Fig. 9 curves
//! without failing a single test.
//!
//! Mechanics, using the [`ItemGraph`]: each function body's recorded call
//! sites, `let` bindings, and field assignments carry a [`UnitClass`] for
//! their right-hand side (classified from converter calls like `as_ns()` /
//! `cycles_at()` and `_ns`/`_cycles` name suffixes, last conversion wins).
//! Sinks are classified from the declared parameter/field name and type.
//! Name-based call resolution is ambiguous, so a call argument is only
//! checked when **every** same-named candidate function agrees the slot is
//! non-neutral and same-classed — zero false positives from overloading at
//! the cost of missing some true positives. `Ps`-typed slots are neutral
//! ground: the canonical unit is exempt by design.

use super::Rule;
use crate::diag::Diagnostic;
use crate::graph::ItemGraph;
use crate::items::{Item, ItemKind};
use crate::units::{classify_name, classify_slot, UnitClass};
use crate::workspace::{Workspace, DETERMINISTIC_CRATES};
use std::collections::BTreeMap;

/// Human name for a class (diagnostics only; `Neutral` never prints).
fn unit(c: UnitClass) -> &'static str {
    match c {
        UnitClass::Ns => "nanoseconds",
        UnitClass::Cycles => "cycles",
        UnitClass::Neutral => "unit-neutral",
    }
}

/// See module docs.
pub struct UnitsFlow;

impl UnitsFlow {
    /// The agreed class of argument slot `idx` of `callee`, when every
    /// same-named candidate aligns and agrees it is non-neutral. Returns
    /// the class and the parameter name of one witness.
    fn sink_slot<'a>(
        g: &ItemGraph<'a>,
        callee: &str,
        n_args: usize,
        idx: usize,
    ) -> Option<(UnitClass, &'a str)> {
        let candidates = g.fns.get(callee)?;
        let mut agreed: Option<(UnitClass, &str)> = None;
        let mut aligned = 0usize;
        for c in candidates {
            let params = &c.item.params;
            // Method calls drop the receiver; free calls don't. Align on
            // whichever arity matches.
            let slots: &[crate::items::Param] = if params.len() == n_args {
                params
            } else if params.len() == n_args + 1 && params.first().is_some_and(|p| p.name == "self")
            {
                &params[1..]
            } else {
                continue; // this candidate cannot be the callee
            };
            let p = &slots[idx];
            let class = classify_slot(&p.name, &p.ty);
            if class == UnitClass::Neutral {
                return None;
            }
            match agreed {
                None => agreed = Some((class, &p.name)),
                Some((prev, _)) if prev != class => return None,
                Some(_) => {}
            }
            aligned += 1;
        }
        (aligned > 0).then_some(agreed).flatten()
    }

    /// The class of a struct field named `field`, when every declaration
    /// agrees; falls back to the name suffix when no declaration is known.
    fn sink_field(g: &ItemGraph<'_>, field: &str) -> UnitClass {
        match g.fields.get(field) {
            Some(decls) => {
                let mut agreed = None;
                for d in decls {
                    let class = classify_slot(&d.field.name, &d.field.ty);
                    match agreed {
                        None => agreed = Some(class),
                        Some(prev) if prev != class => return UnitClass::Neutral,
                        Some(_) => {}
                    }
                }
                agreed.unwrap_or(UnitClass::Neutral)
            }
            None => classify_name(field),
        }
    }

    /// Check one function body against the graph.
    fn check_fn(
        &self,
        g: &ItemGraph<'_>,
        file: &crate::workspace::SourceFile,
        item: &Item,
        out: &mut Vec<Diagnostic>,
    ) {
        // Local value classes: parameters first, `let`s shadow them.
        let mut locals: BTreeMap<&str, UnitClass> = BTreeMap::new();
        for p in &item.params {
            if p.name != "self" && !p.name.is_empty() {
                locals.insert(&p.name, classify_slot(&p.name, &p.ty));
            }
        }
        for b in &item.lets {
            let declared = classify_name(&b.name);
            if declared != UnitClass::Neutral
                && b.class != UnitClass::Neutral
                && declared != b.class
            {
                out.push(file.diag(
                    self.id(),
                    b.lo,
                    b.name.len(),
                    format!(
                        "`let {}` is named in {} but initialized from a {}-classified \
                         expression — convert explicitly (PcmTimings::cycles_at / as_ns) \
                         or rename the binding",
                        b.name,
                        unit(declared),
                        unit(b.class),
                    ),
                ));
            }
            // The binding's flow class: trust the initializer when it is
            // classified, else the declared name.
            let class = if b.class != UnitClass::Neutral {
                b.class
            } else {
                declared
            };
            locals.insert(&b.name, class);
        }

        for call in &item.calls {
            for (idx, arg) in call.args.iter().enumerate() {
                let Some((sink, pname)) = Self::sink_slot(g, &call.callee, call.args.len(), idx)
                else {
                    continue;
                };
                let src = if arg.class != UnitClass::Neutral {
                    arg.class
                } else if !arg.ident.is_empty() {
                    locals
                        .get(arg.ident.as_str())
                        .copied()
                        .unwrap_or(UnitClass::Neutral)
                } else {
                    UnitClass::Neutral
                };
                if src != UnitClass::Neutral && src != sink {
                    out.push(file.diag(
                        self.id(),
                        arg.lo,
                        arg.len.max(1),
                        format!(
                            "argument carries {} but parameter `{pname}` of `{}` expects \
                             {} — a ns/cycles mixup crossing the call boundary scales \
                             every derived service time; convert with PcmTimings",
                            unit(src),
                            call.callee,
                            unit(sink),
                        ),
                    ));
                }
            }
        }

        for a in &item.assigns {
            let sink = Self::sink_field(g, &a.field);
            if sink != UnitClass::Neutral && a.class != UnitClass::Neutral && sink != a.class {
                out.push(file.diag(
                    self.id(),
                    a.lo,
                    a.len.max(1),
                    format!(
                        "field `{}` holds {} but is assigned a {}-classified value — \
                         a ns/cycles mixup stored in state poisons every later read; \
                         convert with PcmTimings",
                        a.field,
                        unit(sink),
                        unit(a.class),
                    ),
                ));
            }
        }
    }
}

impl Rule for UnitsFlow {
    fn id(&self) -> &'static str {
        "units-flow"
    }

    fn describe(&self) -> &'static str {
        "ns-born values must not flow into cycles-typed parameters/fields, or vice versa"
    }

    fn check(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let g = ItemGraph::build(ws);
        let mut out = Vec::new();
        for file in &ws.files {
            if !DETERMINISTIC_CRATES.contains(&file.crate_name.as_str())
                || !file.path.contains("/src/")
            {
                continue;
            }
            for item in file.facts.of_kind(ItemKind::Fn) {
                if item.in_test {
                    continue;
                }
                self.check_fn(&g, file, item, &mut out);
            }
        }
        out
    }
}
