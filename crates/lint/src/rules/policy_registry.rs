//! `policy-registry-parity`: the `PolicySelect` registry surfaces must
//! stay in lockstep.
//!
//! The replacement-policy registry in `crates/memsim/src/replacement.rs`
//! mirrors the write-scheme registry: a policy is "registered" when the
//! `PolicySelect::ALL` array (what cache sweeps and registry-driven
//! propchecks cover), the `tag()` map (what CLI/JSON call it), the
//! `instantiate()` factory (what every cache actually builds), and the
//! `FromStr` parser (what tags parse back) all agree. As with schemes,
//! only `tag()` and `instantiate()` are compiler-enforced exhaustive
//! matches; `ALL` and `FromStr` are plain data that silently go stale
//! when a variant is added — a policy missing from `ALL` never appears
//! in a `cache-sweep` cell or an eviction propcheck, and a canonical tag
//! that doesn't parse breaks the `Display → FromStr` round-trip that
//! `--policy` relies on. Same checks as `scheme-registry-parity`,
//! pointed at the policy registry.

use super::{Rule, SigView};
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::workspace::Workspace;

const REGISTRY_FILE: &str = "crates/memsim/src/replacement.rs";

/// Extract `(variant-name, byte-offset)` pairs from `enum PolicySelect`.
fn variants(v: &SigView<'_>) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 2 < v.len() {
        if v.text(i) == "enum" && v.text(i + 1) == "PolicySelect" && v.text(i + 2) == "{" {
            let mut depth = 1i32;
            let mut j = i + 3;
            while j < v.len() && depth > 0 {
                match v.text(j) {
                    "{" => depth += 1,
                    "}" => depth -= 1,
                    "(" => depth += 1,
                    ")" => depth -= 1,
                    "#" if depth == 1 && v.matches(j + 1, &["["]) => {
                        // Skip `#[default]`-style attributes.
                        let mut d = 0i32;
                        j += 1;
                        while j < v.len() {
                            match v.text(j) {
                                "[" => d += 1,
                                "]" => {
                                    d -= 1;
                                    if d == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            j += 1;
                        }
                    }
                    _ => {
                        if depth == 1
                            && v.kind(j) == TokKind::Ident
                            && j + 1 < v.len()
                            && matches!(v.text(j + 1), "," | "}")
                        {
                            out.push((v.text(j).to_string(), v.tok(j).lo));
                        }
                    }
                }
                j += 1;
            }
            break;
        }
        i += 1;
    }
    out
}

/// Significant-token range `(open-brace, close-brace)` of the body of the
/// first `fn <name>` in the file.
fn fn_body(v: &SigView<'_>, name: &str) -> Option<(usize, usize)> {
    let mut i = 0;
    while i + 1 < v.len() {
        if v.text(i) == "fn" && v.text(i + 1) == name {
            let mut j = i + 2;
            while j < v.len() && v.text(j) != "{" {
                j += 1;
            }
            let start = j;
            let mut depth = 0i32;
            while j < v.len() {
                match v.text(j) {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            return Some((start, j));
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            return None;
        }
        i += 1;
    }
    None
}

/// Variant names referenced as `PolicySelect::<Name>` within `[lo, hi]`.
fn referenced_variants(
    v: &SigView<'_>,
    lo: usize,
    hi: usize,
) -> std::collections::BTreeSet<String> {
    let mut out = std::collections::BTreeSet::new();
    for i in lo..hi.min(v.len()) {
        if v.text(i) == "PolicySelect"
            && v.matches(i + 1, &[":", ":"])
            && i + 3 < v.len()
            && v.kind(i + 3) == TokKind::Ident
        {
            out.insert(v.text(i + 3).to_string());
        }
    }
    out
}

/// String literals (quotes stripped) within `[lo, hi]`.
fn string_literals(v: &SigView<'_>, lo: usize, hi: usize) -> std::collections::BTreeSet<String> {
    let mut out = std::collections::BTreeSet::new();
    for i in lo..hi.min(v.len()) {
        if v.kind(i) == TokKind::StrLit {
            out.insert(v.text(i).trim_matches('"').to_string());
        }
    }
    out
}

/// See module docs.
pub struct PolicyRegistryParity;

impl Rule for PolicyRegistryParity {
    fn id(&self) -> &'static str {
        "policy-registry-parity"
    }

    fn describe(&self) -> &'static str {
        "PolicySelect's ALL array, tag(), instantiate() and FromStr must cover every variant"
    }

    fn check(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let Some(file) = ws.file(REGISTRY_FILE) else {
            // Nothing to check (e.g. linting a partial tree).
            return Vec::new();
        };
        let v = SigView::new(file);
        let variants = variants(&v);
        if variants.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();

        // (a) `ALL: [PolicySelect; N]` — the length literal must equal the
        // variant count; (b) every variant must appear in the initializer.
        let mut all_found = false;
        for i in 0..v.len() {
            if v.text(i) == "ALL"
                && v.matches(i + 1, &[":", "["])
                && v.matches(i + 3, &["PolicySelect", ";"])
                && i + 5 < v.len()
                && v.kind(i + 5) == TokKind::NumLit
            {
                all_found = true;
                let lit = v.text(i + 5);
                if lit.parse::<usize>() != Ok(variants.len()) {
                    out.push(file.diag(
                        self.id(),
                        v.tok(i + 5).lo,
                        lit.len(),
                        format!(
                            "PolicySelect::ALL declares {lit} entries but the enum has {} \
                             variants — cache sweeps would skip the difference",
                            variants.len()
                        ),
                    ));
                }
                // Initializer: `] = [ … ] ;` — scan its bracketed span.
                if v.matches(i + 6, &["]", "=", "["]) {
                    let mut j = i + 9;
                    let mut depth = 1i32;
                    let lo = j;
                    while j < v.len() && depth > 0 {
                        match v.text(j) {
                            "[" => depth += 1,
                            "]" => depth -= 1,
                            _ => {}
                        }
                        j += 1;
                    }
                    let listed = referenced_variants(&v, lo, j);
                    for (name, at) in &variants {
                        if !listed.contains(name) {
                            out.push(file.diag(
                                self.id(),
                                *at,
                                name.len(),
                                format!(
                                    "PolicySelect::{name} is missing from PolicySelect::ALL — \
                                     eviction propchecks and cache-sweep cells will never see it"
                                ),
                            ));
                        }
                    }
                }
                break;
            }
        }
        if !all_found {
            out.push(file.diag(
                self.id(),
                variants[0].1,
                variants[0].0.len(),
                "PolicySelect has no `ALL: [PolicySelect; N]` registry array".to_string(),
            ));
        }

        // (c) every variant matched in tag(), instantiate() and from_str().
        for fn_name in ["tag", "instantiate", "from_str"] {
            let Some((lo, hi)) = fn_body(&v, fn_name) else {
                continue;
            };
            let covered = referenced_variants(&v, lo, hi);
            let at = v.tok(lo).lo;
            for (name, _) in &variants {
                if !covered.contains(name) {
                    out.push(file.diag(
                        self.id(),
                        at,
                        1,
                        format!(
                            "PolicySelect::{name} is not handled in `{fn_name}` — \
                             the registry surfaces have drifted apart"
                        ),
                    ));
                }
            }
        }

        // (d) every canonical tag parses back: tag()'s string literals
        // must each appear as a pattern literal in from_str().
        if let (Some((tlo, thi)), Some((flo, fhi))) = (fn_body(&v, "tag"), fn_body(&v, "from_str"))
        {
            let canonical = string_literals(&v, tlo, thi);
            let parsed = string_literals(&v, flo, fhi);
            let at = v.tok(flo).lo;
            for tag in canonical {
                if !parsed.contains(&tag) {
                    out.push(file.diag(
                        self.id(),
                        at,
                        1,
                        format!(
                            "canonical tag \"{tag}\" from PolicySelect::tag() is not accepted \
                             by FromStr — Display → FromStr no longer round-trips"
                        ),
                    ));
                }
            }
        }
        out
    }
}
