//! `registry-parity-generic`: every registry enum's surfaces enumerate the
//! same variant set.
//!
//! A *registry enum* is one whose variants are meant to be swept — it
//! carries a `const ALL: [E; N]` array, or a `tag()` / `FromStr` pair that
//! round-trips through strings. The failure mode is always drift: a new
//! variant lands in the enum but not in `ALL` (conservation propchecks
//! and matrix sweeps silently skip it), or not in `tag`/`instantiate`
//! (the match still compiles if there's a `_ =>` arm), or its canonical
//! tag is not accepted back by `FromStr` (Display → FromStr stops
//! round-tripping and every CLI/JSON path breaks).
//!
//! This one data-driven rule replaces the hand-cloned per-enum rules the
//! catalog used to carry (`scheme-registry-parity`, `policy-registry-
//! parity`): it discovers registry enums from the parsed item facts —
//! any enum in a `/src/` file with a same-file `ALL` const typed
//! `[E; N]`, or same-file `tag` + `from_str` fns referencing it — and
//! applies the full check matrix to whatever it finds, so the *next*
//! registry enum is covered the day it is written.

use super::Rule;
use crate::diag::Diagnostic;
use crate::items::{Item, ItemKind};
use crate::workspace::{SourceFile, Workspace};
use std::collections::BTreeSet;

/// Fn names that are registry surfaces when they reference the enum.
const SURFACE_FNS: &[&str] = &["tag", "instantiate", "from_str"];

/// See module docs.
pub struct RegistryParityGeneric;

/// Variant tails referenced (as `E::V` or `Self::V` inside `impl E`)
/// within the byte span `lo..hi`.
fn refs_in_span<'a>(
    file: &'a SourceFile,
    enum_name: &str,
    self_ok: bool,
    lo: usize,
    hi: usize,
) -> BTreeSet<&'a str> {
    file.facts
        .path_refs
        .iter()
        .filter(|r| r.lo >= lo && r.lo < hi)
        .filter(|r| r.head == enum_name || (self_ok && r.head == "Self"))
        .map(|r| r.tail.as_str())
        .collect()
}

/// Does item `it` reference `enum_name` anywhere in its span?
fn references(file: &SourceFile, it: &Item, enum_name: &str) -> bool {
    it.self_ty == enum_name
        || file
            .facts
            .path_refs
            .iter()
            .any(|r| r.lo >= it.lo && r.lo < it.hi && r.head == enum_name)
}

/// Byte offset of the `fn` name inside item `it` (caret anchor).
fn fn_name_offset(file: &SourceFile, it: &Item) -> usize {
    file.src[it.lo..it.hi]
        .find("fn ")
        .map(|i| it.lo + i + 3)
        .unwrap_or(it.lo)
}

/// The array-length literal inside `const ALL: [E; N]` — offset and text.
fn all_len_literal<'a>(file: &'a SourceFile, it: &Item) -> Option<(usize, &'a str)> {
    let span = &file.src[it.lo..it.hi];
    let semi = span.find(';')?;
    let rest = &span[semi + 1..];
    let pad = rest.len() - rest.trim_start().len();
    let start = semi + 1 + pad;
    let lit: &str = &span[start..];
    let end = lit
        .find(|c: char| !c.is_ascii_alphanumeric() && c != '_')
        .unwrap_or(lit.len());
    (end > 0).then(|| (it.lo + start, &span[start..start + end]))
}

impl RegistryParityGeneric {
    fn check_enum(&self, file: &SourceFile, e: &Item, out: &mut Vec<Diagnostic>) {
        let variants = &e.fields;
        if variants.is_empty() {
            return;
        }
        // Discover the registry surfaces declared alongside the enum.
        let all_const = file.facts.items.iter().find(|it| {
            it.kind == ItemKind::Const && it.name == "ALL" && {
                let parts: Vec<&str> = it.ty.split(' ').collect();
                parts.len() >= 4 && parts[0] == "[" && parts[1] == e.name && parts[2] == ";"
            }
        });
        let surfaces: Vec<&Item> = file
            .facts
            .items
            .iter()
            .filter(|it| {
                it.kind == ItemKind::Fn
                    && !it.in_test
                    && SURFACE_FNS.contains(&it.name.as_str())
                    && references(file, it, &e.name)
            })
            .collect();
        let has_fn = |n: &str| surfaces.iter().any(|s| s.name == n);
        // Only enums with sweep machinery are registries; a lone `tag()`
        // accessor (e.g. TelemetryEvent's) is not.
        if all_const.is_none() && !(has_fn("tag") && has_fn("from_str")) {
            return;
        }

        match all_const {
            Some(c) => {
                // (a) declared length vs variant count.
                if let Some((lo, lit)) = all_len_literal(file, c) {
                    let n: usize = lit.replace('_', "").parse().unwrap_or(0);
                    if n != variants.len() {
                        out.push(file.diag(
                            self.id(),
                            lo,
                            lit.len(),
                            format!(
                                "{}::ALL declares {lit} entries but the enum has {} \
                                 variants — registry sweeps would skip the difference",
                                e.name,
                                variants.len(),
                            ),
                        ));
                    }
                }
                // (b) every variant listed in the ALL initializer.
                let listed = refs_in_span(file, &e.name, c.self_ty == e.name, c.lo, c.hi);
                for v in variants {
                    if !listed.contains(v.name.as_str()) {
                        out.push(file.diag(
                            self.id(),
                            v.lo,
                            v.name.len(),
                            format!(
                                "{}::{} is missing from {}::ALL — conservation propchecks \
                                 and matrix sweeps will never see it",
                                e.name, v.name, e.name,
                            ),
                        ));
                    }
                }
            }
            None => {
                out.push(file.diag(
                    self.id(),
                    e.lo + file.src[e.lo..e.hi].find(&e.name).unwrap_or(0),
                    e.name.len(),
                    format!(
                        "{} has no `ALL: [{}; N]` registry array — sweeps and \
                         conservation propchecks cannot enumerate its variants",
                        e.name, e.name,
                    ),
                ));
            }
        }

        // (c) every surface fn handles every variant.
        for f in &surfaces {
            let handled = refs_in_span(file, &e.name, f.self_ty == e.name, f.lo, f.hi);
            for v in variants {
                if !handled.contains(v.name.as_str()) {
                    out.push(file.diag(
                        self.id(),
                        fn_name_offset(file, f),
                        f.name.len(),
                        format!(
                            "{}::{} is not handled in `{}` — the registry surfaces \
                             have drifted apart",
                            e.name, v.name, f.name,
                        ),
                    ));
                }
            }
        }

        // (d) Display → FromStr round-trip: every canonical tag string in
        // `tag()` must be accepted somewhere in `from_str`.
        let (Some(tag_fn), Some(fs_fn)) = (
            surfaces.iter().find(|s| s.name == "tag"),
            surfaces.iter().find(|s| s.name == "from_str"),
        ) else {
            return;
        };
        let in_span = |lo: usize, it: &Item| lo >= it.lo && lo < it.hi;
        let accepted: BTreeSet<&str> = file
            .facts
            .strings
            .iter()
            .filter(|s| in_span(s.lo, fs_fn))
            .map(|s| s.text.as_str())
            .collect();
        let mut reported = BTreeSet::new();
        for s in &file.facts.strings {
            if in_span(s.lo, tag_fn)
                && !accepted.contains(s.text.as_str())
                && reported.insert(&s.text)
            {
                out.push(file.diag(
                    self.id(),
                    fn_name_offset(file, fs_fn),
                    fs_fn.name.len(),
                    format!(
                        "canonical tag \"{}\" from {}::tag() is not accepted by FromStr \
                         — Display → FromStr no longer round-trips",
                        s.text, e.name,
                    ),
                ));
            }
        }
    }
}

impl Rule for RegistryParityGeneric {
    fn id(&self) -> &'static str {
        "registry-parity-generic"
    }

    fn describe(&self) -> &'static str {
        "registry enums: ALL array, tag/instantiate/from_str surfaces, and variants stay in sync"
    }

    fn check(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in &ws.files {
            if !file.path.contains("/src/") {
                continue;
            }
            for e in file.facts.of_kind(ItemKind::Enum) {
                if e.in_test {
                    continue;
                }
                self.check_enum(file, e, &mut out);
            }
        }
        out
    }
}
