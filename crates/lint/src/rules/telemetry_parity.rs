//! `telemetry-emit-count-parity`: the set of `TelemetryEvent` variants the
//! workspace *constructs* and the set `TraceSummary` *counts* must be the
//! same set.
//!
//! The telemetry contract (ROADMAP: "perf PRs gated on evidence") is that
//! anything the simulator emits shows up in `report` output. The old
//! token-level rule only asked "is the variant name mentioned in
//! summary.rs?"; with the item graph we can hold the whole triangle
//! together:
//!
//! 1. a variant constructed anywhere in `/src/` but absent from
//!    `summary.rs` would be recorded to JSONL and silently dropped at
//!    aggregation — the evidence trail has a hole exactly where the new
//!    behaviour is;
//! 2. a variant never constructed anywhere is dead telemetry — its
//!    summary counter reads as "0 events" when the truth is "nothing can
//!    emit this", which is a different (and misleading) claim;
//! 3. a `TelemetryEvent::X` reference in `summary.rs` naming no declared
//!    variant is a stale arm left behind by a rename.
//!
//! Emit sites are `TelemetryEvent::X` path references outside the
//! declaring/aggregating files (and outside tests). Match *patterns* are
//! indistinguishable from constructions at this syntactic level; a file
//! that only matches on an event still counts as "emitting" it, which can
//! hide a dead variant but never flags a live one.

use super::Rule;
use crate::diag::Diagnostic;
use crate::items::ItemKind;
use crate::workspace::Workspace;
use std::collections::{BTreeMap, BTreeSet};

const EVENT_FILE: &str = "crates/telemetry/src/event.rs";
const SUMMARY_FILE: &str = "crates/telemetry/src/summary.rs";

/// Extract `(variant-name, byte-offset)` pairs from `enum TelemetryEvent`.
pub fn event_variants(ws: &Workspace) -> Vec<(String, usize)> {
    let Some(file) = ws.file(EVENT_FILE) else {
        return Vec::new();
    };
    let Some(item) = file.facts.named(ItemKind::Enum, "TelemetryEvent") else {
        return Vec::new();
    };
    item.fields.iter().map(|v| (v.name.clone(), v.lo)).collect()
}

/// See module docs.
pub struct TelemetryEmitCountParity;

impl Rule for TelemetryEmitCountParity {
    fn id(&self) -> &'static str {
        "telemetry-emit-count-parity"
    }

    fn describe(&self) -> &'static str {
        "every constructed TelemetryEvent variant is counted in TraceSummary, and vice versa"
    }

    fn check(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let variants = event_variants(ws);
        if variants.is_empty() {
            // Nothing to check against (e.g. linting a partial tree).
            return Vec::new();
        }
        let variant_set: BTreeSet<&str> = variants.iter().map(|(n, _)| n.as_str()).collect();

        // The aggregation side: every `TelemetryEvent::X` reference in
        // summary.rs, with the offset of its first mention.
        let mut summary_refs: BTreeMap<&str, usize> = BTreeMap::new();
        let Some(summary) = ws.file(SUMMARY_FILE) else {
            return Vec::new();
        };
        for r in &summary.facts.path_refs {
            if r.head == "TelemetryEvent" && !r.in_test {
                summary_refs.entry(&r.tail).or_insert(r.lo);
            }
        }

        // The emit side: `TelemetryEvent::X` references in any other
        // non-test `/src/` position, counted per variant.
        let mut emits: BTreeMap<&str, usize> = BTreeMap::new();
        for file in &ws.files {
            if file.path == EVENT_FILE || file.path == SUMMARY_FILE || !file.path.contains("/src/")
            {
                continue;
            }
            for r in &file.facts.path_refs {
                if r.head == "TelemetryEvent" && !r.in_test {
                    *emits.entry(&r.tail).or_insert(0) += 1;
                }
            }
        }

        let event_file = ws.file(EVENT_FILE).expect("checked above");
        let mut out = Vec::new();
        for (name, lo) in &variants {
            let emitted = emits.get(name.as_str()).copied().unwrap_or(0);
            if emitted > 0 && !summary_refs.contains_key(name.as_str()) {
                out.push(event_file.diag(
                    self.id(),
                    *lo,
                    name.len(),
                    format!(
                        "TelemetryEvent::{name} is emitted at {emitted} site(s) but has no \
                         counterpart in TraceSummary ({SUMMARY_FILE}): events would be \
                         recorded but dropped from `report` — add a counter or an explicit \
                         no-op arm"
                    ),
                ));
            }
            if emitted == 0 {
                out.push(event_file.diag(
                    self.id(),
                    *lo,
                    name.len(),
                    format!(
                        "TelemetryEvent::{name} is never constructed outside tests — dead \
                         telemetry: its summary counter can only ever read 0. Emit it or \
                         delete the variant (and its TraceSummary arm)"
                    ),
                ));
            }
        }
        // Stale aggregation arms: summary names a variant that no longer
        // exists.
        for (name, lo) in &summary_refs {
            if !variant_set.contains(name) {
                out.push(summary.diag(
                    self.id(),
                    *lo,
                    name.len(),
                    format!(
                        "TraceSummary handles TelemetryEvent::{name}, but no such variant \
                         is declared in {EVENT_FILE} — stale arm from a rename; update or \
                         delete it"
                    ),
                ));
            }
        }
        out
    }
}
