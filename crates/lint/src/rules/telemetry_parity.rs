//! `telemetry-parity`: every `TelemetryEvent` variant must be handled by
//! the `TraceSummary` aggregator.
//!
//! The telemetry contract (ROADMAP: "perf PRs gated on evidence") is that
//! anything the simulator emits shows up in `report` output. A variant
//! added to `event.rs` but absent from `summary.rs` would be recorded to
//! JSONL and then silently dropped at aggregation — the evidence trail
//! would have a hole exactly where the new behaviour is. Exhaustive-match
//! compilation normally forces the pairing, but one `_ =>` arm defeats it
//! forever; this rule is the backstop that notices the drop either way.
//!
//! Mechanically: parse the variant names out of `enum TelemetryEvent { … }`
//! in `crates/telemetry/src/event.rs` and require each name to appear as a
//! token in `crates/telemetry/src/summary.rs`.

use super::{Rule, SigView};
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::workspace::Workspace;

const EVENT_FILE: &str = "crates/telemetry/src/event.rs";
const SUMMARY_FILE: &str = "crates/telemetry/src/summary.rs";

/// Extract `(variant-name, byte-offset)` pairs from `enum TelemetryEvent`.
pub fn event_variants(ws: &Workspace) -> Vec<(String, usize)> {
    let Some(file) = ws.file(EVENT_FILE) else {
        return Vec::new();
    };
    let v = SigView::new(file);
    let mut out = Vec::new();
    let mut i = 0;
    while i + 2 < v.len() {
        if v.text(i) == "enum" && v.text(i + 1) == "TelemetryEvent" && v.text(i + 2) == "{" {
            // Variants are idents at brace depth 1, each followed by
            // `{`, `(` or `,`.
            let mut depth = 1i32;
            let mut j = i + 3;
            while j < v.len() && depth > 0 {
                match v.text(j) {
                    "{" => depth += 1,
                    "}" => depth -= 1,
                    "(" => depth += 1,
                    ")" => depth -= 1,
                    "#" if depth == 1 && v.matches(j + 1, &["["]) => {
                        // Skip attribute tokens (doc comments are trivia
                        // already; `#[…]` would otherwise look like idents).
                        let mut d = 0i32;
                        j += 1;
                        while j < v.len() {
                            match v.text(j) {
                                "[" => d += 1,
                                "]" => {
                                    d -= 1;
                                    if d == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            j += 1;
                        }
                    }
                    _ => {
                        if depth == 1
                            && v.kind(j) == TokKind::Ident
                            && j + 1 < v.len()
                            && matches!(v.text(j + 1), "{" | "(" | ",")
                        {
                            out.push((v.text(j).to_string(), v.tok(j).lo));
                        }
                    }
                }
                j += 1;
            }
            break;
        }
        i += 1;
    }
    out
}

/// See module docs.
pub struct TelemetryParity;

impl Rule for TelemetryParity {
    fn id(&self) -> &'static str {
        "telemetry-parity"
    }

    fn describe(&self) -> &'static str {
        "every TelemetryEvent variant must be aggregated (or explicitly ignored) in TraceSummary"
    }

    fn check(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let variants = event_variants(ws);
        let Some(summary) = ws.file(SUMMARY_FILE) else {
            // Nothing to check against (e.g. linting a partial tree).
            return Vec::new();
        };
        let sv = SigView::new(summary);
        let mut mentioned = std::collections::BTreeSet::new();
        for i in 0..sv.len() {
            if sv.kind(i) == TokKind::Ident {
                mentioned.insert(sv.text(i).to_string());
            }
        }
        let Some(event_file) = ws.file(EVENT_FILE) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (name, lo) in variants {
            if !mentioned.contains(&name) {
                out.push(event_file.diag(
                    self.id(),
                    lo,
                    name.len(),
                    format!(
                        "TelemetryEvent::{name} has no counterpart in TraceSummary \
                         ({SUMMARY_FILE}): events would be recorded but dropped from \
                         `report` — add a counter or an explicit no-op arm"
                    ),
                ));
            }
        }
        out
    }
}
