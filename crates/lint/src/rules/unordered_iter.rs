//! `no-unordered-iteration`: iterating a `HashMap`/`HashSet` in a
//! deterministic crate must go through a sorted adapter.
//!
//! Hash-map iteration order is arbitrary (and, with a different hasher or
//! allocator, different between runs/platforms). When such an iteration
//! feeds scheduling, trace emission, or any accumulation that is not
//! commutative, results silently diverge — no assertion fails, the numbers
//! are just different. The fix is [`pcm_types::sorted_entries`] /
//! [`pcm_types::sorted_keys`] (or collecting + `sort_unstable`); genuinely
//! commutative reductions (`.values().sum()`, `max`) may carry a waiver
//! saying so.
//!
//! Detection is two-pass and name-based: first collect every binding whose
//! type annotation mentions `HashMap`/`HashSet` (struct fields, `let`
//! bindings, fn params), then flag `name.iter()`-style calls and `for … in
//! … name …` headers over those names. Type inference is out of scope for a
//! lexer-level tool; a binding that *is* a hash map but never annotated
//! (e.g. `let m = HashMap::new()` used without a type) is caught at its
//! `HashMap::new()` construction site instead.

use super::{FileRule, SigView};
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::workspace::{SourceFile, DETERMINISTIC_CRATES};
use std::collections::BTreeSet;

/// Methods that expose iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// See module docs.
pub struct NoUnorderedIteration;

impl FileRule for NoUnorderedIteration {
    fn id(&self) -> &'static str {
        "no-unordered-iteration"
    }

    fn describe(&self) -> &'static str {
        "HashMap/HashSet iteration in deterministic crates must use a sorted adapter"
    }

    fn check_file(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        if !DETERMINISTIC_CRATES.contains(&file.crate_name.as_str()) || !file.path.contains("/src/")
        {
            return out;
        }
        {
            let v = SigView::new(file);
            // Pass A: names annotated `: HashMap<…>` / `: HashSet<…>`
            // (possibly via a `std::collections::` path).
            let mut hash_names: BTreeSet<String> = BTreeSet::new();
            for i in 0..v.len() {
                if v.text(i) != ":" || i == 0 || i + 1 >= v.len() {
                    continue;
                }
                // Skip `::` path separators.
                if v.text(i + 1) == ":" || (i > 0 && v.text(i - 1) == ":") {
                    continue;
                }
                if v.kind(i - 1) != TokKind::Ident {
                    continue;
                }
                // The annotated type may be `HashMap`, `std::collections::
                // HashMap`, etc.: scan forward over path segments.
                let mut j = i + 1;
                let mut steps = 0;
                while j + 2 < v.len() && v.text(j + 1) == ":" && v.text(j + 2) == ":" && steps < 4 {
                    j += 3;
                    steps += 1;
                }
                let ty = v.text(j);
                if ty == "HashMap" || ty == "HashSet" {
                    hash_names.insert(v.text(i - 1).to_string());
                }
            }
            // Pass B: flag ordered-iteration shapes over the collected names.
            for i in 0..v.len() {
                if v.kind(i) != TokKind::Ident || !hash_names.contains(v.text(i)) {
                    continue;
                }
                if v.in_test(i) {
                    continue;
                }
                let name = v.text(i).to_string();
                // `name.iter()` / `name.keys()` / …
                let is_method_iter = v.matches(i + 1, &["."])
                    && i + 2 < v.len()
                    && ITER_METHODS.contains(&v.text(i + 2))
                    && v.matches(i + 3, &["("]);
                // `for pat in [&[mut]] [self.]name {` — the name is the
                // iterated expression itself (IntoIterator on &HashMap).
                let mut is_for_subject = false;
                if i + 1 < v.len() && (v.text(i + 1) == "{" || v.text(i + 1) == ".") {
                    // Look back for `in` within the for-header.
                    let lookback = i.saturating_sub(6);
                    for k in (lookback..i).rev() {
                        let t = v.text(k);
                        if t == "in" {
                            is_for_subject = v.text(i + 1) == "{";
                            break;
                        }
                        if !matches!(t, "&" | "mut" | "self" | ".") {
                            break;
                        }
                    }
                }
                if is_method_iter || is_for_subject {
                    let t = v.tok(i);
                    out.push(file.diag(
                        self.id(),
                        t.lo,
                        t.hi - t.lo,
                        format!(
                            "iteration over hash-ordered `{name}`: order is arbitrary and \
                             breaks run-to-run determinism. Use pcm_types::sorted_entries / \
                             sorted_keys, or waive with a commutativity justification"
                        ),
                    ));
                }
            }
        }
        out
    }
}
