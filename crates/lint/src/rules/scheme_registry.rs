//! `scheme-registry-parity`: the `SchemeSelect` registry surfaces must
//! stay in lockstep.
//!
//! A write scheme is "registered" when four surfaces in
//! `crates/schemes/src/preset.rs` agree: the `SchemeSelect::ALL` array
//! (what sweeps and registry-driven tests cover), the `tag()` map (what
//! CLI/JSON call it), the `instantiate()` factory (what actually gets
//! built), and the `FromStr` parser (what tags parse back). The compiler
//! only enforces two of these — `tag()` and `instantiate()` are
//! exhaustive matches — while `ALL` and `FromStr` are plain data that
//! silently go stale when a variant is added. A scheme missing from `ALL`
//! is invisible to every conservation propcheck and CI matrix sweep; a
//! canonical tag that doesn't parse breaks the `Display → FromStr`
//! round-trip the CLI relies on. This rule closes the loop.
//!
//! Mechanically: parse the variant names out of `enum SchemeSelect`, then
//! require (a) the `ALL: [SchemeSelect; N]` length literal to equal the
//! variant count, (b) every variant to appear in the `ALL` initializer,
//! (c) every variant to be matched in `tag()`, `instantiate()` and
//! `from_str()`, and (d) every string returned by `tag()` to appear as a
//! pattern literal in `from_str()`.

use super::{Rule, SigView};
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::workspace::Workspace;

const REGISTRY_FILE: &str = "crates/schemes/src/preset.rs";

/// Extract `(variant-name, byte-offset)` pairs from `enum SchemeSelect`.
fn variants(v: &SigView<'_>) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 2 < v.len() {
        if v.text(i) == "enum" && v.text(i + 1) == "SchemeSelect" && v.text(i + 2) == "{" {
            let mut depth = 1i32;
            let mut j = i + 3;
            while j < v.len() && depth > 0 {
                match v.text(j) {
                    "{" => depth += 1,
                    "}" => depth -= 1,
                    "(" => depth += 1,
                    ")" => depth -= 1,
                    "#" if depth == 1 && v.matches(j + 1, &["["]) => {
                        // Skip `#[default]`-style attributes.
                        let mut d = 0i32;
                        j += 1;
                        while j < v.len() {
                            match v.text(j) {
                                "[" => d += 1,
                                "]" => {
                                    d -= 1;
                                    if d == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            j += 1;
                        }
                    }
                    _ => {
                        if depth == 1
                            && v.kind(j) == TokKind::Ident
                            && j + 1 < v.len()
                            && matches!(v.text(j + 1), "," | "}")
                        {
                            out.push((v.text(j).to_string(), v.tok(j).lo));
                        }
                    }
                }
                j += 1;
            }
            break;
        }
        i += 1;
    }
    out
}

/// Significant-token range `(open-brace, close-brace)` of the body of the
/// first `fn <name>` in the file.
fn fn_body(v: &SigView<'_>, name: &str) -> Option<(usize, usize)> {
    let mut i = 0;
    while i + 1 < v.len() {
        if v.text(i) == "fn" && v.text(i + 1) == name {
            let mut j = i + 2;
            while j < v.len() && v.text(j) != "{" {
                j += 1;
            }
            let start = j;
            let mut depth = 0i32;
            while j < v.len() {
                match v.text(j) {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            return Some((start, j));
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            return None;
        }
        i += 1;
    }
    None
}

/// Variant names referenced as `SchemeSelect::<Name>` within `[lo, hi]`.
fn referenced_variants(
    v: &SigView<'_>,
    lo: usize,
    hi: usize,
) -> std::collections::BTreeSet<String> {
    let mut out = std::collections::BTreeSet::new();
    for i in lo..hi.min(v.len()) {
        if v.text(i) == "SchemeSelect"
            && v.matches(i + 1, &[":", ":"])
            && i + 3 < v.len()
            && v.kind(i + 3) == TokKind::Ident
        {
            out.insert(v.text(i + 3).to_string());
        }
    }
    out
}

/// String literals (quotes stripped) within `[lo, hi]`.
fn string_literals(v: &SigView<'_>, lo: usize, hi: usize) -> std::collections::BTreeSet<String> {
    let mut out = std::collections::BTreeSet::new();
    for i in lo..hi.min(v.len()) {
        if v.kind(i) == TokKind::StrLit {
            out.insert(v.text(i).trim_matches('"').to_string());
        }
    }
    out
}

/// See module docs.
pub struct SchemeRegistryParity;

impl Rule for SchemeRegistryParity {
    fn id(&self) -> &'static str {
        "scheme-registry-parity"
    }

    fn describe(&self) -> &'static str {
        "SchemeSelect's ALL array, tag(), instantiate() and FromStr must cover every variant"
    }

    fn check(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let Some(file) = ws.file(REGISTRY_FILE) else {
            // Nothing to check (e.g. linting a partial tree).
            return Vec::new();
        };
        let v = SigView::new(file);
        let variants = variants(&v);
        if variants.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();

        // (a) `ALL: [SchemeSelect; N]` — the length literal must equal the
        // variant count; (b) every variant must appear in the initializer.
        let mut all_found = false;
        for i in 0..v.len() {
            if v.text(i) == "ALL"
                && v.matches(i + 1, &[":", "["])
                && v.matches(i + 3, &["SchemeSelect", ";"])
                && i + 5 < v.len()
                && v.kind(i + 5) == TokKind::NumLit
            {
                all_found = true;
                let lit = v.text(i + 5);
                if lit.parse::<usize>() != Ok(variants.len()) {
                    out.push(file.diag(
                        self.id(),
                        v.tok(i + 5).lo,
                        lit.len(),
                        format!(
                            "SchemeSelect::ALL declares {lit} entries but the enum has {} \
                             variants — registry sweeps would skip the difference",
                            variants.len()
                        ),
                    ));
                }
                // Initializer: `] = [ … ] ;` — scan its bracketed span.
                if v.matches(i + 6, &["]", "=", "["]) {
                    let mut j = i + 9;
                    let mut depth = 1i32;
                    let lo = j;
                    while j < v.len() && depth > 0 {
                        match v.text(j) {
                            "[" => depth += 1,
                            "]" => depth -= 1,
                            _ => {}
                        }
                        j += 1;
                    }
                    let listed = referenced_variants(&v, lo, j);
                    for (name, at) in &variants {
                        if !listed.contains(name) {
                            out.push(file.diag(
                                self.id(),
                                *at,
                                name.len(),
                                format!(
                                    "SchemeSelect::{name} is missing from SchemeSelect::ALL — \
                                     conservation propchecks and matrix sweeps will never see it"
                                ),
                            ));
                        }
                    }
                }
                break;
            }
        }
        if !all_found {
            out.push(file.diag(
                self.id(),
                variants[0].1,
                variants[0].0.len(),
                "SchemeSelect has no `ALL: [SchemeSelect; N]` registry array".to_string(),
            ));
        }

        // (c) every variant matched in tag(), instantiate() and from_str().
        for fn_name in ["tag", "instantiate", "from_str"] {
            let Some((lo, hi)) = fn_body(&v, fn_name) else {
                continue;
            };
            let covered = referenced_variants(&v, lo, hi);
            let at = v.tok(lo).lo;
            for (name, _) in &variants {
                if !covered.contains(name) {
                    out.push(file.diag(
                        self.id(),
                        at,
                        1,
                        format!(
                            "SchemeSelect::{name} is not handled in `{fn_name}` — \
                             the registry surfaces have drifted apart"
                        ),
                    ));
                }
            }
        }

        // (d) every canonical tag parses back: tag()'s string literals
        // must each appear as a pattern literal in from_str().
        if let (Some((tlo, thi)), Some((flo, fhi))) = (fn_body(&v, "tag"), fn_body(&v, "from_str"))
        {
            let canonical = string_literals(&v, tlo, thi);
            let parsed = string_literals(&v, flo, fhi);
            let at = v.tok(flo).lo;
            for tag in canonical {
                if !parsed.contains(&tag) {
                    out.push(file.diag(
                        self.id(),
                        at,
                        1,
                        format!(
                            "canonical tag \"{tag}\" from SchemeSelect::tag() is not accepted \
                             by FromStr — Display → FromStr no longer round-trips"
                        ),
                    ));
                }
            }
        }
        out
    }
}
