//! The rule catalog.
//!
//! Every rule has a stable ID (used in waivers and `--allow`), a one-line
//! description, and a checker that walks the lexed workspace and emits
//! span-accurate [`Diagnostic`]s. Rules are syntactic — they work on the
//! token stream, not on types — so each one documents the approximation it
//! makes and errs on the side of flagging (waivers carry the justification
//! when the approximation is wrong).

mod ci_parity;
mod lossy_casts;
mod panic_policy;
mod policy_registry;
mod resurrected_api;
mod scheme_registry;
mod telemetry_parity;
mod typed_units;
mod unordered_iter;
mod wall_clock;

use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use crate::workspace::{SourceFile, Workspace};

/// A single lint rule.
pub trait Rule {
    /// Stable identifier (kebab-case; referenced by waivers and docs).
    fn id(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn describe(&self) -> &'static str;
    /// Scan the workspace and report findings.
    fn check(&self, ws: &Workspace) -> Vec<Diagnostic>;
}

/// All rule IDs, in catalog order (also the JSON decoder's whitelist).
pub const RULE_IDS: &[&str] = &[
    "no-wall-clock",
    "no-unordered-iteration",
    "typed-units",
    "no-lossy-cycle-casts",
    "panic-policy",
    "telemetry-parity",
    "no-resurrected-apis",
    "ci-phase-parity",
    "scheme-registry-parity",
    "policy-registry-parity",
    crate::allowlist::ALLOWLIST_RULE,
];

/// Instantiate the full catalog, in [`RULE_IDS`] order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(wall_clock::NoWallClock),
        Box::new(unordered_iter::NoUnorderedIteration),
        Box::new(typed_units::TypedUnits),
        Box::new(lossy_casts::NoLossyCycleCasts),
        Box::new(panic_policy::PanicPolicy),
        Box::new(telemetry_parity::TelemetryParity),
        Box::new(resurrected_api::NoResurrectedApis),
        Box::new(ci_parity::CiPhaseParity),
        Box::new(scheme_registry::SchemeRegistryParity),
        Box::new(policy_registry::PolicyRegistryParity),
    ]
}

/// A file's significant tokens with convenience accessors; the shared
/// substrate every rule matches against.
pub struct SigView<'a> {
    /// The file under scan.
    pub file: &'a SourceFile,
    sig: Vec<usize>,
}

impl<'a> SigView<'a> {
    /// Build the significant-token view of `file`.
    pub fn new(file: &'a SourceFile) -> SigView<'a> {
        SigView {
            file,
            sig: file.sig_indices(),
        }
    }

    /// Number of significant tokens.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.sig.len()
    }

    /// The `i`-th significant token.
    pub fn tok(&self, i: usize) -> &Tok {
        &self.file.toks[self.sig[i]]
    }

    /// Its text.
    pub fn text(&self, i: usize) -> &str {
        self.tok(i).text(&self.file.src)
    }

    /// Its kind.
    pub fn kind(&self, i: usize) -> TokKind {
        self.tok(i).kind
    }

    /// Does the significant-token sequence starting at `i` spell out
    /// `pattern` (one entry per token, e.g. `&["Instant", ":", ":", "now"]`)?
    pub fn matches(&self, i: usize, pattern: &[&str]) -> bool {
        pattern
            .iter()
            .enumerate()
            .all(|(k, p)| i + k < self.len() && self.text(i + k) == *p)
    }

    /// True when token `i` starts inside a test-gated region.
    pub fn in_test(&self, i: usize) -> bool {
        self.file.in_test(self.tok(i).lo)
    }
}

/// Walk back from the significant token at `i` (exclusive) over one postfix
/// expression tail and return the index of its "subject" name: for
/// `foo.bar(x, y)` with `i` pointing past `)`, returns the index of `bar`;
/// for `foo` returns `foo`. Used by the cast rule to ask "what expression is
/// being cast?". Returns `None` when the shape is unrecognized.
pub fn postfix_subject(v: &SigView<'_>, i: usize) -> Option<usize> {
    if i == 0 {
        return None;
    }
    let last = i - 1;
    match v.text(last) {
        ")" => {
            // Walk to the matching `(`, then the callee ident before it.
            let mut depth = 0i32;
            let mut j = last;
            loop {
                match v.text(j) {
                    ")" => depth += 1,
                    "(" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if j == 0 {
                    return None;
                }
                j -= 1;
            }
            (j > 0 && v.kind(j - 1) == TokKind::Ident).then(|| j - 1)
        }
        _ if v.kind(last) == TokKind::Ident || v.kind(last) == TokKind::NumLit => Some(last),
        _ => None,
    }
}
