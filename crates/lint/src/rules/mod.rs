//! The rule catalog.
//!
//! Every rule has a stable ID (used in waivers and `--allow`), a one-line
//! description, and a checker producing span-accurate [`Diagnostic`]s.
//! Rules come in two layers:
//!
//! * **File rules** ([`FileRule`]) see one file's token stream at a time.
//!   Their findings depend only on that file's bytes, so the scan runs
//!   them at parse time — in parallel across files — and caches their
//!   findings alongside the parsed facts (`target/lint-cache.json`).
//! * **Graph rules** ([`Rule`] entries in [`graph_rules`]) see the whole
//!   workspace through the parsed [`crate::items::FileFacts`] and the
//!   [`crate::graph::ItemGraph`]. They run on every scan (warm or cold) —
//!   their findings depend on *other* files, which a per-file cache
//!   cannot key — and never touch raw tokens, so cache-restored files
//!   (which skip lexing) are first-class inputs.
//!
//! All rules are syntactic — they work on tokens and recovered item
//! structure, not on types — so each one documents the approximation it
//! makes and errs on the side of flagging (waivers carry the
//! justification when the approximation is wrong).

mod ci_parity;
mod dead_config;
mod lossy_casts;
mod panic_policy;
mod registry_parity;
mod resurrected_api;
mod telemetry_parity;
mod typed_units;
mod units_flow;
mod unordered_iter;
mod wall_clock;

use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use crate::workspace::{SourceFile, Workspace};

/// A whole-workspace lint rule (the catalog interface).
pub trait Rule {
    /// Stable identifier (kebab-case; referenced by waivers and docs).
    fn id(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn describe(&self) -> &'static str;
    /// Scan the workspace and report findings.
    fn check(&self, ws: &Workspace) -> Vec<Diagnostic>;
}

/// A rule whose findings depend on a single file's contents only. Runs in
/// parallel during the scan; findings are cached per file.
pub trait FileRule: Sync {
    /// Stable identifier (kebab-case; referenced by waivers and docs).
    fn id(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn describe(&self) -> &'static str;
    /// Scan one lexed file and report findings.
    fn check_file(&self, file: &SourceFile) -> Vec<Diagnostic>;
}

/// Adapter presenting a [`FileRule`] as a whole-workspace [`Rule`].
struct PerFile(Box<dyn FileRule>);

impl Rule for PerFile {
    fn id(&self) -> &'static str {
        self.0.id()
    }

    fn describe(&self) -> &'static str {
        self.0.describe()
    }

    fn check(&self, ws: &Workspace) -> Vec<Diagnostic> {
        ws.files.iter().flat_map(|f| self.0.check_file(f)).collect()
    }
}

/// All rule IDs, in catalog order (also the JSON decoder's whitelist and
/// the cache's rule-catalog stamp).
pub const RULE_IDS: &[&str] = &[
    "no-wall-clock",
    "no-unordered-iteration",
    "typed-units",
    "no-lossy-cycle-casts",
    "panic-policy",
    "no-resurrected-apis",
    "ci-phase-parity",
    "units-flow",
    "telemetry-emit-count-parity",
    "registry-parity-generic",
    "dead-config-knob",
    crate::allowlist::ALLOWLIST_RULE,
];

/// The per-file layer, in catalog order.
pub fn file_rules() -> Vec<Box<dyn FileRule>> {
    vec![
        Box::new(wall_clock::NoWallClock),
        Box::new(unordered_iter::NoUnorderedIteration),
        Box::new(typed_units::TypedUnits),
        Box::new(lossy_casts::NoLossyCycleCasts),
        Box::new(panic_policy::PanicPolicy),
        Box::new(resurrected_api::NoResurrectedApis),
    ]
}

/// The cross-file layer, in catalog order.
pub fn graph_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(ci_parity::CiPhaseParity),
        Box::new(units_flow::UnitsFlow),
        Box::new(telemetry_parity::TelemetryEmitCountParity),
        Box::new(registry_parity::RegistryParityGeneric),
        Box::new(dead_config::DeadConfigKnob),
    ]
}

/// Instantiate the full catalog, in [`RULE_IDS`] order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    let mut rules: Vec<Box<dyn Rule>> = file_rules()
        .into_iter()
        .map(|r| Box::new(PerFile(r)) as Box<dyn Rule>)
        .collect();
    rules.extend(graph_rules());
    rules
}

/// A file's significant tokens with convenience accessors; the shared
/// substrate every file rule matches against.
pub struct SigView<'a> {
    /// The file under scan.
    pub file: &'a SourceFile,
    sig: Vec<usize>,
}

impl<'a> SigView<'a> {
    /// Build the significant-token view of `file`.
    pub fn new(file: &'a SourceFile) -> SigView<'a> {
        SigView {
            file,
            sig: file.sig_indices(),
        }
    }

    /// Number of significant tokens.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.sig.len()
    }

    /// The `i`-th significant token.
    pub fn tok(&self, i: usize) -> &Tok {
        &self.file.toks[self.sig[i]]
    }

    /// Its text.
    pub fn text(&self, i: usize) -> &str {
        self.tok(i).text(&self.file.src)
    }

    /// Its kind.
    pub fn kind(&self, i: usize) -> TokKind {
        self.tok(i).kind
    }

    /// Does the significant-token sequence starting at `i` spell out
    /// `pattern` (one entry per token, e.g. `&["Instant", ":", ":", "now"]`)?
    pub fn matches(&self, i: usize, pattern: &[&str]) -> bool {
        pattern
            .iter()
            .enumerate()
            .all(|(k, p)| i + k < self.len() && self.text(i + k) == *p)
    }

    /// True when token `i` starts inside a test-gated region.
    pub fn in_test(&self, i: usize) -> bool {
        self.file.in_test(self.tok(i).lo)
    }
}

/// Walk back from the significant token at `i` (exclusive) over one postfix
/// expression tail and return the index of its "subject" name: for
/// `foo.bar(x, y)` with `i` pointing past `)`, returns the index of `bar`;
/// for `foo` returns `foo`. Used by the cast rule to ask "what expression is
/// being cast?". Returns `None` when the shape is unrecognized.
pub fn postfix_subject(v: &SigView<'_>, i: usize) -> Option<usize> {
    if i == 0 {
        return None;
    }
    let last = i - 1;
    match v.text(last) {
        ")" => {
            // Walk to the matching `(`, then the callee ident before it.
            let mut depth = 0i32;
            let mut j = last;
            loop {
                match v.text(j) {
                    ")" => depth += 1,
                    "(" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if j == 0 {
                    return None;
                }
                j -= 1;
            }
            (j > 0 && v.kind(j - 1) == TokKind::Ident).then(|| j - 1)
        }
        _ if v.kind(last) == TokKind::Ident || v.kind(last) == TokKind::NumLit => Some(last),
        _ => None,
    }
}
