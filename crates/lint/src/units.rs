//! The unit lattice behind the `units-flow` rule.
//!
//! The paper's timing model lives in two incompatible spellings: wall
//! durations (`Ps`, `*_ns` fields, `as_ns()` accessors) and controller
//! clock counts (`*_cycles` fields, `cycles_at()`, `from_cycles()`). A
//! value that crosses between them without an explicit conversion is the
//! highest-risk silent-corruption class this repo has — the number stays
//! plausible, every test that doesn't pin the exact figure passes, and the
//! model is quietly off by a clock frequency.
//!
//! Classification is name-driven and deliberately three-valued:
//!
//! * [`UnitClass::Ns`] — born from a `*_ns` ident or an `as_ns` /
//!   `as_ns_f64` accessor.
//! * [`UnitClass::Cycles`] — born from a `*_cycles` ident (or bare
//!   `cycles`) or a `cycles_at` conversion.
//! * [`UnitClass::Neutral`] — everything else, including values passed
//!   through an explicit converter (`Ps::from_ns`, `Ps::from_cycles`,
//!   `as_ps`, the `Ps` newtype itself): a conversion states intent, so
//!   flow past it is never flagged.
//!
//! Mixed expressions (both an `_ns` and a `_cycles` mention with no
//! converter) are ratios or deltas whose unit we cannot know; they
//! classify as [`UnitClass::Neutral`] rather than guess.

/// Which unit family a name or expression belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnitClass {
    /// No unit information, or explicitly converted.
    Neutral,
    /// Nanosecond-valued (wall duration).
    Ns,
    /// Controller/CPU clock cycles.
    Cycles,
}

impl UnitClass {
    /// Stable integer encoding for the facts cache.
    pub fn to_u64(self) -> u64 {
        match self {
            UnitClass::Neutral => 0,
            UnitClass::Ns => 1,
            UnitClass::Cycles => 2,
        }
    }

    /// Decode [`UnitClass::to_u64`]; unknown values degrade to `Neutral`
    /// (a stale cache must never invent findings).
    pub fn from_u64(v: u64) -> UnitClass {
        match v {
            1 => UnitClass::Ns,
            2 => UnitClass::Cycles,
            _ => UnitClass::Neutral,
        }
    }
}

/// Converter names: calling one is an explicit unit statement, and the
/// call's *result* class (second column) replaces whatever fed it.
const CONVERTERS: &[(&str, UnitClass)] = &[
    ("as_ns", UnitClass::Ns),
    ("as_ns_f64", UnitClass::Ns),
    ("cycles_at", UnitClass::Cycles),
    ("from_ns", UnitClass::Neutral),
    ("from_cycles", UnitClass::Neutral),
    ("as_ps", UnitClass::Neutral),
    ("from_ps", UnitClass::Neutral),
    ("Ps", UnitClass::Neutral),
];

/// Class of a bare identifier (variable, field or parameter name).
pub fn classify_name(name: &str) -> UnitClass {
    if name.ends_with("_ns") || name == "ns" {
        UnitClass::Ns
    } else if name.ends_with("_cycles") || name == "cycles" {
        UnitClass::Cycles
    } else {
        UnitClass::Neutral
    }
}

/// Class of a parameter or struct field, considering its type annotation:
/// a `Ps`-typed slot is newtype-protected, so its name cannot mis-claim a
/// unit (`at_ns: Ps` would be a naming bug, not a flow bug).
pub fn classify_slot(name: &str, ty: &str) -> UnitClass {
    if ty
        .split(|c: char| !c.is_alphanumeric() && c != '_')
        .any(|seg| seg == "Ps")
    {
        return UnitClass::Neutral;
    }
    classify_name(name)
}

/// Class of an expression, given its significant-token texts.
///
/// If any converter appears, the **last** converter wins (postfix chains
/// put the outermost conversion last: `Ps::from_ns(x).cycles_at(f)` is
/// cycles). Otherwise the suffix markers decide, and a mix of both
/// families is `Neutral`.
pub fn classify_expr<'a>(texts: impl Iterator<Item = &'a str>) -> UnitClass {
    let mut converted: Option<UnitClass> = None;
    let mut saw_ns = false;
    let mut saw_cycles = false;
    for t in texts {
        if let Some((_, out)) = CONVERTERS.iter().find(|(n, _)| *n == t) {
            converted = Some(*out);
            continue;
        }
        match classify_name(t) {
            UnitClass::Ns => saw_ns = true,
            UnitClass::Cycles => saw_cycles = true,
            UnitClass::Neutral => {}
        }
    }
    if let Some(c) = converted {
        return c;
    }
    match (saw_ns, saw_cycles) {
        (true, false) => UnitClass::Ns,
        (false, true) => UnitClass::Cycles,
        _ => UnitClass::Neutral,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr(src: &str) -> UnitClass {
        classify_expr(src.split_whitespace())
    }

    #[test]
    fn names_classify_by_suffix() {
        assert_eq!(classify_name("mean_gap_ns"), UnitClass::Ns);
        assert_eq!(classify_name("latency_cycles"), UnitClass::Cycles);
        assert_eq!(classify_name("cycles"), UnitClass::Cycles);
        assert_eq!(classify_name("ns"), UnitClass::Ns);
        assert_eq!(classify_name("runtime"), UnitClass::Neutral);
        assert_eq!(classify_name("columns"), UnitClass::Neutral);
    }

    #[test]
    fn ps_typed_slots_are_neutral() {
        assert_eq!(classify_slot("at_ns", "Ps"), UnitClass::Neutral);
        assert_eq!(classify_slot("at_ns", "u64"), UnitClass::Ns);
        assert_eq!(
            classify_slot("until", "pcm_types :: Ps"),
            UnitClass::Neutral
        );
    }

    #[test]
    fn converters_override_operands() {
        assert_eq!(expr("Ps :: from_ns ( at_ns )"), UnitClass::Neutral);
        assert_eq!(expr("busy . as_ns ( )"), UnitClass::Ns);
        assert_eq!(expr("gap . cycles_at ( freq )"), UnitClass::Cycles);
        assert_eq!(
            expr("Ps :: from_ns ( x ) . cycles_at ( f )"),
            UnitClass::Cycles
        );
    }

    #[test]
    fn mixed_families_without_converter_are_neutral() {
        assert_eq!(expr("a_ns / b_cycles"), UnitClass::Neutral);
        assert_eq!(expr("think_ns + pad_ns"), UnitClass::Ns);
        assert_eq!(expr("x + 1"), UnitClass::Neutral);
    }
}
