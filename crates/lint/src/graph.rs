//! The workspace-wide item graph.
//!
//! [`ItemGraph`] indexes every file's parsed [`FileFacts`](crate::items::FileFacts)
//! into the cross-file lookups the semantic rules need: functions by name
//! (with their unit-classified parameter slots), struct fields by name
//! (with their declared types), enums by name, and the approximate call
//! graph — for each function name, every function whose body calls it.
//!
//! Name-based resolution is deliberate: without type information, two
//! same-named methods on different types are indistinguishable. Rules
//! that consume the graph therefore only act when **all** same-named
//! candidates agree on the property in question (see `units-flow`), which
//! keeps the false-positive rate at zero in exchange for missing some
//! true positives — the right trade for a CI gate.
//!
//! All indexes are `BTreeMap`s so iteration order (and therefore
//! diagnostic order) is deterministic.

use crate::items::{Item, ItemKind, Param};
use crate::workspace::{SourceFile, Workspace};
use std::collections::BTreeMap;

/// An item together with the file that declares it.
#[derive(Clone, Copy)]
pub struct ItemRef<'a> {
    /// The declaring file.
    pub file: &'a SourceFile,
    /// The item.
    pub item: &'a Item,
}

/// A struct field together with its owner.
#[derive(Clone, Copy)]
pub struct FieldRef<'a> {
    /// The declaring file.
    pub file: &'a SourceFile,
    /// The `struct` item owning the field.
    pub owner: &'a Item,
    /// The field slot (name, type text, byte offset).
    pub field: &'a Param,
}

/// Cross-file indexes over every parsed item in the workspace.
pub struct ItemGraph<'a> {
    /// `fn` items by name (free functions and methods pooled together).
    pub fns: BTreeMap<&'a str, Vec<ItemRef<'a>>>,
    /// `struct` fields by field name.
    pub fields: BTreeMap<&'a str, Vec<FieldRef<'a>>>,
    /// `struct` items by name.
    pub structs: BTreeMap<&'a str, Vec<ItemRef<'a>>>,
    /// `enum` items by name.
    pub enums: BTreeMap<&'a str, Vec<ItemRef<'a>>>,
    /// Approximate call graph: callee name → the `fn` items whose bodies
    /// call it.
    pub callers: BTreeMap<&'a str, Vec<ItemRef<'a>>>,
}

impl<'a> ItemGraph<'a> {
    /// Index every file's facts.
    pub fn build(ws: &'a Workspace) -> ItemGraph<'a> {
        let mut g = ItemGraph {
            fns: BTreeMap::new(),
            fields: BTreeMap::new(),
            structs: BTreeMap::new(),
            enums: BTreeMap::new(),
            callers: BTreeMap::new(),
        };
        for file in &ws.files {
            for item in &file.facts.items {
                let r = ItemRef { file, item };
                match item.kind {
                    ItemKind::Fn => {
                        g.fns.entry(&item.name).or_default().push(r);
                        for call in &item.calls {
                            let cs = g.callers.entry(&call.callee).or_default();
                            // A body calling the same name twice is one
                            // caller edge.
                            if !cs.last().is_some_and(|l| std::ptr::eq(l.item, item)) {
                                cs.push(r);
                            }
                        }
                    }
                    ItemKind::Struct => {
                        g.structs.entry(&item.name).or_default().push(r);
                        for field in &item.fields {
                            g.fields.entry(&field.name).or_default().push(FieldRef {
                                file,
                                owner: item,
                                field,
                            });
                        }
                    }
                    ItemKind::Enum => {
                        g.enums.entry(&item.name).or_default().push(r);
                    }
                    _ => {}
                }
            }
        }
        g
    }

    /// The single `enum` named `name`, when exactly one exists.
    pub fn one_enum(&self, name: &str) -> Option<ItemRef<'a>> {
        match self.enums.get(name).map(Vec::as_slice) {
            Some([only]) => Some(*only),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace {
            root: PathBuf::from("."),
            files: files
                .iter()
                .map(|(p, s)| SourceFile::new(p, (*s).to_string()))
                .collect(),
            ci_yml: None,
        }
    }

    #[test]
    fn indexes_fns_fields_and_callers() {
        let w = ws(&[
            (
                "crates/core/src/a.rs",
                "pub struct Slot { pub width_ns: u64 }\n\
                 pub fn convert(t_ns: u64) -> u64 { t_ns }\n",
            ),
            (
                "crates/core/src/b.rs",
                "fn caller() { convert(5); convert(6); }\n",
            ),
        ]);
        let g = ItemGraph::build(&w);
        assert_eq!(g.fns["convert"].len(), 1);
        assert_eq!(g.fields["width_ns"][0].owner.name, "Slot");
        // Two calls from one body collapse to one caller edge.
        assert_eq!(g.callers["convert"].len(), 1);
        assert_eq!(g.callers["convert"][0].item.name, "caller");
    }

    #[test]
    fn one_enum_requires_uniqueness() {
        let w = ws(&[
            ("crates/core/src/a.rs", "enum E { A }\nenum F { B }\n"),
            ("crates/core/src/b.rs", "enum F { C }\n"),
        ]);
        let g = ItemGraph::build(&w);
        assert!(g.one_enum("E").is_some());
        assert!(g.one_enum("F").is_none(), "duplicates are ambiguous");
        assert!(g.one_enum("G").is_none());
    }
}
