//! The waiver file: per-line lint exemptions that must carry a written
//! justification.
//!
//! Format (`lint-allow.txt` at the repo root), one waiver per line:
//!
//! ```text
//! rule-id | repo/relative/path.rs | line-substring | justification
//! ```
//!
//! A finding is waived when the rule id and path match exactly and the
//! offending source line contains `line-substring`. Substring matching keeps
//! waivers stable across unrelated edits (line numbers shift; the code
//! being waived does not). `#`-prefixed lines and blank lines are comments.
//!
//! The file is itself linted: malformed entries, missing justifications
//! (fewer than [`MIN_JUSTIFICATION`] characters) and waivers that no longer
//! match any finding are reported as `allowlist` findings — a waiver is a
//! debt record, and stale or unexplained debt fails the gate.

use crate::diag::Diagnostic;

/// Minimum justification length, in characters. Long enough that "ok" or
/// "legacy" cannot pass review as a rationale.
pub const MIN_JUSTIFICATION: usize = 20;

/// Rule id used for problems with the allowlist file itself.
pub const ALLOWLIST_RULE: &str = "allowlist";

/// One parsed waiver.
#[derive(Clone, Debug)]
pub struct Waiver {
    /// Rule this waiver silences.
    pub rule: String,
    /// Repo-relative path it applies to.
    pub path: String,
    /// Substring the offending source line must contain.
    pub needle: String,
    /// Why the exemption is sound (surfaced in `--list-waivers`).
    pub justification: String,
    /// 1-based line in the allowlist file.
    pub line: u32,
}

/// The parsed allowlist plus any findings about the file itself.
#[derive(Default)]
pub struct Allowlist {
    /// Well-formed waivers.
    pub waivers: Vec<Waiver>,
    /// Malformed / unjustified entries.
    pub problems: Vec<Diagnostic>,
    /// File name the list was parsed from (for stale-waiver diagnostics).
    pub file_name: String,
}

impl Allowlist {
    /// Parse allowlist text. `file_name` labels diagnostics.
    pub fn parse(file_name: &str, text: &str) -> Allowlist {
        let mut out = Allowlist {
            file_name: file_name.to_string(),
            ..Allowlist::default()
        };
        for (i, raw) in text.lines().enumerate() {
            let line_no = i as u32 + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parts: Vec<&str> = line.splitn(4, '|').map(str::trim).collect();
            let problem = |msg: String| Diagnostic {
                rule: ALLOWLIST_RULE,
                path: file_name.to_string(),
                line: line_no,
                col: 1,
                len: raw.len() as u32,
                msg,
                snippet: raw.to_string(),
            };
            if parts.len() != 4 || parts[..3].iter().any(|p| p.is_empty()) {
                out.problems.push(problem(
                    "malformed waiver: expected `rule | path | line-substring | justification`"
                        .into(),
                ));
                continue;
            }
            if !crate::rules::RULE_IDS.contains(&parts[0]) {
                out.problems.push(problem(format!(
                    "waiver names unknown rule `{}` — it can never match a finding; \
                     see --list-rules for the catalog",
                    parts[0]
                )));
                continue;
            }
            if parts[3].chars().count() < MIN_JUSTIFICATION {
                out.problems.push(problem(format!(
                    "waiver justification too short ({} chars, need ≥ {MIN_JUSTIFICATION}): \
                     explain why `{}` is sound to exempt here",
                    parts[3].chars().count(),
                    parts[0]
                )));
                continue;
            }
            out.waivers.push(Waiver {
                rule: parts[0].to_string(),
                path: parts[1].to_string(),
                needle: parts[2].to_string(),
                justification: parts[3].to_string(),
                line: line_no,
            });
        }
        out
    }

    /// Split `diags` into (kept, waived) and report stale waivers. A waiver
    /// that matched nothing becomes a finding itself: either the violation
    /// was fixed (delete the waiver) or the waiver never worked.
    pub fn apply(&self, diags: Vec<Diagnostic>) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
        let mut used = vec![false; self.waivers.len()];
        let mut kept = Vec::new();
        let mut waived = Vec::new();
        for d in diags {
            let hit = self.waivers.iter().enumerate().find(|(_, w)| {
                w.rule == d.rule && w.path == d.path && d.snippet.contains(&w.needle)
            });
            match hit {
                Some((i, _)) => {
                    used[i] = true;
                    waived.push(d);
                }
                None => kept.push(d),
            }
        }
        for (w, used) in self.waivers.iter().zip(&used) {
            if !used {
                kept.push(Diagnostic {
                    rule: ALLOWLIST_RULE,
                    path: self.file_name.clone(),
                    line: w.line,
                    col: 1,
                    len: 1,
                    msg: format!(
                        "stale waiver for rule `{}`: no finding in `{}` matches `{}` — \
                         the violation is gone, delete this line",
                        w.rule, w.path, w.needle
                    ),
                    snippet: format!(
                        "{} | {} | {} | {}",
                        w.rule, w.path, w.needle, w.justification
                    ),
                });
            }
        }
        (kept, waived)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, snippet: &str) -> Diagnostic {
        Diagnostic {
            rule,
            path: path.into(),
            line: 10,
            col: 3,
            len: 5,
            msg: "m".into(),
            snippet: snippet.into(),
        }
    }

    #[test]
    fn waives_matching_findings_only() {
        let al = Allowlist::parse(
            "lint-allow.txt",
            "no-wall-clock | a.rs | Instant::now | throughput display only, never feeds sim state\n",
        );
        assert!(al.problems.is_empty());
        let (kept, waived) = al.apply(vec![
            finding("no-wall-clock", "a.rs", "let t = Instant::now();"),
            finding("no-wall-clock", "b.rs", "let t = Instant::now();"),
        ]);
        assert_eq!(waived.len(), 1);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].path, "b.rs");
    }

    #[test]
    fn short_justification_rejected() {
        let al = Allowlist::parse("f", "panic-policy | a.rs | expect | ok\n");
        assert!(al.waivers.is_empty());
        assert_eq!(al.problems.len(), 1);
        assert!(al.problems[0].msg.contains("too short"));
    }

    #[test]
    fn malformed_line_rejected() {
        let al = Allowlist::parse("f", "just-some-words\n# comment is fine\n\n");
        assert_eq!(al.problems.len(), 1);
        assert!(al.problems[0].msg.contains("malformed"));
    }

    #[test]
    fn stale_waiver_becomes_finding() {
        let al = Allowlist::parse(
            "lint-allow.txt",
            "panic-policy | gone.rs | unwrap | the code this waived was removed in PR 5\n",
        );
        let (kept, waived) = al.apply(vec![]);
        assert!(waived.is_empty());
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].rule, ALLOWLIST_RULE);
        assert!(kept[0].msg.contains("stale"));
    }
}
