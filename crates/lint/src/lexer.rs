//! A small, total Rust-source lexer.
//!
//! Produces a token stream that **partitions the input**: every byte of the
//! source belongs to exactly one token, in order, so concatenating the token
//! texts reproduces the file bit-for-bit (the propcheck suite asserts this).
//! The lexer never fails — malformed input (unterminated strings/comments)
//! degrades to a token that runs to end-of-file, which is exactly what a
//! diagnostics tool wants when pointed at a file mid-edit.
//!
//! It is comment- and string-aware so rules never match inside `"… Instant …"`
//! literals or `// prose`, handles the lexical corners that trip up
//! grep-based checks (nested block comments, raw strings `r#"…"#`, lifetimes
//! vs. char literals, numeric underscores and suffixes), and exposes
//! `#[cfg(test)]` region detection so rules can exempt test code.

/// Classification of one source token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Spaces, tabs, newlines.
    Whitespace,
    /// `// …` (including `///` and `//!` doc comments), newline excluded.
    LineComment,
    /// `/* … */`, nesting-aware; runs to EOF when unterminated.
    BlockComment,
    /// Identifier or keyword (including raw `r#ident`).
    Ident,
    /// `'label` / `'static` / `'_`.
    Lifetime,
    /// `'x'`, `'\n'`, `b'x'`.
    CharLit,
    /// `"…"` or `b"…"` with escapes.
    StrLit,
    /// `r"…"`, `r#"…"#`, `br##"…"##`.
    RawStrLit,
    /// Integer or float literal, with underscores/suffix (`430_000u64`).
    NumLit,
    /// A single punctuation character (multi-char operators are left to
    /// rules, which match consecutive `Punct` tokens like `:` `:`).
    Punct,
}

/// One token: classification plus the byte range it covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Tok {
    /// What the token is.
    pub kind: TokKind,
    /// Start byte offset (inclusive).
    pub lo: usize,
    /// End byte offset (exclusive). Always a `char` boundary.
    pub hi: usize,
}

impl Tok {
    /// The token's text within `src`.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.lo..self.hi]
    }

    /// True for tokens rules should look at (not whitespace or comments).
    pub fn significant(&self) -> bool {
        !matches!(
            self.kind,
            TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment
        )
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lex `src` into a complete token cover (see module docs).
pub fn lex(src: &str) -> Vec<Tok> {
    let bytes = src.as_bytes();
    let n = bytes.len();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let push = |toks: &mut Vec<Tok>, kind, lo, hi| {
        debug_assert!(hi > lo);
        toks.push(Tok { kind, lo, hi });
    };
    while i < n {
        let b = bytes[i];
        let lo = i;
        // Whitespace run.
        if b.is_ascii_whitespace() {
            while i < n && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            push(&mut toks, TokKind::Whitespace, lo, i);
            continue;
        }
        // Comments.
        if b == b'/' && i + 1 < n && bytes[i + 1] == b'/' {
            while i < n && bytes[i] != b'\n' {
                i += 1;
            }
            push(&mut toks, TokKind::LineComment, lo, i);
            continue;
        }
        if b == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
            i += 2;
            let mut depth = 1usize;
            while i < n && depth > 0 {
                if bytes[i] == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == b'*' && i + 1 < n && bytes[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            // Unterminated comments swallow to EOF; re-align to a char
            // boundary in case the loop stopped mid-multibyte-char.
            while i < n && !src.is_char_boundary(i) {
                i += 1;
            }
            push(&mut toks, TokKind::BlockComment, lo, i);
            continue;
        }
        // Raw strings / raw identifiers: r"…", r#"…"#, r#ident.
        if b == b'r' {
            let mut j = i + 1;
            while j < n && bytes[j] == b'#' {
                j += 1;
            }
            let hashes = j - (i + 1);
            if j < n && bytes[j] == b'"' {
                i = scan_raw_string(src, j + 1, hashes);
                push(&mut toks, TokKind::RawStrLit, lo, i);
                continue;
            }
            if hashes == 1 && j < n && is_ident_start(bytes[j]) {
                i = j + 1;
                while i < n && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                push(&mut toks, TokKind::Ident, lo, i);
                continue;
            }
            // Fall through: plain identifier starting with `r`.
        }
        // Byte literals: b'x', b"…", br"…".
        if b == b'b' && i + 1 < n {
            let c1 = bytes[i + 1];
            if c1 == b'\'' {
                i = scan_char_body(src, i + 2);
                push(&mut toks, TokKind::CharLit, lo, i);
                continue;
            }
            if c1 == b'"' {
                i = scan_string(src, i + 2);
                push(&mut toks, TokKind::StrLit, lo, i);
                continue;
            }
            if c1 == b'r' {
                let mut j = i + 2;
                while j < n && bytes[j] == b'#' {
                    j += 1;
                }
                let hashes = j - (i + 2);
                if j < n && bytes[j] == b'"' {
                    i = scan_raw_string(src, j + 1, hashes);
                    push(&mut toks, TokKind::RawStrLit, lo, i);
                    continue;
                }
            }
        }
        // Identifiers / keywords.
        if is_ident_start(b) {
            i += 1;
            while i < n && is_ident_continue(bytes[i]) {
                i += 1;
            }
            push(&mut toks, TokKind::Ident, lo, i);
            continue;
        }
        // Strings.
        if b == b'"' {
            i = scan_string(src, i + 1);
            push(&mut toks, TokKind::StrLit, lo, i);
            continue;
        }
        // Lifetime vs. char literal.
        if b == b'\'' {
            if let Some(end) = try_char_literal(src, i) {
                i = end;
                push(&mut toks, TokKind::CharLit, lo, i);
            } else {
                i += 1;
                while i < n && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                push(&mut toks, TokKind::Lifetime, lo, i);
            }
            continue;
        }
        // Numbers.
        if b.is_ascii_digit() {
            i = scan_number(bytes, i);
            push(&mut toks, TokKind::NumLit, lo, i);
            continue;
        }
        // Anything else: one char of punctuation (multibyte chars kept whole
        // so spans stay on char boundaries).
        let ch_len = src[i..].chars().next().map_or(1, char::len_utf8);
        i += ch_len;
        push(&mut toks, TokKind::Punct, lo, i);
    }
    toks
}

/// Scan past a `"`-terminated string body starting at `i` (after the open
/// quote); returns the offset just past the closing quote (or EOF).
fn scan_string(src: &str, mut i: usize) -> usize {
    let bytes = src.as_bytes();
    let n = bytes.len();
    while i < n {
        match bytes[i] {
            b'\\' => i = (i + 2).min(n),
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    n
}

/// Scan past a raw-string body (after the open quote) expecting `hashes`
/// trailing `#`s; returns the offset just past the final `#` (or EOF).
fn scan_raw_string(src: &str, mut i: usize, hashes: usize) -> usize {
    let bytes = src.as_bytes();
    let n = bytes.len();
    while i < n {
        if bytes[i] == b'"' {
            let end = i + 1 + hashes;
            if end <= n && bytes[i + 1..end].iter().all(|&b| b == b'#') {
                return end;
            }
        }
        i += 1;
    }
    n
}

/// Scan a char-literal body starting just after the opening `'` (used for
/// `b'…'` where there is no lifetime ambiguity).
fn scan_char_body(src: &str, i: usize) -> usize {
    let bytes = src.as_bytes();
    let n = bytes.len();
    if i >= n {
        return n;
    }
    let mut j = if bytes[i] == b'\\' {
        (i + 2).min(n)
    } else {
        i + src[i..].chars().next().map_or(1, char::len_utf8)
    };
    // Consume up to the closing quote (tolerates multi-char garbage).
    while j < n && bytes[j] != b'\'' && bytes[j] != b'\n' {
        j += 1;
    }
    if j < n && bytes[j] == b'\'' {
        j + 1
    } else {
        j
    }
}

/// If the `'` at `i` opens a char literal (rather than a lifetime), return
/// the literal's end offset.
fn try_char_literal(src: &str, i: usize) -> Option<usize> {
    let bytes = src.as_bytes();
    let n = bytes.len();
    if i + 1 >= n {
        return None;
    }
    if bytes[i + 1] == b'\\' {
        // Escape: definitely a char literal.
        return Some(scan_char_body(src, i + 1));
    }
    // `'X'` where X is one char: char literal. `'X` otherwise: lifetime.
    let c = src[i + 1..].chars().next()?;
    let after = i + 1 + c.len_utf8();
    if after < n && bytes[after] == b'\'' {
        Some(after + 1)
    } else {
        None
    }
}

/// Scan a numeric literal starting at a digit; consumes underscores,
/// base prefixes, a fractional part, an exponent, and any alphanumeric
/// suffix (`u32`, `f64`). Stops before `..` so range expressions survive.
fn scan_number(bytes: &[u8], mut i: usize) -> usize {
    let n = bytes.len();
    let radix_prefix = bytes[i] == b'0'
        && i + 1 < n
        && matches!(bytes[i + 1], b'x' | b'X' | b'o' | b'O' | b'b' | b'B');
    if radix_prefix {
        i += 2;
        while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        return i;
    }
    while i < n && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
        i += 1;
    }
    // Fraction: only if `.` is followed by a digit (so `430.max(x)` and
    // `0..8` don't absorb the dot).
    if i + 1 < n && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
        i += 1;
        while i < n && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
            i += 1;
        }
    }
    // Exponent.
    if i < n && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < n && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < n && bytes[j].is_ascii_digit() {
            i = j;
            while i < n && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                i += 1;
            }
        }
    }
    // Type suffix.
    while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
        i += 1;
    }
    i
}

/// Parse the numeric value of a `NumLit` token as `f64`, ignoring
/// underscores and any type suffix. Returns `None` for non-decimal bases
/// (hex masks are never timing constants).
pub fn num_value(text: &str) -> Option<f64> {
    let t = text.replace('_', "");
    if t.starts_with("0x") || t.starts_with("0X") || t.starts_with("0o") || t.starts_with("0b") {
        return None;
    }
    let digits: String = t
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == 'e' || *c == 'E' || *c == '-')
        .collect();
    digits.parse().ok()
}

// ---------------------------------------------------------------------------
// `#[cfg(test)]` region detection
// ---------------------------------------------------------------------------

/// Byte ranges of the source covered by test-gated items: any item annotated
/// `#[cfg(test)]` (including `#[cfg(all(test, …))]`) or `#[test]`, through
/// the end of its brace-delimited body (or terminating `;`).
pub fn test_regions(src: &str, toks: &[Tok]) -> Vec<(usize, usize)> {
    let sig: Vec<&Tok> = toks.iter().filter(|t| t.significant()).collect();
    let mut regions: Vec<(usize, usize)> = Vec::new();
    let mut k = 0usize;
    while k < sig.len() {
        if sig[k].kind == TokKind::Punct
            && sig[k].text(src) == "#"
            && k + 1 < sig.len()
            && sig[k + 1].text(src) == "["
        {
            // Collect the attribute tokens up to the matching `]`.
            let mut depth = 0i32;
            let mut j = k + 1;
            let mut has_cfg = false;
            let mut has_test = false;
            let mut has_not = false;
            let mut bare_test = true;
            while j < sig.len() {
                match sig[j].text(src) {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "cfg" => has_cfg = true,
                    "test" => has_test = true,
                    "not" => has_not = true,
                    _ => {}
                }
                if depth > 0 && !matches!(sig[j].text(src), "[" | "test") {
                    bare_test = false;
                }
                j += 1;
            }
            // `cfg(not(test))` is live code, not test code.
            let is_test_attr = (has_cfg && has_test && !has_not) || (has_test && bare_test);
            if is_test_attr && j < sig.len() {
                // Skip any further attributes, then find the item's extent.
                let mut m = j + 1;
                while m + 1 < sig.len() && sig[m].text(src) == "#" && sig[m + 1].text(src) == "[" {
                    let mut d = 0i32;
                    while m < sig.len() {
                        match sig[m].text(src) {
                            "[" => d += 1,
                            "]" => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        m += 1;
                    }
                    m += 1;
                }
                let start = sig[k].lo;
                let mut brace = 0i32;
                let mut end = src.len();
                let mut p = m;
                while p < sig.len() {
                    match sig[p].text(src) {
                        "{" => brace += 1,
                        "}" => {
                            brace -= 1;
                            if brace == 0 {
                                end = sig[p].hi;
                                break;
                            }
                        }
                        ";" if brace == 0 => {
                            end = sig[p].hi;
                            break;
                        }
                        _ => {}
                    }
                    p += 1;
                }
                regions.push((start, end));
                k = p + 1;
                continue;
            }
        }
        k += 1;
    }
    regions
}

/// True when `offset` falls inside any of `regions`.
pub fn in_regions(regions: &[(usize, usize)], offset: usize) -> bool {
    regions.iter().any(|&(lo, hi)| offset >= lo && offset < hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src)
            .into_iter()
            .filter(|t| t.significant())
            .map(|t| (t.kind, &src[t.lo..t.hi]))
            .collect()
    }

    #[test]
    fn covers_every_byte_in_order() {
        let src = r##"fn main() { let s = r#"a "quoted" b"#; /* c /* d */ e */ let t = 'a'; let l: &'static str = "x\n"; }"##;
        let toks = lex(src);
        let mut pos = 0;
        for t in &toks {
            assert_eq!(t.lo, pos, "gap before {t:?}");
            pos = t.hi;
        }
        assert_eq!(pos, src.len());
    }

    #[test]
    fn nested_block_comments_are_one_token() {
        let src = "a /* x /* y */ z */ b";
        let ks = kinds(src);
        assert_eq!(
            ks,
            vec![(TokKind::Ident, "a"), (TokKind::Ident, "b")],
            "comment fully skipped"
        );
        let all = lex(src);
        assert!(all
            .iter()
            .any(|t| t.kind == TokKind::BlockComment && t.text(src) == "/* x /* y */ z */"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r####"let x = r##"inner "# quote"## ;"####;
        let ks = kinds(src);
        assert!(ks
            .iter()
            .any(|(k, s)| *k == TokKind::RawStrLit && s.contains("inner")));
        assert_eq!(ks.last().unwrap().1, ";");
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let ks = kinds("fn f<'a>(x: &'a u8) { let c = 'b'; let nl = '\\n'; }");
        let lifetimes: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, s)| *s)
            .collect();
        let chars: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == TokKind::CharLit)
            .map(|(_, s)| *s)
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        assert_eq!(chars, vec!["'b'", "'\\n'"]);
    }

    #[test]
    fn numbers_keep_underscores_suffixes_and_ranges() {
        let ks = kinds("let a = 430_000u64; let b = 1.5e-3; for i in 0..8 {}");
        let nums: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == TokKind::NumLit)
            .map(|(_, s)| *s)
            .collect();
        assert_eq!(nums, vec!["430_000u64", "1.5e-3", "0", "8"]);
        assert_eq!(num_value("430_000u64"), Some(430_000.0));
        assert_eq!(num_value("53"), Some(53.0));
        assert_eq!(num_value("0xFF"), None);
    }

    #[test]
    fn byte_literals() {
        let ks = kinds(r##"let a = b'x'; let s = b"bytes"; let r = br#"raw"#;"##);
        assert!(ks
            .iter()
            .any(|(k, s)| *k == TokKind::CharLit && *s == "b'x'"));
        assert!(ks
            .iter()
            .any(|(k, s)| *k == TokKind::StrLit && *s == "b\"bytes\""));
        assert!(ks
            .iter()
            .any(|(k, s)| *k == TokKind::RawStrLit && s.starts_with("br#")));
    }

    #[test]
    fn strings_hide_rule_triggers() {
        let src = r#"let msg = "Instant::now() is forbidden";"#;
        let idents: Vec<&str> = kinds(src)
            .into_iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, s)| s)
            .collect();
        assert_eq!(idents, vec!["let", "msg"], "no Instant token leaks out");
    }

    #[test]
    fn raw_ident_is_ident_not_raw_string() {
        let ks = kinds("let r#type = 1;");
        assert!(ks
            .iter()
            .any(|(k, s)| *k == TokKind::Ident && *s == "r#type"));
    }

    #[test]
    fn unterminated_forms_run_to_eof() {
        for src in ["\"abc", "/* open", "r#\"raw", "'"] {
            let toks = lex(src);
            assert_eq!(toks.last().unwrap().hi, src.len(), "input {src:?}");
        }
    }

    #[test]
    fn cfg_test_region_spans_the_module() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn more() {}";
        let toks = lex(src);
        let regions = test_regions(src, &toks);
        assert_eq!(regions.len(), 1);
        let unwrap_at = src.find("unwrap").unwrap();
        assert!(in_regions(&regions, unwrap_at));
        assert!(!in_regions(&regions, src.find("lib").unwrap()));
        assert!(!in_regions(&regions, src.find("more").unwrap()));
    }

    #[test]
    fn cfg_all_test_and_bare_test_attrs_detected() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod t { }\n#[test]\nfn one() { }\n#[cfg(feature = \"y\")]\nfn not_test() { }";
        let toks = lex(src);
        let regions = test_regions(src, &toks);
        assert_eq!(regions.len(), 2);
        assert!(!in_regions(&regions, src.find("not_test").unwrap()));
    }

    #[test]
    fn cfg_test_use_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() {}";
        let toks = lex(src);
        let regions = test_regions(src, &toks);
        assert_eq!(regions.len(), 1);
        assert!(!in_regions(&regions, src.find("lib").unwrap()));
    }
}
