//! The `pcm-lint` binary.
//!
//! ```text
//! cargo run -p pcm-lint -- --workspace [--json] [--json-out FILE]
//!                          [--allow <rule>]... [--root DIR] [--list-rules]
//!                          [--no-cache] [--cache FILE] [--threads N]
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/IO error.

use pcm_lint::diag::to_json_report;
use pcm_lint::{rules, run_with, workspace, RunOptions};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: pcm-lint --workspace [--json] [--json-out FILE] [--allow RULE]... \
         [--root DIR] [--list-rules] [--no-cache] [--cache FILE] [--threads N]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_stdout = false;
    let mut json_out: Option<PathBuf> = None;
    let mut allow: Vec<String> = Vec::new();
    let mut root: Option<PathBuf> = None;
    let mut list_rules = false;
    let mut workspace_flag = false;
    let mut use_cache = true;
    let mut cache_path: Option<PathBuf> = None;
    let mut threads = 0usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workspace" => workspace_flag = true,
            "--json" => json_stdout = true,
            "--list-rules" => list_rules = true,
            "--no-cache" => use_cache = false,
            "--cache" => {
                i += 1;
                cache_path = Some(PathBuf::from(args.get(i).unwrap_or_else(|| usage())));
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|t| t.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--json-out" => {
                i += 1;
                json_out = Some(PathBuf::from(args.get(i).unwrap_or_else(|| usage())));
            }
            "--allow" => {
                i += 1;
                let r = args.get(i).unwrap_or_else(|| usage()).clone();
                if !rules::RULE_IDS.contains(&r.as_str()) {
                    eprintln!("unknown rule `{r}`; see --list-rules");
                    std::process::exit(2);
                }
                allow.push(r);
            }
            "--root" => {
                i += 1;
                root = Some(PathBuf::from(args.get(i).unwrap_or_else(|| usage())));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
        }
        i += 1;
    }
    if list_rules {
        for rule in rules::all_rules() {
            println!("{:<24} {}", rule.id(), rule.describe());
        }
        return;
    }
    if !workspace_flag {
        usage();
    }
    let root = root
        .or_else(|| {
            std::env::current_dir()
                .ok()
                .and_then(|d| workspace::find_root(&d))
        })
        .unwrap_or_else(|| {
            eprintln!("cannot locate the workspace root (no Cargo.toml with [workspace])");
            std::process::exit(2);
        });
    let opts = RunOptions {
        allow,
        use_cache,
        cache_path,
        threads,
    };
    let report = run_with(&root, &opts).unwrap_or_else(|e| {
        eprintln!("pcm-lint: {e}");
        std::process::exit(2);
    });
    if let Some(path) = &json_out {
        if let Err(e) = std::fs::write(path, to_json_report(&report.findings)) {
            eprintln!("pcm-lint: cannot write {}: {e}", path.display());
            std::process::exit(2);
        }
    }
    if json_stdout {
        println!("{}", to_json_report(&report.findings));
    } else {
        for d in &report.findings {
            println!("{}\n", d.render());
        }
        eprintln!(
            "pcm-lint: {} file(s) scanned ({} cached, {} parsed), {} finding(s), {} waived",
            report.files_scanned,
            report.cache_hits,
            report.cache_misses,
            report.findings.len(),
            report.waived.len()
        );
    }
    if !report.findings.is_empty() {
        std::process::exit(1);
    }
}
