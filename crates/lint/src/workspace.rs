//! Workspace discovery: find the crates, load and lex their sources, and
//! classify each file so rules know which invariants apply where.

use crate::items::{self, FileFacts};
use crate::lexer::{self, Tok};
use std::path::{Path, PathBuf};

/// Crates whose behaviour must be bit-for-bit reproducible: simulation
/// logic, schemes, device models, types, telemetry, synthetic-workload
/// generation and the request-serving front end. Wall-clock reads and
/// unordered-container iteration are forbidden here.
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "pcm-types",
    "pcm-device",
    "schemes",
    "core",
    "memsim",
    "telemetry",
    "workloads",
    "serve",
];

/// Library crates where panics are API: `unwrap()`/`expect()` outside
/// `#[cfg(test)]` must be replaced by typed errors or carry a waiver with a
/// written justification. (Binaries — `experiments`, `bench`, `lint` — may
/// exit on startup errors.)
pub const LIBRARY_CRATES: &[&str] = DETERMINISTIC_CRATES;

/// One lexed source file plus everything rules need to reason about it.
pub struct SourceFile {
    /// Repo-relative path with `/` separators (stable across platforms).
    pub path: String,
    /// The crate directory name (`memsim` for `crates/memsim/src/...`),
    /// empty for root-level `tests/` and `examples/`.
    pub crate_name: String,
    /// Full file contents.
    pub src: String,
    /// Complete token cover of `src` — **empty for cache-restored files**,
    /// which skip lexing entirely (their per-file diagnostics were cached
    /// alongside [`SourceFile::facts`], so no rule needs their tokens).
    pub toks: Vec<Tok>,
    /// Byte offsets where each line starts (line 1 at `starts[0]`).
    line_starts: Vec<usize>,
    /// Byte ranges covered by `#[cfg(test)]` / `#[test]` items (empty for
    /// cache-restored files; the facts carry per-item `in_test` flags).
    pub test_regions: Vec<(usize, usize)>,
    /// Parsed item structure and cross-file facts (see [`crate::items`]).
    pub facts: FileFacts,
}

impl SourceFile {
    /// Lex and parse `src` and attach path metadata. `path` must be
    /// repo-relative.
    pub fn new(path: &str, src: String) -> SourceFile {
        let toks = lexer::lex(&src);
        let test_regions = lexer::test_regions(&src, &toks);
        let facts = items::parse(&src, &toks, &test_regions);
        let crate_name = crate_of(path);
        SourceFile {
            path: path.to_string(),
            crate_name,
            line_starts: line_starts(&src),
            src,
            toks,
            test_regions,
            facts,
        }
    }

    /// Rebuild a file from the warm cache: the source text (needed for
    /// diagnostic snippets) plus previously parsed facts, with no lexing.
    pub fn restored(path: &str, src: String, facts: FileFacts) -> SourceFile {
        SourceFile {
            path: path.to_string(),
            crate_name: crate_of(path),
            line_starts: line_starts(&src),
            src,
            toks: Vec::new(),
            test_regions: Vec::new(),
            facts,
        }
    }

    /// Indices (into `toks`) of the significant tokens, in order.
    pub fn sig_indices(&self) -> Vec<usize> {
        self.toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.significant())
            .map(|(i, _)| i)
            .collect()
    }

    /// 1-based (line, column) of a byte offset.
    pub fn line_col(&self, offset: usize) -> (u32, u32) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (
            line as u32 + 1,
            (offset - self.line_starts[line]) as u32 + 1,
        )
    }

    /// The text of the 1-based `line`, without its newline.
    pub fn line_text(&self, line: u32) -> &str {
        let i = (line as usize).saturating_sub(1);
        let lo = self.line_starts.get(i).copied().unwrap_or(self.src.len());
        let hi = self
            .line_starts
            .get(i + 1)
            .map(|&h| h - 1)
            .unwrap_or(self.src.len());
        self.src[lo..hi].trim_end_matches('\r')
    }

    /// True when `offset` is inside a test-gated item.
    pub fn in_test(&self, offset: usize) -> bool {
        lexer::in_regions(&self.test_regions, offset)
    }

    /// Build a [`crate::diag::Diagnostic`] for the token span starting at
    /// byte `lo`, `len` bytes wide.
    pub fn diag(
        &self,
        rule: &'static str,
        lo: usize,
        len: usize,
        msg: String,
    ) -> crate::diag::Diagnostic {
        let (line, col) = self.line_col(lo);
        crate::diag::Diagnostic {
            rule,
            path: self.path.clone(),
            line,
            col,
            len: len as u32,
            msg,
            snippet: self.line_text(line).to_string(),
        }
    }
}

fn crate_of(path: &str) -> String {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("")
        .to_string()
}

fn line_starts(src: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in src.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// The lexed workspace: all scanned sources plus the CI workflow text.
pub struct Workspace {
    /// Repo root.
    pub root: PathBuf,
    /// Every scanned `.rs` file.
    pub files: Vec<SourceFile>,
    /// `.github/workflows/ci.yml` contents, when present.
    pub ci_yml: Option<String>,
}

impl Workspace {
    /// Files belonging to crate `name` (by directory under `crates/`).
    pub fn crate_files<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SourceFile> {
        self.files.iter().filter(move |f| f.crate_name == name)
    }

    /// The file at `path`, if scanned.
    pub fn file(&self, path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.path == path)
    }
}

/// Recursively collect `.rs` files under `dir`, skipping anything under a
/// `fixtures` or `target` directory.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if p.is_dir() {
            if name == "fixtures" || name == "target" {
                continue;
            }
            collect_rs(&p, out)?;
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Every scannable `.rs` path under `root` as `(repo-relative, absolute)`
/// pairs, in deterministic order: every crate's `src/`, `tests/`,
/// `benches/` and `examples/`, plus the root `tests/` and `examples/`
/// directories. Paths under `fixtures/` are skipped so the lint's own
/// golden violations don't gate the build.
pub fn source_paths(root: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for c in crate_dirs {
            for sub in ["src", "tests", "benches", "examples"] {
                collect_rs(&c.join(sub), &mut paths)?;
            }
        }
    }
    collect_rs(&root.join("tests"), &mut paths)?;
    collect_rs(&root.join("examples"), &mut paths)?;
    Ok(paths
        .into_iter()
        .map(|p| {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            (rel, p)
        })
        .collect())
}

/// Load the whole workspace rooted at `root` (see [`source_paths`]) plus
/// the CI workflow, lexing and parsing every file (no cache).
pub fn load(root: &Path) -> std::io::Result<Workspace> {
    let mut files = Vec::new();
    for (rel, p) in source_paths(root)? {
        let src = std::fs::read_to_string(&p)?;
        files.push(SourceFile::new(&rel, src));
    }
    let ci_yml = std::fs::read_to_string(root.join(".github/workflows/ci.yml")).ok();
    Ok(Workspace {
        root: root.to_path_buf(),
        files,
        ci_yml,
    })
}

/// Walk upward from `start` to the directory containing the workspace
/// `Cargo.toml` (the one declaring `[workspace]`).
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(d) = cur {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        cur = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_and_snippets() {
        let f = SourceFile::new("crates/memsim/src/x.rs", "ab\ncd\nef".into());
        assert_eq!(f.line_col(0), (1, 1));
        assert_eq!(f.line_col(3), (2, 1));
        assert_eq!(f.line_col(4), (2, 2));
        assert_eq!(f.line_text(2), "cd");
        assert_eq!(f.crate_name, "memsim");
    }

    #[test]
    fn root_files_have_no_crate() {
        let f = SourceFile::new("tests/integration.rs", String::new());
        assert_eq!(f.crate_name, "");
    }

    #[test]
    fn loads_this_workspace() {
        let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
        let ws = load(&root).expect("load workspace");
        assert!(ws
            .files
            .iter()
            .any(|f| f.path == "crates/memsim/src/system.rs"));
        assert!(
            !ws.files.iter().any(|f| f.path.contains("/fixtures/")),
            "fixtures are never scanned"
        );
        assert!(ws.ci_yml.is_some(), "ci.yml found");
    }
}
