//! Golden-fixture tests: each rule runs against a small source file with
//! known violations (and known non-violations), and the diagnostics must
//! land on exact `(line, col)` positions. The fixtures live under
//! `tests/fixtures/`, which the workspace loader deliberately skips, so
//! the lint's own test material never gates the real tree.

use pcm_lint::diag::{to_json_report, Diagnostic};
use pcm_lint::rules::{all_rules, Rule};
use pcm_lint::workspace::{SourceFile, Workspace};
use pcm_types::{Json, JsonCodec};
use std::path::PathBuf;

/// Build a synthetic workspace from `(repo-relative path, source)` pairs.
fn ws(files: &[(&str, &str)], ci_yml: Option<&str>) -> Workspace {
    Workspace {
        root: PathBuf::from("."),
        files: files
            .iter()
            .map(|(p, s)| SourceFile::new(p, (*s).to_string()))
            .collect(),
        ci_yml: ci_yml.map(str::to_string),
    }
}

fn rule(id: &str) -> Box<dyn Rule> {
    all_rules()
        .into_iter()
        .find(|r| r.id() == id)
        .unwrap_or_else(|| panic!("unknown rule {id}"))
}

/// Run one rule and return sorted `(line, col)` positions of its findings.
fn locs(id: &str, ws: &Workspace) -> Vec<(u32, u32)> {
    let diags = rule(id).check(ws);
    for d in &diags {
        assert_eq!(d.rule, id);
        assert!(!d.snippet.is_empty(), "snippet attached: {d:?}");
    }
    let mut out: Vec<(u32, u32)> = diags.iter().map(|d| (d.line, d.col)).collect();
    out.sort_unstable();
    out
}

#[test]
fn wall_clock_fixture() {
    let src = include_str!("fixtures/wall_clock.rs");
    let w = ws(&[("crates/memsim/src/fixture.rs", src)], None);
    // `Instant` in the import and in `timed()`; `SystemTime` under
    // `#[cfg(test)]` is exempt.
    assert_eq!(locs("no-wall-clock", &w), vec![(1, 16), (4, 13)]);
}

#[test]
fn unordered_iter_fixture() {
    let src = include_str!("fixtures/unordered_iter.rs");
    let w = ws(&[("crates/memsim/src/fixture.rs", src)], None);
    // The `for … in &self.counters` header and `.values()` call; `.get()`
    // probes and test-module iteration are exempt.
    assert_eq!(locs("no-unordered-iteration", &w), vec![(10, 30), (17, 14)]);
}

#[test]
fn unordered_iter_ignores_non_deterministic_crates() {
    let src = include_str!("fixtures/unordered_iter.rs");
    let w = ws(&[("crates/experiments/src/fixture.rs", src)], None);
    assert_eq!(locs("no-unordered-iteration", &w), vec![]);
}

#[test]
fn typed_units_fixture() {
    let src = include_str!("fixtures/typed_units.rs");
    let w = ws(&[("crates/schemes/src/fixture.rs", src)], None);
    // `430` and `53` in live code; the test module's literals are exempt.
    assert_eq!(locs("typed-units", &w), vec![(2, 17), (3, 19)]);
}

#[test]
fn typed_units_allows_pcm_types_itself() {
    let src = include_str!("fixtures/typed_units.rs");
    let w = ws(&[("crates/pcm-types/src/fixture.rs", src)], None);
    assert_eq!(locs("typed-units", &w), vec![]);
}

#[test]
fn lossy_casts_fixture() {
    let src = include_str!("fixtures/lossy_casts.rs");
    let w = ws(&[("crates/core/src/fixture.rs", src)], None);
    // `busy as u32`, `t_ps as usize`, `self.as_ps() as u32`; the
    // non-time-valued `width as u32` is exempt.
    assert_eq!(
        locs("no-lossy-cycle-casts", &w),
        vec![(3, 11), (7, 10), (18, 22)]
    );
}

#[test]
fn panic_policy_fixture() {
    let src = include_str!("fixtures/panic_policy.rs");
    let w = ws(&[("crates/memsim/src/fixture.rs", src)], None);
    // `.unwrap()` and `.expect("…")`; the parser-style `expect(b'[')`
    // (non-string argument) and the test module are exempt.
    assert_eq!(locs("panic-policy", &w), vec![(2, 22), (3, 21)]);
}

#[test]
fn telemetry_emit_count_parity_fixture() {
    let event = include_str!("fixtures/telemetry_event.rs");
    let summary = include_str!("fixtures/telemetry_summary.rs");
    let emit = include_str!("fixtures/telemetry_emit.rs");
    let w = ws(
        &[
            ("crates/telemetry/src/event.rs", event),
            ("crates/telemetry/src/summary.rs", summary),
            ("crates/core/src/emit.rs", emit),
        ],
        None,
    );
    // `WritePause` is emitted but never counted by the summary fixture.
    let diags = rule("telemetry-emit-count-parity").check(&w);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!((diags[0].line, diags[0].col), (8, 5));
    assert_eq!(diags[0].path, "crates/telemetry/src/event.rs");
    assert!(diags[0].msg.contains("WritePause"));
    assert!(diags[0].msg.contains("dropped from `report`"));
}

#[test]
fn telemetry_dead_variant_is_a_finding() {
    let event = include_str!("fixtures/telemetry_event.rs");
    let summary = include_str!("fixtures/telemetry_summary.rs");
    // No emitter file at all: every variant is dead telemetry.
    let w = ws(
        &[
            ("crates/telemetry/src/event.rs", event),
            ("crates/telemetry/src/summary.rs", summary),
        ],
        None,
    );
    let diags = rule("telemetry-emit-count-parity").check(&w);
    assert_eq!(diags.len(), 3, "{diags:?}");
    assert!(diags.iter().all(|d| d.msg.contains("never constructed")));
}

#[test]
fn telemetry_stale_summary_arm_is_a_finding() {
    let event = include_str!("fixtures/telemetry_event.rs");
    let emit = include_str!("fixtures/telemetry_emit.rs");
    // The summary aggregates a variant that no longer exists.
    let summary = "pub struct TraceSummary { pub n: u64 }\n\
                   impl TraceSummary {\n\
                       pub fn absorb(&mut self, e: &TelemetryEvent) {\n\
                           match e {\n\
                               TelemetryEvent::BankBusy { .. } => self.n += 1,\n\
                               TelemetryEvent::DrainStart => self.n += 1,\n\
                               TelemetryEvent::WritePause { .. } => self.n += 1,\n\
                               TelemetryEvent::Departed => self.n += 1,\n\
                           }\n\
                       }\n\
                   }\n";
    let w = ws(
        &[
            ("crates/telemetry/src/event.rs", event),
            ("crates/telemetry/src/summary.rs", summary),
            ("crates/core/src/emit.rs", emit),
        ],
        None,
    );
    let diags = rule("telemetry-emit-count-parity").check(&w);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].path, "crates/telemetry/src/summary.rs");
    assert!(diags[0].msg.contains("Departed"));
    assert!(diags[0].msg.contains("stale arm"));
}

#[test]
fn resurrected_api_fixture() {
    let src = include_str!("fixtures/resurrected_api.rs");
    let w = ws(&[("crates/memsim/src/fixture.rs", src)], None);
    assert_eq!(
        locs("no-resurrected-apis", &w),
        vec![(2, 16), (2, 28), (3, 15)]
    );
}

#[test]
fn ci_parity_fixture() {
    let src = include_str!("fixtures/ci_parity.rs");
    let ci = "jobs:\n  smoke:\n    run: cargo run -p tetris-experiments -- run --quick\n";
    let w = ws(
        &[("crates/experiments/src/bin/tetris-experiments.rs", src)],
        Some(ci),
    );
    // `run` appears as a word in ci.yml; `orphan` does not.
    let diags = rule("ci-phase-parity").check(&w);
    assert_eq!(diags.len(), 1);
    assert_eq!((diags[0].line, diags[0].col), (5, 14));
    assert!(diags[0].msg.contains("`orphan`"));
}

#[test]
fn scheme_registry_fixture() {
    let src = include_str!("fixtures/scheme_registry.rs");
    let w = ws(&[("crates/schemes/src/preset.rs", src)], None);
    let diags = rule("registry-parity-generic").check(&w);
    let msgs: Vec<&str> = diags.iter().map(|d| d.msg.as_str()).collect();
    assert_eq!(diags.len(), 3, "findings: {msgs:?}");
    // ALL declares 2 entries for a 3-variant enum…
    assert!(msgs.iter().any(|m| m.contains("declares 2 entries")));
    // …and omits Gamma entirely…
    assert!(msgs
        .iter()
        .any(|m| m.contains("SchemeSelect::Gamma is missing from SchemeSelect::ALL")));
    // …while the canonical tag "beta" no longer parses back.
    assert!(msgs
        .iter()
        .any(|m| m.contains("canonical tag \"beta\"") && m.contains("round-trips")));
}

#[test]
fn scheme_registry_accepts_complete_registry() {
    // The real preset.rs is a complete registry; lifted wholesale so the
    // fixture tracks reality.
    let src = include_str!("../../schemes/src/preset.rs");
    let w = ws(&[("crates/schemes/src/preset.rs", src)], None);
    assert_eq!(locs("registry-parity-generic", &w), vec![]);
}

#[test]
fn policy_registry_fixture() {
    let src = include_str!("fixtures/policy_registry.rs");
    let w = ws(&[("crates/memsim/src/replacement.rs", src)], None);
    let diags = rule("registry-parity-generic").check(&w);
    let msgs: Vec<&str> = diags.iter().map(|d| d.msg.as_str()).collect();
    assert_eq!(diags.len(), 3, "findings: {msgs:?}");
    // ALL declares 2 entries for a 3-variant enum…
    assert!(msgs.iter().any(|m| m.contains("declares 2 entries")));
    // …and omits Fifo entirely…
    assert!(msgs
        .iter()
        .any(|m| m.contains("PolicySelect::Fifo is missing from PolicySelect::ALL")));
    // …while the canonical tag "clock" no longer parses back.
    assert!(msgs
        .iter()
        .any(|m| m.contains("canonical tag \"clock\"") && m.contains("round-trips")));
}

#[test]
fn policy_registry_accepts_complete_registry() {
    // The real replacement.rs is a complete registry; lifted wholesale so
    // the fixture tracks reality.
    let src = include_str!("../../memsim/src/replacement.rs");
    let w = ws(&[("crates/memsim/src/replacement.rs", src)], None);
    assert_eq!(locs("registry-parity-generic", &w), vec![]);
}

#[test]
fn registry_without_all_array_is_a_finding() {
    // tag + from_str make it a registry enum; the missing ALL array is
    // itself the finding.
    let src = "pub enum Mode { A, B }\n\
               impl Mode {\n\
                   pub fn tag(&self) -> &'static str {\n\
                       match self { Mode::A => \"a\", Mode::B => \"b\" }\n\
                   }\n\
               }\n\
               impl FromStr for Mode {\n\
                   type Err = ();\n\
                   fn from_str(s: &str) -> Result<Self, ()> {\n\
                       match s { \"a\" => Ok(Mode::A), \"b\" => Ok(Mode::B), _ => Err(()) }\n\
                   }\n\
               }\n";
    let w = ws(&[("crates/core/src/mode.rs", src)], None);
    let diags = rule("registry-parity-generic").check(&w);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!((diags[0].line, diags[0].col), (1, 10));
    assert!(diags[0]
        .msg
        .contains("has no `ALL: [Mode; N]` registry array"));
}

#[test]
fn lone_tag_accessor_is_not_a_registry() {
    // TelemetryEvent-style: a tag() accessor with no FromStr and no ALL
    // array is not sweep machinery; the rule must stay silent.
    let src = "pub enum Label { X, Y }\n\
               impl Label {\n\
                   pub fn tag(&self) -> &'static str {\n\
                       match self { Label::X => \"x\", Label::Y => \"y\" }\n\
                   }\n\
               }\n";
    let w = ws(&[("crates/core/src/label.rs", src)], None);
    assert_eq!(locs("registry-parity-generic", &w), vec![]);
}

#[test]
fn units_flow_fixture() {
    let src = include_str!("fixtures/units_flow.rs");
    let w = ws(&[("crates/core/src/fixture.rs", src)], None);
    let mut diags = rule("units-flow").check(&w);
    diags.sort_by_key(|d| (d.line, d.col));
    let got: Vec<(u32, u32, &str)> = diags
        .iter()
        .map(|d| (d.line, d.col, d.msg.as_str()))
        .collect();
    // 14: ns-named argument into the cycles-typed `schedule` parameter;
    // 15: cycles-named let bound to an as_ns() initializer;
    // 16: struct-literal init of `width_cycles` from as_ns();
    // 17: field assignment of `width_cycles` from as_ns().
    assert_eq!(diags.len(), 4, "{got:#?}");
    assert_eq!(
        diags.iter().map(|d| d.line).collect::<Vec<_>>(),
        vec![14, 15, 16, 17]
    );
    assert!(diags[0]
        .msg
        .contains("parameter `deadline_cycles` of `schedule`"));
    assert!(diags[1].msg.contains("`let width_cycles`"));
    assert!(diags[2].msg.contains("field `width_cycles`"));
    assert!(diags[3].msg.contains("field `width_cycles`"));
}

#[test]
fn units_flow_ignores_agreeing_and_neutral_flows() {
    // Same shapes, units consistent: no findings.
    let src = "pub struct Window { pub width_cycles: u64 }\n\
               pub fn schedule(deadline_cycles: u64) -> u64 { deadline_cycles }\n\
               pub fn plan(t: &PcmTimings, freq: ClockFreq) -> u64 {\n\
                   let budget_cycles = t.t_set.cycles_at(freq);\n\
                   let ok = schedule(budget_cycles);\n\
                   let mut w = Window { width_cycles: budget_cycles };\n\
                   w.width_cycles = t.t_read.cycles_at(freq);\n\
                   ok + w.width_cycles\n\
               }\n";
    let w = ws(&[("crates/core/src/fixture.rs", src)], None);
    assert_eq!(locs("units-flow", &w), vec![]);
}

#[test]
fn dead_config_fixture() {
    let src = include_str!("fixtures/dead_config.rs");
    let w = ws(&[("crates/memsim/src/fixture.rs", src)], None);
    let diags = rule("dead-config-knob").check(&w);
    // `orphan_knob` is only touched by the builder and validate();
    // `capacity_lines` is read by model_step and stays clean.
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!((diags[0].line, diags[0].col), (5, 9));
    assert!(diags[0].msg.contains("`WriteCacheConfig::orphan_knob`"));
}

#[test]
fn dead_config_sees_reads_in_other_files() {
    let src = include_str!("fixtures/dead_config.rs");
    let reader = "pub fn drain(cfg: &WriteCacheConfig) -> u64 { cfg.orphan_knob }\n";
    let w = ws(
        &[
            ("crates/memsim/src/fixture.rs", src),
            ("crates/core/src/reader.rs", reader),
        ],
        None,
    );
    assert_eq!(locs("dead-config-knob", &w), vec![]);
}

#[test]
fn render_golden() {
    let src = include_str!("fixtures/typed_units.rs");
    let w = ws(&[("crates/schemes/src/fixture.rs", src)], None);
    let diags = rule("typed-units").check(&w);
    let r = diags[0].render();
    let mut lines = r.lines();
    assert!(lines
        .next()
        .unwrap()
        .starts_with("crates/schemes/src/fixture.rs:2:17: [typed-units]"));
    assert_eq!(lines.next().unwrap(), "    2 |     let t_set = 430;");
    assert_eq!(lines.next().unwrap(), "      |                 ^^^");
}

#[test]
fn json_report_round_trips_fixture_findings() {
    let src = include_str!("fixtures/panic_policy.rs");
    let w = ws(&[("crates/memsim/src/fixture.rs", src)], None);
    let diags = rule("panic-policy").check(&w);
    let report = to_json_report(&diags);
    let v = Json::parse(&report).expect("valid JSON");
    assert_eq!(
        v.get("count").and_then(Json::as_u64),
        Some(diags.len() as u64)
    );
    let Some(Json::Arr(arr)) = v.get("findings") else {
        panic!("findings array missing");
    };
    for (j, d) in arr.iter().zip(&diags) {
        assert_eq!(&Diagnostic::from_json(j).expect("decodes"), d);
    }
}

/// The graph rules' clean pass on the real tree is only meaningful if the
/// item parser actually recovers the structures they check. Pin that the
/// real registries, telemetry enum and config structs are all visible.
#[test]
fn real_tree_feeds_the_graph_rules() {
    use pcm_lint::items::ItemKind;
    let root = pcm_lint::workspace::find_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let w = pcm_lint::workspace::load(&root).expect("load workspace");

    let event = w.file("crates/telemetry/src/event.rs").expect("event.rs");
    let ev = event
        .facts
        .named(ItemKind::Enum, "TelemetryEvent")
        .expect("TelemetryEvent parsed");
    assert!(ev.fields.len() >= 15, "variants: {}", ev.fields.len());

    let preset = w.file("crates/schemes/src/preset.rs").expect("preset.rs");
    let all = preset
        .facts
        .items
        .iter()
        .find(|it| it.kind == ItemKind::Const && it.name == "ALL")
        .expect("SchemeSelect::ALL parsed");
    assert_eq!(all.ty, "[ SchemeSelect ; 9 ]");

    let graph = pcm_lint::graph::ItemGraph::build(&w);
    for target in ["SystemConfig", "SchemeConfig", "WriteCacheConfig"] {
        let decls = graph
            .structs
            .get(target)
            .unwrap_or_else(|| panic!("{target} indexed"));
        assert!(
            decls.iter().any(|d| !d.item.fields.is_empty()),
            "{target} has parsed fields"
        );
    }
    assert!(
        graph.fns.len() > 100,
        "workspace fn index populated ({} names)",
        graph.fns.len()
    );
}

/// The real tree must lint clean with the real allowlist — the same gate
/// the `static-analysis` CI job enforces, kept honest under `cargo test`.
#[test]
fn workspace_is_clean() {
    let root = pcm_lint::workspace::find_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let report = pcm_lint::run(&root, &[]).expect("lint runs");
    let rendered: Vec<String> = report.findings.iter().map(Diagnostic::render).collect();
    assert!(
        report.findings.is_empty(),
        "workspace has lint findings:\n{}",
        rendered.join("\n")
    );
    assert!(report.files_scanned > 100, "whole tree scanned");
}
