//! Golden-fixture tests: each rule runs against a small source file with
//! known violations (and known non-violations), and the diagnostics must
//! land on exact `(line, col)` positions. The fixtures live under
//! `tests/fixtures/`, which the workspace loader deliberately skips, so
//! the lint's own test material never gates the real tree.

use pcm_lint::diag::{to_json_report, Diagnostic};
use pcm_lint::rules::{all_rules, Rule};
use pcm_lint::workspace::{SourceFile, Workspace};
use pcm_types::{Json, JsonCodec};
use std::path::PathBuf;

/// Build a synthetic workspace from `(repo-relative path, source)` pairs.
fn ws(files: &[(&str, &str)], ci_yml: Option<&str>) -> Workspace {
    Workspace {
        root: PathBuf::from("."),
        files: files
            .iter()
            .map(|(p, s)| SourceFile::new(p, (*s).to_string()))
            .collect(),
        ci_yml: ci_yml.map(str::to_string),
    }
}

fn rule(id: &str) -> Box<dyn Rule> {
    all_rules()
        .into_iter()
        .find(|r| r.id() == id)
        .unwrap_or_else(|| panic!("unknown rule {id}"))
}

/// Run one rule and return sorted `(line, col)` positions of its findings.
fn locs(id: &str, ws: &Workspace) -> Vec<(u32, u32)> {
    let diags = rule(id).check(ws);
    for d in &diags {
        assert_eq!(d.rule, id);
        assert!(!d.snippet.is_empty(), "snippet attached: {d:?}");
    }
    let mut out: Vec<(u32, u32)> = diags.iter().map(|d| (d.line, d.col)).collect();
    out.sort_unstable();
    out
}

#[test]
fn wall_clock_fixture() {
    let src = include_str!("fixtures/wall_clock.rs");
    let w = ws(&[("crates/memsim/src/fixture.rs", src)], None);
    // `Instant` in the import and in `timed()`; `SystemTime` under
    // `#[cfg(test)]` is exempt.
    assert_eq!(locs("no-wall-clock", &w), vec![(1, 16), (4, 13)]);
}

#[test]
fn unordered_iter_fixture() {
    let src = include_str!("fixtures/unordered_iter.rs");
    let w = ws(&[("crates/memsim/src/fixture.rs", src)], None);
    // The `for … in &self.counters` header and `.values()` call; `.get()`
    // probes and test-module iteration are exempt.
    assert_eq!(locs("no-unordered-iteration", &w), vec![(10, 30), (17, 14)]);
}

#[test]
fn unordered_iter_ignores_non_deterministic_crates() {
    let src = include_str!("fixtures/unordered_iter.rs");
    let w = ws(&[("crates/experiments/src/fixture.rs", src)], None);
    assert_eq!(locs("no-unordered-iteration", &w), vec![]);
}

#[test]
fn typed_units_fixture() {
    let src = include_str!("fixtures/typed_units.rs");
    let w = ws(&[("crates/schemes/src/fixture.rs", src)], None);
    // `430` and `53` in live code; the test module's literals are exempt.
    assert_eq!(locs("typed-units", &w), vec![(2, 17), (3, 19)]);
}

#[test]
fn typed_units_allows_pcm_types_itself() {
    let src = include_str!("fixtures/typed_units.rs");
    let w = ws(&[("crates/pcm-types/src/fixture.rs", src)], None);
    assert_eq!(locs("typed-units", &w), vec![]);
}

#[test]
fn lossy_casts_fixture() {
    let src = include_str!("fixtures/lossy_casts.rs");
    let w = ws(&[("crates/core/src/fixture.rs", src)], None);
    // `busy as u32`, `t_ps as usize`, `self.as_ps() as u32`; the
    // non-time-valued `width as u32` is exempt.
    assert_eq!(
        locs("no-lossy-cycle-casts", &w),
        vec![(3, 11), (7, 10), (18, 22)]
    );
}

#[test]
fn panic_policy_fixture() {
    let src = include_str!("fixtures/panic_policy.rs");
    let w = ws(&[("crates/memsim/src/fixture.rs", src)], None);
    // `.unwrap()` and `.expect("…")`; the parser-style `expect(b'[')`
    // (non-string argument) and the test module are exempt.
    assert_eq!(locs("panic-policy", &w), vec![(2, 22), (3, 21)]);
}

#[test]
fn telemetry_parity_fixture() {
    let event = include_str!("fixtures/telemetry_event.rs");
    let summary = include_str!("fixtures/telemetry_summary.rs");
    let w = ws(
        &[
            ("crates/telemetry/src/event.rs", event),
            ("crates/telemetry/src/summary.rs", summary),
        ],
        None,
    );
    // `WritePause` is never mentioned by the summary fixture.
    let diags = rule("telemetry-parity").check(&w);
    assert_eq!(diags.len(), 1);
    assert_eq!((diags[0].line, diags[0].col), (8, 5));
    assert!(diags[0].msg.contains("WritePause"));
}

#[test]
fn resurrected_api_fixture() {
    let src = include_str!("fixtures/resurrected_api.rs");
    let w = ws(&[("crates/memsim/src/fixture.rs", src)], None);
    assert_eq!(
        locs("no-resurrected-apis", &w),
        vec![(2, 16), (2, 28), (3, 15)]
    );
}

#[test]
fn ci_parity_fixture() {
    let src = include_str!("fixtures/ci_parity.rs");
    let ci = "jobs:\n  smoke:\n    run: cargo run -p tetris-experiments -- run --quick\n";
    let w = ws(
        &[("crates/experiments/src/bin/tetris-experiments.rs", src)],
        Some(ci),
    );
    // `run` appears as a word in ci.yml; `orphan` does not.
    let diags = rule("ci-phase-parity").check(&w);
    assert_eq!(diags.len(), 1);
    assert_eq!((diags[0].line, diags[0].col), (5, 14));
    assert!(diags[0].msg.contains("`orphan`"));
}

#[test]
fn scheme_registry_fixture() {
    let src = include_str!("fixtures/scheme_registry.rs");
    let w = ws(&[("crates/schemes/src/preset.rs", src)], None);
    let diags = rule("scheme-registry-parity").check(&w);
    let msgs: Vec<&str> = diags.iter().map(|d| d.msg.as_str()).collect();
    assert_eq!(diags.len(), 3, "findings: {msgs:?}");
    // ALL declares 2 entries for a 3-variant enum…
    assert!(msgs.iter().any(|m| m.contains("declares 2 entries")));
    // …and omits Gamma entirely…
    assert!(msgs
        .iter()
        .any(|m| m.contains("SchemeSelect::Gamma is missing from SchemeSelect::ALL")));
    // …while the canonical tag "beta" no longer parses back.
    assert!(msgs
        .iter()
        .any(|m| m.contains("canonical tag \"beta\"") && m.contains("round-trips")));
}

#[test]
fn scheme_registry_accepts_complete_registry() {
    // The real preset.rs is a complete registry; lifted wholesale so the
    // fixture tracks reality.
    let src = include_str!("../../schemes/src/preset.rs");
    let w = ws(&[("crates/schemes/src/preset.rs", src)], None);
    assert_eq!(locs("scheme-registry-parity", &w), vec![]);
}

#[test]
fn policy_registry_fixture() {
    let src = include_str!("fixtures/policy_registry.rs");
    let w = ws(&[("crates/memsim/src/replacement.rs", src)], None);
    let diags = rule("policy-registry-parity").check(&w);
    let msgs: Vec<&str> = diags.iter().map(|d| d.msg.as_str()).collect();
    assert_eq!(diags.len(), 3, "findings: {msgs:?}");
    // ALL declares 2 entries for a 3-variant enum…
    assert!(msgs.iter().any(|m| m.contains("declares 2 entries")));
    // …and omits Fifo entirely…
    assert!(msgs
        .iter()
        .any(|m| m.contains("PolicySelect::Fifo is missing from PolicySelect::ALL")));
    // …while the canonical tag "clock" no longer parses back.
    assert!(msgs
        .iter()
        .any(|m| m.contains("canonical tag \"clock\"") && m.contains("round-trips")));
}

#[test]
fn policy_registry_accepts_complete_registry() {
    // The real replacement.rs is a complete registry; lifted wholesale so
    // the fixture tracks reality.
    let src = include_str!("../../memsim/src/replacement.rs");
    let w = ws(&[("crates/memsim/src/replacement.rs", src)], None);
    assert_eq!(locs("policy-registry-parity", &w), vec![]);
}

#[test]
fn render_golden() {
    let src = include_str!("fixtures/typed_units.rs");
    let w = ws(&[("crates/schemes/src/fixture.rs", src)], None);
    let diags = rule("typed-units").check(&w);
    let r = diags[0].render();
    let mut lines = r.lines();
    assert!(lines
        .next()
        .unwrap()
        .starts_with("crates/schemes/src/fixture.rs:2:17: [typed-units]"));
    assert_eq!(lines.next().unwrap(), "    2 |     let t_set = 430;");
    assert_eq!(lines.next().unwrap(), "      |                 ^^^");
}

#[test]
fn json_report_round_trips_fixture_findings() {
    let src = include_str!("fixtures/panic_policy.rs");
    let w = ws(&[("crates/memsim/src/fixture.rs", src)], None);
    let diags = rule("panic-policy").check(&w);
    let report = to_json_report(&diags);
    let v = Json::parse(&report).expect("valid JSON");
    assert_eq!(
        v.get("count").and_then(Json::as_u64),
        Some(diags.len() as u64)
    );
    let Some(Json::Arr(arr)) = v.get("findings") else {
        panic!("findings array missing");
    };
    for (j, d) in arr.iter().zip(&diags) {
        assert_eq!(&Diagnostic::from_json(j).expect("decodes"), d);
    }
}

/// The real tree must lint clean with the real allowlist — the same gate
/// the `static-analysis` CI job enforces, kept honest under `cargo test`.
#[test]
fn workspace_is_clean() {
    let root = pcm_lint::workspace::find_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let report = pcm_lint::run(&root, &[]).expect("lint runs");
    let rendered: Vec<String> = report.findings.iter().map(Diagnostic::render).collect();
    assert!(
        report.findings.is_empty(),
        "workspace has lint findings:\n{}",
        rendered.join("\n")
    );
    assert!(report.files_scanned > 100, "whole tree scanned");
}
