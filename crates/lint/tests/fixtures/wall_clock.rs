use std::time::Instant;

fn timed() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use std::time::SystemTime;

    #[test]
    fn clocks_are_fine_in_tests() {
        let _ = SystemTime::now();
    }
}
