// Broken config surface: `orphan_knob` is written by the builder and
// validated, but no model code ever reads it.
pub struct WriteCacheConfig {
    pub capacity_lines: usize,
    pub orphan_knob: u64,
}

pub struct WriteCacheConfigBuilder {
    capacity_lines: usize,
    orphan_knob: u64,
}

impl WriteCacheConfigBuilder {
    pub fn build(&self) -> WriteCacheConfig {
        WriteCacheConfig {
            capacity_lines: self.capacity_lines,
            orphan_knob: self.orphan_knob,
        }
    }
}

pub fn validate(cfg: &WriteCacheConfig) -> bool {
    cfg.orphan_knob > 0 && cfg.capacity_lines > 0
}

pub fn model_step(cfg: &WriteCacheConfig) -> usize {
    cfg.capacity_lines * 2
}
