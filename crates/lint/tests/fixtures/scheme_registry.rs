// Broken registry: Gamma is in the enum but ALL declares 2 entries and
// omits it, from_str never constructs it, and the canonical tag "beta"
// does not parse back ("b" is accepted instead).
pub enum SchemeSelect {
    Alpha,
    #[default]
    Beta,
    Gamma,
}

impl SchemeSelect {
    pub const ALL: [SchemeSelect; 2] = [SchemeSelect::Alpha, SchemeSelect::Beta];

    pub const fn tag(&self) -> &'static str {
        match self {
            SchemeSelect::Alpha => "alpha",
            SchemeSelect::Beta => "beta",
            SchemeSelect::Gamma => "gamma",
        }
    }
}

impl SchemeConfig {
    pub fn instantiate(&self) -> Box<dyn WriteScheme> {
        match self.select {
            SchemeSelect::Alpha => Box::new(AlphaWrite),
            SchemeSelect::Beta => Box::new(BetaWrite),
            SchemeSelect::Gamma => Box::new(GammaWrite),
        }
    }
}

impl FromStr for SchemeSelect {
    type Err = ParseSchemeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "alpha" => Ok(SchemeSelect::Alpha),
            "b" => Ok(SchemeSelect::Beta),
            "gamma" => Ok(SchemeSelect::Gamma),
            _ => Err(ParseSchemeError { input: s.into() }),
        }
    }
}
