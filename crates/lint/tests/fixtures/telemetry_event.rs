/// Fixture telemetry events.
pub enum TelemetryEvent {
    /// Aggregated below.
    BankBusy { at: u64, bank: u32 },
    /// Aggregated below.
    DrainStart,
    /// Forgotten by the summary fixture on purpose.
    WritePause { at: u64 },
}
