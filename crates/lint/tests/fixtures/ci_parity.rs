fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => {}
        Some("orphan") => {}
        _ => {}
    }
}
