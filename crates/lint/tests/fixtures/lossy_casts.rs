fn clip(busy: u64, width: u64) -> u32 {
    let w = width as u32;
    (busy as u32) + w
}

fn to_slot(t_ps: u64) -> usize {
    t_ps as usize
}

struct T;

impl T {
    fn as_ps(&self) -> u64 {
        7
    }

    fn narrow(&self) -> u32 {
        self.as_ps() as u32
    }
}
