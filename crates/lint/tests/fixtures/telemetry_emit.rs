// Fixture emitter: constructs BankBusy, DrainStart and WritePause (the
// summary fixture forgets WritePause), and never constructs nothing else.
pub fn emit_all(sink: &mut Vec<TelemetryEvent>, at: u64) {
    sink.push(TelemetryEvent::BankBusy { at, bank: 0 });
    sink.push(TelemetryEvent::DrainStart);
    sink.push(TelemetryEvent::WritePause { at });
}
