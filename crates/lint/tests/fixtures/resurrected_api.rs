fn build_the_old_way() {
    let _sys = System::new(SystemConfig::small_test());
    let _rc = RunConfig::quick();
}
