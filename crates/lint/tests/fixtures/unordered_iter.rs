use std::collections::HashMap;

struct Wear {
    counters: HashMap<u64, u64>,
}

impl Wear {
    fn dump(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for (_k, v) in &self.counters {
            out.push(*v);
        }
        out
    }

    fn walk(&self) -> u64 {
        self.counters.values().sum()
    }

    fn probe(&self, k: u64) -> Option<&u64> {
        self.counters.get(&k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_is_fine_in_tests() {
        let w = Wear {
            counters: HashMap::new(),
        };
        assert_eq!(w.counters.values().count(), 0);
    }
}
