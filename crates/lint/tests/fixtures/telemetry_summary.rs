/// Fixture aggregator that forgets `WritePause`.
pub struct TraceSummary {
    pub busy: u64,
    pub drains: u64,
}

impl TraceSummary {
    pub fn absorb(&mut self, e: &TelemetryEvent) {
        match e {
            TelemetryEvent::BankBusy { .. } => self.busy += 1,
            TelemetryEvent::DrainStart => self.drains += 1,
            _ => {}
        }
    }
}
