fn first_last(v: &[u64]) -> u64 {
    let a = v.first().unwrap();
    let b = v.last().expect("nonempty");
    a + b
}

struct Parser;

impl Parser {
    fn expect(&self, _b: u8) -> bool {
        true
    }

    fn ok(&self) -> bool {
        self.expect(b'[')
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_here() {
        let v = [1u64];
        assert_eq!(v.first().unwrap(), &1);
    }
}
