fn service_model() -> u64 {
    let t_set = 430;
    let t_reset = 53;
    t_set + t_reset + 7
}

#[cfg(test)]
mod tests {
    #[test]
    fn literal_expectations_are_the_point() {
        assert_eq!(super::service_model(), 430 + 53 + 7);
    }
}
