// Broken units flow: ns-born values land in cycles-typed slots across a
// call, a let binding, a struct-literal init, and a field assignment.
pub struct Window {
    pub width_cycles: u64,
}

pub fn schedule(deadline_cycles: u64) -> u64 {
    deadline_cycles
}

pub fn plan(t: &PcmTimings, freq: ClockFreq) -> u64 {
    let budget_ns = t.t_set.as_ns();
    let fine = schedule(t.t_set.cycles_at(freq));
    let bad_call = schedule(budget_ns);
    let width_cycles = t.t_read.as_ns();
    let mut w = Window { width_cycles: t.t_set.as_ns() };
    w.width_cycles = t.t_reset.as_ns();
    fine + bad_call + width_cycles + w.width_cycles
}
