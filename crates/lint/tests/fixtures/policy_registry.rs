// Broken registry: Fifo is in the enum but ALL declares 2 entries and
// omits it, instantiate() never constructs it, and the canonical tag
// "clock" does not parse back ("ck" is accepted instead).
pub enum PolicySelect {
    Lru,
    #[default]
    Clock,
    Fifo,
}

impl PolicySelect {
    pub const ALL: [PolicySelect; 2] = [PolicySelect::Lru, PolicySelect::Clock];

    pub const fn tag(&self) -> &'static str {
        match self {
            PolicySelect::Lru => "lru",
            PolicySelect::Clock => "clock",
            PolicySelect::Fifo => "fifo",
        }
    }

    pub fn instantiate(&self, sets: usize, assoc: usize) -> Box<dyn ReplacementPolicy> {
        match self {
            PolicySelect::Lru => Box::new(LruPolicy::new(sets, assoc)),
            PolicySelect::Clock => Box::new(ClockPolicy::new(sets, assoc)),
            PolicySelect::Fifo => Box::new(LruPolicy::new(sets, assoc)),
        }
    }
}

impl FromStr for PolicySelect {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "lru" => Ok(PolicySelect::Lru),
            "ck" => Ok(PolicySelect::Clock),
            "fifo" => Ok(PolicySelect::Fifo),
            _ => Err(ParsePolicyError { input: s.into() }),
        }
    }
}
