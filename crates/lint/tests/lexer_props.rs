//! Property tests for the lint lexer.
//!
//! The rules' soundness rests entirely on the lexer being *total* (every
//! byte lands in exactly one token, so nothing is silently skipped) and on
//! it classifying the tricky forms correctly: nested block comments, raw
//! strings with arbitrary `#` fences, lifetimes that look like the start
//! of a char literal, and `#[cfg(test)]` region boundaries. Each property
//! here generates hostile inputs for one of those and checks the
//! invariant over hundreds of seeded cases.

use pcm_lint::lexer::{in_regions, lex, test_regions, TokKind};
use pcm_types::propcheck::{any_bool, one_of, vec_of, Strategy};
use pcm_types::{prop_assert, prop_assert_eq, propcheck};

/// Fragments chosen to collide with every lexer mode: comments that
/// contain string quotes, strings that contain comment markers, raw
/// strings, byte/char literals, numbers with underscores and exponents.
fn fragments() -> impl Strategy<Value = Vec<&'static str>> {
    vec_of(
        one_of(&[
            "fn",
            "x",
            "42",
            "0x1f",
            "1_000u64",
            "1.5e3",
            "\"str with // inside\"",
            "\"unclosed",
            "// line comment with \" quote",
            "/* block */",
            "/* outer /* nested */ still open",
            "r\"raw\"",
            "r#\"raw with \" quote\"#",
            "'a'",
            "'\\n'",
            "b'['",
            "b\"bytes\"",
            "&'a str",
            "'lifetime",
            "..",
            "::",
            "#[cfg(test)]",
            "=>",
        ]),
        0..=15usize,
    )
}

propcheck! {
    /// Totality: the token stream partitions the input byte-exactly, no
    /// token is empty, and trivia never counts as significant.
    fn lex_is_total(frags in fragments(), sep in one_of(&[" ", "\n", "\t "])) {
        let src = frags.join(sep);
        let toks = lex(&src);
        let mut pos = 0usize;
        for t in &toks {
            prop_assert_eq!(t.lo, pos, "gap or overlap at byte {}", pos);
            prop_assert!(t.hi > t.lo, "empty token at {}", t.lo);
            if matches!(
                t.kind,
                TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment
            ) {
                prop_assert!(!t.significant());
            }
            pos = t.hi;
        }
        prop_assert_eq!(pos, src.len(), "lexer stopped early");
    }

    /// Block comments nest to arbitrary depth and swallow any filler —
    /// including quotes and stray comment markers — as one trivia token.
    fn nested_block_comments_are_one_token(
        depth in 1usize..6,
        filler in one_of(&["x y", "\"quote\"", "* star", "// inner line", "'c'"]),
    ) {
        let mut s = String::new();
        for _ in 0..depth {
            s.push_str("/*");
        }
        s.push_str(filler);
        for _ in 0..depth {
            s.push_str("*/");
        }
        let toks = lex(&s);
        prop_assert_eq!(toks.len(), 1, "one comment token, got {:?}", toks);
        prop_assert_eq!(toks[0].kind, TokKind::BlockComment);
    }

    /// A raw string closes only on a quote followed by its own fence of
    /// `#`s, so interior quotes and hashes never terminate it early.
    fn raw_strings_close_on_matching_fence(
        hashes in 1usize..5,
        inner in one_of(&["plain", "a # b", "// not a comment", "/* not */", "multi\nline"]),
    ) {
        let fence = "#".repeat(hashes);
        let lit = format!("r{fence}\"{inner}\"{fence}");
        let src = format!("{lit} tail");
        let toks = lex(&src);
        prop_assert_eq!(toks[0].kind, TokKind::RawStrLit);
        prop_assert_eq!(toks[0].text(&src), lit.as_str());
    }

    /// `'name` after `&` is a lifetime, never a half-open char literal;
    /// the tokens after it survive intact.
    fn lifetimes_are_not_char_literals(name in one_of(&["a", "de", "static", "_x"])) {
        let src = format!("&'{name} T");
        let toks = lex(&src);
        let sig: Vec<_> = toks.iter().filter(|t| t.significant()).collect();
        prop_assert_eq!(sig.len(), 3, "&, lifetime, ident: {:?}", toks);
        prop_assert_eq!(sig[1].kind, TokKind::Lifetime);
        let want = format!("'{name}");
        prop_assert_eq!(sig[1].text(&src), want.as_str());
        prop_assert_eq!(sig[2].text(&src), "T");
    }

    /// Real single-quoted characters (including escapes) are char
    /// literals, and the literal spans exactly the quoted form.
    fn char_literals_are_chars(c in one_of(&["a", "Z", "9", "\\n", "\\'", " ", "*"])) {
        let src = format!("let x = '{c}';");
        let lit = format!("'{c}'");
        let toks = lex(&src);
        let found = toks
            .iter()
            .find(|t| t.kind == TokKind::CharLit)
            .map(|t| t.text(&src).to_string());
        prop_assert_eq!(found, Some(lit));
    }

    /// `#[cfg(test)]` gates exactly the item it annotates: code inside is
    /// in a test region, code before and after is not, and `cfg(not(test))`
    /// gates nothing (it is live code).
    fn cfg_test_regions_cover_the_gated_item(gated in any_bool(), pad in 0usize..4) {
        let prefix = "fn live() { let q = 1; }\n".repeat(pad);
        let attr = if gated { "#[cfg(test)]" } else { "#[cfg(not(test))]" };
        let src = format!("{prefix}{attr}\nmod m {{ fn inner() {{}} }}\nfn after() {{}}\n");
        let toks = lex(&src);
        let regions = test_regions(&src, &toks);
        let inner = src.find("inner").expect("inner present");
        prop_assert_eq!(in_regions(&regions, inner), gated);
        let after = src.rfind("after").expect("after present");
        prop_assert!(!in_regions(&regions, after), "code after the item is live");
        if pad > 0 {
            prop_assert!(!in_regions(&regions, 0), "code before the attr is live");
        }
    }
}
