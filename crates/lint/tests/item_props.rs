//! Property tests for the item parser.
//!
//! The graph rules' soundness rests on the parser recovering *every*
//! top-level item (a missed `fn` means a missed call-graph node, a missed
//! `struct` means unclassified fields) with spans that tile the file. The
//! properties generate item soups from templates covering every
//! [`ItemKind`] dispatch arm — in random order and multiplicity — and
//! check the structural invariants over hundreds of seeded cases, the
//! same way `lexer_props.rs` pins the lexer.

use pcm_lint::items::{self, FileFacts, ItemKind};
use pcm_lint::lexer::{lex, test_regions};
use pcm_types::propcheck::{any_bool, one_of, vec_of, Strategy};
use pcm_types::{prop_assert, prop_assert_eq, propcheck, JsonCodec};

/// One well-formed top-level item per template, covering every dispatch
/// arm of the item parser (attrs, generics, impl-for, nested items,
/// tuple/unit bodies, macros).
fn soup() -> impl Strategy<Value = Vec<&'static str>> {
    vec_of(
        one_of(&[
            "fn f(t_ns: u64) -> u64 { t_ns }",
            "pub fn g(x: usize, y_cycles: u64) -> u64 { y_cycles + x as u64 }",
            "pub(crate) fn h<T: Clone>(v: Vec<T>) -> usize { v.len() }",
            "pub struct S { pub width_cycles: u64, name: String }",
            "struct Tup(u32, u64);",
            "enum E { A, B(u32), C { x_ns: u64 } }",
            "impl S { fn get(&self) -> u64 { self.width_cycles } }",
            "impl Display for S { fn fmt(&self, f: &mut Formatter<'_>) -> Result { Ok(()) } }",
            "const K: usize = 4;",
            "static ST: u64 = 0;",
            "type Alias = Vec<u32>;",
            "use std::collections::BTreeMap;",
            "mod m { fn inner() {} }",
            "#[derive(Debug)]\nstruct D { d: u8 }",
            "macro_rules! mk { () => {}; }",
            "trait Tr { fn req(&self) -> u64; }",
        ]),
        0..=12usize,
    )
}

fn parse(src: &str) -> FileFacts {
    let toks = lex(src);
    let regions = test_regions(src, &toks);
    items::parse(src, &toks, &regions)
}

propcheck! {
    /// Byte-exact span cover: every significant token of a well-formed
    /// item soup lies inside exactly one top-level item, and the item
    /// count matches the soup — nothing merged, nothing dropped.
    fn top_level_items_tile_generated_soups(
        frags in soup(),
        sep in one_of(&["\n", "\n\n", "\n \n"]),
    ) {
        let src = frags.join(sep);
        let facts = parse(&src);
        let top: Vec<_> = facts.items.iter().filter(|i| i.depth == 0).collect();
        prop_assert_eq!(top.len(), frags.len(), "one top-level item per fragment");
        for t in lex(&src).iter().filter(|t| t.significant()) {
            let cover = top
                .iter()
                .filter(|i| t.lo >= i.lo && t.lo < i.hi)
                .count();
            prop_assert_eq!(cover, 1, "token `{}` at byte {}", t.text(&src), t.lo);
        }
    }

    /// Nesting is well-formed: every nested item lies inside the span of
    /// some shallower container, and `lo < hi` everywhere.
    fn nested_items_stay_inside_their_parent(frags in soup()) {
        let src = frags.join("\n");
        let facts = parse(&src);
        for item in &facts.items {
            prop_assert!(item.lo < item.hi, "non-empty span for {:?}", item.kind);
            if item.depth > 0 {
                let parent = facts.items.iter().find(|p| {
                    p.depth == item.depth - 1 && p.lo <= item.lo && item.hi <= p.hi
                });
                prop_assert!(
                    parent.is_some(),
                    "nested item {:?} has no enclosing depth-{} container",
                    item.name,
                    item.depth - 1
                );
            }
        }
    }

    /// Recovered structure matches the templates: fn parameters keep
    /// their declared names in order, struct fields keep name and type,
    /// and methods inherit the impl's self type.
    fn recovered_signatures_match_templates(pad in 0usize..4) {
        let prefix = "const PAD: usize = 0;\n".repeat(pad);
        let src = format!(
            "{prefix}pub fn g(x: usize, y_cycles: u64) -> u64 {{ y_cycles }}\n\
             pub struct S {{ pub width_cycles: u64, name: String }}\n\
             impl S {{ fn get(&self) -> u64 {{ self.width_cycles }} }}\n"
        );
        let facts = parse(&src);
        let g = facts.named(ItemKind::Fn, "g").expect("fn g parsed");
        let names: Vec<&str> = g.params.iter().map(|p| p.name.as_str()).collect();
        prop_assert_eq!(names, vec!["x", "y_cycles"]);
        let s = facts.named(ItemKind::Struct, "S").expect("struct S parsed");
        prop_assert_eq!(s.fields.len(), 2usize);
        prop_assert_eq!(s.fields[0].name.as_str(), "width_cycles");
        prop_assert_eq!(s.fields[1].ty.as_str(), "String");
        let get = facts.named(ItemKind::Fn, "get").expect("method parsed");
        prop_assert_eq!(get.self_ty.as_str(), "S");
    }

    /// `#[cfg(test)]` gating flows into every parsed item's `in_test`
    /// flag, and its absence leaves every item live.
    fn in_test_flags_follow_cfg_gating(frags in soup(), gated in any_bool()) {
        let body: String = frags.join("\n");
        let src = if gated {
            format!("#[cfg(test)]\nmod t {{\n{body}\n}}\n")
        } else {
            format!("mod t {{\n{body}\n}}\n")
        };
        let facts = parse(&src);
        for item in facts.items.iter().filter(|i| i.depth > 0) {
            prop_assert_eq!(
                item.in_test,
                gated,
                "item {:?} gating (gated = {})",
                item.name,
                gated
            );
        }
    }

    /// Facts round-trip through the cache's JSON codec byte-exactly:
    /// decode(encode(f)) == f and re-encoding is byte-identical, so a
    /// cache hit can never change a scan's output.
    fn facts_round_trip_json_byte_exactly(frags in soup()) {
        let src = frags.join("\n");
        let facts = parse(&src);
        let text = facts.to_json_string();
        let back = FileFacts::from_json_str(&text).expect("facts decode");
        prop_assert!(back == facts, "decoded facts differ");
        prop_assert_eq!(back.to_json_string(), text, "re-encoding not byte-stable");
    }
}
