//! Cache-equivalence tests: a warm (fully cached) scan must be
//! byte-identical to a cold one, and any content change must invalidate
//! exactly the changed file. These are the guarantees that make the CI
//! `static-analysis` job's cold-then-warm double run sound.

use pcm_lint::cache::Cache;
use pcm_lint::workspace::{find_root, source_paths};
use pcm_lint::{run_with, scan, RunOptions};
use std::path::Path;

/// The real workspace's sources, loaded once per test.
fn real_sources() -> (Vec<(String, String)>, Option<String>) {
    let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let sources = source_paths(&root)
        .expect("source paths")
        .into_iter()
        .map(|(rel, abs)| (rel, std::fs::read_to_string(&abs).expect("readable")))
        .collect();
    let ci = std::fs::read_to_string(root.join(".github/workflows/ci.yml")).ok();
    (sources, ci)
}

#[test]
fn warm_scan_is_byte_identical_to_cold() {
    let (sources, ci) = real_sources();
    let cold = scan(&sources, ci.clone(), &Cache::empty(), 0);
    assert_eq!(cold.hits, 0);
    assert_eq!(cold.misses, sources.len());

    let warm = scan(&sources, ci, &cold.cache, 0);
    assert_eq!(warm.hits, sources.len(), "every file restored from cache");
    assert_eq!(warm.misses, 0);

    // Same findings, same order, field-for-field — not merely "same
    // count". The cache stores exactly what the scan would recompute.
    assert_eq!(cold.diags, warm.diags);
}

#[test]
fn changed_file_invalidates_only_itself() {
    let (mut sources, ci) = real_sources();
    let cold = scan(&sources, ci.clone(), &Cache::empty(), 0);

    // Touch one file: the edit defines a new fn the facts must pick up.
    let idx = sources
        .iter()
        .position(|(rel, _)| rel == "crates/memsim/src/system.rs")
        .expect("system.rs scanned");
    sources[idx].1.push_str("\nfn cache_probe_marker_fn() {}\n");

    let warm = scan(&sources, ci, &cold.cache, 0);
    assert_eq!(warm.misses, 1, "exactly the edited file re-parses");
    assert_eq!(warm.hits, sources.len() - 1);
}

#[test]
fn run_with_cache_round_trips_through_disk() {
    let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let cache_path = root
        .join("target")
        .join(format!("lint-cache-test-{}.json", std::process::id()));
    let opts = RunOptions {
        allow: Vec::new(),
        use_cache: true,
        cache_path: Some(cache_path.clone()),
        threads: 0,
    };
    let first = run_with(&root, &opts).expect("cold run");
    assert_eq!(first.cache_hits, 0);
    let second = run_with(&root, &opts).expect("warm run");
    let _ = std::fs::remove_file(&cache_path);
    assert_eq!(second.cache_misses, 0, "second run fully cached");
    assert_eq!(second.cache_hits, first.files_scanned);
    let render = |r: &pcm_lint::LintReport| {
        r.findings
            .iter()
            .chain(&r.waived)
            .map(|d| d.render())
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(render(&first), render(&second), "reports byte-identical");
}
