//! The blocking serving loop: protocol lines in, responses out.
//!
//! One connection drives one [`ServeEngine`]. Every request line gets an
//! immediate `ack` (admitted) or `shed` (refused) response; completions
//! surface as `ok` lines as the simulated clock advances past them —
//! possibly several per input line, possibly none. At end of input the
//! engine drains, the remaining `ok` lines flush, and a final `done`
//! summary closes the stream. Malformed lines get an `err` response and
//! are otherwise ignored, so one bad client line cannot wedge the run.

use crate::engine::{Admission, ServeEngine};
use crate::proto;
use pcm_types::Ps;
use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::TcpListener;

/// Pump one request stream through the engine, writing responses to
/// `out`. Returns the `(served, shed)` totals from the engine.
pub fn serve_connection<R: BufRead, W: Write>(
    engine: &mut ServeEngine,
    input: R,
    out: &mut W,
) -> io::Result<(u64, u64)> {
    // Engine-assigned id → client-chosen wire id, for `ok` responses.
    let mut wire_ids: BTreeMap<u64, u64> = BTreeMap::new();
    fn respond<W: Write>(
        engine: &mut ServeEngine,
        wire_ids: &mut BTreeMap<u64, u64>,
        out: &mut W,
    ) -> io::Result<()> {
        for c in engine.take_completions() {
            if let Some(wire) = wire_ids.remove(&c.id) {
                writeln!(out, "{}", proto::format_ok(wire, c.latency.as_ps()))?;
            }
        }
        Ok(())
    }
    for line in input.lines() {
        let line = line?;
        let req = match proto::parse_request(&line) {
            Ok(None) => continue,
            Ok(Some(r)) => r,
            Err(e) => {
                writeln!(out, "err {}", e.msg)?;
                continue;
            }
        };
        match engine.submit(req.tenant, req.kind, req.addr, Ps::from_ns(req.at_ns)) {
            Ok(Admission::Accepted { id }) => {
                wire_ids.insert(id, req.id);
                writeln!(out, "{}", proto::format_ack(req.id))?;
            }
            Ok(Admission::Shed { depth }) => {
                writeln!(out, "{}", proto::format_shed(req.id, depth))?;
            }
            Err(e) => writeln!(out, "err {e}")?,
        }
        respond(engine, &mut wire_ids, out)?;
    }
    engine
        .drain()
        .map_err(|e| io::Error::other(e.to_string()))?;
    respond(engine, &mut wire_ids, out)?;
    let s = engine.stats();
    writeln!(
        out,
        "{}",
        proto::format_done(s.served, s.shed, s.peak_write_depth)
    )?;
    out.flush()?;
    Ok((s.served, s.shed))
}

/// Bind `addr` (e.g. `127.0.0.1:0`), announce the bound address on
/// stdout as `listening <addr>`, serve exactly one connection, then
/// return. One-shot by design: the engine's simulated clock belongs to
/// one request stream, and CI smoke tests want a process that exits.
pub fn listen_once(addr: &str, engine: &mut ServeEngine) -> io::Result<(u64, u64)> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let mut stdout = io::stdout();
    writeln!(stdout, "listening {bound}")?;
    stdout.flush()?;
    let (stream, _) = listener.accept()?;
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    serve_connection(engine, reader, &mut writer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServeConfig;
    use crate::load::{OpenLoop, OpenLoopConfig};
    use crate::proto::format_request;
    use pcm_memsim::SystemConfig;
    use pcm_telemetry::NullSink;

    fn engine(shed_watermark: usize) -> ServeEngine {
        let cfg = ServeConfig {
            system: SystemConfig::builder().small_caches().build().unwrap(),
            shed_watermark,
            ..ServeConfig::default()
        };
        ServeEngine::new(cfg, Box::new(NullSink)).unwrap()
    }

    #[test]
    fn connection_acks_serves_and_summarizes() {
        let mut input = String::new();
        for r in OpenLoop::new(OpenLoopConfig {
            requests: 64,
            ..OpenLoopConfig::default()
        }) {
            input.push_str(&format_request(&r));
            input.push('\n');
        }
        let mut out = Vec::new();
        let mut e = engine(usize::MAX);
        let (served, shed) = serve_connection(&mut e, input.as_bytes(), &mut out).unwrap();
        assert_eq!(served, 64);
        assert_eq!(shed, 0);
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().filter(|l| l.starts_with("ack ")).count(), 64);
        assert_eq!(text.lines().filter(|l| l.starts_with("ok ")).count(), 64);
        let last = text.lines().last().unwrap();
        assert!(last.starts_with("done served=64 shed=0"), "got `{last}`");
    }

    #[test]
    fn bad_lines_get_err_responses_and_are_skipped() {
        let input = "req 0 0 r 64 0\nnonsense\nreq 1 0 r 128 50\n";
        let mut out = Vec::new();
        let (served, _) =
            serve_connection(&mut engine(usize::MAX), input.as_bytes(), &mut out).unwrap();
        assert_eq!(served, 2);
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().filter(|l| l.starts_with("err ")).count(), 1);
    }

    #[test]
    fn saturating_stream_sheds_on_the_wire() {
        // Same-instant writes to one bank with a tiny watermark.
        let mut input = String::new();
        for i in 0..128u64 {
            input.push_str(&format!("req {i} 0 w {} 0\n", i * 64));
        }
        let mut out = Vec::new();
        let (served, shed) = serve_connection(&mut engine(2), input.as_bytes(), &mut out).unwrap();
        assert!(shed > 0, "tiny watermark must shed");
        assert_eq!(served + shed, 128);
        let text = String::from_utf8(out).unwrap();
        assert!(text.lines().any(|l| l.starts_with("shed ")));
    }

    #[test]
    fn loopback_socket_round_trip() {
        use std::io::Read;
        use std::net::TcpStream;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let bound = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = BufWriter::new(stream);
            let mut e = engine(usize::MAX);
            serve_connection(&mut e, reader, &mut writer).unwrap()
        });
        let mut client = TcpStream::connect(bound).unwrap();
        client
            .write_all(b"req 0 1 r 4096 0\nreq 1 1 w 8192 100\n")
            .unwrap();
        client.shutdown(std::net::Shutdown::Write).unwrap();
        let mut reply = String::new();
        BufReader::new(client).read_to_string(&mut reply).unwrap();
        let (served, shed) = server.join().unwrap();
        assert_eq!((served, shed), (2, 0));
        assert!(reply.lines().any(|l| l == "ack 0"));
        assert!(reply.lines().last().unwrap().starts_with("done served=2"));
    }
}
