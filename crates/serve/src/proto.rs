//! The line-delimited wire protocol and the socket [`RequestSource`].
//!
//! ## Grammar (one request or response per `\n`-terminated line)
//!
//! ```text
//! request   := "req" SP id SP tenant SP kind SP addr SP at-ns
//! kind      := "r" | "w"
//! id, tenant, addr, at-ns := decimal u64 / u32
//!
//! response  := "ack" SP id                 ; admitted, completion follows
//!            | "ok"  SP id SP latency-ps   ; served (latency simulated)
//!            | "shed" SP id SP depth       ; refused (429-style)
//!            | "err" SP message            ; malformed request line
//! summary   := "done" SP "served=" n SP "shed=" n SP "peakw=" n
//! ```
//!
//! `at-ns` is the request's arrival offset in **simulated** nanoseconds
//! from the start of the connection; the server never consults the host
//! clock, so a replayed request file produces bit-identical responses.
//! Client-chosen `id`s are echoed back verbatim and need not be dense,
//! but must be unique per connection.

use pcm_memsim::{AccessKind, RequestSource, TraceOp};
use pcm_types::Ps;
use std::fmt;
use std::io::BufRead;

/// One parsed request line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireRequest {
    /// Client-chosen request id (echoed in responses).
    pub id: u64,
    /// Tenant index.
    pub tenant: u32,
    /// Read or write.
    pub kind: AccessKind,
    /// Byte address (mapped modulo capacity, line-aligned by the engine).
    pub addr: u64,
    /// Arrival offset in simulated nanoseconds.
    pub at_ns: u64,
}

/// A malformed protocol line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtoError {
    /// What was wrong.
    pub msg: String,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad request line: {}", self.msg)
    }
}

impl std::error::Error for ProtoError {}

fn bad(msg: impl Into<String>) -> ProtoError {
    ProtoError { msg: msg.into() }
}

/// Parse one request line. Empty lines and `#` comments return `None`.
pub fn parse_request(line: &str) -> Result<Option<WireRequest>, ProtoError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    match parts.next() {
        Some("req") => {}
        Some(other) => return Err(bad(format!("unknown verb `{other}`"))),
        None => return Ok(None),
    }
    let mut field = |name: &str| {
        parts
            .next()
            .ok_or_else(|| bad(format!("missing field `{name}`")))
    };
    let id = field("id")?
        .parse::<u64>()
        .map_err(|_| bad("id must be a decimal u64"))?;
    let tenant = field("tenant")?
        .parse::<u32>()
        .map_err(|_| bad("tenant must be a decimal u32"))?;
    let kind = match field("kind")? {
        "r" => AccessKind::Read,
        "w" => AccessKind::Write,
        other => return Err(bad(format!("kind must be r|w, got `{other}`"))),
    };
    let addr = field("addr")?
        .parse::<u64>()
        .map_err(|_| bad("addr must be a decimal u64"))?;
    let at_ns = field("at-ns")?
        .parse::<u64>()
        .map_err(|_| bad("at-ns must be a decimal u64"))?;
    if parts.next().is_some() {
        return Err(bad("trailing fields after at-ns"));
    }
    Ok(Some(WireRequest {
        id,
        tenant,
        kind,
        addr,
        at_ns,
    }))
}

/// Render a request line (the inverse of [`parse_request`]).
pub fn format_request(r: &WireRequest) -> String {
    let k = match r.kind {
        AccessKind::Read => "r",
        AccessKind::Write => "w",
    };
    format!("req {} {} {} {} {}", r.id, r.tenant, k, r.addr, r.at_ns)
}

/// `ack <id>` — admitted.
pub fn format_ack(id: u64) -> String {
    format!("ack {id}")
}

/// `ok <id> <latency-ps>` — served.
pub fn format_ok(id: u64, latency_ps: u64) -> String {
    format!("ok {id} {latency_ps}")
}

/// `shed <id> <depth>` — refused by admission control.
pub fn format_shed(id: u64, depth: usize) -> String {
    format!("shed {id} {depth}")
}

/// `done served=<n> shed=<n> peakw=<n>` — end-of-connection summary.
pub fn format_done(served: u64, shed: u64, peak_write_depth: usize) -> String {
    format!("done served={served} shed={shed} peakw={peak_write_depth}")
}

/// A [`RequestSource`] that pulls protocol lines off any [`BufRead`] — a
/// TCP socket, stdin, or a request file — and feeds them to the
/// *simulator* as a single-core op stream (the third source family next
/// to trace files and synthetic generators).
///
/// Arrival offsets become instruction gaps at the given core frequency,
/// so replaying the stream through [`pcm_memsim::System`] reproduces the
/// stream's pacing in simulated time. Malformed lines end the stream
/// (the error is retrievable via [`LineSource::error`]).
pub struct LineSource<R: BufRead> {
    input: R,
    freq_mhz: u64,
    last_ns: u64,
    error: Option<ProtoError>,
    finished: bool,
}

impl<R: BufRead> LineSource<R> {
    /// Wrap a line reader; gaps are cycles at `freq_mhz`.
    pub fn new(input: R, freq_mhz: u64) -> Self {
        LineSource {
            input,
            freq_mhz,
            last_ns: 0,
            error: None,
            finished: false,
        }
    }

    /// The parse error that ended the stream, if any.
    pub fn error(&self) -> Option<&ProtoError> {
        self.error.as_ref()
    }
}

impl<R: BufRead + Send> RequestSource for LineSource<R> {
    fn next(&mut self, core: usize) -> Option<TraceOp> {
        if core != 0 || self.finished {
            return None;
        }
        loop {
            let mut line = String::new();
            match self.input.read_line(&mut line) {
                Ok(0) => {
                    self.finished = true;
                    return None;
                }
                Ok(_) => {}
                Err(e) => {
                    self.error = Some(bad(format!("read failed: {e}")));
                    self.finished = true;
                    return None;
                }
            }
            match parse_request(&line) {
                Ok(None) => continue,
                Ok(Some(r)) => {
                    let gap_ns = r.at_ns.saturating_sub(self.last_ns);
                    self.last_ns = self.last_ns.max(r.at_ns);
                    let gap = Ps::from_ns(gap_ns).cycles_at(self.freq_mhz);
                    return Some(TraceOp {
                        gap: gap.min(u32::MAX as u64) as u32,
                        kind: r.kind,
                        addr: r.addr,
                    });
                }
                Err(e) => {
                    self.error = Some(e);
                    self.finished = true;
                    return None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn request_lines_round_trip() {
        let r = WireRequest {
            id: 7,
            tenant: 2,
            kind: AccessKind::Write,
            addr: 123_456,
            at_ns: 987,
        };
        let line = format_request(&r);
        assert_eq!(line, "req 7 2 w 123456 987");
        assert_eq!(parse_request(&line).unwrap(), Some(r));
    }

    #[test]
    fn blank_and_comment_lines_skip() {
        assert_eq!(parse_request("").unwrap(), None);
        assert_eq!(parse_request("  # warmup\n").unwrap(), None);
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(parse_request("req 1 0 x 64 0").is_err());
        assert!(parse_request("req 1 0 r 64").is_err());
        assert!(parse_request("req 1 0 r 64 0 extra").is_err());
        assert!(parse_request("get 1 0 r 64 0").is_err());
        assert!(parse_request("req -1 0 r 64 0").is_err());
    }

    #[test]
    fn responses_are_byte_stable() {
        assert_eq!(format_ack(3), "ack 3");
        assert_eq!(format_ok(3, 431_000), "ok 3 431000");
        assert_eq!(format_shed(4, 32), "shed 4 32");
        assert_eq!(format_done(10, 2, 31), "done served=10 shed=2 peakw=31");
    }

    #[test]
    fn line_source_feeds_core_zero_with_gap_cycles() {
        let text = "req 0 0 r 64 0\n# comment\nreq 1 0 w 128 10\nreq 2 0 r 192 10\n";
        let mut src = LineSource::new(BufReader::new(text.as_bytes()), 2_000);
        assert!(src.next(1).is_none(), "only core 0 carries the stream");
        let a = src.next(0).unwrap();
        assert_eq!((a.gap, a.kind, a.addr), (0, AccessKind::Read, 64));
        let b = src.next(0).unwrap();
        assert_eq!(b.gap, 20, "10 ns at 2 GHz");
        assert_eq!(b.kind, AccessKind::Write);
        let c = src.next(0).unwrap();
        assert_eq!(c.gap, 0, "same timestamp, no gap");
        assert!(src.next(0).is_none());
        assert!(src.error().is_none());
    }

    #[test]
    fn line_source_stops_at_parse_error() {
        let text = "req 0 0 r 64 0\nbogus line\nreq 1 0 r 64 5\n";
        let mut src = LineSource::new(BufReader::new(text.as_bytes()), 2_000);
        assert!(src.next(0).is_some());
        assert!(src.next(0).is_none());
        assert!(src.error().is_some());
    }
}
