//! Deterministic load generation: open-loop (arrivals keep coming no
//! matter how the system responds — the right model for measuring tail
//! latency and shed rate under overload) and closed-loop (N users each
//! wait for their previous request before thinking and issuing the next —
//! the right model for interactive clients).
//!
//! Both generators draw from [`pcm_types::rng::SmallRng`], so a seed
//! fully determines the request stream. The open-loop generator is a
//! plain iterator of [`WireRequest`]s and can feed a local
//! [`ServeEngine`], a TCP connection, or a request file; the closed-loop
//! driver needs completion feedback and therefore runs an engine
//! directly.

use crate::engine::{Admission, ServeConfig, ServeEngine};
use crate::proto::WireRequest;
use pcm_memsim::AccessKind;
use pcm_types::rng::{Rng, SmallRng};
use pcm_types::{PcmError, Ps};
use std::collections::{BTreeMap, BTreeSet};

/// Knobs for the open-loop arrival process.
#[derive(Clone, Copy, Debug)]
pub struct OpenLoopConfig {
    /// RNG seed; the stream is a pure function of this config.
    pub seed: u64,
    /// Total requests to emit.
    pub requests: u64,
    /// Number of tenants (round-robin ids `0..tenants`).
    pub tenants: u32,
    /// Mean inter-arrival gap in nanoseconds (exponentially distributed).
    pub mean_gap_ns: u64,
    /// Probability a request arrives back-to-back with its predecessor
    /// (gap 0), modelling bursty arrivals on top of the Poisson base.
    pub burstiness: f64,
    /// Probability a request is a write.
    pub write_frac: f64,
    /// Probability a request targets tenant 0 regardless of the uniform
    /// tenant draw (a hot-tenant skew knob; 0.0 = uniform mix).
    pub hot_frac: f64,
    /// Per-tenant working-set size in cache lines; tenants address
    /// disjoint windows so per-tenant SLOs reflect real contention, not
    /// address aliasing.
    pub working_set_lines: u64,
    /// Cache-line size in bytes (addresses are line-aligned).
    pub line_bytes: u64,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            seed: 1,
            requests: 4_096,
            tenants: 2,
            mean_gap_ns: 100,
            burstiness: 0.1,
            write_frac: 0.3,
            hot_frac: 0.0,
            working_set_lines: 1 << 16,
            line_bytes: 64,
        }
    }
}

/// The open-loop request stream (an iterator of [`WireRequest`]s).
pub struct OpenLoop {
    cfg: OpenLoopConfig,
    rng: SmallRng,
    emitted: u64,
    at_ns: u64,
}

impl OpenLoop {
    /// A stream fully determined by `cfg` (including its seed).
    pub fn new(cfg: OpenLoopConfig) -> Self {
        OpenLoop {
            rng: SmallRng::seed_from_u64(cfg.seed),
            cfg,
            emitted: 0,
            at_ns: 0,
        }
    }
}

impl Iterator for OpenLoop {
    type Item = WireRequest;

    fn next(&mut self) -> Option<WireRequest> {
        if self.emitted >= self.cfg.requests {
            return None;
        }
        let gap_ns = if self.rng.gen_bool(self.cfg.burstiness) {
            0
        } else {
            // Inverse-transform exponential draw; u ∈ [0, 1) keeps the
            // argument of ln strictly positive.
            let u: f64 = self.rng.gen();
            (-(1.0 - u).ln() * self.cfg.mean_gap_ns as f64) as u64
        };
        self.at_ns += gap_ns;
        let tenant = if self.cfg.hot_frac > 0.0 && self.rng.gen_bool(self.cfg.hot_frac) {
            0
        } else {
            self.rng.gen_range(0..self.cfg.tenants.max(1))
        };
        let kind = if self.rng.gen_bool(self.cfg.write_frac) {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let ws = self.cfg.working_set_lines.max(1);
        let line = self.rng.gen_range(0..ws);
        let addr = (u64::from(tenant) * ws + line) * self.cfg.line_bytes;
        let id = self.emitted;
        self.emitted += 1;
        Some(WireRequest {
            id,
            tenant,
            kind,
            addr,
            at_ns: self.at_ns,
        })
    }
}

/// Feed an entire open-loop stream into a local engine and drain it.
pub fn run_open_loop(engine: &mut ServeEngine, cfg: OpenLoopConfig) -> Result<(), PcmError> {
    for r in OpenLoop::new(cfg) {
        engine.submit(r.tenant, r.kind, r.addr, Ps::from_ns(r.at_ns))?;
    }
    engine.drain()
}

/// Knobs for the closed-loop user population.
#[derive(Clone, Copy, Debug)]
pub struct ClosedLoopConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of simulated users.
    pub users: u32,
    /// Requests each user completes before leaving.
    pub requests_per_user: u64,
    /// Think time between a completion and the user's next request, in
    /// nanoseconds (also the retry backoff after a shed).
    pub think_ns: u64,
    /// Tenants; user `u` belongs to tenant `u % tenants`.
    pub tenants: u32,
    /// Probability a request is a write.
    pub write_frac: f64,
    /// Per-user working-set size in cache lines.
    pub working_set_lines: u64,
    /// Cache-line size in bytes.
    pub line_bytes: u64,
}

impl Default for ClosedLoopConfig {
    fn default() -> Self {
        ClosedLoopConfig {
            seed: 1,
            users: 8,
            requests_per_user: 64,
            think_ns: 200,
            tenants: 2,
            write_frac: 0.25,
            working_set_lines: 1 << 14,
            line_bytes: 64,
        }
    }
}

/// Outcome counters for one closed-loop run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClosedLoopStats {
    /// Requests completed across all users.
    pub completed: u64,
    /// Shed responses absorbed (each retried after one think time).
    pub shed_retries: u64,
}

/// The closed-loop driver. Users are scheduled from a `BTreeSet` keyed
/// `(ready-time, user)`, so the interleaving — and therefore the entire
/// simulation — is deterministic for a given seed.
pub struct ClosedLoop {
    cfg: ClosedLoopConfig,
    rng: SmallRng,
}

impl ClosedLoop {
    /// A driver fully determined by `cfg` (including its seed).
    pub fn new(cfg: ClosedLoopConfig) -> Self {
        ClosedLoop {
            rng: SmallRng::seed_from_u64(cfg.seed),
            cfg,
        }
    }

    /// Run every user to completion against `engine`.
    ///
    /// Each user repeats: think → submit → wait for the completion. A
    /// shed response costs one think time and the slot is retried; the
    /// engine's idle-drain (see [`ServeEngine::step`]) guarantees parked
    /// writes eventually clear, so retries terminate.
    pub fn run(mut self, engine: &mut ServeEngine) -> Result<ClosedLoopStats, PcmError> {
        let users = self.cfg.users.max(1);
        let tenants = self.cfg.tenants.max(1);
        let think = Ps::from_ns(self.cfg.think_ns);
        let ws = self.cfg.working_set_lines.max(1);
        let mut ready: BTreeSet<(Ps, u32)> = (0..users).map(|u| (Ps::ZERO, u)).collect();
        let mut remaining = vec![self.cfg.requests_per_user; users as usize];
        let mut waiting: BTreeMap<u64, u32> = BTreeMap::new();
        let mut stats = ClosedLoopStats::default();
        while !ready.is_empty() || !waiting.is_empty() {
            // Submit every user whose think time has elapsed. When no one
            // is blocked in the engine, also admit the earliest future
            // user (the engine clamps the clock forward).
            while let Some(&(t, u)) = ready.iter().next() {
                if t > engine.now() && !waiting.is_empty() {
                    break;
                }
                ready.remove(&(t, u));
                let tenant = u % tenants;
                let kind = if self.rng.gen_bool(self.cfg.write_frac) {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                let addr = (u64::from(u) * ws + self.rng.gen_range(0..ws)) * self.cfg.line_bytes;
                match engine.submit(tenant, kind, addr, t)? {
                    Admission::Accepted { id } => {
                        waiting.insert(id, u);
                    }
                    Admission::Shed { .. } => {
                        stats.shed_retries += 1;
                        ready.insert((engine.now() + think, u));
                        if waiting.is_empty() {
                            // Nothing in flight to unblock the queue:
                            // step once so the idle-drain makes progress.
                            engine.step()?;
                        }
                    }
                }
            }
            for c in engine.take_completions() {
                if let Some(u) = waiting.remove(&c.id) {
                    stats.completed += 1;
                    remaining[u as usize] -= 1;
                    if remaining[u as usize] > 0 {
                        ready.insert((c.at + think, u));
                    }
                }
            }
            if !waiting.is_empty() {
                engine.step()?;
            }
        }
        engine.drain()?;
        for c in engine.take_completions() {
            if waiting.remove(&c.id).is_some() {
                stats.completed += 1;
            }
        }
        Ok(stats)
    }
}

/// Convenience: build an engine and run a closed-loop population on it,
/// returning the engine for stats/telemetry inspection.
pub fn run_closed_loop(
    serve: ServeConfig,
    load: ClosedLoopConfig,
    tel: Box<dyn pcm_telemetry::Telemetry>,
) -> Result<(ServeEngine, ClosedLoopStats), PcmError> {
    let mut engine = ServeEngine::new(serve, tel)?;
    let stats = ClosedLoop::new(load).run(&mut engine)?;
    Ok((engine, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_telemetry::NullSink;

    fn small_system(ranks: u32) -> ServeConfig {
        ServeConfig {
            system: pcm_memsim::SystemConfig::builder()
                .small_caches()
                .ranks(ranks)
                .build()
                .unwrap(),
            ..ServeConfig::default()
        }
    }

    #[test]
    fn open_loop_stream_is_seed_deterministic() {
        let cfg = OpenLoopConfig {
            requests: 256,
            ..OpenLoopConfig::default()
        };
        let a: Vec<_> = OpenLoop::new(cfg).collect();
        let b: Vec<_> = OpenLoop::new(cfg).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 256);
        assert!(
            a.windows(2).all(|w| w[0].at_ns <= w[1].at_ns),
            "monotone arrivals"
        );
        assert!(a.iter().any(|r| r.tenant == 0) && a.iter().any(|r| r.tenant == 1));
        assert!(a.iter().any(|r| r.kind == AccessKind::Write));
    }

    #[test]
    fn hot_fraction_skews_the_tenant_mix() {
        let cfg = OpenLoopConfig {
            requests: 2_048,
            tenants: 4,
            hot_frac: 0.9,
            ..OpenLoopConfig::default()
        };
        let hot = OpenLoop::new(cfg).filter(|r| r.tenant == 0).count();
        assert!(hot > 1_600, "tenant 0 should dominate, got {hot}/2048");
    }

    #[test]
    fn open_loop_serves_through_the_engine() {
        let mut engine = ServeEngine::new(small_system(2), Box::new(NullSink)).unwrap();
        let cfg = OpenLoopConfig {
            requests: 1_024,
            mean_gap_ns: 200,
            ..OpenLoopConfig::default()
        };
        run_open_loop(&mut engine, cfg).unwrap();
        let s = engine.stats();
        assert_eq!(s.served + s.shed, 1_024);
        assert!(s.served > 0);
    }

    #[test]
    fn closed_loop_users_all_finish() {
        let mut engine = ServeEngine::new(small_system(1), Box::new(NullSink)).unwrap();
        let load = ClosedLoopConfig {
            users: 4,
            requests_per_user: 32,
            ..ClosedLoopConfig::default()
        };
        let stats = ClosedLoop::new(load).run(&mut engine).unwrap();
        assert_eq!(stats.completed, 4 * 32);
        assert!(engine.now() > Ps::ZERO);
    }

    /// A clonable sink whose event log outlives the engine that owns it.
    #[derive(Clone, Default)]
    struct SharedSink(std::rc::Rc<std::cell::RefCell<Vec<pcm_telemetry::TelemetryEvent>>>);

    impl pcm_telemetry::Telemetry for SharedSink {
        fn detail(&self) -> Option<pcm_telemetry::TraceDetail> {
            Some(pcm_telemetry::TraceDetail::Fine)
        }
        fn record(&mut self, ev: &pcm_telemetry::TelemetryEvent) {
            self.0.borrow_mut().push(ev.clone());
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn closed_loop_same_seed_is_byte_identical() {
        let run = || {
            let sink = SharedSink::default();
            let mut engine = ServeEngine::new(small_system(2), Box::new(sink.clone())).unwrap();
            let load = ClosedLoopConfig {
                users: 6,
                requests_per_user: 24,
                ..ClosedLoopConfig::default()
            };
            let stats = ClosedLoop::new(load).run(&mut engine).unwrap();
            let events = sink.0.borrow().clone();
            let report = crate::report::SloReport::from_events(&events).render();
            (stats, events, report)
        };
        let (s1, e1, r1) = run();
        let (s2, e2, r2) = run();
        assert_eq!(s1, s2);
        assert_eq!(e1, e2, "telemetry stream is bit-identical across runs");
        assert_eq!(r1, r2, "rendered report is byte-identical across runs");
        assert_eq!(s1.completed, 6 * 24);
        assert!(r1.starts_with("tenant"), "report renders: {r1}");
    }

    #[test]
    fn closed_loop_terminates_under_forced_shedding() {
        let mut cfg = small_system(1);
        cfg.shed_watermark = 2;
        let mut engine = ServeEngine::new(cfg, Box::new(NullSink)).unwrap();
        let load = ClosedLoopConfig {
            users: 8,
            requests_per_user: 16,
            think_ns: 10,
            write_frac: 1.0,
            ..ClosedLoopConfig::default()
        };
        let stats = ClosedLoop::new(load).run(&mut engine).unwrap();
        assert_eq!(stats.completed, 8 * 16, "every user finishes despite sheds");
    }
}
