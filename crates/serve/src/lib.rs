//! # pcm-serve
//!
//! A request-serving front end for the Tetris Write simulator: instead of
//! running a canned trace to completion, `pcm-serve` keeps the sharded
//! per-rank memory system alive and feeds it *requests* — from a TCP
//! socket, stdin, or built-in load generators — then reports per-tenant
//! SLO percentiles from the telemetry stream.
//!
//! * [`engine`] — the incremental [`engine::ServeEngine`]: admission
//!   control with a shed watermark (429-style backpressure instead of
//!   unbounded queues), per-rank controllers, and a simulated-time clock
//!   advanced only by request arrivals and completions.
//! * [`proto`] — the line-delimited wire protocol (`req`/`ack`/`ok`/
//!   `shed`/`done`) and [`proto::LineSource`], a socket-backed
//!   [`pcm_memsim::RequestSource`] that feeds protocol lines straight
//!   into the batch simulator.
//! * [`load`] — deterministic open-loop (arrival-rate, burstiness,
//!   tenant-mix) and closed-loop (N users, think time) generators.
//! * [`report`] — per-tenant p50/p95/p99/p99.9 latency tables computed
//!   from JSONL telemetry, byte-stable for golden fixtures.
//! * [`server`] — the blocking connection loop shared by `listen` and
//!   `stdin` modes of the `pcm-serve` binary.
//!
//! Everything is deterministic: no wall clock, no OS randomness. The same
//! request stream (or generator seed) always yields the same responses,
//! the same telemetry, and the same report bytes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod load;
pub mod proto;
pub mod report;
pub mod server;

pub use engine::{Admission, Completion, ServeConfig, ServeEngine, ServeStats};
pub use load::{ClosedLoop, ClosedLoopConfig, OpenLoop, OpenLoopConfig};
pub use proto::{LineSource, ProtoError, WireRequest};
pub use report::SloReport;
pub use server::serve_connection;
