//! The serving engine: per-rank controllers driven request-by-request.
//!
//! Unlike the batch [`pcm_memsim::System`] run loop, a serving front end
//! needs *incremental* progress — a request arrives, is admitted or shed,
//! and completes some simulated time later, with the caller able to react
//! to each completion (closed-loop users wait on theirs). The engine
//! therefore owns one [`MemoryController`] + [`PcmMainMemory`] pair per
//! PCM rank (the same shard-per-rank decomposition as
//! [`pcm_memsim::ShardedSystem`]) and advances a single simulated clock
//! as requests are submitted.
//!
//! **All time is simulated.** Requests carry explicit arrival offsets
//! ([`Ps`]); the engine never reads the host clock, so a given request
//! stream produces a bit-identical telemetry stream on every run.
//!
//! ## Admission control
//!
//! The write path is the one that saturates (PCM writes are ~8× slower
//! than reads), so admission is keyed to the per-rank write queue: a write
//! arriving while its rank's queue sits at or above
//! [`ServeConfig::shed_watermark`] is refused — the caller gets
//! [`Admission::Shed`] (a `429`-style response on the wire) and a
//! [`TelemetryEvent::Backpressure`] is recorded — instead of growing an
//! unbounded backlog. Reads shed only when their bounded queue is
//! completely full. Queue depth is therefore bounded by construction; the
//! shed *rate* is the observable overload signal.

use pcm_memsim::{
    AccessKind, MemRequest, MemoryController, PcmMainMemory, ReadEnqueue, SystemConfig,
    UniformRandomContent, WriteAdmit, WriteCache, WriteCacheStats,
};
use pcm_telemetry::{OpKind, Telemetry, TelemetryEvent, TraceDetail};
use pcm_types::{AddrMap, PcmError, PhysAddr, Ps};
use std::collections::BTreeSet;

/// Per-rank content-seed perturbation (matches the experiments runner).
const RANK_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Request id reserved for background write-cache drains, so their bank
/// completions are never reported to a submitter.
const BACKGROUND_ID: u64 = u64::MAX;

/// Configuration for a [`ServeEngine`].
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// System configuration: rank count, controller geometry, scheme
    /// selection and scheduling policy all come from here, exactly as in
    /// the experiments runner.
    pub system: SystemConfig,
    /// Write-queue depth at or above which new writes are shed. Defaults
    /// to the write-queue capacity (shed only when literally full);
    /// saturation tests force it down to provoke shedding.
    pub shed_watermark: usize,
    /// Seed for the synthesized write content.
    pub content_seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let system = SystemConfig::paper_baseline();
        ServeConfig {
            system,
            shed_watermark: system.controller.write_queue_cap,
            content_seed: 0x5EED_CAFE,
        }
    }
}

/// How a submitted request was admitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Queued (or forwarded); a [`Completion`] will follow.
    Accepted {
        /// Engine-assigned request id.
        id: u64,
    },
    /// Refused by admission control (the `429` path).
    Shed {
        /// Queue depth that triggered the shed.
        depth: usize,
    },
}

/// One finished request, ready to be reported to the submitter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Completion {
    /// Engine-assigned request id.
    pub id: u64,
    /// Tenant the request belonged to.
    pub tenant: u32,
    /// Read or write.
    pub kind: AccessKind,
    /// Completion time.
    pub at: Ps,
    /// Arrival-to-completion latency.
    pub latency: Ps,
}

/// Aggregate serving counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeStats {
    /// Requests served to completion.
    pub served: u64,
    /// Requests refused by admission control.
    pub shed: u64,
    /// Reads accepted.
    pub reads: u64,
    /// Writes accepted.
    pub writes: u64,
    /// Deepest write queue observed at admission time (bounded by the
    /// queue capacity — the graceful-degradation invariant).
    pub peak_write_depth: usize,
    /// Deepest read queue observed at admission time.
    pub peak_read_depth: usize,
}

/// One rank's shard: controller, banks, content model and (optionally)
/// the rank's slice of the DRAM write-cache tier.
struct RankLane {
    ctrl: MemoryController,
    memory: PcmMainMemory,
    content: UniformRandomContent,
    cache: Option<WriteCache>,
}

/// The request-serving engine. See the module docs for the model.
pub struct ServeEngine {
    cfg: ServeConfig,
    global: AddrMap,
    local: AddrMap,
    lanes: Vec<RankLane>,
    tel: Box<dyn Telemetry>,
    now: Ps,
    next_id: u64,
    /// Outstanding bank completions: `(time, rank, bank, epoch)`. A
    /// `BTreeSet` pops in deterministic (time, rank, bank) order.
    pending: BTreeSet<(Ps, u32, usize, u64)>,
    done: Vec<Completion>,
    stats: ServeStats,
}

impl ServeEngine {
    /// Build the engine: one controller shard per rank, rank-local
    /// address spaces (capacity ÷ ranks), content seeded per rank exactly
    /// like the experiments runner.
    pub fn new(cfg: ServeConfig, tel: Box<dyn Telemetry>) -> Result<ServeEngine, PcmError> {
        cfg.system.validate()?;
        tetris_write::register_scheme_factory();
        let ranks = cfg.system.mem.org.ranks;
        let global = AddrMap::with_default_rows(cfg.system.mem.org)?;
        let mut rank_mem = cfg.system.mem;
        rank_mem.org.ranks = 1;
        rank_mem.org.capacity_bytes = cfg.system.mem.org.capacity_bytes / ranks as u64;
        let local = AddrMap::with_default_rows(rank_mem.org)?;
        let mut lanes = Vec::with_capacity(ranks as usize);
        for r in 0..ranks {
            let scheme = rank_mem.instantiate();
            lanes.push(RankLane {
                ctrl: MemoryController::new(
                    cfg.system.controller,
                    rank_mem.timings,
                    rank_mem.org.banks_per_rank as usize,
                ),
                memory: PcmMainMemory::new(rank_mem, scheme)?,
                content: UniformRandomContent::new(
                    cfg.content_seed ^ (r as u64).wrapping_mul(RANK_SEED_STRIDE),
                ),
                cache: if cfg.system.write_cache.enabled() {
                    Some(WriteCache::new(
                        cfg.system.write_cache,
                        rank_mem.org.cache_line_bytes,
                    )?)
                } else {
                    None
                },
            });
        }
        let mut tel = tel;
        if tel.wants(TraceDetail::Coarse) {
            tel.record(&TelemetryEvent::RunMeta {
                workload: "serve".to_string(),
                scheme: lanes
                    .first()
                    .map(|l| l.memory.scheme_name())
                    .unwrap_or_default()
                    .to_string(),
                banks: cfg.system.mem.org.total_banks(),
            });
        }
        Ok(ServeEngine {
            cfg,
            global,
            local,
            lanes,
            tel,
            now: Ps::ZERO,
            next_id: 0,
            pending: BTreeSet::new(),
            done: Vec::new(),
            stats: ServeStats::default(),
        })
    }

    /// Current simulated time.
    pub fn now(&self) -> Ps {
        self.now
    }

    /// Aggregate counters so far.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Completions recorded since the last call (submission order of the
    /// underlying bank events — deterministic).
    pub fn take_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.done)
    }

    /// Submit one request arriving at `at` (simulated). Arrival times
    /// must be non-decreasing; an earlier timestamp is clamped to the
    /// current clock.
    pub fn submit(
        &mut self,
        tenant: u32,
        kind: AccessKind,
        addr: PhysAddr,
        at: Ps,
    ) -> Result<Admission, PcmError> {
        let at = at.max(self.now);
        self.advance_to(at)?;
        // Map the caller's address into line-granularity traffic within
        // the configured capacity.
        let line = self.cfg.system.mem.org.cache_line_bytes as u64;
        let addr = (addr % self.cfg.system.mem.org.capacity_bytes) / line * line;
        let d = self.global.decode(addr)?;
        let rank = d.rank as usize;
        let mut ld = d;
        ld.rank = 0;
        let local_addr = self.local.encode(&ld)?;
        let dl = self.local.decode(local_addr)?;
        let flat = self.local.flat_bank(&dl);
        let (read_depth, write_depth) = self.lanes[rank].ctrl.queue_depths();
        self.stats.peak_read_depth = self.stats.peak_read_depth.max(read_depth);
        self.stats.peak_write_depth = self.stats.peak_write_depth.max(write_depth);
        // A read whose line sits dirty in the rank's DRAM tier is served
        // there at bus speed — no queue slot, no bank occupancy.
        if kind == AccessKind::Read
            && self.lanes[rank]
                .cache
                .as_mut()
                .is_some_and(|wc| wc.read_hit(local_addr))
        {
            if self.tel.wants(TraceDetail::Fine) {
                self.tel.record(&TelemetryEvent::WriteCacheHit {
                    at,
                    kind: OpKind::Read,
                });
            }
            let id = self.next_id;
            self.next_id += 1;
            self.stats.reads += 1;
            let ready = at + self.cfg.system.controller.t_bus;
            self.record_done(Completion {
                id,
                tenant,
                kind,
                at: ready,
                latency: ready.saturating_sub(at),
            });
            return Ok(Admission::Accepted { id });
        }
        let full = match kind {
            AccessKind::Write => {
                // With the DRAM tier in front, a write sheds only when the
                // frame table is exhausted *and* the rank's queue is past
                // the shed mark — the cache absorbs bursts first.
                let queue_full =
                    write_depth >= self.shed_mark() || self.lanes[rank].ctrl.write_queue_full();
                match self.lanes[rank].cache.as_ref() {
                    Some(wc) => wc.full() && queue_full,
                    None => queue_full,
                }
            }
            AccessKind::Read => self.lanes[rank].ctrl.read_queue_full(),
        };
        if full {
            let depth = match kind {
                AccessKind::Write => write_depth,
                AccessKind::Read => read_depth,
            };
            self.stats.shed += 1;
            if self.tel.wants(TraceDetail::Coarse) {
                self.tel.record(&TelemetryEvent::Backpressure {
                    at,
                    tenant,
                    depth: depth as u32,
                });
            }
            return Ok(Admission::Shed { depth });
        }
        let id = self.next_id;
        self.next_id += 1;
        let req = MemRequest {
            id,
            addr: local_addr,
            kind,
            core: tenant as usize,
            arrival: at,
        };
        let lane = &mut self.lanes[rank];
        match kind {
            AccessKind::Read => {
                self.stats.reads += 1;
                if let ReadEnqueue::Forwarded(ready) = lane.ctrl.enqueue_read(req, &dl, flat) {
                    // Store-to-load forwarding: served from the write
                    // queue without touching a bank.
                    self.record_done(Completion {
                        id,
                        tenant,
                        kind,
                        at: ready,
                        latency: ready.saturating_sub(at),
                    });
                }
            }
            AccessKind::Write => {
                self.stats.writes += 1;
                if lane.cache.is_some() {
                    // Absorb the write in DRAM: it completes at bus speed
                    // and its line drains to the PCM banks later.
                    let admit = self.lanes[rank]
                        .cache
                        .as_mut()
                        .map(|wc| wc.write(local_addr));
                    if matches!(admit, Some(WriteAdmit::Coalesced))
                        && self.tel.wants(TraceDetail::Fine)
                    {
                        self.tel.record(&TelemetryEvent::WriteCacheHit {
                            at,
                            kind: OpKind::Write,
                        });
                    }
                    if let Some(WriteAdmit::Admitted {
                        evicted: Some(victim),
                    }) = admit
                    {
                        self.enqueue_background(rank, victim)?;
                    }
                    self.drain_lane_cache(rank, false)?;
                    let ready = at + self.cfg.system.controller.t_bus;
                    self.record_done(Completion {
                        id,
                        tenant,
                        kind,
                        at: ready,
                        latency: ready.saturating_sub(at),
                    });
                } else {
                    lane.ctrl.enqueue_write(req, &dl, flat, self.tel.as_mut());
                }
            }
        }
        if self.tel.wants(TraceDetail::Fine) {
            let (r_q, w_q) = self.lanes[rank].ctrl.queue_depths();
            self.tel.record(&TelemetryEvent::QueueDepth {
                at,
                reads: r_q as u32,
                writes: w_q as u32,
            });
        }
        self.issue(rank)?;
        Ok(Admission::Accepted { id })
    }

    /// Advance to the next bank completion, if any. With nothing in
    /// flight but writes parked below the drain watermark, the engine
    /// idle-drains them (a real controller drains an idle memory the same
    /// way). Returns `false` when the engine is completely idle.
    pub fn step(&mut self) -> Result<bool, PcmError> {
        if self.pending.is_empty() {
            for rank in 0..self.lanes.len() {
                self.lanes[rank].ctrl.force_drain();
                self.issue(rank)?;
            }
        }
        match self.pending.iter().next().copied() {
            Some((t, _, _, _)) => {
                self.advance_to(t)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Run every queued and in-flight request to completion — including
    /// every line still parked in the DRAM write-cache tier — and flush
    /// telemetry.
    pub fn drain(&mut self) -> Result<(), PcmError> {
        loop {
            let mut flushed = false;
            for rank in 0..self.lanes.len() {
                flushed |= self.drain_lane_cache(rank, true)?;
            }
            if !self.step()? && !flushed {
                break;
            }
        }
        self.tel
            .flush()
            .map_err(|e| PcmError::config(format!("telemetry flush failed: {e}")))?;
        Ok(())
    }

    /// Combined write-cache counters over every rank lane (`None` when
    /// the tier is disabled).
    pub fn write_cache_stats(&self) -> Option<WriteCacheStats> {
        let mut any = false;
        let mut total = WriteCacheStats::default();
        for lane in &self.lanes {
            if let Some(wc) = lane.cache.as_ref() {
                any = true;
                let s = wc.stats();
                total.coalesced += s.coalesced;
                total.admitted += s.admitted;
                total.read_hits += s.read_hits;
                total.drained += s.drained;
            }
        }
        any.then_some(total)
    }

    /// Enqueue one drained line as a background write (sentinel id: its
    /// completion is consumed by the engine, not reported).
    fn enqueue_background(&mut self, rank: usize, addr: PhysAddr) -> Result<(), PcmError> {
        let dl = self.local.decode(addr)?;
        let flat = self.local.flat_bank(&dl);
        let req = MemRequest {
            id: BACKGROUND_ID,
            addr,
            kind: AccessKind::Write,
            core: 0,
            arrival: self.now,
        };
        self.lanes[rank]
            .ctrl
            .enqueue_write(req, &dl, flat, self.tel.as_mut());
        Ok(())
    }

    /// Trickle one lane's cached lines into its controller: past the
    /// watermark during service (`to_empty = false`), or down to nothing
    /// on final drain (`to_empty = true`). Returns whether any line moved.
    fn drain_lane_cache(&mut self, rank: usize, to_empty: bool) -> Result<bool, PcmError> {
        let mut lines = 0u32;
        loop {
            let lane = &mut self.lanes[rank];
            let ready = lane.cache.as_ref().is_some_and(|wc| {
                if to_empty {
                    wc.occupancy() > 0
                } else {
                    wc.over_watermark()
                }
            }) && !lane.ctrl.write_queue_full();
            if !ready {
                break;
            }
            let Some(addr) = lane.cache.as_mut().and_then(|wc| wc.drain_one()) else {
                break;
            };
            self.enqueue_background(rank, addr)?;
            lines += 1;
        }
        if lines > 0 {
            if self.tel.wants(TraceDetail::Coarse) {
                let depth = self.lanes[rank]
                    .cache
                    .as_ref()
                    .map_or(0, |wc| wc.occupancy() as u32);
                self.tel.record(&TelemetryEvent::WriteCacheDrain {
                    at: self.now,
                    lines,
                    depth,
                });
            }
            self.issue(rank)?;
        }
        Ok(lines > 0)
    }

    fn shed_mark(&self) -> usize {
        self.cfg
            .shed_watermark
            .min(self.cfg.system.controller.write_queue_cap)
    }

    /// Process all bank completions scheduled at or before `t`, then move
    /// the clock to `t`.
    fn advance_to(&mut self, t: Ps) -> Result<(), PcmError> {
        while let Some(&(ct, rank, bank, epoch)) = self.pending.iter().next() {
            if ct > t {
                break;
            }
            self.pending.remove(&(ct, rank, bank, epoch));
            self.now = self.now.max(ct);
            let rank = rank as usize;
            let reqs = self.lanes[rank].ctrl.complete(bank, epoch);
            if !reqs.is_empty() && self.tel.wants(TraceDetail::Fine) {
                self.tel.record(&TelemetryEvent::BankIdle {
                    at: ct,
                    bank: bank as u32,
                });
            }
            for req in reqs {
                if req.id == BACKGROUND_ID {
                    // A write-cache drain finishing its trip to the banks;
                    // the submitter was answered back at admission.
                    continue;
                }
                self.record_done(Completion {
                    id: req.id,
                    tenant: req.core as u32,
                    kind: req.kind,
                    at: ct,
                    latency: ct.saturating_sub(req.arrival),
                });
            }
            self.issue(rank)?;
        }
        self.now = self.now.max(t);
        Ok(())
    }

    /// Let one rank's controller fill its free banks; track the new
    /// completions.
    fn issue(&mut self, rank: usize) -> Result<(), PcmError> {
        let now = self.now;
        let lane = &mut self.lanes[rank];
        let issued =
            lane.ctrl
                .try_issue(now, &mut lane.memory, &mut lane.content, self.tel.as_mut());
        for i in issued {
            self.pending
                .insert((i.completion, rank as u32, i.bank, i.epoch));
        }
        Ok(())
    }

    fn record_done(&mut self, c: Completion) {
        self.stats.served += 1;
        if self.tel.wants(TraceDetail::Fine) {
            self.tel.record(&TelemetryEvent::RequestDone {
                at: c.at,
                tenant: c.tenant,
                kind: match c.kind {
                    AccessKind::Read => OpKind::Read,
                    AccessKind::Write => OpKind::Write,
                },
                latency: c.latency,
            });
        }
        self.done.push(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_telemetry::{MemorySink, NullSink};

    fn quick_cfg(ranks: u32) -> ServeConfig {
        ServeConfig {
            system: SystemConfig::builder()
                .small_caches()
                .ranks(ranks)
                .build()
                .unwrap(),
            ..ServeConfig::default()
        }
    }

    #[test]
    fn requests_complete_with_positive_latency() {
        let mut e = ServeEngine::new(quick_cfg(1), Box::new(NullSink)).unwrap();
        let mut t = Ps::ZERO;
        for i in 0..64u64 {
            let kind = if i % 4 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let a = e.submit(0, kind, i * 64, t).unwrap();
            assert!(matches!(a, Admission::Accepted { .. }), "req {i}: {a:?}");
            t += Ps::from_ns(100);
        }
        e.drain().unwrap();
        let done = e.take_completions();
        assert_eq!(done.len(), 64);
        assert!(done.iter().all(|c| c.latency > Ps::ZERO));
        assert_eq!(e.stats().served, 64);
        assert_eq!(e.stats().shed, 0);
    }

    #[test]
    fn saturation_sheds_instead_of_growing_queues() {
        let mut cfg = quick_cfg(1);
        cfg.shed_watermark = 4;
        let mut e = ServeEngine::new(cfg, Box::new(NullSink)).unwrap();
        // A same-instant write burst to one bank: must shed, not queue.
        for i in 0..256u64 {
            e.submit(1, AccessKind::Write, i * 64, Ps::ZERO).unwrap();
        }
        assert!(e.stats().shed > 0, "burst past the watermark must shed");
        assert!(
            e.stats().peak_write_depth <= cfg.system.controller.write_queue_cap,
            "queues stay bounded: {}",
            e.stats().peak_write_depth
        );
        e.drain().unwrap();
        assert_eq!(
            e.stats().served + e.stats().shed,
            256,
            "every request either served or shed"
        );
    }

    #[test]
    fn multi_rank_run_is_deterministic() {
        let run = || {
            let mut e = ServeEngine::new(quick_cfg(4), Box::new(MemorySink::default())).unwrap();
            let mut t = Ps::ZERO;
            for i in 0..512u64 {
                let kind = if i % 3 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                e.submit((i % 2) as u32, kind, i * 8192, t).unwrap();
                t += Ps::from_ns(40);
            }
            e.drain().unwrap();
            (e.stats().served, e.stats().shed, e.take_completions())
        };
        let (s1, d1, c1) = run();
        let (s2, d2, c2) = run();
        assert_eq!(s1, s2);
        assert_eq!(d1, d2);
        assert_eq!(c1, c2, "completion stream is bit-identical");
        assert!(s1 > 0);
    }

    #[test]
    fn write_cache_lane_absorbs_hot_writes() {
        let mut cfg = quick_cfg(2);
        cfg.system = SystemConfig::builder()
            .small_caches()
            .ranks(2)
            .write_cache(32)
            .build()
            .unwrap();
        let mut e = ServeEngine::new(cfg, Box::new(NullSink)).unwrap();
        let mut t = Ps::ZERO;
        // Hammer a handful of hot lines: the DRAM tier coalesces, every
        // request still completes, none shed.
        for i in 0..512u64 {
            let a = e.submit(0, AccessKind::Write, (i % 8) * 64, t).unwrap();
            assert!(matches!(a, Admission::Accepted { .. }));
            t += Ps::from_ns(20);
        }
        e.drain().unwrap();
        assert_eq!(e.stats().served, 512);
        assert_eq!(e.stats().shed, 0);
        let wc = e.write_cache_stats().expect("tier enabled");
        assert_eq!(wc.coalesced + wc.admitted, 512);
        assert!(wc.coalesce_ratio() > 0.9, "hot lines merge in DRAM");
        assert_eq!(wc.drained, wc.admitted, "final drain empties the tier");
    }

    #[test]
    fn write_cache_serves_reads_and_stays_deterministic() {
        let run = || {
            let mut cfg = quick_cfg(1);
            cfg.system = SystemConfig::builder()
                .small_caches()
                .write_cache(16)
                .build()
                .unwrap();
            let mut e = ServeEngine::new(cfg, Box::new(MemorySink::default())).unwrap();
            let mut t = Ps::ZERO;
            for i in 0..128u64 {
                let kind = if i % 2 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                // Read back the line written the step before: a DRAM hit.
                e.submit(0, kind, (i / 2) * 64, t).unwrap();
                t += Ps::from_ns(250);
            }
            e.drain().unwrap();
            (
                e.stats().served,
                e.write_cache_stats().unwrap(),
                e.take_completions(),
            )
        };
        let (served, wc, c1) = run();
        assert_eq!(served, 128);
        assert!(wc.read_hits > 0, "reads hit cached dirty lines");
        let (_, _, c2) = run();
        assert_eq!(c1, c2, "completion stream is bit-identical");
    }

    #[test]
    fn arrivals_clamp_to_the_clock() {
        let mut e = ServeEngine::new(quick_cfg(1), Box::new(NullSink)).unwrap();
        e.submit(0, AccessKind::Read, 0, Ps::from_ns(1_000))
            .unwrap();
        // An out-of-order arrival is clamped, not rewound.
        e.submit(0, AccessKind::Read, 4096, Ps::ZERO).unwrap();
        assert!(e.now() >= Ps::from_ns(1_000));
        e.drain().unwrap();
        assert_eq!(e.stats().served, 2);
    }
}
