//! `pcm-serve` — request-serving front end for the Tetris Write simulator.
//!
//! ```text
//! pcm-serve listen [--addr HOST:PORT] [ENGINE]
//! pcm-serve stdin [ENGINE]
//! pcm-serve open-loop [ENGINE] [LOAD] [--connect HOST:PORT]
//! pcm-serve closed-loop [ENGINE] [--users N] [--rpu N] [--think-ns N] [LOAD]
//! pcm-serve report TRACE.jsonl
//!
//! ENGINE: --ranks N | --scheme dcw|fnw|two-stage|three-stage|tetris|preset
//!         --shed-watermark N | --telemetry OUT.jsonl | --quick
//! LOAD:   --requests N | --tenants N | --mean-gap-ns N | --burstiness F
//!         --write-frac F | --hot-frac F | --seed N
//! ```
//!
//! `listen` binds a loopback port (printing `listening <addr>` on stdout
//! so scripts can discover the port), serves exactly one connection, and
//! exits. `open-loop --connect` is the matching client: it streams a
//! generated request file over the socket and relays the responses.
//! Without `--connect`, `open-loop` and `closed-loop` drive an in-process
//! engine. `report` renders per-tenant SLO percentiles from a JSONL
//! telemetry file produced via `--telemetry`.

use pcm_memsim::SystemConfig;
use pcm_schemes::SchemeSelect;
use pcm_serve::engine::{ServeConfig, ServeEngine};
use pcm_serve::load::{run_open_loop, ClosedLoop, ClosedLoopConfig, OpenLoop, OpenLoopConfig};
use pcm_serve::proto::format_request;
use pcm_serve::report::SloReport;
use pcm_serve::server::{listen_once, serve_connection};
use pcm_telemetry::{read_events, JsonlSink, NullSink, Telemetry, TraceDetail};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::str::FromStr;

/// Print to stdout, exiting quietly if the consumer closed the pipe.
fn out(text: std::fmt::Arguments<'_>) {
    let mut stdout = std::io::stdout().lock();
    if writeln!(stdout, "{text}").is_err() {
        std::process::exit(0);
    }
}

macro_rules! outln {
    ($($arg:tt)*) => { out(format_args!($($arg)*)) };
}

const USAGE: &str = "usage: pcm-serve <listen|stdin|open-loop|closed-loop|report> [flags]
  listen      [--addr HOST:PORT] [engine flags]     serve one TCP connection
  stdin       [engine flags]                        serve requests from stdin
  open-loop   [engine+load flags] [--connect ADDR]  generated arrival stream
  closed-loop [engine+load flags] [--users N --rpu N --think-ns N]
  report      TRACE.jsonl                           per-tenant SLO table
engine flags: --ranks N --scheme NAME --shed-watermark N --telemetry OUT.jsonl --quick
load flags:   --requests N --tenants N --mean-gap-ns N --burstiness F
              --write-frac F --hot-frac F --seed N";

fn fail(msg: String) -> ! {
    eprintln!("pcm-serve: {msg}");
    std::process::exit(2);
}

fn usage_error(msg: &str) -> ! {
    eprintln!("pcm-serve: {msg}\n{USAGE}");
    std::process::exit(2);
}

struct Flags {
    args: Vec<String>,
}

impl Flags {
    fn get(&self, name: &str) -> Option<&str> {
        let i = self.args.iter().position(|a| a == name)?;
        match self.args.get(i + 1) {
            Some(v) => Some(v),
            None => usage_error(&format!("{name} needs a value")),
        }
    }

    fn has(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }

    fn num<T: FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| usage_error(&format!("{name}: cannot parse `{v}`"))),
            None => default,
        }
    }

    /// First argument that is neither a flag nor a flag's value.
    fn positional(&self) -> Option<&str> {
        let mut i = 0;
        while i < self.args.len() {
            let a = &self.args[i];
            if a.starts_with("--") {
                i += if a == "--quick" { 1 } else { 2 };
            } else {
                return Some(a);
            }
        }
        None
    }
}

fn serve_config(f: &Flags) -> ServeConfig {
    let mut b = SystemConfig::builder();
    if f.has("--quick") {
        b = b.small_caches();
    }
    if let Some(r) = f.get("--ranks") {
        let ranks: u32 = r
            .parse()
            .unwrap_or_else(|_| usage_error(&format!("--ranks: cannot parse `{r}`")));
        b = b.ranks(ranks);
    }
    if let Some(s) = f.get("--scheme") {
        let select =
            SchemeSelect::from_str(s).unwrap_or_else(|e| usage_error(&format!("--scheme: {e}")));
        b = b.scheme(select);
    }
    let system = b
        .build()
        .unwrap_or_else(|e| fail(format!("invalid system configuration: {e}")));
    let mut cfg = ServeConfig {
        system,
        ..ServeConfig::default()
    };
    cfg.shed_watermark = f.num("--shed-watermark", cfg.system.controller.write_queue_cap);
    cfg
}

fn telemetry(f: &Flags) -> Box<dyn Telemetry> {
    match f.get("--telemetry") {
        Some(p) => Box::new(
            JsonlSink::create(std::path::Path::new(p), TraceDetail::Fine)
                .unwrap_or_else(|e| fail(format!("cannot create {p}: {e}"))),
        ),
        None => Box::new(NullSink),
    }
}

fn engine(f: &Flags) -> ServeEngine {
    ServeEngine::new(serve_config(f), telemetry(f))
        .unwrap_or_else(|e| fail(format!("cannot build engine: {e}")))
}

fn open_loop_config(f: &Flags) -> OpenLoopConfig {
    let d = OpenLoopConfig::default();
    OpenLoopConfig {
        seed: f.num("--seed", d.seed),
        requests: f.num("--requests", d.requests),
        tenants: f.num("--tenants", d.tenants),
        mean_gap_ns: f.num("--mean-gap-ns", d.mean_gap_ns),
        burstiness: f.num("--burstiness", d.burstiness),
        write_frac: f.num("--write-frac", d.write_frac),
        hot_frac: f.num("--hot-frac", d.hot_frac),
        ..d
    }
}

fn summary_line(e: &ServeEngine) -> String {
    let s = e.stats();
    format!(
        "done served={} shed={} peakw={} span_ns={}",
        s.served,
        s.shed,
        s.peak_write_depth,
        e.now().as_ns()
    )
}

fn cmd_listen(f: &Flags) {
    let addr = f.get("--addr").unwrap_or("127.0.0.1:0").to_string();
    let mut e = engine(f);
    listen_once(&addr, &mut e).unwrap_or_else(|err| fail(format!("serve failed: {err}")));
    eprintln!("{}", summary_line(&e));
}

fn cmd_stdin(f: &Flags) {
    let mut e = engine(f);
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    serve_connection(&mut e, stdin.lock(), &mut stdout)
        .unwrap_or_else(|err| fail(format!("serve failed: {err}")));
}

/// Stream a generated open-loop request file to a remote `listen`
/// instance and relay its responses. The writer runs on its own thread:
/// with ~100k requests in flight the response stream outgrows the socket
/// buffer long before the request stream ends, and a single-threaded
/// write-all-then-read client would deadlock against the server.
fn cmd_open_loop_connect(addr: &str, gen: OpenLoopConfig) {
    let stream = std::net::TcpStream::connect(addr)
        .unwrap_or_else(|e| fail(format!("cannot connect to {addr}: {e}")));
    let write_half = stream
        .try_clone()
        .unwrap_or_else(|e| fail(format!("clone stream: {e}")));
    let writer = std::thread::spawn(move || {
        let mut w = BufWriter::new(write_half);
        for r in OpenLoop::new(gen) {
            if writeln!(w, "{}", format_request(&r)).is_err() {
                return;
            }
        }
        let _ = w.flush();
        // Half-close tells the server the request stream is complete.
        if let Ok(s) = w.into_inner() {
            let _ = s.shutdown(std::net::Shutdown::Write);
        }
    });
    let mut served = 0u64;
    let mut shed = 0u64;
    let mut done = String::new();
    for line in BufReader::new(stream).lines() {
        let line = line.unwrap_or_else(|e| fail(format!("read response: {e}")));
        if line.starts_with("ok ") {
            served += 1;
        } else if line.starts_with("shed ") {
            shed += 1;
        } else if line.starts_with("done ") {
            done = line;
        } else if line.starts_with("err ") {
            fail(format!("server rejected a request: {line}"));
        }
    }
    writer
        .join()
        .unwrap_or_else(|_| fail("writer thread panicked".to_string()));
    if done.is_empty() {
        fail("connection closed before the done summary".to_string());
    }
    outln!("{done}");
    outln!("client saw served={served} shed={shed}");
}

fn cmd_open_loop(f: &Flags) {
    let gen = open_loop_config(f);
    if let Some(addr) = f.get("--connect") {
        cmd_open_loop_connect(addr, gen);
        return;
    }
    let mut e = engine(f);
    run_open_loop(&mut e, gen).unwrap_or_else(|err| fail(format!("open-loop run: {err}")));
    outln!("{}", summary_line(&e));
}

fn cmd_closed_loop(f: &Flags) {
    let d = ClosedLoopConfig::default();
    let load = ClosedLoopConfig {
        seed: f.num("--seed", d.seed),
        users: f.num("--users", d.users),
        requests_per_user: f.num("--rpu", d.requests_per_user),
        think_ns: f.num("--think-ns", d.think_ns),
        tenants: f.num("--tenants", d.tenants),
        write_frac: f.num("--write-frac", d.write_frac),
        ..d
    };
    let mut e = engine(f);
    let stats = ClosedLoop::new(load)
        .run(&mut e)
        .unwrap_or_else(|err| fail(format!("closed-loop run: {err}")));
    outln!("{}", summary_line(&e));
    outln!(
        "closed-loop completed={} shed_retries={}",
        stats.completed,
        stats.shed_retries
    );
}

fn cmd_report(path: &str) {
    let file =
        std::fs::File::open(path).unwrap_or_else(|e| fail(format!("cannot open {path}: {e}")));
    let events = read_events(BufReader::new(file))
        .unwrap_or_else(|e| fail(format!("cannot parse {path}: {e}")));
    outln!("{}", SloReport::from_events(&events).render());
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage_error("missing subcommand");
    }
    let cmd = args.remove(0);
    let f = Flags { args };
    match cmd.as_str() {
        "listen" => cmd_listen(&f),
        "stdin" => cmd_stdin(&f),
        "open-loop" => cmd_open_loop(&f),
        "closed-loop" => cmd_closed_loop(&f),
        "report" => match f.positional() {
            Some(path) => cmd_report(path),
            None => usage_error("report needs a TRACE.jsonl argument"),
        },
        "--help" | "-h" | "help" => outln!("{USAGE}"),
        other => usage_error(&format!("unknown subcommand `{other}`")),
    }
}
