//! Per-tenant SLO reporting from the telemetry stream.
//!
//! The report is computed purely from [`TelemetryEvent`]s —
//! `request_done` carries each served request's tenant and latency,
//! `backpressure` each shed — so it works identically on a live
//! [`MemorySink`](pcm_telemetry::MemorySink) and on a JSONL file read
//! back with [`pcm_telemetry::read_events`]. Rendering is fixed-width
//! and byte-stable: the same events always produce the same bytes
//! (golden-fixture tested).

use pcm_telemetry::TelemetryEvent;
use pcm_types::stats::Percentiles;
use pcm_types::Ps;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One tenant's (or the `all` aggregate's) SLO numbers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenantRow {
    /// Tenant id; `None` for the aggregate row.
    pub tenant: Option<u32>,
    /// Requests served.
    pub served: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Median latency, nanoseconds (nearest-rank).
    pub p50_ns: u64,
    /// 95th-percentile latency, nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile latency, nanoseconds.
    pub p99_ns: u64,
    /// 99.9th-percentile latency, nanoseconds.
    pub p999_ns: u64,
}

/// The full report: one row per tenant plus the aggregate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SloReport {
    /// Per-tenant rows, ascending tenant id.
    pub rows: Vec<TenantRow>,
    /// The aggregate over all tenants.
    pub all: TenantRow,
    /// Simulated span covered by the events (max timestamp).
    pub span: Ps,
}

fn row(tenant: Option<u32>, latencies_ns: Vec<u64>, shed: u64) -> TenantRow {
    let p = Percentiles::from_unsorted(latencies_ns);
    TenantRow {
        tenant,
        served: p.len() as u64,
        shed,
        p50_ns: p.at_or(0.5, 0),
        p95_ns: p.at_or(0.95, 0),
        p99_ns: p.at_or(0.99, 0),
        p999_ns: p.at_or(0.999, 0),
    }
}

impl SloReport {
    /// Aggregate `request_done` / `backpressure` events per tenant.
    pub fn from_events(events: &[TelemetryEvent]) -> SloReport {
        let mut lat: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
        let mut shed: BTreeMap<u32, u64> = BTreeMap::new();
        let mut span = Ps::ZERO;
        for ev in events {
            if let Some(at) = ev.at() {
                span = span.max(at);
            }
            match ev {
                TelemetryEvent::RequestDone {
                    tenant, latency, ..
                } => lat.entry(*tenant).or_default().push(latency.as_ns()),
                TelemetryEvent::Backpressure { tenant, .. } => {
                    *shed.entry(*tenant).or_default() += 1;
                }
                _ => {}
            }
        }
        let tenants: std::collections::BTreeSet<u32> =
            lat.keys().chain(shed.keys()).copied().collect();
        let mut all_lat = Vec::new();
        let mut all_shed = 0;
        let mut rows = Vec::with_capacity(tenants.len());
        for t in tenants {
            let l = lat.remove(&t).unwrap_or_default();
            let s = shed.remove(&t).unwrap_or_default();
            all_lat.extend_from_slice(&l);
            all_shed += s;
            rows.push(row(Some(t), l, s));
        }
        SloReport {
            rows,
            all: row(None, all_lat, all_shed),
            span,
        }
    }

    /// Served ÷ span, in requests per second of simulated time.
    pub fn throughput_rps(&self) -> f64 {
        if self.span == Ps::ZERO {
            return 0.0;
        }
        self.all.served as f64 / (self.span.as_ns_f64() * 1e-9)
    }

    /// Shed ÷ (served + shed), as a fraction.
    pub fn shed_rate(&self) -> f64 {
        let total = self.all.served + self.all.shed;
        if total == 0 {
            return 0.0;
        }
        self.all.shed as f64 / total as f64
    }

    /// Fixed-width, byte-stable table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<8}{:>10}{:>10}{:>12}{:>12}{:>12}{:>12}",
            "tenant", "served", "shed", "p50(ns)", "p95(ns)", "p99(ns)", "p99.9(ns)"
        );
        let mut line = |label: String, r: &TenantRow| {
            let _ = writeln!(
                out,
                "{:<8}{:>10}{:>10}{:>12}{:>12}{:>12}{:>12}",
                label, r.served, r.shed, r.p50_ns, r.p95_ns, r.p99_ns, r.p999_ns
            );
        };
        for r in &self.rows {
            line(r.tenant.map(|t| t.to_string()).unwrap_or_default(), r);
        }
        line("all".to_string(), &self.all);
        let _ = writeln!(
            out,
            "span {:.6} ms  throughput {:.1} req/s  shed-rate {:.2}%",
            self.span.as_ns_f64() / 1e6,
            self.throughput_rps(),
            self.shed_rate() * 100.0
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_telemetry::OpKind;

    fn done(at_ns: u64, tenant: u32, lat_ns: u64) -> TelemetryEvent {
        TelemetryEvent::RequestDone {
            at: Ps::from_ns(at_ns),
            tenant,
            kind: OpKind::Read,
            latency: Ps::from_ns(lat_ns),
        }
    }

    fn fixture_events() -> Vec<TelemetryEvent> {
        vec![
            done(100, 0, 1_000),
            done(300, 0, 2_000),
            done(700, 1, 5_000),
            TelemetryEvent::Backpressure {
                at: Ps::from_ns(900),
                tenant: 0,
                depth: 32,
            },
            done(1_500, 0, 3_000),
            done(2_000, 0, 4_000),
        ]
    }

    #[test]
    fn nearest_rank_percentiles_per_tenant() {
        let r = SloReport::from_events(&fixture_events());
        assert_eq!(r.rows.len(), 2);
        let t0 = &r.rows[0];
        assert_eq!((t0.served, t0.shed), (4, 1));
        assert_eq!(
            (t0.p50_ns, t0.p95_ns, t0.p99_ns, t0.p999_ns),
            (2_000, 4_000, 4_000, 4_000)
        );
        let t1 = &r.rows[1];
        assert_eq!((t1.served, t1.shed), (1, 0));
        assert_eq!(t1.p50_ns, 5_000);
        assert_eq!((r.all.served, r.all.shed), (5, 1));
        assert_eq!(r.all.p50_ns, 3_000);
        assert_eq!(r.span, Ps::from_ns(2_000));
    }

    #[test]
    fn render_matches_golden_fixture_byte_for_byte() {
        let got = SloReport::from_events(&fixture_events()).render();
        let want = "\
tenant      served      shed     p50(ns)     p95(ns)     p99(ns)   p99.9(ns)
0                4         1        2000        4000        4000        4000
1                1         0        5000        5000        5000        5000
all              5         1        3000        5000        5000        5000
span 0.002000 ms  throughput 2500000.0 req/s  shed-rate 16.67%
";
        assert_eq!(got, want);
    }

    #[test]
    fn empty_event_stream_renders_a_zero_report() {
        let r = SloReport::from_events(&[]);
        assert!(r.rows.is_empty());
        assert_eq!(r.all.served, 0);
        assert_eq!(r.throughput_rps(), 0.0);
        assert!(r.render().contains("shed-rate 0.00%"));
    }
}
