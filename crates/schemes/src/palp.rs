//! PALP — partition-level parallelism inside one bank (Song et al.).
//!
//! The classic model treats a bank as one monolithic array: write units
//! walk the line serially, one `Tset` slot each (DCW). Real PCM banks are
//! built from several independently addressable *partitions*; PALP issues
//! write units that land in distinct partitions concurrently, subject to
//! the shared charge-pump budget, so a line write collapses from
//! `N/M` serial slots to `⌈dirty / P⌉`-ish parallel slots.
//!
//! Model decisions (see DESIGN.md §13):
//!
//! * Accounting is DCW: differential programming, no read-before-write,
//!   flip tags cleared. Energy therefore matches DCW bit-for-bit.
//! * Unit `i` maps to partition `i mod P` (line bits stripe across
//!   partitions, the layout PALP proposes).
//! * A *slot* activates at most one unit per partition and may not exceed
//!   the bank budget in SET-equivalents (`sets + L·resets` per unit).
//!   Only dirty units (non-zero demand) are issued at all.
//! * Activating `k` partitions in the same slot pays a read-disturb /
//!   peripheral-conflict guard of `(k−1)·δ` with `δ = Tread/2` — adjacent
//!   partitions share sense amps, so concurrent pulses need staggered
//!   activation. Because `δ < Tset`, a PALP line write is never slower
//!   than DCW's serial walk.
//! * A lone unit too expensive for the whole budget stretches its slot to
//!   `⌈cost/budget⌉` rounds (cannot happen at the Table II baseline,
//!   where the worst unit costs exactly the 128-unit budget).

use crate::traits::{SchemeConfig, WriteCtx, WritePlan, WriteScheme};
use pcm_types::{transitions, Ps, MAX_UNITS_PER_LINE};

/// One power-feasible slot of concurrent partition writes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PalpSlot {
    /// Bitmask of line unit indices issued in this slot (each on a
    /// distinct partition).
    pub units: u32,
    /// Budget rounds the slot occupies (1 unless a lone oversized unit).
    pub rounds: u32,
    /// Total instantaneous cost in SET-equivalents (per round).
    pub cost: u32,
}

/// A complete partition-parallel issue schedule for one line write.
#[derive(Clone, Copy, Debug)]
pub struct PalpSchedule {
    slots: [PalpSlot; MAX_UNITS_PER_LINE],
    num_slots: usize,
}

impl PalpSchedule {
    /// The packed slots, in issue order.
    pub fn slots(&self) -> &[PalpSlot] {
        &self.slots[..self.num_slots]
    }

    /// Largest number of partitions driven concurrently by any slot.
    pub fn max_partitions(&self) -> u32 {
        self.slots()
            .iter()
            .map(|s| s.units.count_ones())
            .max()
            .unwrap_or(0)
    }
}

/// Greedily pack dirty units into power-feasible partition slots.
///
/// `costs[i]` is unit `i`'s demand in SET-equivalents (0 = clean, never
/// issued). Deterministic: units are considered in index order, each slot
/// takes the first pending unit of every free partition that still fits
/// the budget. Exposed for the budget-conservation property test.
pub fn pack_partition_slots(costs: &[u32], partitions: u32, budget: u32) -> PalpSchedule {
    assert!(costs.len() <= MAX_UNITS_PER_LINE, "too many units");
    let p = partitions.max(1);
    let budget = budget.max(1);
    let mut pending = [false; MAX_UNITS_PER_LINE];
    let mut left = 0usize;
    for (i, &c) in costs.iter().enumerate() {
        if c > 0 {
            pending[i] = true;
            left += 1;
        }
    }
    let mut sched = PalpSchedule {
        slots: [PalpSlot::default(); MAX_UNITS_PER_LINE],
        num_slots: 0,
    };
    while left > 0 {
        let mut slot = PalpSlot {
            units: 0,
            rounds: 1,
            cost: 0,
        };
        // Unit index < 32, so `i % p` < 32 fits a u32 partition mask.
        let mut used_partitions = 0u32;
        for i in 0..costs.len() {
            if !pending[i] {
                continue;
            }
            let part = 1u32 << (i as u32 % p);
            if used_partitions & part != 0 {
                continue;
            }
            let cost = costs[i];
            if slot.units == 0 && cost > budget {
                // Oversized lone unit: stretch the slot over several
                // budget rounds and issue nothing alongside it.
                slot.units = 1 << i;
                slot.rounds = cost.div_ceil(budget);
                slot.cost = budget;
                pending[i] = false;
                left -= 1;
                break;
            }
            if slot.cost + cost <= budget {
                slot.units |= 1 << i;
                slot.cost += cost;
                used_partitions |= part;
                pending[i] = false;
                left -= 1;
            }
        }
        debug_assert!(slot.units != 0, "every pass must place at least one unit");
        sched.slots[sched.num_slots] = slot;
        sched.num_slots += 1;
    }
    sched
}

/// Partition-parallel DCW (PALP).
#[derive(Clone, Copy, Debug, Default)]
pub struct PalpWrite;

impl WriteScheme for PalpWrite {
    fn name(&self) -> &'static str {
        "PALP"
    }

    fn plan(&self, ctx: &WriteCtx<'_>) -> WritePlan {
        let cfg: &SchemeConfig = ctx.cfg;
        let num_units = ctx.new_logical.num_units();

        // DCW-identical differential accounting: stale flip tags force a
        // plain rewrite of those units plus the tag RESET.
        let old_logical = ctx.old_logical();
        let mut sets = 0u32;
        let mut resets = ctx.old_flips.count_ones();
        let mut costs = [0u32; MAX_UNITS_PER_LINE];
        for (i, cost) in costs.iter_mut().enumerate().take(num_units) {
            let from = if ctx.old_flips & (1 << i) != 0 {
                ctx.old_stored.unit(i)
            } else {
                old_logical.unit(i)
            };
            let t = transitions(from, ctx.new_logical.unit(i));
            sets += t.num_sets();
            resets += t.num_resets();
            let tag_reset = (ctx.old_flips & (1 << i) != 0) as u32;
            *cost =
                cfg.power.set_cost(t.num_sets()) + cfg.power.reset_cost(t.num_resets() + tag_reset);
        }

        let sched = pack_partition_slots(
            &costs[..num_units],
            cfg.org.partitions_per_bank,
            cfg.power.budget_per_bank,
        );

        // Slot timing: `rounds · Tset` plus the `(k−1)·δ` activation
        // stagger; a clean line still burns one comparison slot.
        let delta = Ps(cfg.timings.t_read.as_ps() / 2);
        let mut service = Ps(0);
        for s in sched.slots() {
            let k = s.units.count_ones() as u64;
            service = service + cfg.timings.t_set * s.rounds as u64 + delta * (k - 1);
        }
        if sched.slots().is_empty() {
            service = cfg.timings.t_set;
        }
        let equiv = service.as_ps() as f64 / cfg.timings.t_set.as_ps() as f64;

        WritePlan {
            service_time: service,
            energy: cfg.energy.write_energy(sets as u64, resets as u64),
            write_units_equiv: equiv,
            stored: *ctx.new_logical,
            flips: 0,
            cell_sets: sets,
            cell_resets: resets,
            read_before_write: false,
            partitions_used: sched.max_partitions().max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DcwWrite;
    use pcm_types::propcheck::{any_u64, vec_of};
    use pcm_types::{prop_assert, prop_assert_eq, propcheck, LineData};

    fn plan(old: &LineData, flips: u32, new: &LineData) -> WritePlan {
        let cfg = SchemeConfig::paper_baseline();
        PalpWrite.plan(&WriteCtx {
            old_stored: old,
            old_flips: flips,
            new_logical: new,
            cfg: &cfg,
        })
    }

    #[test]
    fn four_dirty_units_issue_in_one_slot() {
        let old = LineData::zeroed(64);
        let mut new = LineData::zeroed(64);
        for i in 0..4 {
            new.set_unit(i, 0b11); // 2 SETs each, distinct partitions 0–3
        }
        let p = plan(&old, 0, &new);
        assert_eq!(p.partitions_used, 4);
        // One slot of 4 partitions: Tset + 3·δ = 430 + 75 ns.
        assert_eq!(p.service_time, Ps::from_ns(430) + Ps(3 * 25_000));
        assert!(!p.read_before_write);
        assert!(p.check_decodes_to(&new).is_ok());
    }

    #[test]
    fn accounting_is_dcw_identical() {
        let cfg = SchemeConfig::paper_baseline();
        let old = LineData::from_units(&[0xF0F0; 8]);
        let mut new = old;
        new.set_unit(1, 0x0F0F);
        new.set_unit(6, u64::MAX);
        let ctx = WriteCtx {
            old_stored: &old,
            old_flips: 0b100,
            new_logical: &new,
            cfg: &cfg,
        };
        let palp = PalpWrite.plan(&ctx);
        let dcw = DcwWrite.plan(&ctx);
        assert_eq!(palp.cell_sets, dcw.cell_sets);
        assert_eq!(palp.cell_resets, dcw.cell_resets);
        assert_eq!(palp.energy, dcw.energy);
        assert_eq!(palp.stored, dcw.stored);
        assert_eq!(palp.flips, 0);
    }

    #[test]
    fn never_slower_than_dcw() {
        let cfg = SchemeConfig::paper_baseline();
        let dcw_service = cfg.timings.t_set * cfg.org.write_units_per_line() as u64;
        // Worst case for PALP: every unit dirty and expensive.
        let old = LineData::zeroed(64);
        let new = LineData::from_units(&[u64::MAX; 8]);
        let p = plan(&old, 0, &new);
        assert!(p.service_time <= dcw_service, "{:?}", p.service_time);
        // Clean line: single comparison slot, far below DCW.
        let clean = plan(&old, 0, &old);
        assert_eq!(clean.service_time, cfg.timings.t_set);
        assert!(clean.service_time < dcw_service);
    }

    #[test]
    fn same_partition_units_serialize() {
        // Units 0 and 4 share partition 0 (P = 4) → two slots, k = 1 each.
        let old = LineData::zeroed(64);
        let mut new = LineData::zeroed(64);
        new.set_unit(0, 1);
        new.set_unit(4, 1);
        let p = plan(&old, 0, &new);
        assert_eq!(p.partitions_used, 1);
        assert_eq!(p.service_time, Ps::from_ns(2 * 430), "no stagger penalty");
    }

    #[test]
    fn oversized_unit_stretches_rounds() {
        let sched = pack_partition_slots(&[300, 10], 4, 128);
        assert_eq!(sched.slots().len(), 2);
        assert_eq!(sched.slots()[0].rounds, 3, "300/128 rounded up");
        assert_eq!(sched.slots()[0].units, 0b01);
        assert_eq!(sched.slots()[1].units, 0b10);
    }

    propcheck! {
        /// The packer's invariant: every slot stays within the budget
        /// (oversized lone units excepted, which run alone over several
        /// rounds) and never drives one partition twice.
        fn slots_respect_budget_and_partitions(
            raw in vec_of(any_u64(), 8),
            parts in 1u32..6,
        ) {
            let costs: Vec<u32> = raw.iter().map(|r| (r % 200) as u32).collect();
            let budget = 128u32;
            let sched = pack_partition_slots(&costs, parts, budget);
            let mut seen = 0u32;
            for s in sched.slots() {
                let mut partitions = 0u32;
                let mut slot_cost = 0u32;
                for (i, &c) in costs.iter().enumerate() {
                    if s.units & (1 << i) == 0 { continue; }
                    let pm = 1u32 << (i as u32 % parts);
                    prop_assert_eq!(partitions & pm, 0, "partition driven twice");
                    partitions |= pm;
                    slot_cost += c;
                }
                if s.units.count_ones() > 1 {
                    prop_assert!(slot_cost <= budget, "slot cost {slot_cost}");
                } else {
                    prop_assert!(slot_cost <= budget * s.rounds, "stretched slot");
                }
                prop_assert_eq!(seen & s.units, 0, "unit issued twice");
                seen |= s.units;
            }
            let dirty: u32 = costs.iter().enumerate()
                .map(|(i, &c)| ((c > 0) as u32) << i).sum();
            prop_assert_eq!(seen, dirty, "every dirty unit issued exactly once");
        }

        /// PALP service never exceeds DCW's serial walk, whatever the data.
        fn service_bounded_by_dcw(olds in vec_of(any_u64(), 8), news in vec_of(any_u64(), 8)) {
            let cfg = SchemeConfig::paper_baseline();
            let old = LineData::from_units(&olds);
            let new = LineData::from_units(&news);
            let p = PalpWrite.plan(&WriteCtx {
                old_stored: &old, old_flips: 0, new_logical: &new, cfg: &cfg,
            });
            let dcw = cfg.timings.t_set * cfg.org.write_units_per_line() as u64;
            prop_assert!(p.service_time <= dcw);
            prop_assert!(p.partitions_used >= 1);
            prop_assert!(p.partitions_used <= cfg.org.partitions_per_bank);
        }
    }
}
