//! 2-Stage-Write (Yue & Zhu, HPCA'13) — Eq. 3.
//!
//! Splits the write into **stage-0** (all RESETs, short `Treset` slots) and
//! **stage-1** (all SETs, whose low current lets several units share a
//! slot). The data is inverted when more than half its bits are '1' to
//! bound SET demand. No read-before-write: the *full* data is programmed,
//! zeros and ones alike, so energy is not reduced (Table I).

use crate::traits::{
    worst_case_reset_concurrency, worst_case_set_concurrency, SchemeConfig, WriteCtx, WritePlan,
    WriteScheme,
};

/// 2-Stage-Write.
#[derive(Clone, Copy, Debug, Default)]
pub struct TwoStageWrite;

impl WriteScheme for TwoStageWrite {
    fn name(&self) -> &'static str {
        "2-Stage-Write"
    }

    fn uses_flip_bits(&self) -> bool {
        true
    }

    fn plan(&self, ctx: &WriteCtx<'_>) -> WritePlan {
        let cfg: &SchemeConfig = ctx.cfg;
        let unit_bits = cfg.org.data_unit_bits;
        let num_units = ctx.new_logical.num_units();

        // Invert any unit with more ones than zeros (bounds stage-1 SETs to
        // ≤ half). The decision needs no read of the old data.
        let mut stored = *ctx.new_logical;
        let mut flips = 0u32;
        let mut sets = 0u32;
        let mut resets = 0u32;
        for i in 0..num_units {
            let u = ctx.new_logical.unit(i);
            let ones = u.count_ones();
            let (word, flip) = if ones > unit_bits / 2 {
                (!u, true)
            } else {
                (u, false)
            };
            stored.set_unit(i, word);
            if flip {
                flips |= 1 << i;
            }
            // Full-data programming: every data cell pulsed to its value,
            // plus the flip tag pulsed to its value.
            let word_ones = word.count_ones();
            sets += word_ones + flip as u32;
            resets += unit_bits - word_ones + !flip as u32;
        }

        // Stage-0: worst case a unit RESETs all bits → 1 unit per Treset.
        let c0 = worst_case_reset_concurrency(cfg, false) as u64;
        // Stage-1: flip bound halves SET demand → 4 units per Tset.
        let c1 = worst_case_set_concurrency(cfg, true) as u64;
        let units = cfg.org.write_units_per_line() as u64;
        let slots0 = units.div_ceil(c0);
        let slots1 = units.div_ceil(c1);
        let service = cfg.timings.t_reset * slots0 + cfg.timings.t_set * slots1;
        let equiv = service.as_ps() as f64 / cfg.timings.t_set.as_ps() as f64;

        WritePlan {
            service_time: service,
            energy: cfg.energy.write_energy(sets as u64, resets as u64),
            write_units_equiv: equiv,
            stored,
            flips,
            cell_sets: sets,
            cell_resets: resets,
            read_before_write: false,
            partitions_used: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_types::{LineData, Ps};

    fn plan(new: &LineData) -> WritePlan {
        let cfg = SchemeConfig::paper_baseline();
        let old = LineData::zeroed(new.len());
        TwoStageWrite.plan(&WriteCtx {
            old_stored: &old,
            old_flips: 0,
            new_logical: new,
            cfg: &cfg,
        })
    }

    #[test]
    fn service_matches_eq3() {
        let new = LineData::zeroed(64);
        let p = plan(&new);
        // 8 Treset + 2 Tset = 424 + 860 ns.
        assert_eq!(p.service_time, Ps::from_ns(8 * 53 + 2 * 430));
        assert!((p.write_units_equiv - (8.0 / (430.0 / 53.0) + 2.0)).abs() < 1e-9);
        assert!(!p.read_before_write);
    }

    #[test]
    fn programs_full_data_no_energy_reduction() {
        let new = LineData::from_units(&[0b1010; 8]);
        let p = plan(&new);
        // Every cell pulsed: 8 units × (64 data + 1 flip) = 520 pulses.
        assert_eq!(p.cell_sets + p.cell_resets, 8 * 65);
        assert_eq!(p.cell_sets, (8 * 2), "2 ones per unit, no flips");
    }

    #[test]
    fn set_heavy_units_get_inverted() {
        let new = LineData::from_units(&[!0b1u64; 8]);
        let p = plan(&new);
        assert_eq!(p.flips, 0xFF, "63 ones > 32 → all inverted");
        // Stored words have 1 one each; flip tags all SET.
        assert_eq!(p.cell_sets, 8 * (1 + 1));
        assert!(p.check_decodes_to(&new).is_ok());
    }

    #[test]
    fn exactly_half_ones_not_inverted() {
        let new = LineData::from_units(&[0xFFFF_FFFF_0000_0000u64; 8]);
        let p = plan(&new);
        assert_eq!(p.flips, 0);
    }

    #[test]
    fn service_is_content_independent() {
        let a = plan(&LineData::zeroed(64));
        let b = plan(&LineData::from_units(&[u64::MAX; 8]));
        assert_eq!(a.service_time, b.service_time);
    }
}
