//! The conservative conventional write (Eq. 1).
//!
//! Every write unit is provisioned for the worst case: all of its bits are
//! programmed (no comparison), and each unit's slot is timed for a SET
//! regardless of contents. A 64 B line costs `N/M = 8` serial units of
//! `Tset` and programs all 512 bits.

use crate::traits::{SchemeConfig, WriteCtx, WritePlan, WriteScheme};

/// Conventional full-data write.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConventionalWrite;

impl WriteScheme for ConventionalWrite {
    fn name(&self) -> &'static str {
        "Conventional"
    }

    fn plan(&self, ctx: &WriteCtx<'_>) -> WritePlan {
        let cfg: &SchemeConfig = ctx.cfg;
        let units = cfg.org.write_units_per_line() as u64;
        let service = cfg.timings.t_set * units;
        // Every bit is pulsed to its target value: ones get SET, zeros RESET.
        let ones = ctx.new_logical.popcount();
        let bits = (ctx.new_logical.len() * 8) as u32;
        let zeros = bits - ones;
        // Old flip tags (if any) are cleared: tags currently '1' cost a RESET.
        let flip_resets = ctx.old_flips.count_ones();
        let sets = ones;
        let resets = zeros + flip_resets;
        WritePlan {
            service_time: service,
            energy: cfg.energy.write_energy(sets as u64, resets as u64),
            write_units_equiv: units as f64,
            stored: *ctx.new_logical,
            flips: 0,
            cell_sets: sets,
            cell_resets: resets,
            read_before_write: false,
            partitions_used: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_types::{LineData, Ps};

    #[test]
    fn eight_serial_tset_units() {
        let cfg = SchemeConfig::paper_baseline();
        let old = LineData::zeroed(64);
        let new = LineData::from_units(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let plan = ConventionalWrite.plan(&WriteCtx {
            old_stored: &old,
            old_flips: 0,
            new_logical: &new,
            cfg: &cfg,
        });
        assert_eq!(plan.service_time, Ps::from_ns(430 * 8));
        assert_eq!(plan.write_units_equiv, 8.0);
        assert!(!plan.read_before_write);
        assert!(plan.check_decodes_to(&new).is_ok());
    }

    #[test]
    fn programs_every_bit() {
        let cfg = SchemeConfig::paper_baseline();
        let old = LineData::zeroed(64);
        let new = LineData::from_units(&[u64::MAX, 0, 0, 0, 0, 0, 0, 0]);
        let plan = ConventionalWrite.plan(&WriteCtx {
            old_stored: &old,
            old_flips: 0,
            new_logical: &new,
            cfg: &cfg,
        });
        assert_eq!(plan.cell_sets, 64);
        assert_eq!(plan.cell_resets, 448, "7 all-zero units still pulsed");
    }

    #[test]
    fn service_time_is_content_independent() {
        let cfg = SchemeConfig::paper_baseline();
        let old = LineData::zeroed(64);
        let a = ConventionalWrite.plan(&WriteCtx {
            old_stored: &old,
            old_flips: 0,
            new_logical: &old,
            cfg: &cfg,
        });
        let full = LineData::from_units(&[u64::MAX; 8]);
        let b = ConventionalWrite.plan(&WriteCtx {
            old_stored: &old,
            old_flips: 0,
            new_logical: &full,
            cfg: &cfg,
        });
        assert_eq!(a.service_time, b.service_time);
    }

    #[test]
    fn clears_stale_flip_tags() {
        let cfg = SchemeConfig::paper_baseline();
        let old = LineData::zeroed(64);
        let plan = ConventionalWrite.plan(&WriteCtx {
            old_stored: &old,
            old_flips: 0b101,
            new_logical: &old,
            cfg: &cfg,
        });
        assert_eq!(plan.flips, 0);
        assert_eq!(plan.cell_resets, 512 + 2, "two flip tags reset");
    }
}
