//! PreSET (Qureshi et al., ISCA'12 — the paper's ref. \[23\]).
//!
//! Exploits the write-time asymmetry from the opposite direction of the
//! staged schemes: when a line sits dirty in the cache, the memory
//! controller *proactively SETs every bit* of its PCM frame during idle
//! time. The eventual write-back then only needs the fast RESETs
//! (`N/M · Treset ≈ 0.99` write units — even less critical-path time than
//! Tetris), at the price of programming energy and endurance: every
//! preset+writeback cycle pulses nearly every cell of the line.
//!
//! Model: the background preset is assumed to complete between consecutive
//! writes to a line (the controller has idle slots; contention from preset
//! traffic is not modelled — see DESIGN.md). Its SET pulses are charged to
//! this write's energy; the foreground service time is the RESET stage
//! only.
//!
//! This module also hosts the **unified scheme factory**: a
//! [`SchemeSelect`] tag on [`SchemeConfig`] plus
//! [`SchemeConfig::instantiate`], so every construction site (runner,
//! ablations, replay) builds schemes through one path instead of
//! hand-matching enums.

use crate::traits::{SchemeConfig, WriteCtx, WritePlan, WriteScheme};
use std::fmt;
use std::str::FromStr;
use std::sync::OnceLock;

/// Which write scheme a [`SchemeConfig`] instantiates.
///
/// `Tetris` lives in the downstream `tetris-write` crate (it depends on
/// this one), so its constructor is injected via
/// [`register_tetris_factory`] rather than named here.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum SchemeSelect {
    /// Every bit programmed, strictly serial write units (Eq. 1).
    Conventional,
    /// Data-comparison write — the paper's baseline.
    #[default]
    Dcw,
    /// Flip-N-Write: read + inversion bounds changed bits (Eq. 2).
    Fnw,
    /// RESET stage + asymmetry-sized SET stage (Eq. 3).
    TwoStage,
    /// 2-Stage + Flip-N-Write's read/flip (Eq. 4).
    ThreeStage,
    /// Background full-SET sweeps, RESET-only write-backs (ref. \[23\]).
    PreSet,
    /// The paper's contribution (constructed by the registered factory).
    Tetris,
    /// Partition-level parallelism inside one bank (PALP, Song et al.).
    Palp,
    /// Restricted coset coding (WIRE, Seyedzadeh et al.).
    Wire,
}

impl SchemeSelect {
    /// Every scheme, in the paper's presentation order — the registry
    /// surface for tests and sweeps that must cover all of them.
    pub const ALL: [SchemeSelect; 9] = [
        SchemeSelect::Conventional,
        SchemeSelect::Dcw,
        SchemeSelect::Fnw,
        SchemeSelect::TwoStage,
        SchemeSelect::ThreeStage,
        SchemeSelect::PreSet,
        SchemeSelect::Tetris,
        SchemeSelect::Palp,
        SchemeSelect::Wire,
    ];

    /// Stable lowercase tag (CLI / JSON).
    pub const fn tag(&self) -> &'static str {
        match self {
            SchemeSelect::Conventional => "conventional",
            SchemeSelect::Dcw => "dcw",
            SchemeSelect::Fnw => "fnw",
            SchemeSelect::TwoStage => "2stage",
            SchemeSelect::ThreeStage => "3stage",
            SchemeSelect::PreSet => "preset",
            SchemeSelect::Tetris => "tetris",
            SchemeSelect::Palp => "palp",
            SchemeSelect::Wire => "wire",
        }
    }
}

impl fmt::Display for SchemeSelect {
    /// Renders the stable [`SchemeSelect::tag`]; round-trips through
    /// [`FromStr`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// Error from parsing a [`SchemeSelect`] tag that names no scheme.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseSchemeError {
    /// The input that failed to parse.
    pub input: String,
}

impl fmt::Display for ParseSchemeError {
    /// The valid-tag list is derived from [`SchemeSelect::ALL`] so it can
    /// never drift as the registry grows.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown scheme '{}' (expected one of ", self.input)?;
        for (i, s) in SchemeSelect::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(s.tag())?;
        }
        f.write_str(")")
    }
}

impl std::error::Error for ParseSchemeError {}

impl FromStr for SchemeSelect {
    type Err = ParseSchemeError;

    /// Parse a scheme tag, case-insensitively. The canonical tags from
    /// [`SchemeSelect::tag`] always parse (so `Display` → `FromStr`
    /// round-trips); the common CLI spellings and paper names are
    /// accepted as aliases.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "conventional" | "conv" => Ok(SchemeSelect::Conventional),
            "dcw" | "baseline" => Ok(SchemeSelect::Dcw),
            "fnw" | "flip-n-write" => Ok(SchemeSelect::Fnw),
            "2stage" | "2sw" | "two-stage" | "2-stage-write" => Ok(SchemeSelect::TwoStage),
            "3stage" | "3sw" | "three-stage" | "three-stage-write" => Ok(SchemeSelect::ThreeStage),
            "preset" => Ok(SchemeSelect::PreSet),
            "tetris" | "tetris-write" => Ok(SchemeSelect::Tetris),
            "palp" | "partition-parallel" => Ok(SchemeSelect::Palp),
            "wire" | "coset" => Ok(SchemeSelect::Wire),
            _ => Err(ParseSchemeError { input: s.into() }),
        }
    }
}

/// Constructor for the Tetris scheme, registered by the `tetris-write`
/// crate (which depends on this one and therefore cannot be named here).
type TetrisFactory = fn(&SchemeConfig) -> Box<dyn WriteScheme>;

static TETRIS_FACTORY: OnceLock<TetrisFactory> = OnceLock::new();

/// Register the constructor [`SchemeConfig::instantiate`] uses for
/// [`SchemeSelect::Tetris`]. Idempotent; the first registration wins.
/// `tetris_write::register_scheme_factory()` calls this on behalf of any
/// code that links the downstream crate.
pub fn register_tetris_factory(f: TetrisFactory) {
    let _ = TETRIS_FACTORY.set(f);
}

impl SchemeConfig {
    /// Construct the write scheme this configuration selects.
    ///
    /// This is the single factory every construction site goes through;
    /// the returned scheme plans against `self`.
    ///
    /// # Panics
    ///
    /// Panics if `select` is [`SchemeSelect::Tetris`] and no factory has
    /// been registered — call `tetris_write::register_scheme_factory()`
    /// (or `pcm_memsim::System::build`, which does so) first.
    pub fn instantiate(&self) -> Box<dyn WriteScheme> {
        match self.select {
            SchemeSelect::Conventional => Box::new(crate::ConventionalWrite),
            SchemeSelect::Dcw => Box::new(crate::DcwWrite),
            SchemeSelect::Fnw => Box::new(crate::FlipNWrite),
            SchemeSelect::TwoStage => Box::new(crate::TwoStageWrite),
            SchemeSelect::ThreeStage => Box::new(crate::ThreeStageWrite),
            SchemeSelect::PreSet => Box::new(PreSetWrite),
            SchemeSelect::Palp => Box::new(crate::PalpWrite),
            SchemeSelect::Wire => Box::new(crate::WireWrite),
            SchemeSelect::Tetris => {
                let f = TETRIS_FACTORY.get().expect(
                    "SchemeSelect::Tetris requires tetris_write::register_scheme_factory() \
                     to have been called (System::build does this automatically)",
                );
                f(self)
            }
        }
    }
}

/// PreSET: background full-SET, foreground RESET-only write-back.
#[derive(Clone, Copy, Debug, Default)]
pub struct PreSetWrite;

impl WriteScheme for PreSetWrite {
    fn name(&self) -> &'static str {
        "PreSET"
    }

    fn plan(&self, ctx: &WriteCtx<'_>) -> WritePlan {
        let cfg: &SchemeConfig = ctx.cfg;
        let unit_bits = cfg.org.data_unit_bits;
        let num_units = ctx.new_logical.num_units() as u32;

        // Background preset: every currently-0 cell gets a SET pulse
        // (logical view; stale flip tags are cleared as part of the sweep).
        let old_logical = ctx.old_logical();
        let total_bits = unit_bits * num_units;
        let preset_sets = total_bits - old_logical.popcount() + ctx.old_flips.count_ones();

        // Foreground write-back: RESET every bit that must read 0.
        let resets = total_bits - ctx.new_logical.popcount();
        // Worst case 64 RESETs/unit = 128 SET-equivalents = the bank budget
        // → strictly one unit per Treset slot.
        let per_slot =
            (cfg.power.budget_per_bank / cfg.power.reset_cost(unit_bits).max(1)).max(1) as u64;
        let slots = (cfg.org.write_units_per_line() as u64).div_ceil(per_slot);
        let service = cfg.timings.t_reset * slots;
        let equiv = service.as_ps() as f64 / cfg.timings.t_set.as_ps() as f64;

        WritePlan {
            service_time: service,
            energy: cfg.energy.write_energy(preset_sets as u64, resets as u64),
            write_units_equiv: equiv,
            stored: *ctx.new_logical,
            flips: 0,
            cell_sets: preset_sets,
            cell_resets: resets,
            read_before_write: false,
            partitions_used: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DcwWrite, ThreeStageWrite};
    use pcm_types::{LineData, Ps};

    fn plan(old: &LineData, flips: u32, new: &LineData) -> WritePlan {
        let cfg = SchemeConfig::paper_baseline();
        PreSetWrite.plan(&WriteCtx {
            old_stored: old,
            old_flips: flips,
            new_logical: new,
            cfg: &cfg,
        })
    }

    #[test]
    fn foreground_service_is_reset_stage_only() {
        let old = LineData::zeroed(64);
        let new = LineData::from_units(&[0xABCD; 8]);
        let p = plan(&old, 0, &new);
        assert_eq!(p.service_time, Ps::from_ns(8 * 53), "8 Treset, no read");
        assert!(p.write_units_equiv < 1.0, "even below one Tset-equivalent");
        assert!(!p.read_before_write);
        assert!(p.check_decodes_to(&new).is_ok());
    }

    #[test]
    fn fastest_foreground_but_worst_energy() {
        let cfg = SchemeConfig::paper_baseline();
        let old = LineData::from_units(&[0xF0F0_F0F0; 8]);
        let mut new = old;
        new.xor_unit(2, 0b111);
        let ctx = WriteCtx {
            old_stored: &old,
            old_flips: 0,
            new_logical: &new,
            cfg: &cfg,
        };
        let preset = PreSetWrite.plan(&ctx);
        let dcw = DcwWrite.plan(&ctx);
        let three = ThreeStageWrite.plan(&ctx);
        assert!(preset.service_time < three.service_time);
        assert!(
            preset.energy > dcw.energy * 10,
            "preset pays for its speed in energy"
        );
    }

    #[test]
    fn pulse_accounting_covers_preset_and_resets() {
        // Old: all zeros → preset SETs all 512 bits; new has 8 ones per
        // unit → 56 zero bits per unit get RESET.
        let old = LineData::zeroed(64);
        let new = LineData::from_units(&[0xFF; 8]);
        let p = plan(&old, 0, &new);
        assert_eq!(p.cell_sets, 512);
        assert_eq!(p.cell_resets, 8 * 56);
    }

    #[test]
    fn instantiate_builds_every_local_scheme() {
        use super::SchemeSelect::*;
        for (sel, name) in [
            (Conventional, "Conventional"),
            (Dcw, "DCW (baseline)"),
            (Fnw, "Flip-N-Write"),
            (TwoStage, "2-Stage-Write"),
            (ThreeStage, "Three-Stage-Write"),
            (PreSet, "PreSET"),
            (Palp, "PALP"),
            (Wire, "WIRE"),
        ] {
            let cfg = SchemeConfig::builder().select(sel).build().unwrap();
            assert_eq!(cfg.instantiate().name(), name, "select {sel:?}");
        }
    }

    #[test]
    fn default_select_is_the_paper_baseline() {
        assert_eq!(
            SchemeConfig::paper_baseline().select,
            super::SchemeSelect::Dcw
        );
    }

    #[test]
    fn fromstr_accepts_aliases_case_insensitively() {
        for (alias, want) in [
            ("Conv", SchemeSelect::Conventional),
            ("BASELINE", SchemeSelect::Dcw),
            ("flip-n-write", SchemeSelect::Fnw),
            ("2SW", SchemeSelect::TwoStage),
            ("three-stage-write", SchemeSelect::ThreeStage),
            ("Tetris-Write", SchemeSelect::Tetris),
            ("preset", SchemeSelect::PreSet),
            ("Partition-Parallel", SchemeSelect::Palp),
            ("COSET", SchemeSelect::Wire),
        ] {
            assert_eq!(alias.parse::<SchemeSelect>(), Ok(want), "{alias}");
        }
        let err = "bogus".parse::<SchemeSelect>().unwrap_err();
        assert_eq!(err.input, "bogus");
        // The message is derived from ALL — every canonical tag appears.
        for s in SchemeSelect::ALL {
            assert!(err.to_string().contains(s.tag()), "lists {}", s.tag());
        }
    }

    pcm_types::propcheck! {
        /// Display → FromStr is the identity over the whole registry,
        /// in any ASCII case.
        fn display_fromstr_roundtrip(i in 0usize..9, upper in pcm_types::propcheck::any_bool()) {
            let scheme = SchemeSelect::ALL[i];
            let mut tag = scheme.to_string();
            pcm_types::prop_assert_eq!(tag.as_str(), scheme.tag());
            if upper {
                tag = tag.to_ascii_uppercase();
            }
            pcm_types::prop_assert_eq!(tag.parse::<SchemeSelect>(), Ok(scheme));
        }
    }

    #[test]
    fn stale_flip_tags_cleared_by_the_sweep() {
        let mut old = LineData::zeroed(64);
        old.set_unit(0, !5u64);
        let mut new = LineData::zeroed(64);
        new.set_unit(0, 5);
        let p = plan(&old, 0b1, &new);
        assert_eq!(p.flips, 0);
        assert!(p.check_decodes_to(&new).is_ok());
    }
}
