//! Data-Comparison Write — the paper's baseline.
//!
//! DCW's write circuit senses the old bits and pulses only the cells that
//! actually change, so programming *energy* is differential. Its write-unit
//! slots, however, remain worst-case timed: the chip still walks the line's
//! `N/M` write units serially, reserving a full `Tset` for each (the
//! comparison happens inside the slot). The result is the paper's baseline
//! behaviour: Fig. 10's "Baseline" uses 8 write units, yet energy scales
//! with changed bits.

use crate::traits::{SchemeConfig, WriteCtx, WritePlan, WriteScheme};
use pcm_types::{hamming_unit, transitions};

/// Data-comparison write (differential energy, serial worst-case timing).
#[derive(Clone, Copy, Debug, Default)]
pub struct DcwWrite;

impl WriteScheme for DcwWrite {
    fn name(&self) -> &'static str {
        "DCW (baseline)"
    }

    fn plan(&self, ctx: &WriteCtx<'_>) -> WritePlan {
        let cfg: &SchemeConfig = ctx.cfg;
        let units = cfg.org.write_units_per_line() as u64;
        let service = cfg.timings.t_set * units;

        // Differential programming against the *logical* old contents; DCW
        // has no flip support, so any stale flip tag forces those units to
        // be rewritten plainly (tag reset + full transition count).
        let old_logical = ctx.old_logical();
        let mut sets = 0u32;
        let mut resets = ctx.old_flips.count_ones();
        for i in 0..ctx.new_logical.num_units() {
            let t = transitions(old_logical.unit(i), ctx.new_logical.unit(i));
            if ctx.old_flips & (1 << i) != 0 {
                // The stored bits are the inversion; count transitions from
                // stored to plain-new instead.
                let t = transitions(ctx.old_stored.unit(i), ctx.new_logical.unit(i));
                sets += t.num_sets();
                resets += t.num_resets();
            } else {
                sets += t.num_sets();
                resets += t.num_resets();
            }
            debug_assert!(hamming_unit(old_logical.unit(i), ctx.new_logical.unit(i)) <= 64,);
        }

        WritePlan {
            service_time: service,
            energy: cfg.energy.write_energy(sets as u64, resets as u64),
            write_units_equiv: units as f64,
            stored: *ctx.new_logical,
            flips: 0,
            cell_sets: sets,
            cell_resets: resets,
            read_before_write: false,
            partitions_used: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_types::{LineData, Ps};

    fn plan(old: &LineData, flips: u32, new: &LineData) -> WritePlan {
        let cfg = SchemeConfig::paper_baseline();
        DcwWrite.plan(&WriteCtx {
            old_stored: old,
            old_flips: flips,
            new_logical: new,
            cfg: &cfg,
        })
    }

    #[test]
    fn timing_matches_conventional_but_energy_is_differential() {
        let old = LineData::zeroed(64);
        let mut new = LineData::zeroed(64);
        new.set_unit(0, 0b111);
        let p = plan(&old, 0, &new);
        assert_eq!(
            p.service_time,
            Ps::from_ns(430 * 8),
            "slots stay worst-case"
        );
        assert_eq!(p.cell_sets, 3, "only changed bits pulsed");
        assert_eq!(p.cell_resets, 0);
        assert!(p.check_decodes_to(&new).is_ok());
    }

    #[test]
    fn identical_data_costs_no_energy() {
        let old = LineData::from_units(&[9; 8]);
        let p = plan(&old, 0, &old);
        assert_eq!(p.cell_sets + p.cell_resets, 0);
        assert_eq!(p.energy.as_pj(), 0);
    }

    #[test]
    fn stale_flip_tags_are_cleared_differentially() {
        // Unit 0 stored inverted: stored = !5, flip = 1. New logical = 5.
        let mut old = LineData::zeroed(64);
        old.set_unit(0, !5u64);
        let new = {
            let mut n = LineData::zeroed(64);
            n.set_unit(0, 5);
            n
        };
        let p = plan(&old, 0b1, &new);
        assert_eq!(p.flips, 0);
        // Stored !5 → 5 means 62 bits flip one way + 2 the other, plus the
        // flip-tag RESET.
        assert_eq!(p.cell_sets + p.cell_resets, 64 + 1);
        assert!(p.check_decodes_to(&new).is_ok());
    }

    #[test]
    fn write_units_equiv_is_baseline_eight() {
        let old = LineData::zeroed(64);
        let p = plan(&old, 0, &old);
        assert_eq!(p.write_units_equiv, 8.0);
    }
}
