//! The [`WriteScheme`] trait and the plan/context types every scheme shares.

use pcm_types::{
    coset_decode_unit, EnergyParams, LineData, MemOrg, PcmError, PcmTimings, PicoJoules,
    PowerParams, Ps,
};

/// Static configuration a scheme plans against.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SchemeConfig {
    /// Pulse timings (Table II).
    pub timings: PcmTimings,
    /// Current budget and asymmetry.
    pub power: PowerParams,
    /// Memory organization (write-unit / line geometry).
    pub org: MemOrg,
    /// Per-bit energies.
    pub energy: EnergyParams,
    /// Which scheme [`SchemeConfig::instantiate`] constructs.
    pub select: crate::preset::SchemeSelect,
}

impl Default for SchemeConfig {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

impl SchemeConfig {
    /// Table II baseline configuration.
    pub fn paper_baseline() -> Self {
        SchemeConfig {
            timings: PcmTimings::paper_baseline(),
            power: PowerParams::paper_baseline(),
            org: MemOrg::paper_baseline(),
            energy: EnergyParams::paper_baseline(),
            select: crate::preset::SchemeSelect::Dcw,
        }
    }

    /// Validate all sub-configurations.
    pub fn validate(&self) -> Result<(), PcmError> {
        self.timings.validate()?;
        self.power.validate()?;
        self.org.validate()?;
        Ok(())
    }

    /// Start a fluent builder from the Table II baseline.
    pub fn builder() -> SchemeConfigBuilder {
        SchemeConfigBuilder {
            cfg: Self::paper_baseline(),
        }
    }
}

/// Fluent construction of a [`SchemeConfig`];
/// [`SchemeConfigBuilder::build`] folds in [`SchemeConfig::validate`].
///
/// ```
/// use pcm_schemes::SchemeConfig;
/// let cfg = SchemeConfig::builder().capacity_bytes(1 << 20).build().unwrap();
/// assert_eq!(cfg.org.capacity_bytes, 1 << 20);
/// ```
#[derive(Clone, Copy, Debug)]
#[must_use = "call .build() to obtain the validated SchemeConfig"]
pub struct SchemeConfigBuilder {
    cfg: SchemeConfig,
}

impl SchemeConfigBuilder {
    /// Pulse timings.
    pub fn timings(mut self, t: PcmTimings) -> Self {
        self.cfg.timings = t;
        self
    }

    /// Current budget and asymmetry.
    pub fn power(mut self, p: PowerParams) -> Self {
        self.cfg.power = p;
        self
    }

    /// Memory organization.
    pub fn org(mut self, o: MemOrg) -> Self {
        self.cfg.org = o;
        self
    }

    /// Per-bit energies.
    pub fn energy(mut self, e: EnergyParams) -> Self {
        self.cfg.energy = e;
        self
    }

    /// Which scheme [`SchemeConfig::instantiate`] constructs.
    pub fn select(mut self, s: crate::preset::SchemeSelect) -> Self {
        self.cfg.select = s;
        self
    }

    /// Total device capacity in bytes (shorthand for shrinking the
    /// organization in tests).
    pub fn capacity_bytes(mut self, bytes: u64) -> Self {
        self.cfg.org.capacity_bytes = bytes;
        self
    }

    /// Validate and return the finished configuration.
    pub fn build(self) -> Result<SchemeConfig, PcmError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// One cache-line write to plan: the array's current bits and the new
/// logical data.
#[derive(Clone, Copy, Debug)]
pub struct WriteCtx<'a> {
    /// Bits currently stored in the array (possibly inverted lines).
    pub old_stored: &'a LineData,
    /// Current flip-tag bitmask (bit `i` = data unit `i`).
    pub old_flips: u32,
    /// The logical data the CPU wants persisted.
    pub new_logical: &'a LineData,
    /// Configuration.
    pub cfg: &'a SchemeConfig,
}

impl<'a> WriteCtx<'a> {
    /// The logical data currently stored (decoding flip tags and, for
    /// WIRE-coded lines, the coset row packed into the tag word's top
    /// bits — tag words without row bits decode exactly as classic
    /// Flip-N-Write).
    pub fn old_logical(&self) -> LineData {
        let mut out = *self.old_stored;
        let n = out.num_units();
        for i in 0..n {
            out.set_unit(
                i,
                coset_decode_unit(self.old_stored.unit(i), self.old_flips, i, n),
            );
        }
        out
    }
}

/// The outcome of planning one cache-line write.
#[derive(Clone, Debug)]
pub struct WritePlan {
    /// Time the bank is busy servicing this write (includes any
    /// read-before-write and analysis overhead).
    pub service_time: Ps,
    /// Programming + read energy consumed.
    pub energy: PicoJoules,
    /// Serial cost in write units of `Tset` (the paper's Fig. 10 metric):
    /// `service_time_without_read / Tset`.
    pub write_units_equiv: f64,
    /// Bits the scheme will leave in the array.
    pub stored: LineData,
    /// Flip-tag bitmask the scheme will leave behind.
    pub flips: u32,
    /// SET pulses delivered to cells.
    pub cell_sets: u32,
    /// RESET pulses delivered to cells.
    pub cell_resets: u32,
    /// Whether the scheme performed a read before writing.
    pub read_before_write: bool,
    /// Intra-bank partitions the plan drives concurrently (0 for schemes
    /// without a partition model; ≥ 1 for PALP-style plans).
    pub partitions_used: u32,
}

impl WritePlan {
    /// Check the fundamental invariant: stored bits + flip tags must decode
    /// to the requested logical data. Used by tests and debug builds.
    pub fn check_decodes_to(&self, logical: &LineData) -> Result<(), PcmError> {
        if self.stored.len() != logical.len() {
            return Err(PcmError::LineSizeMismatch {
                expected: logical.len(),
                actual: self.stored.len(),
            });
        }
        let n = logical.num_units();
        for i in 0..n {
            if coset_decode_unit(self.stored.unit(i), self.flips, i, n) != logical.unit(i) {
                return Err(PcmError::IncompleteSchedule(format!(
                    "unit {i} decodes incorrectly"
                )));
            }
        }
        Ok(())
    }
}

/// How well a packing scheme filled the write units it scheduled.
///
/// Produced by schemes that pack pulses under a shared current budget
/// (Tetris Write); the memory controller forwards it to telemetry so a
/// trace can show *why* a batch was cheap or expensive.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PackStats {
    /// Write0 (RESET) jobs placed inside the write-1 region's slack —
    /// the paper's "dropping short Tetris pieces into the gaps" — rather
    /// than in overflow sub-write-units.
    pub stolen_write0s: u32,
    /// Mean fraction of the instantaneous current budget used across the
    /// schedule's occupied sub-slots, in [0, 1].
    pub utilization: f64,
    /// Serial cost of the whole schedule in `Tset` write units
    /// (`result + subresult / K`).
    pub write_units_equiv: f64,
}

/// A batch of line writes planned together (shared bank occupancy).
#[derive(Clone, Debug)]
pub struct BatchPlan {
    /// Total bank-busy time for the whole batch; every line in the batch
    /// completes at this time.
    pub service_time: Ps,
    /// Per-line plans (stored bits, flips, energy, pulse counts). Their
    /// individual `service_time` fields equal the shared total.
    pub plans: Vec<WritePlan>,
    /// Packing quality, for schemes that report it (`None` otherwise).
    pub pack: Option<PackStats>,
}

/// A PCM cache-line write scheme.
///
/// ```
/// use pcm_schemes::{FlipNWrite, SchemeConfig, WriteCtx, WriteScheme};
/// use pcm_types::LineData;
///
/// let cfg = SchemeConfig::paper_baseline();
/// let old = LineData::zeroed(64);
/// let new = LineData::from_units(&[u64::MAX; 8]); // dense → gets inverted
/// let ctx = WriteCtx { old_stored: &old, old_flips: 0, new_logical: &new, cfg: &cfg };
/// let plan = FlipNWrite.plan(&ctx);
/// assert_eq!(plan.flips, 0xFF, "all units stored inverted");
/// assert_eq!(plan.cell_sets, 8, "one flip-bit SET per unit");
/// plan.check_decodes_to(&new).unwrap();
/// ```
pub trait WriteScheme: Send + Sync {
    /// Human-readable name used in reports.
    fn name(&self) -> &'static str;

    /// Plan one cache-line write.
    fn plan(&self, ctx: &WriteCtx<'_>) -> WritePlan;

    /// Whether the scheme maintains flip tags (schemes that don't always
    /// leave `flips == 0`).
    fn uses_flip_bits(&self) -> bool {
        false
    }

    /// Plan several queued writes as one batch sharing the bank and the
    /// power budget. Returns `None` if the scheme has no batched mode (the
    /// caller then services the writes serially). Tetris Write overrides
    /// this (inter-line packing, the authors' DATE'16 direction).
    fn plan_batched(&self, _ctxs: &[WriteCtx<'_>]) -> Option<BatchPlan> {
        None
    }
}

/// Worst-case number of data units whose SETs fit one write unit after
/// flip-bounding (changed bits ≤ unit/2): `max(1, PB / (bits/2))`.
pub(crate) fn worst_case_set_concurrency(cfg: &SchemeConfig, flip_bounded: bool) -> u32 {
    let bits = cfg.org.data_unit_bits;
    let worst_sets = if flip_bounded { bits / 2 } else { bits };
    (cfg.power.budget_per_bank / cfg.power.set_cost(worst_sets).max(1)).max(1)
}

/// Worst-case number of data units whose RESETs fit one sub-write-unit.
pub(crate) fn worst_case_reset_concurrency(cfg: &SchemeConfig, flip_bounded: bool) -> u32 {
    let bits = cfg.org.data_unit_bits;
    let worst_resets = if flip_bounded { bits / 2 } else { bits };
    (cfg.power.budget_per_bank / cfg.power.reset_cost(worst_resets).max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_types::flip_units;

    #[test]
    fn old_logical_decodes_flips() {
        let cfg = SchemeConfig::paper_baseline();
        let old = LineData::from_units(&[!5u64, 7, 0, 0, 0, 0, 0, 0]);
        let ctx = WriteCtx {
            old_stored: &old,
            old_flips: 0b1,
            new_logical: &old,
            cfg: &cfg,
        };
        let logical = ctx.old_logical();
        assert_eq!(logical.unit(0), 5, "unit 0 was stored inverted");
        assert_eq!(logical.unit(1), 7);
    }

    #[test]
    fn plan_invariant_checker_accepts_flip_encoding() {
        let old = LineData::zeroed(64);
        let new = LineData::from_units(&[u64::MAX, 3, 0, 0, 0, 0, 0, 0]);
        let fl = flip_units(&old, 0, &new);
        let plan = WritePlan {
            service_time: Ps::from_ns(1),
            energy: PicoJoules::ZERO,
            write_units_equiv: 1.0,
            stored: fl.stored,
            flips: fl.flips,
            cell_sets: 0,
            cell_resets: 0,
            read_before_write: true,
            partitions_used: 0,
        };
        assert!(plan.check_decodes_to(&new).is_ok());
        let other = LineData::zeroed(64);
        assert!(plan.check_decodes_to(&other).is_err());
    }

    #[test]
    fn scheme_builder_validates() {
        let cfg = SchemeConfig::builder()
            .capacity_bytes(8 * 64)
            .build()
            .unwrap();
        assert_eq!(cfg.org.capacity_bytes, 8 * 64);
        assert_eq!(cfg.timings, SchemeConfig::paper_baseline().timings);
        // Capacity that is not a whole number of lines never escapes.
        assert!(SchemeConfig::builder().capacity_bytes(1).build().is_err());
    }

    #[test]
    fn worst_case_concurrencies_match_paper() {
        let cfg = SchemeConfig::paper_baseline();
        // With flip bounding: ≤32 SETs/unit → 128/32 = 4 units per Tset;
        // ≤32 RESETs/unit → 128/64 = 2 units per Treset.
        assert_eq!(worst_case_set_concurrency(&cfg, true), 4);
        assert_eq!(worst_case_reset_concurrency(&cfg, true), 2);
        // Without: 64 SETs → 2 units; 64 RESETs → 1 unit.
        assert_eq!(worst_case_set_concurrency(&cfg, false), 2);
        assert_eq!(worst_case_reset_concurrency(&cfg, false), 1);
    }
}
