//! # pcm-schemes
//!
//! The PCM cache-line write schemes the paper compares against, behind one
//! [`WriteScheme`] trait:
//!
//! * [`ConventionalWrite`] — every bit programmed, write units strictly
//!   serial at `Tset` each (Eq. 1).
//! * [`DcwWrite`] — data-comparison write (the paper's **baseline**): only
//!   changed bits draw current (energy win) but write-unit slots remain
//!   worst-case timed, `N/M` serial units.
//! * [`FlipNWrite`] — read-before-write + data inversion bounds changed
//!   bits to half a unit, letting two data units share one write unit
//!   (Eq. 2).
//! * [`TwoStageWrite`] — splits the write into a fast RESET stage and a SET
//!   stage sized by the power asymmetry (Eq. 3); writes the full data, so
//!   no energy reduction.
//! * [`ThreeStageWrite`] — 2-Stage-Write plus Flip-N-Write's read/flip,
//!   which halves both stages' data (Eq. 4).
//!
//! Beyond the paper's comparison set, [`PreSetWrite`] implements the cited
//! PreSET scheme (ref. \[23\]) — background full-SET sweeps that leave only
//! fast RESETs on the critical path, trading energy and endurance for
//! latency — and two families from the follow-on literature:
//! [`PalpWrite`] (partition-level parallelism inside one bank, DCW energy
//! with near-parallel slot timing) and [`WireWrite`] (restricted coset
//! coding, a Flip-N-Write sibling with a 4-row XOR codebook).
//!
//! The paper's contribution, Tetris Write, implements the same trait in the
//! `tetris-write` crate.
//!
//! [`analytic`] holds the closed-form service times (Eqs. 1–4) used for
//! cross-checking and for Fig. 10's theoretical rows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod conventional;
pub mod dcw;
pub mod fnw;
pub mod palp;
pub mod preset;
pub mod three_stage;
pub mod traits;
pub mod two_stage;
pub mod wire;

pub use conventional::ConventionalWrite;
pub use dcw::DcwWrite;
pub use fnw::FlipNWrite;
pub use palp::PalpWrite;
pub use preset::{register_tetris_factory, ParseSchemeError, PreSetWrite, SchemeSelect};
pub use three_stage::ThreeStageWrite;
pub use traits::{
    BatchPlan, PackStats, SchemeConfig, SchemeConfigBuilder, WriteCtx, WritePlan, WriteScheme,
};
pub use two_stage::TwoStageWrite;
pub use wire::WireWrite;
