//! Flip-N-Write (Cho & Lee, MICRO'09) — Eq. 2.
//!
//! Reads the old data, inverts any unit whose Hamming distance exceeds half
//! the unit, and therefore never changes more than half the cells of a
//! unit. Under the same current budget this halves worst-case demand, so
//! *two* data units share each write-unit slot:
//! `T = Tread + (N / 2M) · Tset`.

use crate::traits::{worst_case_reset_concurrency, SchemeConfig, WriteCtx, WritePlan, WriteScheme};
use pcm_types::{flip_units, LineDemand};

/// Flip-N-Write.
#[derive(Clone, Copy, Debug, Default)]
pub struct FlipNWrite;

impl WriteScheme for FlipNWrite {
    fn name(&self) -> &'static str {
        "Flip-N-Write"
    }

    fn uses_flip_bits(&self) -> bool {
        true
    }

    fn plan(&self, ctx: &WriteCtx<'_>) -> WritePlan {
        let cfg: &SchemeConfig = ctx.cfg;
        let fl = flip_units(ctx.old_stored, ctx.old_flips, ctx.new_logical);
        let demand = LineDemand::from_flipped(&fl);
        let (sets, resets) = fl.totals();

        // Worst case after flip bounding: a unit's ≤32 changed bits could
        // all be RESETs (2 budget units each) → 64 per unit → the 128
        // budget carries 2 units per slot. Each slot is still timed Tset
        // (SETs and RESETs execute together in FNW).
        let units = cfg.org.write_units_per_line() as u64;
        let per_slot = worst_case_reset_concurrency(cfg, true).max(1) as u64;
        let slots = units.div_ceil(per_slot);
        let service = cfg.timings.t_read + cfg.timings.t_set * slots;

        let read_energy = cfg.energy.read_energy(cfg.org.data_units_per_line() as u64);
        WritePlan {
            service_time: service,
            energy: cfg.energy.write_energy(sets as u64, resets as u64) + read_energy,
            write_units_equiv: slots as f64,
            stored: fl.stored,
            flips: fl.flips,
            cell_sets: sets,
            cell_resets: resets,
            read_before_write: true,
            partitions_used: 0,
        }
        .tap_validate(ctx, &demand)
    }
}

trait TapValidate {
    fn tap_validate(self, ctx: &WriteCtx<'_>, demand: &LineDemand) -> Self;
}

impl TapValidate for WritePlan {
    /// Debug-only consistency check: cell pulse counts must equal the
    /// demand totals.
    fn tap_validate(self, _ctx: &WriteCtx<'_>, demand: &LineDemand) -> Self {
        debug_assert_eq!(self.cell_sets, demand.total_sets());
        debug_assert_eq!(self.cell_resets, demand.total_resets());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_types::{LineData, Ps};

    fn plan(old: &LineData, flips: u32, new: &LineData) -> WritePlan {
        let cfg = SchemeConfig::paper_baseline();
        FlipNWrite.plan(&WriteCtx {
            old_stored: old,
            old_flips: flips,
            new_logical: new,
            cfg: &cfg,
        })
    }

    #[test]
    fn four_slots_plus_read() {
        let old = LineData::zeroed(64);
        let new = LineData::from_units(&[1; 8]);
        let p = plan(&old, 0, &new);
        assert_eq!(
            p.service_time,
            Ps::from_ns(50 + 4 * 430),
            "Eq. 2 with N/M = 8"
        );
        assert_eq!(p.write_units_equiv, 4.0);
        assert!(p.read_before_write);
    }

    #[test]
    fn heavy_units_get_inverted() {
        let old = LineData::zeroed(64);
        let new = LineData::from_units(&[u64::MAX, 1, 0, 0, 0, 0, 0, 0]);
        let p = plan(&old, 0, &new);
        assert_eq!(p.flips & 1, 1, "unit 0 stored inverted");
        // Unit 0 costs only the flip-bit SET; unit 1 one SET.
        assert_eq!(p.cell_sets, 2);
        assert_eq!(p.cell_resets, 0);
        assert!(p.check_decodes_to(&new).is_ok());
    }

    #[test]
    fn energy_includes_the_extra_read() {
        let old = LineData::zeroed(64);
        let p = plan(&old, 0, &old);
        let cfg = SchemeConfig::paper_baseline();
        assert_eq!(p.energy, cfg.energy.read_energy(8), "no writes, read only");
    }

    #[test]
    fn changed_bits_never_exceed_half_per_unit() {
        let old = LineData::from_units(&[0xAAAA_AAAA_AAAA_AAAA; 8]);
        let new = LineData::from_units(&[0x5555_5555_5555_5555; 8]);
        let p = plan(&old, 0, &new);
        // Every unit flips entirely → stored inverted, 0 data transitions,
        // 8 flip-bit sets.
        assert_eq!(p.cell_sets + p.cell_resets, 8);
        assert!(p.check_decodes_to(&new).is_ok());
    }

    #[test]
    fn power7_line_scales_slots() {
        let mut cfg = SchemeConfig::paper_baseline();
        cfg.org.cache_line_bytes = 128;
        let old = LineData::zeroed(128);
        let new = LineData::zeroed(128);
        let p = FlipNWrite.plan(&WriteCtx {
            old_stored: &old,
            old_flips: 0,
            new_logical: &new,
            cfg: &cfg,
        });
        assert_eq!(p.write_units_equiv, 8.0, "16 units / 2 per slot");
    }
}
