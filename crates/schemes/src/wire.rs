//! WIRE — restricted coset coding (Seyedzadeh et al.), a sibling of
//! Flip-N-Write with a wider codebook.
//!
//! Flip-N-Write gives each data unit two encodings (plain / inverted) and
//! one tag bit. WIRE keeps the per-unit tag bit but lets the whole line
//! choose one of [`COSET_ROWS`] XOR masks for what
//! "flipped" means — row 0 is the full inversion (so WIRE's row-0 plan is
//! Flip-N-Write's plan), rows 1–3 capture half-word and striped update
//! shapes. Per write, the encoder scores every row by the
//! lexicographic `(cell SETs, changed cells)` cost — SETs are the slow,
//! endurance-limited pulses, so they dominate — including the tag-cell
//! transitions, and keeps the cheapest *feasible* row (every unit's
//! changed cells must stay ≤ half, preserving the flip-bounded staged
//! timing). Row 0 is always feasible, so WIRE's chosen cost is never
//! above Flip-N-Write's.
//!
//! Timing and energy follow Three-Stage-Write (read, then a bounded
//! RESET stage, then a bounded SET stage); the row index is stored in the
//! tag word's top bits (see [`pcm_types::coset`]), which the decode path
//! already understands. Lines with more than 30 data units have no spare
//! tag bits and degenerate to row 0, i.e. exactly Flip-N-Write's encoding.

use crate::traits::{
    worst_case_reset_concurrency, worst_case_set_concurrency, SchemeConfig, WriteCtx, WritePlan,
    WriteScheme,
};
use pcm_types::{
    coset_row, coset_rows_available, coset_unit_flips, transitions, with_coset_row, LineData,
    COSET_PATTERNS, COSET_ROWS,
};

/// One scored row candidate.
struct RowPlan {
    stored: LineData,
    unit_flips: u32,
    sets: u32,
    resets: u32,
    changed: u32,
}

/// Encode the line under one coset row, or `None` if any unit would
/// exceed the flip bound (changed cells > half the unit, tag included).
fn encode_row(ctx: &WriteCtx<'_>, row: usize) -> Option<RowPlan> {
    let bound = ctx.cfg.org.data_unit_bits / 2;
    let pattern = COSET_PATTERNS[row];
    let num_units = ctx.new_logical.num_units();
    let rows_live = coset_rows_available(num_units);
    let old_row = if rows_live {
        coset_row(ctx.old_flips)
    } else {
        0
    };
    let old_unit_flips = if rows_live {
        coset_unit_flips(ctx.old_flips)
    } else {
        ctx.old_flips
    };

    let mut out = RowPlan {
        stored: *ctx.new_logical,
        unit_flips: 0,
        sets: 0,
        resets: 0,
        changed: 0,
    };
    for i in 0..num_units {
        let old_stored = ctx.old_stored.unit(i);
        let new = ctx.new_logical.unit(i);
        let old_flip = old_unit_flips & (1 << i) != 0;
        let mut best: Option<(u32, u32, u32, u64, bool)> = None;
        for (word, flip) in [(new, false), (new ^ pattern, true)] {
            let t = transitions(old_stored, word);
            let tag_changed = (old_flip != flip) as u32;
            let sets = t.num_sets() + (flip & !old_flip) as u32;
            let resets = t.num_resets() + (!flip & old_flip) as u32;
            let changed = t.num_changed() + tag_changed;
            if changed > bound {
                continue;
            }
            let better = match best {
                None => true,
                Some((bs, bc, _, _, _)) => (sets, changed) < (bs, bc),
            };
            if better {
                best = Some((sets, changed, resets, word, flip));
            }
        }
        let (sets, changed, resets, word, flip) = best?;
        out.stored.set_unit(i, word);
        if flip {
            out.unit_flips |= 1 << i;
        }
        out.sets += sets;
        out.resets += resets;
        out.changed += changed;
    }
    // The 2-bit row field is itself made of cells.
    if rows_live {
        let rt = transitions(old_row as u64, row as u64);
        out.sets += rt.num_sets();
        out.resets += rt.num_resets();
        out.changed += rt.num_changed();
    }
    Some(out)
}

/// WIRE restricted coset coding.
#[derive(Clone, Copy, Debug, Default)]
pub struct WireWrite;

impl WriteScheme for WireWrite {
    fn name(&self) -> &'static str {
        "WIRE"
    }

    fn uses_flip_bits(&self) -> bool {
        true
    }

    fn plan(&self, ctx: &WriteCtx<'_>) -> WritePlan {
        let cfg: &SchemeConfig = ctx.cfg;
        let num_units = ctx.new_logical.num_units();
        let rows = if coset_rows_available(num_units) {
            COSET_ROWS
        } else {
            1
        };

        let mut best: Option<(usize, RowPlan)> = None;
        for row in 0..rows {
            let Some(cand) = encode_row(ctx, row) else {
                continue;
            };
            let better = match &best {
                None => true,
                Some((_, b)) => (cand.sets, cand.changed) < (b.sets, b.changed),
            };
            if better {
                best = Some((row, cand));
            }
        }
        let (row, enc) = best.expect("row 0 (full inversion) is always feasible");

        // Three-Stage-Write staging: the flip bound holds for every row.
        let c0 = worst_case_reset_concurrency(cfg, true) as u64;
        let c1 = worst_case_set_concurrency(cfg, true) as u64;
        let units = cfg.org.write_units_per_line() as u64;
        let write_time =
            cfg.timings.t_reset * units.div_ceil(c0) + cfg.timings.t_set * units.div_ceil(c1);
        let service = cfg.timings.t_read + write_time;
        let equiv = write_time.as_ps() as f64 / cfg.timings.t_set.as_ps() as f64;

        let flips = if rows > 1 {
            with_coset_row(enc.unit_flips, row)
        } else {
            enc.unit_flips
        };
        let read_energy = cfg.energy.read_energy(cfg.org.data_units_per_line() as u64);
        WritePlan {
            service_time: service,
            energy: cfg.energy.write_energy(enc.sets as u64, enc.resets as u64) + read_energy,
            write_units_equiv: equiv,
            stored: enc.stored,
            flips,
            cell_sets: enc.sets,
            cell_resets: enc.resets,
            read_before_write: true,
            partitions_used: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlipNWrite;
    use pcm_types::propcheck::{any_u64, vec_of};
    use pcm_types::{prop_assert, prop_assert_eq, propcheck, Ps};

    fn plan(old: &LineData, flips: u32, new: &LineData) -> WritePlan {
        let cfg = SchemeConfig::paper_baseline();
        WireWrite.plan(&WriteCtx {
            old_stored: old,
            old_flips: flips,
            new_logical: new,
            cfg: &cfg,
        })
    }

    #[test]
    fn timing_matches_three_stage() {
        let old = LineData::zeroed(64);
        let p = plan(&old, 0, &old);
        assert_eq!(p.service_time, Ps::from_ns(50 + 4 * 53 + 2 * 430));
        assert!(p.read_before_write);
    }

    #[test]
    fn upper_half_update_picks_a_cheap_row() {
        // Writing the upper-half mask over zeros: plain costs 32 SETs,
        // full inversion costs 32 RESETs + tag; row 1 (upper half) stores
        // zero data bits — just the tag cells.
        let old = LineData::zeroed(64);
        let new = LineData::from_units(&[0xFFFF_FFFF_0000_0000u64; 8]);
        let p = plan(&old, 0, &new);
        assert_eq!(pcm_types::coset_row(p.flips), 1, "upper-half row");
        // 8 unit tags SET + row field 0→1 (one SET).
        assert_eq!(p.cell_sets, 9);
        assert_eq!(p.cell_resets, 0);
        assert!(p.check_decodes_to(&new).is_ok());
    }

    #[test]
    fn striped_update_uses_the_alternating_row() {
        let old = LineData::zeroed(64);
        let new = LineData::from_units(&[0x5555_5555_5555_5555u64; 8]);
        let p = plan(&old, 0, &new);
        assert_eq!(pcm_types::coset_row(p.flips), 3, "alternating row");
        assert!(p.check_decodes_to(&new).is_ok());
        // FNW would invert nothing (32 = half, no flip) and SET 32 bits
        // per unit; WIRE stores only tag cells.
        assert!(p.cell_sets < 8 * 32);
    }

    #[test]
    fn decodes_after_row_changes() {
        // Write 1: striped data lands on row 3. Write 2: dense data over
        // it must re-encode (row changes) and still decode.
        let old = LineData::zeroed(64);
        let striped = LineData::from_units(&[0x5555_5555_5555_5555u64; 8]);
        let p1 = plan(&old, 0, &striped);
        let dense = LineData::from_units(&[u64::MAX; 8]);
        let p2 = plan(&p1.stored, p1.flips, &dense);
        assert!(p2.check_decodes_to(&dense).is_ok());
    }

    propcheck! {
        /// WIRE never pays more (SETs, then changed cells) than
        /// Flip-N-Write on the same transition: row 0 *is* FNW's choice
        /// space, and rows only replace it when strictly cheaper.
        fn never_costlier_than_fnw(olds in vec_of(any_u64(), 8), news in vec_of(any_u64(), 8)) {
            let cfg = SchemeConfig::paper_baseline();
            let old = LineData::from_units(&olds);
            let new = LineData::from_units(&news);
            let ctx = WriteCtx { old_stored: &old, old_flips: 0, new_logical: &new, cfg: &cfg };
            let wire = WireWrite.plan(&ctx);
            let fnw = FlipNWrite.plan(&ctx);
            prop_assert!(wire.cell_sets <= fnw.cell_sets,
                "wire {} > fnw {}", wire.cell_sets, fnw.cell_sets);
            prop_assert!(wire.check_decodes_to(&new).is_ok());
        }

        /// Round-trip through arbitrary prior WIRE state: whatever tag
        /// word a previous write left, the next plan decodes correctly.
        fn decodes_from_any_tag_state(olds in vec_of(any_u64(), 8),
                                      news in vec_of(any_u64(), 8),
                                      unit_flips in 0u32..256,
                                      row in 0usize..4) {
            let cfg = SchemeConfig::paper_baseline();
            let old = LineData::from_units(&olds);
            let new = LineData::from_units(&news);
            let flips = pcm_types::with_coset_row(unit_flips, row);
            let p = WireWrite.plan(&WriteCtx {
                old_stored: &old, old_flips: flips, new_logical: &new, cfg: &cfg,
            });
            prop_assert!(p.check_decodes_to(&new).is_ok());
            prop_assert_eq!(p.service_time, Ps::from_ns(50 + 4 * 53 + 2 * 430));
        }
    }
}
