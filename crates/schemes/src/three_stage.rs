//! Three-Stage-Write (Li et al., ASP-DAC'15) — Eq. 4.
//!
//! Combines Flip-N-Write with 2-Stage-Write: a read stage fetches the old
//! data and inverts units whose Hamming distance exceeds half, so both the
//! RESET stage and the SET stage carry at most half a unit's bits. Stage-0
//! speed doubles relative to 2-Stage-Write; stage-1 stays the same:
//! `T = Tread + (1/2K + 1/2L) · (N/M) · Tset`.

use crate::traits::{
    worst_case_reset_concurrency, worst_case_set_concurrency, SchemeConfig, WriteCtx, WritePlan,
    WriteScheme,
};
use pcm_types::{flip_units, LineDemand};

/// Three-Stage-Write.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreeStageWrite;

impl WriteScheme for ThreeStageWrite {
    fn name(&self) -> &'static str {
        "Three-Stage-Write"
    }

    fn uses_flip_bits(&self) -> bool {
        true
    }

    fn plan(&self, ctx: &WriteCtx<'_>) -> WritePlan {
        let cfg: &SchemeConfig = ctx.cfg;
        let fl = flip_units(ctx.old_stored, ctx.old_flips, ctx.new_logical);
        let demand = LineDemand::from_flipped(&fl);
        let (sets, resets) = fl.totals();

        // Flip bound holds in both stages: ≤32 RESETs → 2 units/Treset;
        // ≤32 SETs → 4 units/Tset.
        let c0 = worst_case_reset_concurrency(cfg, true) as u64;
        let c1 = worst_case_set_concurrency(cfg, true) as u64;
        let units = cfg.org.write_units_per_line() as u64;
        let slots0 = units.div_ceil(c0);
        let slots1 = units.div_ceil(c1);
        let write_time = cfg.timings.t_reset * slots0 + cfg.timings.t_set * slots1;
        let service = cfg.timings.t_read + write_time;
        let equiv = write_time.as_ps() as f64 / cfg.timings.t_set.as_ps() as f64;

        let read_energy = cfg.energy.read_energy(cfg.org.data_units_per_line() as u64);
        debug_assert_eq!(sets, demand.total_sets());
        debug_assert_eq!(resets, demand.total_resets());

        WritePlan {
            service_time: service,
            energy: cfg.energy.write_energy(sets as u64, resets as u64) + read_energy,
            write_units_equiv: equiv,
            stored: fl.stored,
            flips: fl.flips,
            cell_sets: sets,
            cell_resets: resets,
            read_before_write: true,
            partitions_used: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_types::{LineData, Ps};

    fn plan(old: &LineData, flips: u32, new: &LineData) -> WritePlan {
        let cfg = SchemeConfig::paper_baseline();
        ThreeStageWrite.plan(&WriteCtx {
            old_stored: old,
            old_flips: flips,
            new_logical: new,
            cfg: &cfg,
        })
    }

    #[test]
    fn service_matches_eq4() {
        let old = LineData::zeroed(64);
        let p = plan(&old, 0, &old);
        // Tread + 4 Treset + 2 Tset.
        assert_eq!(p.service_time, Ps::from_ns(50 + 4 * 53 + 2 * 430));
        // Fig. 10 quotes ~2.5 write units for 3SW.
        let expected = (4.0 * 53.0 + 2.0 * 430.0) / 430.0;
        assert!((p.write_units_equiv - expected).abs() < 1e-9);
        assert!((p.write_units_equiv - 2.49).abs() < 0.01);
        assert!(p.read_before_write);
    }

    #[test]
    fn differential_energy_like_fnw() {
        let old = LineData::zeroed(64);
        let mut new = LineData::zeroed(64);
        new.set_unit(2, 0b1_0101);
        let p = plan(&old, 0, &new);
        assert_eq!(p.cell_sets, 3);
        assert_eq!(p.cell_resets, 0);
        assert!(p.check_decodes_to(&new).is_ok());
    }

    #[test]
    fn stage0_twice_as_fast_as_two_stage() {
        use crate::two_stage::TwoStageWrite;
        let cfg = SchemeConfig::paper_baseline();
        let old = LineData::zeroed(64);
        let ctx = WriteCtx {
            old_stored: &old,
            old_flips: 0,
            new_logical: &old,
            cfg: &cfg,
        };
        let two = TwoStageWrite.plan(&ctx);
        let three = ThreeStageWrite.plan(&ctx);
        // 3SW write time (without the read) beats 2SW by exactly 4 Treset.
        let three_write = three.service_time - cfg.timings.t_read;
        assert_eq!(two.service_time - three_write, Ps::from_ns(4 * 53));
    }

    #[test]
    fn inversion_respects_stale_tags() {
        // Stored inverted already; new data identical to logical old → no
        // programming at all.
        let mut old = LineData::zeroed(64);
        old.set_unit(0, !0xABCDu64);
        let mut new = LineData::zeroed(64);
        new.set_unit(0, 0xABCD);
        let p = plan(&old, 0b1, &new);
        assert_eq!(p.cell_sets + p.cell_resets, 0);
        assert_eq!(p.flips & 1, 1, "stays inverted");
        assert!(p.check_decodes_to(&new).is_ok());
    }
}
