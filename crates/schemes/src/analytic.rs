//! Closed-form service-time models — Equations 1–4 of the paper.
//!
//! These are the theoretical worst-case times the paper tabulates; the
//! trait implementations must agree with them (cross-checked in tests),
//! and Fig. 10 plots them as the baselines' write-unit counts.

use crate::traits::SchemeConfig;
use pcm_types::Ps;

/// Eq. 1 — conventional: `T = (N/M) · Tset`.
pub fn t_conventional(cfg: &SchemeConfig) -> Ps {
    cfg.timings.t_set * cfg.org.write_units_per_line() as u64
}

/// Eq. 2 — Flip-N-Write: `T = Tread + (N/2M) · Tset`.
pub fn t_flip_n_write(cfg: &SchemeConfig) -> Ps {
    let n_m = cfg.org.write_units_per_line() as u64;
    cfg.timings.t_read + cfg.timings.t_set * n_m.div_ceil(2)
}

/// Eq. 3 — 2-Stage-Write: `T = (1/K + 1/2L) · (N/M) · Tset`.
///
/// Evaluated exactly: `(N/M)·Treset + ceil(N/M / 2L)·Tset`.
pub fn t_two_stage(cfg: &SchemeConfig) -> Ps {
    let n_m = cfg.org.write_units_per_line() as u64;
    let two_l = 2 * cfg.power.l_ratio as u64;
    cfg.timings.t_reset * n_m + cfg.timings.t_set * n_m.div_ceil(two_l)
}

/// Eq. 4 — Three-Stage-Write: `T = Tread + (1/2K + 1/2L) · (N/M) · Tset`.
pub fn t_three_stage(cfg: &SchemeConfig) -> Ps {
    let n_m = cfg.org.write_units_per_line() as u64;
    let two_l = 2 * cfg.power.l_ratio as u64;
    cfg.timings.t_read
        + cfg.timings.t_reset * n_m.div_ceil(2)
        + cfg.timings.t_set * n_m.div_ceil(two_l)
}

/// Eq. 5 — Tetris Write: `T = (result + subresult/K) · Tset`
/// (plus read and analysis overheads, added by the caller).
pub fn t_tetris_core(cfg: &SchemeConfig, result: u64, subresult: u64) -> Ps {
    let k = cfg.timings.k_ratio();
    cfg.timings.t_set * result + (cfg.timings.t_set / k) * subresult
}

/// The theoretical write-unit counts the paper quotes in Fig. 10 for the
/// static schemes: conventional 8, FNW 4, 2SW ≈ 3, 3SW ≈ 2.5 (baseline
/// geometry).
pub fn theoretical_write_units(cfg: &SchemeConfig) -> [(&'static str, f64); 4] {
    let tset = cfg.timings.t_set.as_ps() as f64;
    [
        ("Conventional", t_conventional(cfg).as_ps() as f64 / tset),
        (
            "Flip-N-Write",
            (t_flip_n_write(cfg) - cfg.timings.t_read).as_ps() as f64 / tset,
        ),
        ("2-Stage-Write", t_two_stage(cfg).as_ps() as f64 / tset),
        (
            "Three-Stage-Write",
            (t_three_stage(cfg) - cfg.timings.t_read).as_ps() as f64 / tset,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{WriteCtx, WriteScheme};
    use crate::{ConventionalWrite, DcwWrite, FlipNWrite, ThreeStageWrite, TwoStageWrite};
    use pcm_types::LineData;

    #[test]
    fn paper_numbers() {
        let cfg = SchemeConfig::paper_baseline();
        assert_eq!(t_conventional(&cfg), Ps::from_ns(8 * 430));
        assert_eq!(t_flip_n_write(&cfg), Ps::from_ns(50 + 4 * 430));
        assert_eq!(t_two_stage(&cfg), Ps::from_ns(8 * 53 + 2 * 430));
        assert_eq!(t_three_stage(&cfg), Ps::from_ns(50 + 4 * 53 + 2 * 430));
    }

    #[test]
    fn fig10_theoretical_units() {
        let cfg = SchemeConfig::paper_baseline();
        let rows = theoretical_write_units(&cfg);
        assert_eq!(rows[0].1, 8.0);
        assert_eq!(rows[1].1, 4.0);
        assert!((rows[2].1 - 2.99).abs() < 0.01, "2SW ≈ 3 write units");
        assert!((rows[3].1 - 2.49).abs() < 0.01, "3SW ≈ 2.5 write units");
    }

    #[test]
    fn trait_impls_agree_with_closed_forms() {
        let cfg = SchemeConfig::paper_baseline();
        let old = LineData::zeroed(64);
        let new = LineData::from_units(&[3; 8]);
        let ctx = WriteCtx {
            old_stored: &old,
            old_flips: 0,
            new_logical: &new,
            cfg: &cfg,
        };
        assert_eq!(
            ConventionalWrite.plan(&ctx).service_time,
            t_conventional(&cfg)
        );
        assert_eq!(DcwWrite.plan(&ctx).service_time, t_conventional(&cfg));
        assert_eq!(FlipNWrite.plan(&ctx).service_time, t_flip_n_write(&cfg));
        assert_eq!(TwoStageWrite.plan(&ctx).service_time, t_two_stage(&cfg));
        assert_eq!(ThreeStageWrite.plan(&ctx).service_time, t_three_stage(&cfg));
    }

    #[test]
    fn tetris_core_formula() {
        let cfg = SchemeConfig::paper_baseline();
        // result = 1, subresult = 2 → Tset + 2·(Tset/8).
        let t = t_tetris_core(&cfg, 1, 2);
        assert_eq!(t, Ps::from_ns(430) + Ps(430_000 / 8) * 2);
    }

    #[test]
    fn ordering_matches_paper() {
        let cfg = SchemeConfig::paper_baseline();
        assert!(t_three_stage(&cfg) < t_two_stage(&cfg));
        assert!(t_two_stage(&cfg) < t_flip_n_write(&cfg));
        assert!(t_flip_n_write(&cfg) < t_conventional(&cfg));
    }
}
