//! Property tests that every write scheme must satisfy, regardless of
//! content, stale flip tags, or geometry.

use pcm_schemes::{
    analytic, ConventionalWrite, DcwWrite, FlipNWrite, PreSetWrite, SchemeConfig, ThreeStageWrite,
    TwoStageWrite, WriteCtx, WriteScheme,
};
use pcm_types::propcheck::{any_u64, just, masked_u64, union, vec_of, Strategy};
use pcm_types::{hamming, LineData, Ps};
use pcm_types::{prop_assert, prop_assert_eq, propcheck};

fn schemes() -> Vec<Box<dyn WriteScheme>> {
    vec![
        Box::new(ConventionalWrite),
        Box::new(DcwWrite),
        Box::new(FlipNWrite),
        Box::new(TwoStageWrite),
        Box::new(ThreeStageWrite),
        Box::new(PreSetWrite),
    ]
}

fn line_strategy() -> impl Strategy<Value = Vec<u64>> {
    vec_of(
        union(vec![
            Box::new(just(0u64)),
            Box::new(just(u64::MAX)),
            Box::new(any_u64()),
            Box::new(masked_u64(0xFF)), // sparse
        ]),
        8,
    )
}

propcheck! {
    cases = 128;

    /// Invariant 1: the stored bits + flip tags always decode to the
    /// requested logical data (no scheme may corrupt memory).
    fn every_plan_decodes(old in line_strategy(), flips in 0u32..256, new in line_strategy()) {
        let cfg = SchemeConfig::paper_baseline();
        let old = LineData::from_units(&old);
        let new = LineData::from_units(&new);
        let ctx = WriteCtx { old_stored: &old, old_flips: flips, new_logical: &new, cfg: &cfg };
        for s in schemes() {
            let plan = s.plan(&ctx);
            prop_assert!(plan.check_decodes_to(&new).is_ok(), "{} corrupted data", s.name());
            // Schemes that disown flip bits must leave them cleared.
            if !s.uses_flip_bits() {
                prop_assert_eq!(plan.flips, 0, "{} left flip tags", s.name());
            }
        }
    }

    /// Invariant 2: service time is positive and never exceeds the
    /// conventional worst case (Eq. 1) plus read overhead.
    fn service_time_bounded(old in line_strategy(), new in line_strategy()) {
        let cfg = SchemeConfig::paper_baseline();
        let old = LineData::from_units(&old);
        let new = LineData::from_units(&new);
        let ctx = WriteCtx { old_stored: &old, old_flips: 0, new_logical: &new, cfg: &cfg };
        let ceiling = analytic::t_conventional(&cfg) + cfg.timings.t_read;
        for s in schemes() {
            let plan = s.plan(&ctx);
            prop_assert!(plan.service_time > Ps::ZERO, "{}", s.name());
            prop_assert!(
                plan.service_time <= ceiling,
                "{} slower than conventional: {} > {}",
                s.name(),
                plan.service_time,
                ceiling
            );
        }
    }

    /// Invariant 3: differential schemes never pulse more cells than the
    /// raw Hamming distance plus one flip-cell per unit.
    fn differential_pulse_bound(old in line_strategy(), new in line_strategy()) {
        let cfg = SchemeConfig::paper_baseline();
        let old = LineData::from_units(&old);
        let new = LineData::from_units(&new);
        let ctx = WriteCtx { old_stored: &old, old_flips: 0, new_logical: &new, cfg: &cfg };
        let dist = hamming(&old, &new);
        for s in [Box::new(DcwWrite) as Box<dyn WriteScheme>,
                  Box::new(FlipNWrite), Box::new(ThreeStageWrite)] {
            let plan = s.plan(&ctx);
            prop_assert!(
                plan.cell_sets + plan.cell_resets <= dist + 8,
                "{} pulsed {} cells for distance {}",
                s.name(),
                plan.cell_sets + plan.cell_resets,
                dist
            );
        }
    }

    /// Invariant 4: flip-coded schemes never pulse more than half the
    /// cells (+ flip bits), whatever the content.
    fn flip_bound_holds(old in line_strategy(), flips in 0u32..256, new in line_strategy()) {
        let cfg = SchemeConfig::paper_baseline();
        let old = LineData::from_units(&old);
        let new = LineData::from_units(&new);
        let ctx = WriteCtx { old_stored: &old, old_flips: flips, new_logical: &new, cfg: &cfg };
        for s in [Box::new(FlipNWrite) as Box<dyn WriteScheme>, Box::new(ThreeStageWrite)] {
            let plan = s.plan(&ctx);
            prop_assert!(
                plan.cell_sets + plan.cell_resets <= 8 * 32,
                "{}: {} pulses",
                s.name(),
                plan.cell_sets + plan.cell_resets
            );
        }
    }

    /// Invariant 5: writing identical data is free for differential
    /// schemes (beyond the mandatory read).
    fn idempotent_writes_are_cheap(data in line_strategy()) {
        let cfg = SchemeConfig::paper_baseline();
        let line = LineData::from_units(&data);
        let ctx = WriteCtx { old_stored: &line, old_flips: 0, new_logical: &line, cfg: &cfg };
        for s in [Box::new(DcwWrite) as Box<dyn WriteScheme>,
                  Box::new(FlipNWrite), Box::new(ThreeStageWrite)] {
            let plan = s.plan(&ctx);
            prop_assert_eq!(plan.cell_sets + plan.cell_resets, 0, "{}", s.name());
        }
    }

    /// Invariant 6: scheme ordering from the paper holds for *every*
    /// content, not just on average — the static schemes' times are
    /// content-independent by construction.
    fn static_ordering_invariant(old in line_strategy(), new in line_strategy()) {
        let cfg = SchemeConfig::paper_baseline();
        let old = LineData::from_units(&old);
        let new = LineData::from_units(&new);
        let ctx = WriteCtx { old_stored: &old, old_flips: 0, new_logical: &new, cfg: &cfg };
        let conv = ConventionalWrite.plan(&ctx).service_time;
        let fnw = FlipNWrite.plan(&ctx).service_time;
        let two = TwoStageWrite.plan(&ctx).service_time;
        let three = ThreeStageWrite.plan(&ctx).service_time;
        prop_assert!(three < two);
        prop_assert!(two < fnw);
        prop_assert!(fnw < conv);
    }
}
