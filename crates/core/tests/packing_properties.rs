//! Packing-quality properties of the analysis stage, checked against an
//! exact bin-packing optimum computed by subset DP (feasible because a
//! line has only 8 data units).

use pcm_types::propcheck::{one_of, vec_of};
use pcm_types::{prop_assert, prop_assert_eq, propcheck};
use pcm_types::{LineDemand, PowerParams, UnitDemand};
use tetris_write::{analyze, TetrisConfig};

/// Exact minimal number of bins of capacity `cap` for `items`
/// (classic 2^n set-partition DP; n ≤ 8 here).
fn optimal_bins(items: &[u32], cap: u32) -> u32 {
    let n = items.len();
    assert!(n <= 16, "DP is exponential");
    let full = (1usize << n) - 1;
    // feasible[mask]: all items in mask fit one bin.
    let mut sum = vec![0u32; full + 1];
    for mask in 1..=full {
        let low = mask.trailing_zeros() as usize;
        sum[mask] = sum[mask & (mask - 1)] + items[low];
    }
    let mut best = vec![u32::MAX; full + 1];
    best[0] = 0;
    for mask in 1..=full {
        // Enumerate submasks as the "last bin".
        let mut sub = mask;
        while sub > 0 {
            if sum[sub] <= cap && best[mask ^ sub] != u32::MAX {
                best[mask] = best[mask].min(best[mask ^ sub] + 1);
            }
            sub = (sub - 1) & mask;
        }
    }
    best[full]
}

fn demand_from(sets: &[u32]) -> LineDemand {
    LineDemand::from_units(
        &sets
            .iter()
            .map(|&s| UnitDemand::new(s, 0))
            .collect::<Vec<_>>(),
    )
}

propcheck! {
    cases = 256;

    /// FFD write-1 packing is within one write unit of the exact optimum
    /// (and never below it — that would violate feasibility).
    fn ffd_within_one_of_optimal(
        sets in vec_of(1u32..=33, 1..=8),
        budget in one_of(&[128u32, 64, 48]),
    ) {
        let mut cfg = TetrisConfig::paper_baseline();
        cfg.scheme.power = PowerParams { l_ratio: 2, budget_per_bank: budget, chips_per_bank: 4 };
        cfg.min_one_write_unit = false;
        let d = demand_from(&sets);
        let a = analyze(&d, &cfg).unwrap();
        let opt = optimal_bins(&sets, budget);
        prop_assert!(a.result >= opt, "result {} below optimum {}", a.result, opt);
        prop_assert!(
            a.result <= opt + 1,
            "FFD used {} bins, optimum {} (items {:?}, budget {budget})",
            a.result,
            opt,
            sets
        );
    }

    /// Adding write-0s never increases `result` (they only consume slack
    /// or overflow sub-units).
    fn write0s_never_cost_write_units(
        sets in vec_of(0u32..=33, 8),
        resets in vec_of(0u32..=33, 8),
    ) {
        let cfg = TetrisConfig::paper_baseline();
        let just_sets = LineDemand::from_units(
            &sets.iter().map(|&s| UnitDemand::new(s, 0)).collect::<Vec<_>>(),
        );
        let both = LineDemand::from_units(
            &sets
                .iter()
                .zip(&resets)
                .map(|(&s, &r)| UnitDemand::new(s, r))
                .collect::<Vec<_>>(),
        );
        let a1 = analyze(&just_sets, &cfg).unwrap();
        let a2 = analyze(&both, &cfg).unwrap();
        prop_assert_eq!(a1.result, a2.result);
    }

    /// Monotonicity in budget: a bigger budget never packs worse.
    fn budget_monotonicity(
        units in vec_of((0u32..=33, 0u32..=33), 8),
    ) {
        let d = LineDemand::from_units(
            &units.iter().map(|&(s, r)| UnitDemand::new(s, r)).collect::<Vec<_>>(),
        );
        let mut prev = f64::INFINITY;
        for budget in [32u32, 64, 128, 256] {
            let mut cfg = TetrisConfig::paper_baseline();
            cfg.scheme.power =
                PowerParams { l_ratio: 2, budget_per_bank: budget, chips_per_bank: 4 };
            let a = analyze(&d, &cfg).unwrap();
            let equiv = a.write_units_equiv();
            prop_assert!(
                equiv <= prev + 1e-9,
                "budget {budget}: {equiv} worse than smaller budget's {prev}"
            );
            prev = equiv;
        }
    }

    /// Utilization never exceeds 1 and the schedule always validates.
    fn utilization_and_validity(
        units in vec_of((0u32..=33, 0u32..=33), 1..=8),
    ) {
        let cfg = TetrisConfig::paper_baseline();
        let d = LineDemand::from_units(
            &units.iter().map(|&(s, r)| UnitDemand::new(s, r)).collect::<Vec<_>>(),
        );
        let a = analyze(&d, &cfg).unwrap();
        prop_assert!(a.validate(&d).is_ok());
        prop_assert!(a.utilization() <= 1.0 + 1e-12);
    }
}

#[test]
fn optimal_bins_sanity() {
    assert_eq!(optimal_bins(&[10, 10, 10], 32), 1);
    assert_eq!(optimal_bins(&[20, 20, 20], 32), 3);
    assert_eq!(optimal_bins(&[16, 16, 16, 16], 32), 2);
    // {15,9,9} and {15,9} fit two bins of 33.
    assert_eq!(optimal_bins(&[15, 15, 9, 9, 9], 33), 2);
}
