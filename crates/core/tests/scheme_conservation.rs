//! Pulse-conservation property for every scheme in the registry.
//!
//! Each scheme reports `cell_sets`/`cell_resets` — the pulses its write
//! circuit would issue. Those numbers must be *conserved* against the
//! stored-line state transition the plan claims to perform:
//!
//! * **Differential schemes** (DCW, FNW, 3-Stage, Tetris, PALP, WIRE): the reported
//!   pulses are exactly the popcounts of the `transitions()` masks from
//!   the old stored bits (+ flip tags) to the planned stored bits
//!   (+ flip tags) — no phantom pulses, no unpaid transitions.
//! * **Full-programming schemes** (Conventional, 2-Stage): every data
//!   cell (and, for 2-Stage, every flip tag) is pulsed *to its target
//!   value*, so the split is the popcount of the planned stored bits vs
//!   the rest, plus stale/fresh tag pulses.
//! * **PreSET**: the background sweep SETs every logical-0 cell (clearing
//!   stale tags on the way), the foreground write-back RESETs every bit
//!   that must read 0.
//!
//! Driven off [`SchemeSelect::ALL`] so a scheme added to the registry is
//! automatically covered — a new variant that misreports its pulse
//! accounting fails here, not in an energy figure three PRs later.

use pcm_schemes::{SchemeConfig, SchemeSelect, WriteCtx, WritePlan};
use pcm_types::propcheck::{any_u64, just, masked_u64, union, vec_of, Strategy};
use pcm_types::{prop_assert, prop_assert_eq, propcheck};
use pcm_types::{transitions, LineData};

fn line_strategy() -> impl Strategy<Value = Vec<u64>> {
    vec_of(
        union(vec![
            Box::new(just(0u64)),
            Box::new(just(u64::MAX)),
            Box::new(any_u64()),
            Box::new(masked_u64(0xFF)), // sparse
        ]),
        8,
    )
}

/// The expected (sets, resets) for `plan` under `sel`, derived from the
/// stored-line transition masks — independently of the scheme's own
/// accounting code.
fn expected_pulses(sel: SchemeSelect, ctx: &WriteCtx<'_>, plan: &WritePlan) -> (u32, u32) {
    let unit_bits = ctx.cfg.org.data_unit_bits;
    let num_units = ctx.new_logical.num_units() as u32;
    let total_bits = unit_bits * num_units;
    match sel {
        // Differential: pulses == transitions(old stored → planned stored)
        // plus transitions(old flip tags → planned flip tags).
        SchemeSelect::Dcw
        | SchemeSelect::Fnw
        | SchemeSelect::ThreeStage
        | SchemeSelect::Tetris
        | SchemeSelect::Palp
        | SchemeSelect::Wire => {
            let mut sets = 0u32;
            let mut resets = 0u32;
            for i in 0..ctx.new_logical.num_units() {
                let t = transitions(ctx.old_stored.unit(i), plan.stored.unit(i));
                sets += t.num_sets();
                resets += t.num_resets();
            }
            let tags = transitions(ctx.old_flips as u64, plan.flips as u64);
            (sets + tags.num_sets(), resets + tags.num_resets())
        }
        // Every bit programmed to its target value; stale flip tags reset.
        SchemeSelect::Conventional => {
            let ones = plan.stored.popcount();
            (ones, total_bits - ones + ctx.old_flips.count_ones())
        }
        // Every data cell and every flip tag pulsed to its target value.
        SchemeSelect::TwoStage => {
            let ones = plan.stored.popcount();
            let tag_ones = plan.flips.count_ones();
            (
                ones + tag_ones,
                (total_bits - ones) + (num_units - tag_ones),
            )
        }
        // Background sweep SETs every logical 0 (and stale tags); the
        // write-back RESETs every bit that must read 0.
        SchemeSelect::PreSet => {
            let old_logical = ctx.old_logical();
            (
                total_bits - old_logical.popcount() + ctx.old_flips.count_ones(),
                total_bits - ctx.new_logical.popcount(),
            )
        }
    }
}

propcheck! {
    cases = 128;

    /// Reported sets/resets match the transition-mask accounting for
    /// every registered scheme, across arbitrary content and stale tags.
    fn pulse_accounting_is_conserved(
        old in line_strategy(),
        flips in 0u32..256,
        new in line_strategy(),
    ) {
        tetris_write::register_scheme_factory();
        let old = LineData::from_units(&old);
        let new = LineData::from_units(&new);
        for sel in SchemeSelect::ALL {
            let cfg = SchemeConfig::builder()
                .select(sel)
                .build()
                .expect("registry config is valid");
            let scheme = cfg.instantiate();
            let ctx = WriteCtx {
                old_stored: &old,
                old_flips: flips,
                new_logical: &new,
                cfg: &cfg,
            };
            let plan = scheme.plan(&ctx);
            let (sets, resets) = expected_pulses(sel, &ctx, &plan);
            prop_assert_eq!(
                (plan.cell_sets, plan.cell_resets),
                (sets, resets),
                "{} ({}) misreports pulses",
                scheme.name(),
                sel.tag()
            );
            // The paired statement from the issue: total pulses equal the
            // total transition-mask popcounts of the claimed state change.
            prop_assert_eq!(plan.cell_sets + plan.cell_resets, sets + resets);
            // And the accounting must be for a plan that actually stores
            // the requested data.
            prop_assert!(
                plan.check_decodes_to(&new).is_ok(),
                "{} corrupted data",
                scheme.name()
            );
        }
    }
}

/// `SchemeSelect::ALL` is the whole registry: every variant appears
/// exactly once (a new variant that isn't added to `ALL` fails the
/// arm-count check below at compile time via `tag()`'s exhaustive match,
/// and this test catches a forgotten `ALL` entry).
#[test]
fn registry_covers_every_scheme_once() {
    let mut tags: Vec<&str> = SchemeSelect::ALL.iter().map(|s| s.tag()).collect();
    tags.sort_unstable();
    let mut deduped = tags.clone();
    deduped.dedup();
    assert_eq!(tags, deduped, "duplicate entry in SchemeSelect::ALL");
    assert_eq!(
        tags,
        [
            "2stage",
            "3stage",
            "conventional",
            "dcw",
            "fnw",
            "palp",
            "preset",
            "tetris",
            "wire"
        ]
    );
}
