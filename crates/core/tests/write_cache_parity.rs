//! Write-cache tier parity, driven off [`PolicySelect::ALL`] in the style
//! of `scheme_conservation.rs`: a policy added to the registry is
//! automatically covered, and a tier left disabled (`frames = 0`) must be
//! bit-for-bit the pipeline the paper models — same runtime, same latency
//! accounting, same pulse counts, same energy.

use pcm_memsim::{
    AccessKind, PolicySelect, SimResult, System, SystemConfig, TraceOp, UniformRandomContent,
    VecTrace, WriteCacheConfig,
};

/// A write-heavy two-core trace with enough address reuse for a tier to
/// coalesce and enough spread to force evictions.
fn ops_per_core() -> Vec<Vec<TraceOp>> {
    (0..2)
        .map(|core: u64| {
            (0..1_500)
                .map(|i: u64| TraceOp {
                    gap: 6,
                    kind: if i % 3 == 0 {
                        AccessKind::Read
                    } else {
                        AccessKind::Write
                    },
                    // 47 hot lines per core (coprime to the read stride,
                    // so every line sees both kinds), 16 MiB apart per
                    // core so the sets never collide.
                    addr: core * 0x100_0000 + (i % 47) * 64,
                })
                .collect()
        })
        .collect()
}

fn run_with(cfg: SystemConfig) -> SimResult {
    let mut sys = System::build(cfg)
        .expect("parity config is valid")
        .with_trace(Box::new(VecTrace::new(ops_per_core())))
        .with_content(Box::new(UniformRandomContent::new(11)));
    sys.run()
}

/// Every deterministic field of a run, for exact cross-run comparison
/// (`SimResult` holds histograms, so compare a full fingerprint instead
/// of spot-checking one metric).
fn fingerprint(r: &SimResult) -> Vec<u64> {
    let mut f = vec![
        r.runtime.0,
        r.read_latency.count,
        r.read_latency.sum_ps,
        r.write_latency.count,
        r.write_latency.sum_ps,
        r.mem_reads,
        r.mem_writes,
        r.cell_sets + r.cell_resets,
    ];
    f.extend(&r.instructions);
    f.extend(&r.cycles);
    f
}

/// `PolicySelect::ALL` is the whole registry: every variant appears
/// exactly once and its canonical tag round-trips through `FromStr`.
#[test]
fn registry_covers_every_policy_once() {
    let mut tags: Vec<&str> = PolicySelect::ALL.iter().map(|p| p.tag()).collect();
    tags.sort_unstable();
    let mut deduped = tags.clone();
    deduped.dedup();
    assert_eq!(tags, deduped, "duplicate entry in PolicySelect::ALL");
    assert_eq!(tags, ["2q", "clock", "lru"]);
    for p in PolicySelect::ALL {
        let parsed: PolicySelect = p.tag().parse().expect("canonical tag parses");
        assert_eq!(parsed, p, "Display → FromStr round-trips for {p}");
    }
}

/// A disabled tier (the default, and the explicit `frames = 0` spelling)
/// is bit-for-bit the plain pipeline.
#[test]
fn disabled_tier_is_bit_for_bit_baseline() {
    let baseline = run_with(SystemConfig::paper_baseline());
    let mut explicit = SystemConfig::paper_baseline();
    explicit.write_cache = WriteCacheConfig::disabled();
    assert_eq!(fingerprint(&run_with(explicit)), fingerprint(&baseline));
}

/// The hierarchy refactor onto `ReplacementPolicy` must not move a single
/// bit: a CPU-level run with the default config and one with LRU spelled
/// out on every level are the same run (the default *is* the historical
/// hard-coded LRU).
#[test]
fn hierarchy_default_lru_is_bit_for_bit_pinned() {
    let mut default_cfg = SystemConfig::paper_baseline();
    default_cfg.level = pcm_memsim::TraceLevel::CpuLevel;
    let mut explicit = default_cfg;
    explicit.l1.policy = PolicySelect::Lru;
    explicit.l2.policy = PolicySelect::Lru;
    explicit.l3.policy = PolicySelect::Lru;
    let a = run_with(default_cfg);
    let b = run_with(explicit);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    // The hierarchy must actually be filtering (otherwise this pins
    // nothing): hot lines hit in cache, so PCM sees few reads.
    assert!(
        a.mem_reads < 1_000,
        "hierarchy not engaged: {}",
        a.mem_reads
    );
}

/// Registry-driven determinism and conservation: under every policy the
/// enabled tier replays identically, absorbs writes (PCM services fewer
/// line writes than the baseline), and never loses one (the run still
/// writes every distinct dirty line).
#[test]
fn every_policy_is_deterministic_and_conserves_writes() {
    let baseline = run_with(SystemConfig::paper_baseline());
    assert!(baseline.mem_writes > 0);
    for policy in PolicySelect::ALL {
        let mut cfg = SystemConfig::paper_baseline();
        cfg.write_cache = WriteCacheConfig::with_frames(128, policy);
        cfg.validate().expect("tier config is valid");
        let a = run_with(cfg);
        let b = run_with(cfg);
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "{policy}: tier run not deterministic"
        );
        assert!(
            a.mem_writes < baseline.mem_writes,
            "{policy}: tier absorbed nothing ({} vs baseline {})",
            a.mem_writes,
            baseline.mem_writes
        );
        // 2 cores × 47 hot lines: every dirty line must reach the PCM at
        // least once, whatever the eviction order.
        assert!(
            a.mem_writes >= 94,
            "{policy}: dirty lines went missing ({} < 94)",
            a.mem_writes
        );
    }
}
