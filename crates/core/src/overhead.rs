//! A cycle model of the analysis-stage hardware (§IV-D).
//!
//! The paper measures the Tetris Write logic at **41 cycles worst case** on
//! a Virtex-7 via Vivado HLS, clocked at the 400 MHz memory-bus clock
//! (= 102.5 ns), and calls the estimate "primitive and pessimistic". This
//! module models where those cycles go for an `n`-data-unit line:
//!
//! * **sorting** — an odd-even transposition network over `n` elements
//!   (the HLS-friendly structure): `n` compare-exchange stages, one cycle
//!   per stage, run twice (write-1 and write-0 orders);
//! * **placement** — one cycle per data unit per packing pass (the
//!   first-fit scan is pipelined against the running `WUp` accumulators),
//!   again twice;
//! * **fixed pipeline overhead** — register the Reg0/Reg1 inputs, compute
//!   the `IN0 = NUM0·L` scaling, and hand the queues to the FSMs.
//!
//! For the paper's `n = 8` this lands exactly on 41 cycles, and the model
//! extrapolates to the wider lines of the sweeps (128/256 B) and to
//! batched analysis.

use pcm_types::Ps;

/// Fixed pipeline cycles (input registration, `IN0` scaling, queue
/// hand-off). Chosen so the n = 8 total matches the paper's measurement.
pub const FIXED_CYCLES: u64 = 9;

/// Cycles for one odd-even transposition sort of `n` elements.
pub const fn sort_cycles(n: u64) -> u64 {
    n
}

/// Cycles for one first-fit placement pass over `n` elements.
pub const fn placement_cycles(n: u64) -> u64 {
    n
}

/// Total analysis cycles for an `n`-data-unit line: two sorts + two
/// placement passes + the fixed pipeline.
pub const fn analysis_cycles(n: u64) -> u64 {
    FIXED_CYCLES + 2 * sort_cycles(n) + 2 * placement_cycles(n)
}

/// Analysis latency at a given logic clock.
pub const fn analysis_latency(n: u64, clock_mhz: u64) -> Ps {
    Ps::from_cycles(analysis_cycles(n), clock_mhz)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TetrisConfig;

    #[test]
    fn matches_the_papers_41_cycles_at_n8() {
        assert_eq!(analysis_cycles(8), 41);
        assert_eq!(analysis_latency(8, 400), Ps(102_500), "102.5 ns at 400 MHz");
        // …which is exactly the default TetrisConfig overhead.
        assert_eq!(
            analysis_latency(8, 400),
            TetrisConfig::paper_baseline().analysis_overhead
        );
    }

    #[test]
    fn scales_linearly_with_line_width() {
        // 128 B line = 16 units; 256 B = 32 units.
        assert_eq!(analysis_cycles(16), 9 + 64);
        assert_eq!(analysis_cycles(32), 9 + 128);
        // Still well under one Treset at 400 MHz even for 256 B lines:
        // the analysis hides inside the read stage's shadow.
        assert!(analysis_latency(32, 400) < Ps::from_ns(430));
    }

    #[test]
    fn faster_asic_clock_shrinks_overhead() {
        // §IV-D: "we can shorten the analysis time by migrating the work to
        // an ASIC with individual clocks with higher frequency."
        let fpga = analysis_latency(8, 400);
        let asic = analysis_latency(8, 2_000);
        assert_eq!(asic, Ps(20_500));
        assert!(asic.as_ps() * 5 == fpga.as_ps());
    }
}
