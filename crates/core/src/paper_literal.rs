//! A near-literal transcription of the paper's Algorithm 2 listing, kept
//! for the ablation study.
//!
//! The printed pseudocode cannot run as written:
//!
//! * line 16's placement condition is inverted (`>` places nothing, ever);
//! * the `j = (result − 1)` guards compare against a loop variable in a way
//!   that can never be true on the first unit;
//! * line 23–25 updates `WUp[k]` for `k ∈ [1, j·K]` — every sub-slot of
//!   every *earlier* write unit, not the slots of unit `j`.
//!
//! This module applies the *minimum* repairs needed to execute (un-invert
//! the condition, open a new unit when the scan exhausts existing ones) but
//! keeps the listing's two distinctive quirks: the budget is checked at a
//! single sub-slot (`WUp[j·K]`, the unit's last slot) rather than across
//! all `K`, and a placement charges every sub-slot up to and including the
//! chosen unit. The second quirk makes packing strictly pessimistic, which
//! is why the corrected first-fit-decreasing in [`crate::analysis`] never
//! does worse — the ablation bench quantifies the gap.

use crate::config::TetrisConfig;
use pcm_types::{LineDemand, PcmError};

/// Result of the literal algorithm: just the two counters of Eq. 5.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PaperLiteralResult {
    /// Write units consumed by write-1s.
    pub result: u32,
    /// Overflow sub-write-units for write-0s.
    pub subresult: u32,
}

impl PaperLiteralResult {
    /// Fig. 10 metric.
    pub fn write_units_equiv(&self, k: usize) -> f64 {
        self.result as f64 + self.subresult as f64 / k as f64
    }
}

/// Run the (minimally repaired) literal Algorithm 2.
pub fn paper_literal_analyze(
    demand: &LineDemand,
    cfg: &TetrisConfig,
) -> Result<PaperLiteralResult, PcmError> {
    let power = &cfg.scheme.power;
    let k = cfg.scheme.timings.k_ratio() as usize;
    let l = power.l_ratio;
    let pb = power.budget_per_bank;
    if pb < l {
        return Err(PcmError::config("budget cannot source even one RESET"));
    }

    // IN1[i] ← NUM1[i]; IN0[i] ← NUM0[i] × L  (lines 2–5).
    let mut in1: Vec<u32> = demand.units().iter().map(|u| u.sets).collect();
    let mut in0: Vec<u32> = demand.units().iter().map(|u| u.resets * l).collect();
    // Lines 7–10: sort decreasing.
    in1.sort_unstable_by_key(|&v| std::cmp::Reverse(v));
    in0.sort_unstable_by_key(|&v| std::cmp::Reverse(v));

    // result ← 1 (line 6): one write unit exists from the start.
    let mut result: u32 = 1;
    let mut wup: Vec<u32> = vec![0; k];

    // Lines 12–29: traverse write-1 data units.
    for &need in in1.iter().filter(|&&n| n > 0) {
        // A single unit's demand above the budget cannot be placed by the
        // listing at all; surface that instead of looping forever.
        if need > pb {
            return Err(PcmError::PowerBudgetViolation {
                slot: 0,
                demand: need,
                budget: pb,
            });
        }
        loop {
            let mut placed = false;
            for j in 0..result as usize {
                // Listing quirk #1: the check samples one slot, WUp[j·K]
                // (the unit's last sub-slot).
                let probe = wup[(j + 1) * k - 1];
                if need + probe <= pb {
                    // Listing quirk #2: charge every sub-slot in [0, j·K].
                    for slot in wup.iter_mut().take((j + 1) * k) {
                        *slot += need;
                    }
                    placed = true;
                    break;
                }
            }
            if placed {
                break;
            }
            result += 1;
            wup.extend(std::iter::repeat_n(0, k));
        }
    }

    // Lines 31–44: traverse write-0 data units over sub-slots.
    let mut subresult: u32 = 0;
    for &need in in0.iter().filter(|&&n| n > 0) {
        if need > pb {
            return Err(PcmError::PowerBudgetViolation {
                slot: 0,
                demand: need,
                budget: pb,
            });
        }
        match wup.iter().position(|&u| need + u <= pb) {
            Some(s) => wup[s] += need,
            None => {
                subresult += 1;
                wup.push(need);
            }
        }
    }

    Ok(PaperLiteralResult { result, subresult })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use pcm_types::propcheck::vec_of;
    use pcm_types::{prop_assert, propcheck};
    use pcm_types::{PowerParams, UnitDemand};

    fn cfg_with_budget(budget: u32) -> TetrisConfig {
        let mut cfg = TetrisConfig::paper_baseline();
        cfg.scheme.power = PowerParams {
            l_ratio: 2,
            budget_per_bank: budget,
            chips_per_bank: 4,
        };
        cfg
    }

    fn demand(units: &[(u32, u32)]) -> LineDemand {
        LineDemand::from_units(
            &units
                .iter()
                .map(|&(s, r)| UnitDemand::new(s, r))
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn fig4_example_matches_corrected_result() {
        // On the worked example the quirks happen not to hurt: same counts.
        let cfg = cfg_with_budget(32);
        let d = demand(&[
            (8, 0),
            (7, 1),
            (7, 1),
            (6, 2),
            (6, 3),
            (6, 2),
            (5, 2),
            (3, 5),
        ]);
        let lit = paper_literal_analyze(&d, &cfg).unwrap();
        assert_eq!(lit.result, 2);
        assert_eq!(lit.subresult, 0);
    }

    #[test]
    fn empty_demand_keeps_initial_unit() {
        let cfg = TetrisConfig::paper_baseline();
        let d = demand(&[(0, 0); 8]);
        let lit = paper_literal_analyze(&d, &cfg).unwrap();
        assert_eq!(
            lit,
            PaperLiteralResult {
                result: 1,
                subresult: 0
            }
        );
    }

    #[test]
    fn oversized_demand_is_an_error_not_a_hang() {
        let cfg = cfg_with_budget(16);
        let d = demand(&[(20, 0)]);
        assert!(paper_literal_analyze(&d, &cfg).is_err());
        let d = demand(&[(0, 20)]);
        assert!(
            paper_literal_analyze(&d, &cfg).is_err(),
            "40 > 16 RESET current"
        );
    }

    propcheck! {
        /// The corrected FFD packer never needs more write units than the
        /// literal listing (whose over-charging only wastes space).
        fn corrected_is_never_worse(
            units in vec_of((0u32..=32, 0u32..=16), 8),
        ) {
            let cfg = TetrisConfig::paper_baseline();
            let d = demand(&units);
            let lit = paper_literal_analyze(&d, &cfg).unwrap();
            let fixed = analyze(&d, &cfg).unwrap();
            prop_assert!(fixed.result <= lit.result);
            prop_assert!(
                fixed.write_units_equiv() <= lit.write_units_equiv(fixed.k) + 1e-9
            );
        }
    }
}
