//! The analysis stage — Algorithm 2.
//!
//! Given per-unit demand counts, compute currents (`IN1[i] = NUM1[i]`,
//! `IN0[i] = NUM0[i] · L`), then:
//!
//! 1. **Pack write-1s** into write units, first-fit-decreasing: each SET
//!    pulse occupies all `K` sub-slots of its write unit, so a write unit
//!    accepts a unit's SETs iff *every* one of its sub-slots has headroom.
//!    Units that don't fit anywhere open a new write unit (`result`).
//! 2. **Pack write-0s** into individual sub-slots, first-fit-decreasing
//!    over *all* existing sub-slots — the headroom left by the write-1s is
//!    stolen, like dropping short Tetris pieces into the gaps. Write-0s
//!    that fit nowhere append overflow sub-units (`subresult`).
//!
//! The resulting service time is Eq. 5: `(result + subresult/K) · Tset`.
//!
//! ### Deviation from the paper's pseudocode
//! The paper's Algorithm 2 listing has indexing bugs (its `j = result−1`
//! guard cannot fire on the first unit and its `WUp[k]` update loop writes
//! *every* earlier unit's slots). We implement what the prose and the
//! worked example (Fig. 4) describe; the literal transcription is kept in
//! [`crate::paper_literal`] for comparison.
//!
//! Demands larger than the whole budget (possible under mobile X4/X2
//! budgets) are split into serial chunks — the paper assumes they never
//! occur; chunking generalizes the algorithm without changing behaviour in
//! the paper's regime.

use crate::config::TetrisConfig;
use pcm_types::{LineDemand, PcmError, Ps};

/// Which FSM a pulse belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PulsePhase {
    /// Write-1 (SET, FSM1): spans `K` sub-slots.
    Write1,
    /// Write-0 (RESET, FSM0): spans 1 sub-slot.
    Write0,
}

/// One scheduled pulse (or chunk of one) for one data unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Placement {
    /// Data-unit index within the cache line.
    pub unit: usize,
    /// SET or RESET phase.
    pub phase: PulsePhase,
    /// Global sub-slot index where the pulse begins (write-1 placements
    /// always start on a write-unit boundary, `j·K`).
    pub start_slot: usize,
    /// Bit-writes in this pulse.
    pub bits: u32,
    /// Instantaneous current drawn, in SET-equivalents.
    pub current: u32,
}

/// Output of the analysis stage.
#[derive(Clone, Debug)]
pub struct AnalysisResult {
    /// Write units consumed by write-1s (the paper's `result`).
    pub result: u32,
    /// Overflow sub-write-units appended for write-0s (`subresult`).
    pub subresult: u32,
    /// All placements — the contents of the write-1 and write-0 queues.
    pub placements: Vec<Placement>,
    /// Current drawn in each sub-slot (`WUp`), length `result·K + subresult`.
    pub slot_usage: Vec<u32>,
    /// Sub-slots per write unit (`K`).
    pub k: usize,
    /// Power asymmetry (`L`).
    pub l: u32,
    /// Budget enforced (`PBmax`).
    pub budget: u32,
}

impl AnalysisResult {
    /// Fig. 10's metric: `result + subresult / K` serial write units.
    pub fn write_units_equiv(&self) -> f64 {
        self.result as f64 + self.subresult as f64 / self.k as f64
    }

    /// Eq. 5 service time of the write phase (excludes read/analysis).
    pub fn write_time(&self, t_set: Ps) -> Ps {
        t_set * self.result as u64 + (t_set / self.k as u64) * self.subresult as u64
    }

    /// Peak instantaneous current across all sub-slots.
    pub fn peak_current(&self) -> u32 {
        self.slot_usage.iter().copied().max().unwrap_or(0)
    }

    /// Mean budget utilization across the makespan, in [0, 1].
    pub fn utilization(&self) -> f64 {
        if self.slot_usage.is_empty() || self.budget == 0 {
            return 0.0;
        }
        let used: u64 = self.slot_usage.iter().map(|&u| u as u64).sum();
        used as f64 / (self.budget as u64 * self.slot_usage.len() as u64) as f64
    }

    /// Write0 (RESET) placements dropped into the write-1 region's slack
    /// — sub-slots `< result·K` — rather than into overflow
    /// sub-write-units. These are the "short Tetris pieces" the scheme
    /// exists to hide; a schedule with zero stolen jobs degenerates to
    /// Three-Stage-Write behaviour.
    pub fn stolen_write0_jobs(&self) -> u32 {
        let boundary = self.result as usize * self.k;
        self.write0_queue()
            .filter(|p| p.start_slot < boundary)
            .count() as u32
    }

    /// Packing quality in the shape the memory controller's telemetry
    /// consumes.
    pub fn pack_stats(&self) -> pcm_schemes::PackStats {
        pcm_schemes::PackStats {
            stolen_write0s: self.stolen_write0_jobs(),
            utilization: self.utilization(),
            write_units_equiv: self.write_units_equiv(),
        }
    }

    /// The write-1 queue (FSM1's input), in placement order.
    pub fn write1_queue(&self) -> impl Iterator<Item = &Placement> {
        self.placements
            .iter()
            .filter(|p| p.phase == PulsePhase::Write1)
    }

    /// The write-0 queue (FSM0's input), in placement order.
    pub fn write0_queue(&self) -> impl Iterator<Item = &Placement> {
        self.placements
            .iter()
            .filter(|p| p.phase == PulsePhase::Write0)
    }

    /// Verify the schedule is complete and feasible:
    /// every demanded bit is placed exactly once, no placement overruns the
    /// timeline, and recomputed slot usage stays within budget and matches
    /// `slot_usage`.
    pub fn validate(&self, demand: &LineDemand) -> Result<(), PcmError> {
        let slots = self.result as usize * self.k + self.subresult as usize;
        if self.slot_usage.len() != slots {
            return Err(PcmError::IncompleteSchedule(format!(
                "slot_usage length {} ≠ {slots}",
                self.slot_usage.len()
            )));
        }
        let mut recomputed = vec![0u32; slots];
        let mut placed_sets = vec![0u32; demand.len()];
        let mut placed_resets = vec![0u32; demand.len()];
        for p in &self.placements {
            let span = match p.phase {
                PulsePhase::Write1 => {
                    if p.start_slot % self.k != 0 {
                        return Err(PcmError::IncompleteSchedule(format!(
                            "write-1 of unit {} not aligned to a write unit",
                            p.unit
                        )));
                    }
                    placed_sets[p.unit] += p.bits;
                    debug_assert_eq!(p.current, p.bits);
                    self.k
                }
                PulsePhase::Write0 => {
                    placed_resets[p.unit] += p.bits;
                    debug_assert_eq!(p.current, p.bits * self.l);
                    1
                }
            };
            if p.start_slot + span > slots {
                return Err(PcmError::IncompleteSchedule(format!(
                    "placement of unit {} overruns the timeline",
                    p.unit
                )));
            }
            #[allow(clippy::needless_range_loop)] // slot indices appear in the error
            for s in p.start_slot..p.start_slot + span {
                recomputed[s] += p.current;
                if recomputed[s] > self.budget {
                    return Err(PcmError::PowerBudgetViolation {
                        slot: s,
                        demand: recomputed[s],
                        budget: self.budget,
                    });
                }
            }
        }
        if recomputed != self.slot_usage {
            return Err(PcmError::IncompleteSchedule(
                "slot usage does not match placements".into(),
            ));
        }
        for (i, u) in demand.units().iter().enumerate() {
            if placed_sets[i] != u.sets || placed_resets[i] != u.resets {
                return Err(PcmError::IncompleteSchedule(format!(
                    "unit {i}: placed {}S/{}R, demanded {}S/{}R",
                    placed_sets[i], placed_resets[i], u.sets, u.resets
                )));
            }
        }
        Ok(())
    }
}

/// Run Algorithm 2 over a line's demand.
///
/// ```
/// use pcm_types::{LineDemand, UnitDemand};
/// use tetris_write::{analyze, TetrisConfig};
///
/// // Typical content (paper Observation 1): ~7 SETs + ~3 RESETs per unit.
/// let demand = LineDemand::from_units(&[UnitDemand::new(7, 3); 8]);
/// let a = analyze(&demand, &TetrisConfig::paper_baseline()).unwrap();
/// assert_eq!(a.result, 1);      // all 56 SETs fit one write unit
/// assert_eq!(a.subresult, 0);   // the RESETs hide in its slack
/// assert_eq!(a.write_units_equiv(), 1.0);
/// ```
pub fn analyze(demand: &LineDemand, cfg: &TetrisConfig) -> Result<AnalysisResult, PcmError> {
    let power = &cfg.scheme.power;
    let k = cfg.scheme.timings.k_ratio() as usize;
    let l = power.l_ratio;
    let budget = power.budget_per_bank;
    if budget < l {
        return Err(PcmError::config("budget cannot source even one RESET"));
    }

    let mut placements = Vec::with_capacity(demand.len() * 2);
    let mut slot_usage: Vec<u32> = Vec::with_capacity(2 * k);
    let mut result: u32 = 0;

    // ---- write-1 packing (write-unit granularity) ----
    let mut order1: Vec<usize> = (0..demand.len())
        .filter(|&i| demand.units()[i].sets > 0)
        .collect();
    if cfg.sort_decreasing {
        order1.sort_by_key(|&i| std::cmp::Reverse(demand.units()[i].sets));
    }
    for &i in &order1 {
        let mut remaining = demand.units()[i].sets;
        while remaining > 0 {
            let chunk = remaining.min(budget);
            // First write unit whose *minimum* sub-slot headroom fits the chunk.
            let mut target = None;
            for j in 0..result as usize {
                let headroom = slot_usage[j * k..(j + 1) * k]
                    .iter()
                    .map(|&u| budget - u)
                    .min()
                    .unwrap_or(0);
                if headroom >= chunk {
                    target = Some(j);
                    break;
                }
            }
            let j = target.unwrap_or_else(|| {
                result += 1;
                slot_usage.extend(std::iter::repeat_n(0, k));
                result as usize - 1
            });
            for slot in slot_usage.iter_mut().take((j + 1) * k).skip(j * k) {
                *slot += chunk;
            }
            placements.push(Placement {
                unit: i,
                phase: PulsePhase::Write1,
                start_slot: j * k,
                bits: chunk,
                current: chunk,
            });
            remaining -= chunk;
        }
    }

    // Paper's Algorithm 2 initializes `result ← 1`: a write always occupies
    // at least one write unit.
    if cfg.min_one_write_unit && result == 0 {
        result = 1;
        slot_usage.extend(std::iter::repeat_n(0, k));
    }

    // ---- write-0 packing (sub-slot granularity) ----
    let mut subresult: u32 = 0;
    let mut order0: Vec<usize> = (0..demand.len())
        .filter(|&i| demand.units()[i].resets > 0)
        .collect();
    if cfg.sort_decreasing {
        order0.sort_by_key(|&i| std::cmp::Reverse(demand.units()[i].resets));
    }
    let max_resets_per_slot = (budget / l).max(1);
    for &i in &order0 {
        let mut remaining = demand.units()[i].resets;
        while remaining > 0 {
            let chunk_bits = remaining.min(max_resets_per_slot);
            let need = chunk_bits * l;
            let slot = if cfg.steal_write0_slack {
                slot_usage.iter().position(|&u| budget - u >= need)
            } else {
                // Ablation: only overflow slots (after the write-1 region)
                // may host write-0s.
                slot_usage[result as usize * k..]
                    .iter()
                    .position(|&u| budget - u >= need)
                    .map(|p| p + result as usize * k)
            };
            let s = slot.unwrap_or_else(|| {
                subresult += 1;
                slot_usage.push(0);
                slot_usage.len() - 1
            });
            slot_usage[s] += need;
            placements.push(Placement {
                unit: i,
                phase: PulsePhase::Write0,
                start_slot: s,
                bits: chunk_bits,
                current: need,
            });
            remaining -= chunk_bits;
        }
    }

    let out = AnalysisResult {
        result,
        subresult,
        placements,
        slot_usage,
        k,
        l,
        budget,
    };
    debug_assert!(
        out.validate(demand).is_ok(),
        "analysis produced invalid schedule"
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_types::propcheck::{any_bool, one_of, vec_of};
    use pcm_types::{prop_assert, prop_assert_eq, propcheck};
    use pcm_types::{PowerParams, UnitDemand};

    fn cfg_with_budget(budget: u32) -> TetrisConfig {
        let mut cfg = TetrisConfig::paper_baseline();
        cfg.scheme.power = PowerParams {
            l_ratio: 2,
            budget_per_bank: budget,
            chips_per_bank: 4,
        };
        cfg
    }

    fn demand(units: &[(u32, u32)]) -> LineDemand {
        LineDemand::from_units(
            &units
                .iter()
                .map(|&(s, r)| UnitDemand::new(s, r))
                .collect::<Vec<_>>(),
        )
    }

    /// The paper's Fig. 4 worked example: budget 32, write-1 loads
    /// 8,7,7,6,6,6,5,3 and write-0 loads 0,1,1,2,3,2,2,5. Tetris finishes
    /// in two write units with no overflow (T1 = 2 · Tset after the read).
    #[test]
    fn fig4_worked_example() {
        let cfg = cfg_with_budget(32);
        let d = demand(&[
            (8, 0),
            (7, 1),
            (7, 1),
            (6, 2),
            (6, 3),
            (6, 2),
            (5, 2),
            (3, 5),
        ]);
        let a = analyze(&d, &cfg).unwrap();
        a.validate(&d).unwrap();
        assert_eq!(a.result, 2, "write-1s fill exactly two write units");
        assert_eq!(a.subresult, 0, "all write-0s hide in the slack");
        assert_eq!(a.write_units_equiv(), 2.0);
        assert!(a.peak_current() <= 32);
        // First write unit packs 8+7+7+6+3 = 31 (units 0,1,2,3 + the 3-SET unit).
        assert_eq!(a.slot_usage[0..8].iter().max(), Some(&31));
    }

    #[test]
    fn pack_stats_count_stolen_write0s() {
        // Fig. 4 shape: every write-0 hides inside the two write-1 units,
        // so each write-0 placement counts as stolen.
        let cfg = cfg_with_budget(32);
        let d = demand(&[
            (8, 0),
            (7, 1),
            (7, 1),
            (6, 2),
            (6, 3),
            (6, 2),
            (5, 2),
            (3, 5),
        ]);
        let a = analyze(&d, &cfg).unwrap();
        let stolen = a.stolen_write0_jobs();
        assert_eq!(
            stolen,
            a.write0_queue().count() as u32,
            "no overflow slots → every write-0 was stolen into slack"
        );
        assert!(stolen >= 7, "seven units carry write-0 demand");
        let ps = a.pack_stats();
        assert_eq!(ps.stolen_write0s, stolen);
        assert_eq!(ps.write_units_equiv, 2.0);
        assert!(ps.utilization > 0.0 && ps.utilization <= 1.0);

        // Ablation: with slack stealing off, write-0s land in overflow
        // sub-units past the write-1 region — none count as stolen.
        let mut no_steal = cfg;
        no_steal.steal_write0_slack = false;
        let b = analyze(&d, &no_steal).unwrap();
        assert_eq!(b.stolen_write0_jobs(), 0);
        assert!(b.subresult > 0, "write-0s forced into overflow slots");
        assert!(b.pack_stats().write_units_equiv > a.pack_stats().write_units_equiv);
    }

    #[test]
    fn set_dominant_line_fits_one_unit() {
        // Paper Observation 1: ~6.7 SETs + 2.9 RESETs per unit → all eight
        // units' SETs (≤ 54 current) share one write unit, write-0s hide.
        let cfg = TetrisConfig::paper_baseline(); // budget 128
        let d = demand(&[(7, 3); 8]);
        let a = analyze(&d, &cfg).unwrap();
        a.validate(&d).unwrap();
        assert_eq!(a.result, 1);
        assert_eq!(a.subresult, 0);
        assert_eq!(a.write_units_equiv(), 1.0);
    }

    #[test]
    fn empty_demand_occupies_min_one_unit() {
        let cfg = TetrisConfig::paper_baseline();
        let d = demand(&[(0, 0); 8]);
        let a = analyze(&d, &cfg).unwrap();
        assert_eq!(a.result, 1, "paper initializes result ← 1");
        assert_eq!(a.write_units_equiv(), 1.0);

        let mut cfg2 = cfg;
        cfg2.min_one_write_unit = false;
        let a2 = analyze(&d, &cfg2).unwrap();
        assert_eq!(a2.result, 0);
        assert_eq!(a2.write_units_equiv(), 0.0);
    }

    #[test]
    fn worst_case_degenerates_to_flip_n_write() {
        // All units at the flip bound (32 SETs): 128/32 = 4 per write unit
        // → 2 write units, like FNW's halved unit count.
        let cfg = TetrisConfig::paper_baseline();
        let d = demand(&[(32, 0); 8]);
        let a = analyze(&d, &cfg).unwrap();
        a.validate(&d).unwrap();
        assert_eq!(a.result, 2);
    }

    #[test]
    fn reset_only_line_uses_sub_units() {
        let cfg = TetrisConfig::paper_baseline();
        // 8 units × 20 RESETs = 40 current each; 3 per slot (120 ≤ 128).
        let d = demand(&[(0, 20); 8]);
        let a = analyze(&d, &cfg).unwrap();
        a.validate(&d).unwrap();
        assert_eq!(a.result, 1, "min-one write unit opens 8 free sub-slots");
        assert_eq!(a.subresult, 0, "8 write-0s fit in the 8 empty sub-slots");
        // Each slot holds up to 3 such write-0s, so they spread across 3 slots.
        assert!(a.peak_current() <= 128);
    }

    #[test]
    fn overflow_subunits_appended_when_slack_exhausted() {
        // Budget 32: one unit with 31 SETs fills the write unit almost
        // completely; 8 units of 10 RESETs (20 current) each need overflow.
        let cfg = cfg_with_budget(32);
        let d = demand(&[
            (31, 10),
            (0, 10),
            (0, 10),
            (0, 10),
            (0, 10),
            (0, 10),
            (0, 10),
            (0, 10),
        ]);
        let a = analyze(&d, &cfg).unwrap();
        a.validate(&d).unwrap();
        assert_eq!(a.result, 1);
        assert!(
            a.subresult >= 8,
            "no slack inside the write unit: {}",
            a.subresult
        );
        assert!(a.write_units_equiv() > 1.0);
    }

    #[test]
    fn chunking_handles_demand_above_budget() {
        // Mobile X2-scale budget: 8 < one unit's 20 SETs → chunked serially.
        let cfg = cfg_with_budget(8);
        let d = demand(&[(20, 6), (1, 0)]);
        let a = analyze(&d, &cfg).unwrap();
        a.validate(&d).unwrap();
        // 20 SETs in chunks of 8: 8+8+4 → 3 write units (the 4-chunk shares
        // with the 1-SET unit).
        assert!(a.result >= 3);
        assert!(a.peak_current() <= 8);
    }

    #[test]
    fn sorting_ablation_changes_packing() {
        // Decreasing-order packing fits loads {9,8,7,4,4} + {3,1} into two
        // 16-budget units; insertion order wastes space.
        let cfg = cfg_with_budget(16);
        let d = demand(&[
            (9, 0),
            (3, 0),
            (8, 0),
            (1, 0),
            (7, 0),
            (4, 0),
            (4, 0),
            (0, 0),
        ]);
        let sorted = analyze(&d, &cfg).unwrap();
        let mut cfg_nosort = cfg;
        cfg_nosort.sort_decreasing = false;
        let unsorted = analyze(&d, &cfg_nosort).unwrap();
        sorted.validate(&d).unwrap();
        unsorted.validate(&d).unwrap();
        assert!(
            sorted.result <= unsorted.result,
            "FFD never packs worse than FF ({} vs {})",
            sorted.result,
            unsorted.result
        );
    }

    #[test]
    fn steal_ablation_forces_overflow() {
        let cfg = TetrisConfig::paper_baseline();
        let d = demand(&[(7, 3); 8]);
        let mut cfg_nosteal = cfg;
        cfg_nosteal.steal_write0_slack = false;
        let no_steal = analyze(&d, &cfg_nosteal).unwrap();
        no_steal.validate(&d).unwrap();
        let steal = analyze(&d, &cfg).unwrap();
        assert!(no_steal.write_units_equiv() > steal.write_units_equiv());
    }

    #[test]
    fn queues_partition_placements() {
        let cfg = TetrisConfig::paper_baseline();
        let d = demand(&[
            (5, 2),
            (3, 1),
            (0, 4),
            (6, 0),
            (0, 0),
            (1, 1),
            (2, 2),
            (4, 4),
        ]);
        let a = analyze(&d, &cfg).unwrap();
        let q1 = a.write1_queue().count();
        let q0 = a.write0_queue().count();
        assert_eq!(q1 + q0, a.placements.len());
        assert_eq!(q1, 6, "six units have SETs");
        assert_eq!(q0, 6, "six units have RESETs");
    }

    #[test]
    fn rejects_budget_below_one_reset() {
        let mut cfg = TetrisConfig::paper_baseline();
        cfg.scheme.power.budget_per_bank = 1; // < L = 2
        let d = demand(&[(1, 1)]);
        assert!(analyze(&d, &cfg).is_err());
    }

    #[test]
    fn validate_catches_tampered_schedules() {
        let cfg = TetrisConfig::paper_baseline();
        let d = demand(&[(5, 2); 8]);
        let a = analyze(&d, &cfg).unwrap();

        let mut missing = a.clone();
        missing.placements.pop();
        assert!(missing.validate(&d).is_err(), "missing placement detected");

        let mut misaligned = a.clone();
        for p in &mut misaligned.placements {
            if p.phase == PulsePhase::Write1 {
                p.start_slot += 1;
                break;
            }
        }
        assert!(misaligned.validate(&d).is_err(), "misalignment detected");
    }

    propcheck! {
        /// Any demand with per-unit totals within the flip bound yields a
        /// valid schedule whose peak respects the budget.
        fn analysis_always_valid(
            units in vec_of((0u32..=33, 0u32..=33), 1..=8),
            budget in one_of(&[128u32, 64, 32, 16]),
            sort in any_bool(),
            steal in any_bool(),
        ) {
            let mut cfg = cfg_with_budget(budget);
            cfg.sort_decreasing = sort;
            cfg.steal_write0_slack = steal;
            let d = demand(&units);
            let a = analyze(&d, &cfg).unwrap();
            prop_assert!(a.validate(&d).is_ok());
            prop_assert!(a.peak_current() <= budget);
            // Eq. 5 consistency.
            let t = a.write_time(cfg.scheme.timings.t_set);
            let expect = cfg.scheme.timings.t_set * a.result as u64
                + (cfg.scheme.timings.t_set / 8) * a.subresult as u64;
            prop_assert_eq!(t, expect);
        }

        /// FFD with slack stealing never does worse than the per-unit
        /// serial lower bound and never better than physics allows.
        fn write_units_bounded(
            units in vec_of((0u32..=33, 0u32..=33), 8),
        ) {
            let cfg = TetrisConfig::paper_baseline();
            let d = demand(&units);
            let a = analyze(&d, &cfg).unwrap();
            // Lower bound: total SET current / budget write units.
            let total1: u32 = d.units().iter().map(|u| u.sets).sum();
            let lb = (total1 as f64 / 128.0).ceil().max(1.0);
            prop_assert!(a.result as f64 >= lb);
            // Upper bound: one write unit per SET-bearing unit plus one
            // sub-unit per RESET-bearing unit.
            let ub = d.units_with_sets().max(1) + d.units_with_resets();
            prop_assert!(a.write_units_equiv() <= ub as f64);
        }
    }
}
