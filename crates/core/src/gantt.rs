//! ASCII chip-level timing diagrams (the paper's Fig. 4).
//!
//! Rows are data units, columns are sub-write-unit slots (Treset-scale).
//! A run of `1`s is a write-1 (SET) pulse spanning its write unit's `K`
//! slots; a `0` is a write-0 (RESET) dropped into stolen slack. Write-unit
//! boundaries are marked with `|`, appended overflow sub-units with `+`.

use crate::analysis::{AnalysisResult, PulsePhase};
use std::fmt::Write as _;

/// Render an analysis result as an ASCII Gantt chart.
///
/// `num_units` is the number of data units in the line (rows to draw).
pub fn render_gantt(analysis: &AnalysisResult, num_units: usize) -> String {
    let k = analysis.k;
    let total_slots = analysis.slot_usage.len();
    let mut out = String::new();

    // Header ruler with write-unit boundaries.
    let _ = write!(out, "        ");
    for s in 0..total_slots {
        let in_overflow = s >= analysis.result as usize * k;
        if s % k == 0 && !in_overflow {
            out.push('|');
        } else if in_overflow && s == analysis.result as usize * k {
            out.push('+');
        } else {
            out.push(' ');
        }
    }
    out.push('\n');

    for unit in 0..num_units {
        let _ = write!(out, "unit {unit:>2} ");
        let mut row = vec![b'.'; total_slots];
        for p in analysis.placements.iter().filter(|p| p.unit == unit) {
            match p.phase {
                PulsePhase::Write1 => {
                    for cell in row.iter_mut().skip(p.start_slot).take(k) {
                        *cell = b'1';
                    }
                }
                PulsePhase::Write0 => {
                    row[p.start_slot] = b'0';
                }
            }
        }
        out.push_str(&String::from_utf8_lossy(&row));
        out.push('\n');
    }

    // Per-slot current footprint.
    let _ = write!(out, "current ");
    for &u in &analysis.slot_usage {
        let c = match (u as u64 * 10).div_ceil(analysis.budget.max(1) as u64) {
            0 => '.',
            d @ 1..=9 => char::from_digit(d as u32, 10).unwrap_or('#'),
            _ => '#',
        };
        out.push(c);
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "result={} subresult={} write-units={:.2} peak={}/{} util={:.0}%",
        analysis.result,
        analysis.subresult,
        analysis.write_units_equiv(),
        analysis.peak_current(),
        analysis.budget,
        analysis.utilization() * 100.0
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::config::TetrisConfig;
    use pcm_types::{LineDemand, PowerParams, UnitDemand};

    fn fig4_analysis() -> AnalysisResult {
        let mut cfg = TetrisConfig::paper_baseline();
        cfg.scheme.power = PowerParams {
            l_ratio: 2,
            budget_per_bank: 32,
            chips_per_bank: 4,
        };
        let d = LineDemand::from_units(&[
            UnitDemand::new(8, 0),
            UnitDemand::new(7, 1),
            UnitDemand::new(7, 1),
            UnitDemand::new(6, 2),
            UnitDemand::new(6, 3),
            UnitDemand::new(6, 2),
            UnitDemand::new(5, 2),
            UnitDemand::new(3, 5),
        ]);
        analyze(&d, &cfg).unwrap()
    }

    #[test]
    fn renders_all_rows_and_summary() {
        let a = fig4_analysis();
        let g = render_gantt(&a, 8);
        assert_eq!(
            g.lines().count(),
            1 + 8 + 2,
            "ruler + 8 units + footprint + summary"
        );
        assert!(g.contains("unit  0"));
        assert!(g.contains("result=2 subresult=0"));
        assert!(g.contains("write-units=2.00"));
    }

    #[test]
    fn set_pulses_span_k_slots() {
        let a = fig4_analysis();
        let g = render_gantt(&a, 8);
        let row0 = g.lines().nth(1).unwrap();
        let ones = row0.matches('1').count();
        assert_eq!(ones, 8, "unit 0's SET pulse spans K = 8 slots");
    }

    #[test]
    fn write0_marks_single_slots() {
        let a = fig4_analysis();
        let g = render_gantt(&a, 8);
        // Unit 7 has a write-1 (8 slots) and one write-0 (1 slot).
        let row7 = g.lines().nth(8).unwrap();
        assert_eq!(row7.matches('0').count(), 1);
    }

    #[test]
    fn empty_schedule_renders() {
        let cfg = TetrisConfig::paper_baseline();
        let d = LineDemand::empty(8);
        let a = analyze(&d, &cfg).unwrap();
        let g = render_gantt(&a, 8);
        assert!(g.contains("result=1 subresult=0"));
    }
}
