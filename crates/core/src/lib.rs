//! # tetris-write
//!
//! The paper's contribution: **Tetris Write**, a PCM write scheme that
//! monitors the *actual* number of '1' and '0' bit-writes per data unit
//! and schedules them like Tetris pieces — the long, low-current write-1
//! (SET) pulses are bin-packed into write units first, then the short,
//! high-current write-0 (RESET) pulses are dropped into the current
//! headroom left inside those units' sub-write-unit slots.
//!
//! The write proceeds in the paper's three stages:
//!
//! 1. **Read** ([`mod@read_stage`], Algorithm 1) — read the old data + flip
//!    tags, invert units whose Hamming distance exceeds half, and count the
//!    per-unit SET/RESET demand (`NUM1[i]`, `NUM0[i]`).
//! 2. **Analysis** ([`analysis`], Algorithm 2) — convert counts to currents
//!    (`IN1 = NUM1`, `IN0 = NUM0·L`), first-fit-decreasing pack write-1s
//!    into write units and write-0s into sub-write-unit slots, producing
//!    `result` write units and `subresult` overflow sub-units
//!    (Eq. 5: `T = (result + subresult/K) · Tset`).
//! 3. **Individually write** ([`schedule`]) — emit the FSM0/FSM1 job
//!    queues; `pcm-device`'s executor replays them against a bank, checking
//!    the instantaneous budget every tick.
//!
//! [`TetrisWrite`] packages the three stages behind the common
//! [`pcm_schemes::WriteScheme`] trait; [`gantt`] renders chip-level timing
//! diagrams like the paper's Fig. 4; [`paper_literal`] preserves a
//! transcription of the paper's (buggy) pseudocode for ablation studies;
//! [`batch`] extends the packer across several queued lines (the authors'
//! DATE'16 follow-up direction).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod batch;
pub mod config;
pub mod gantt;
pub mod paper_literal;
pub mod read_stage;
pub mod schedule;
pub mod scheme_impl;

pub use analysis::{analyze, AnalysisResult, Placement, PulsePhase};
pub use batch::{analyze_batch, BatchAnalysis};
pub use config::TetrisConfig;
pub use gantt::render_gantt;
pub use pcm_schemes::{SchemeConfig, WriteCtx, WriteScheme};
pub use read_stage::{read_stage, ReadStageOutput};
pub use schedule::{build_jobs, validate_on_bank, ValidationReport};
pub use scheme_impl::TetrisWrite;

/// Register [`TetrisWrite`] as the constructor behind
/// [`pcm_schemes::SchemeSelect::Tetris`], so
/// `SchemeConfig::instantiate()` can build it despite the crate
/// dependency pointing the other way. Idempotent — callers may invoke it
/// freely before instantiating schemes.
///
/// The registered factory uses [`TetrisConfig::paper_baseline`] packing
/// knobs with the caller's `SchemeConfig` substituted; code that needs
/// non-default packing knobs constructs [`TetrisWrite`] directly.
pub fn register_scheme_factory() {
    pcm_schemes::register_tetris_factory(|cfg| {
        let mut t = TetrisConfig::paper_baseline();
        t.scheme = *cfg;
        Box::new(TetrisWrite::new(t))
    });
}
