//! The individually-write stage: turn an [`AnalysisResult`] into the FSM0 /
//! FSM1 job queues and (for verification) execute them on a modeled bank.
//!
//! Each placement becomes one [`ScheduledBitWrite`]: a SET pulse covering a
//! unit's write-1 bits starting at its write unit's first sub-slot, or a
//! RESET pulse in its stolen sub-slot. When the analysis stage had to chunk
//! a demand across several pulses (budget smaller than one unit's demand),
//! the jobs carry *progressive targets* so the write driver's XOR gating
//! programs exactly that chunk's bits and nothing else.

use crate::analysis::{AnalysisResult, PulsePhase};
use crate::read_stage::ReadStageOutput;
use pcm_device::{FsmExecutor, PcmBank, ScheduledBitWrite, WriteOp};
use pcm_types::{LineData, PcmError, PcmTimings, Ps};

/// Pick the lowest `n` set bits of `mask`.
fn take_low_bits(mask: u64, n: u32) -> u64 {
    let mut out = 0u64;
    let mut m = mask;
    for _ in 0..n {
        debug_assert!(m != 0, "mask exhausted while chunking");
        let low = m & m.wrapping_neg();
        out |= low;
        m &= !low;
    }
    out
}

/// Build the FSM job list for one cache-line write.
///
/// `old_stored`/`old_flips` are the array contents before the write;
/// `read_out` is the read stage's output (final stored bits + demand);
/// `analysis` the packing. Returns one job per placement, in per-unit time
/// order, ready for [`FsmExecutor::execute`].
pub fn build_jobs(
    old_stored: &LineData,
    old_flips: u32,
    read_out: &ReadStageOutput,
    analysis: &AnalysisResult,
) -> Result<Vec<ScheduledBitWrite>, PcmError> {
    let stored = read_out.stored();
    let flips = read_out.flips();
    let mut jobs = Vec::with_capacity(analysis.placements.len());

    for unit in 0..stored.num_units() {
        let old_data = old_stored.unit(unit);
        let old_flip = old_flips & (1 << unit) != 0;
        let final_data = stored.unit(unit);
        let final_flip = flips & (1 << unit) != 0;

        let set_mask = final_data & !old_data;
        let reset_mask = old_data & !final_data;
        let flip_set = !old_flip && final_flip;
        let flip_reset = old_flip && !final_flip;

        // Gather this unit's placements per phase, in time order, so the
        // cumulative chunk targets execute in the order the FSMs fire them.
        let mut p1: Vec<_> = analysis
            .placements
            .iter()
            .filter(|p| p.unit == unit && p.phase == PulsePhase::Write1)
            .collect();
        p1.sort_by_key(|p| p.start_slot);
        let mut p0: Vec<_> = analysis
            .placements
            .iter()
            .filter(|p| p.unit == unit && p.phase == PulsePhase::Write0)
            .collect();
        p0.sort_by_key(|p| p.start_slot);

        // ---- write-1 chunks ----
        let mut remaining_sets = set_mask;
        let mut flip_now = old_flip;
        let mut flip_set_pending = flip_set;
        for p in p1 {
            let mut data_bits = p.bits;
            if flip_set_pending {
                flip_now = true;
                flip_set_pending = false;
                data_bits -= 1;
            }
            let chunk = take_low_bits(remaining_sets, data_bits);
            remaining_sets &= !chunk;
            // Target: final data minus the set bits later chunks will add.
            // One-phase driving never resets, so reset-destined bits being
            // 0 in the target is harmless whether or not FSM0 got there.
            let target = final_data & !remaining_sets;
            jobs.push(ScheduledBitWrite {
                unit_row: unit,
                op: WriteOp::Set,
                start_slot: p.start_slot,
                new_data: target,
                // If the flip tag will be reset (by FSM0), claim it low
                // here: a One-phase pulse can only SET, so a low target
                // leaves the tag alone whether or not FSM0 has fired yet.
                new_flip: if flip_reset { false } else { flip_now },
            });
        }
        if remaining_sets != 0 || flip_set_pending {
            return Err(PcmError::IncompleteSchedule(format!(
                "unit {unit}: write-1 placements do not cover the SET mask"
            )));
        }

        // ---- write-0 chunks ----
        let mut remaining_resets = reset_mask;
        let mut flip_zero = old_flip;
        let mut flip_reset_pending = flip_reset;
        for p in p0 {
            let mut data_bits = p.bits;
            if flip_reset_pending {
                flip_zero = false;
                flip_reset_pending = false;
                data_bits -= 1;
            }
            let chunk = take_low_bits(remaining_resets, data_bits);
            remaining_resets &= !chunk;
            // Target: final data plus the reset bits later chunks still owe
            // (kept at 1 so this pulse leaves them alone). Set-destined
            // bits are 1 in the target, so Zero-phase driving never touches
            // them regardless of whether FSM1 has run.
            let target = final_data | remaining_resets;
            jobs.push(ScheduledBitWrite {
                unit_row: unit,
                op: WriteOp::Reset,
                start_slot: p.start_slot,
                new_data: target,
                // If the flip tag will be set (by FSM1), claim it high here
                // so this RESET pulse leaves it alone.
                new_flip: if flip_set { true } else { flip_zero },
            });
        }
        if remaining_resets != 0 || flip_reset_pending {
            return Err(PcmError::IncompleteSchedule(format!(
                "unit {unit}: write-0 placements do not cover the RESET mask"
            )));
        }
    }
    Ok(jobs)
}

/// Report from executing a schedule on a modeled bank.
#[derive(Clone, Debug)]
pub struct ValidationReport {
    /// Execution makespan.
    pub makespan: Ps,
    /// Peak bank current observed by the executor.
    pub peak_current: u32,
    /// Budget utilization over the makespan.
    pub utilization: f64,
    /// SET pulses delivered to cells.
    pub cell_sets: u64,
    /// RESET pulses delivered to cells.
    pub cell_resets: u64,
}

/// End-to-end check of one planned write: load the old line into a fresh
/// bank, execute the jobs through the FSM executor (budget metered every
/// tick), and verify the array ends up holding exactly the intended bits.
pub fn validate_on_bank(
    bank: &mut PcmBank,
    timings: &PcmTimings,
    base_row: usize,
    old_stored: &LineData,
    old_flips: u32,
    read_out: &ReadStageOutput,
    analysis: &AnalysisResult,
) -> Result<ValidationReport, PcmError> {
    // Preload the old contents.
    for i in 0..old_stored.num_units() {
        bank.write_unit_immediate(base_row + i, old_stored.unit(i), old_flips & (1 << i) != 0)?;
    }
    let mut jobs = build_jobs(old_stored, old_flips, read_out, analysis)?;
    for j in &mut jobs {
        j.unit_row += base_row;
    }
    let exec = FsmExecutor::new(*timings)?;
    let report = exec.execute(bank, &jobs)?;

    // The array must now hold the flip-encoded new data.
    let stored = read_out.stored();
    for i in 0..stored.num_units() {
        let (data, flip) = bank.read_unit(base_row + i)?;
        if data != stored.unit(i) || flip != (read_out.flips() & (1 << i) != 0) {
            return Err(PcmError::IncompleteSchedule(format!(
                "unit {i}: array holds {data:#x}/{flip}, expected {:#x}/{}",
                stored.unit(i),
                read_out.flips() & (1 << i) != 0
            )));
        }
    }
    Ok(ValidationReport {
        makespan: report.makespan,
        peak_current: report.peak_current,
        utilization: report.utilization,
        cell_sets: report.cell_sets,
        cell_resets: report.cell_resets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::config::TetrisConfig;
    use crate::read_stage::read_stage;
    use pcm_schemes::WriteCtx;
    use pcm_types::propcheck;
    use pcm_types::propcheck::{any_u64, one_of};
    use pcm_types::rng::{Rng, StdRng};
    use pcm_types::PowerParams;

    fn run_case(cfg: &TetrisConfig, old_units: &[u64], old_flips: u32, new_units: &[u64]) {
        let old = LineData::from_units(old_units);
        let new = LineData::from_units(new_units);
        let ctx = WriteCtx {
            old_stored: &old,
            old_flips,
            new_logical: &new,
            cfg: &cfg.scheme,
        };
        let out = read_stage(&ctx);
        let analysis = analyze(&out.demand, cfg).unwrap();
        analysis.validate(&out.demand).unwrap();
        let mut bank = PcmBank::new(1, old_units.len(), cfg.scheme.power, true).unwrap();
        let report = validate_on_bank(
            &mut bank,
            &cfg.scheme.timings,
            0,
            &old,
            old_flips,
            &out,
            &analysis,
        )
        .unwrap();
        assert!(report.peak_current <= cfg.scheme.power.budget_per_bank);
        // Executor's pulse counts must match the demand the analysis saw.
        assert_eq!(report.cell_sets, out.demand.total_sets() as u64);
        assert_eq!(report.cell_resets, out.demand.total_resets() as u64);
        // The logical contents must decode to the requested data.
        for i in 0..new.num_units() {
            let (data, flip) = bank.read_unit(i).unwrap();
            let logical = if flip { !data } else { data };
            assert_eq!(logical, new.unit(i), "unit {i} logical mismatch");
        }
    }

    #[test]
    fn simple_write_executes_exactly() {
        let cfg = TetrisConfig::paper_baseline();
        run_case(
            &cfg,
            &[0, 0, 0, 0, 0, 0, 0, 0],
            0,
            &[0b111, 0xFF00, 0, 1, 0, u64::MAX, 0, 0b1010],
        );
    }

    #[test]
    fn write_over_dirty_contents() {
        let cfg = TetrisConfig::paper_baseline();
        run_case(
            &cfg,
            &[0xDEAD, 0xBEEF, !0u64, 0x1234_5678, 0, 5, 9, 0xFFFF_0000],
            0b0100_1010,
            &[0xFEED, 0xBEEF, 3, 0x8765_4321, u64::MAX, 5, 0, 0xFFFF],
        );
    }

    #[test]
    fn chunked_schedule_executes_under_tiny_budget() {
        let mut cfg = TetrisConfig::paper_baseline();
        cfg.scheme.power = PowerParams {
            l_ratio: 2,
            budget_per_bank: 8,
            chips_per_bank: 4,
        };
        run_case(
            &cfg,
            &[u64::MAX, 0, 0xFFFF_FFFF, 0, 0, 0, 0, 0],
            0,
            &[0, 0x0FFF_FF00, 0xFFFF, 1, 0, 0, 0b11, 0],
        );
    }

    #[test]
    fn incomplete_placements_detected() {
        let cfg = TetrisConfig::paper_baseline();
        let old = LineData::zeroed(64);
        let new = LineData::from_units(&[7; 8]);
        let ctx = WriteCtx {
            old_stored: &old,
            old_flips: 0,
            new_logical: &new,
            cfg: &cfg.scheme,
        };
        let out = read_stage(&ctx);
        let mut analysis = analyze(&out.demand, &cfg).unwrap();
        analysis.placements.pop();
        assert!(build_jobs(&old, 0, &out, &analysis).is_err());
    }

    #[test]
    fn take_low_bits_picks_lowest() {
        assert_eq!(take_low_bits(0b1011_0100, 2), 0b0001_0100);
        assert_eq!(take_low_bits(0b1011_0100, 4), 0b1011_0100);
        assert_eq!(take_low_bits(u64::MAX, 0), 0);
    }

    fn pipeline_case(seed: u64, budget: u32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cfg = TetrisConfig::paper_baseline();
        cfg.scheme.power = PowerParams {
            l_ratio: 2,
            budget_per_bank: budget,
            chips_per_bank: 4,
        };
        let old: Vec<u64> = (0..8).map(|_| rng.gen()).collect();
        let flips: u32 = rng.gen::<u32>() & 0xFF;
        // Mix of sparse and dense updates.
        let new: Vec<u64> = old
            .iter()
            .map(|&o| {
                if rng.gen_bool(0.3) {
                    rng.gen()
                } else {
                    o ^ (rng.gen::<u64>() & 0xFF)
                }
            })
            .collect();
        run_case(&cfg, &old, flips, &new);
    }

    propcheck! {
        cases = 64;
        /// Random lines, random old contents, several budgets: the full
        /// pipeline (read → analyze → jobs → FSM execution) always realizes
        /// the write within budget.
        fn pipeline_end_to_end(seed in any_u64(),
                               budget in one_of(&[128u32, 32, 16])) {
            pipeline_case(seed, budget);
        }
    }

    /// Regression corpus carried over from the proptest era
    /// (`proptest-regressions/schedule.txt`): inputs that once broke the
    /// pipeline, kept as explicit unit cases.
    #[test]
    fn pipeline_regression_corpus() {
        pipeline_case(0, 128);
        pipeline_case(971_943_382_399_915_042, 32);
    }
}
