//! The read stage — Algorithm 1.
//!
//! Read the old data and flip tags (`{D', F'}`), invert any unit whose
//! Hamming distance to the new data exceeds half the unit width, and count
//! the '1's and '0's that remain to be written (`N1`, `N0`). In hardware
//! the counts land in the chip's Reg1/Reg0 registers; here they come back
//! as a [`pcm_types::LineDemand`].

use pcm_schemes::WriteCtx;
use pcm_types::{flip_units, FlippedLine, LineData, LineDemand};

/// Output of the read stage.
#[derive(Clone, Debug)]
pub struct ReadStageOutput {
    /// Flip-encoded line (stored bits + per-unit decisions).
    pub flipped: FlippedLine,
    /// Per-unit SET/RESET demand including flip cells (Reg1/Reg0 contents).
    pub demand: LineDemand,
}

impl ReadStageOutput {
    /// The bits that will be stored.
    pub fn stored(&self) -> &LineData {
        &self.flipped.stored
    }

    /// The new flip-tag bitmask.
    pub fn flips(&self) -> u32 {
        self.flipped.flips
    }
}

/// Run Algorithm 1 for one cache-line write.
pub fn read_stage(ctx: &WriteCtx<'_>) -> ReadStageOutput {
    let flipped = flip_units(ctx.old_stored, ctx.old_flips, ctx.new_logical);
    let demand = LineDemand::from_flipped(&flipped);
    ReadStageOutput { flipped, demand }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_schemes::SchemeConfig;
    use pcm_types::{LineData, UnitDemand};

    #[test]
    fn counts_match_paper_semantics() {
        let cfg = SchemeConfig::paper_baseline();
        let old = LineData::zeroed(64);
        let mut new = LineData::zeroed(64);
        new.set_unit(0, 0b0111); // N1 = 3, N0 = 0
        new.set_unit(1, u64::MAX); // inverted → only the flip-bit SET
        let ctx = WriteCtx {
            old_stored: &old,
            old_flips: 0,
            new_logical: &new,
            cfg: &cfg,
        };
        let out = read_stage(&ctx);
        assert_eq!(out.demand.units()[0], UnitDemand::new(3, 0));
        assert_eq!(out.demand.units()[1], UnitDemand::new(1, 0));
        assert_eq!(out.flips(), 0b10);
        assert_eq!(out.stored().unit(1), 0, "stored inverted");
    }

    #[test]
    fn demand_is_bounded_by_half_per_unit() {
        let cfg = SchemeConfig::paper_baseline();
        let old = LineData::from_units(&[0x0F0F_0F0F_0F0F_0F0F; 8]);
        let new = LineData::from_units(&[0xF0F0_F0F0_F0F0_F0F0; 8]);
        let ctx = WriteCtx {
            old_stored: &old,
            old_flips: 0,
            new_logical: &new,
            cfg: &cfg,
        };
        let out = read_stage(&ctx);
        for u in out.demand.units() {
            assert!(u.total() <= 32 + 1, "flip bound violated: {u:?}");
        }
    }

    #[test]
    fn reset_demand_counted() {
        let cfg = SchemeConfig::paper_baseline();
        let old = LineData::from_units(&[0b1111, 0, 0, 0, 0, 0, 0, 0]);
        let new = LineData::from_units(&[0b0011, 0, 0, 0, 0, 0, 0, 0]);
        let ctx = WriteCtx {
            old_stored: &old,
            old_flips: 0,
            new_logical: &new,
            cfg: &cfg,
        };
        let out = read_stage(&ctx);
        assert_eq!(out.demand.units()[0], UnitDemand::new(0, 2));
    }
}
