//! [`TetrisWrite`] — the three stages packaged as a [`WriteScheme`].

use crate::analysis::{analyze, AnalysisResult};
use crate::batch::analyze_batch;
use crate::config::TetrisConfig;
use crate::read_stage::{read_stage, ReadStageOutput};
use pcm_schemes::{BatchPlan, WriteCtx, WritePlan, WriteScheme};
use pcm_types::Ps;

/// The Tetris Write scheme.
///
/// Service time = `Tread + Tanalysis + (result + subresult/K) · Tset`
/// (read stage, analysis stage, Eq. 5). Energy is differential like
/// Flip-N-Write / Three-Stage-Write: only changed cells are pulsed.
///
/// ```
/// use pcm_schemes::{SchemeConfig, WriteCtx, WriteScheme};
/// use pcm_types::LineData;
/// use tetris_write::TetrisWrite;
///
/// let cfg = SchemeConfig::paper_baseline();
/// let old = LineData::zeroed(64);
/// let new = LineData::from_units(&[0b111; 8]); // 3 SETs per unit
/// let ctx = WriteCtx { old_stored: &old, old_flips: 0, new_logical: &new, cfg: &cfg };
///
/// let plan = TetrisWrite::paper_baseline().plan(&ctx);
/// assert_eq!(plan.write_units_equiv, 1.0);
/// plan.check_decodes_to(&new).unwrap();
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct TetrisWrite {
    cfg: TetrisConfig,
}

impl TetrisWrite {
    /// Tetris Write with the given configuration.
    pub fn new(cfg: TetrisConfig) -> Self {
        TetrisWrite { cfg }
    }

    /// Paper-baseline Tetris Write.
    pub fn paper_baseline() -> Self {
        Self::new(TetrisConfig::paper_baseline())
    }

    /// The configuration in use.
    pub fn config(&self) -> &TetrisConfig {
        &self.cfg
    }

    /// Run the read + analysis stages and return all intermediate state
    /// (for experiments, Gantt rendering and FSM validation).
    ///
    /// The embedded `TetrisConfig` is used for packing; the `WriteCtx`'s
    /// scheme config supplies the geometry the caller planned against.
    pub fn plan_detailed(
        &self,
        ctx: &WriteCtx<'_>,
    ) -> (WritePlan, AnalysisResult, ReadStageOutput) {
        let mut cfg = self.cfg;
        cfg.scheme = *ctx.cfg;
        let read_out = read_stage(ctx);
        let analysis = analyze(&read_out.demand, &cfg)
            .expect("analysis failed: configuration invalid for demand");
        let write_time = analysis.write_time(cfg.scheme.timings.t_set);
        let service = cfg.scheme.timings.t_read + cfg.analysis_overhead + write_time;
        let (sets, resets) = (read_out.demand.total_sets(), read_out.demand.total_resets());
        let energy = cfg.scheme.energy.write_energy(sets as u64, resets as u64)
            + cfg
                .scheme
                .energy
                .read_energy(cfg.scheme.org.data_units_per_line() as u64);
        let plan = WritePlan {
            service_time: service,
            energy,
            write_units_equiv: analysis.write_units_equiv(),
            stored: *read_out.stored(),
            flips: read_out.flips(),
            cell_sets: sets,
            cell_resets: resets,
            read_before_write: true,
            partitions_used: 0,
        };
        (plan, analysis, read_out)
    }

    /// Total fixed overhead added to every write (read + analysis).
    pub fn fixed_overhead(&self) -> Ps {
        self.cfg.scheme.timings.t_read + self.cfg.analysis_overhead
    }
}

impl WriteScheme for TetrisWrite {
    fn name(&self) -> &'static str {
        "Tetris Write"
    }

    fn uses_flip_bits(&self) -> bool {
        true
    }

    fn plan(&self, ctx: &WriteCtx<'_>) -> WritePlan {
        self.plan_detailed(ctx).0
    }

    /// Inter-line batching: flip-encode every line, concatenate their
    /// demands, and pack them together. The reads of all lines proceed in
    /// parallel (array reads are wide), one analysis pass covers the
    /// batch, and every line completes at the shared write time.
    fn plan_batched(&self, ctxs: &[WriteCtx<'_>]) -> Option<BatchPlan> {
        if ctxs.is_empty() {
            return None;
        }
        let mut cfg = self.cfg;
        cfg.scheme = *ctxs[0].cfg;
        let outs: Vec<_> = ctxs.iter().map(read_stage).collect();
        let demands: Vec<_> = outs.iter().map(|o| o.demand).collect();
        let batch = analyze_batch(&demands, &cfg).ok()?;
        let write_time = batch.write_time(cfg.scheme.timings.t_set);
        let total = cfg.scheme.timings.t_read + cfg.analysis_overhead + write_time;
        let plans = outs
            .iter()
            .map(|o| {
                let (sets, resets) = (o.demand.total_sets(), o.demand.total_resets());
                WritePlan {
                    service_time: total,
                    energy: cfg.scheme.energy.write_energy(sets as u64, resets as u64)
                        + cfg
                            .scheme
                            .energy
                            .read_energy(cfg.scheme.org.data_units_per_line() as u64),
                    write_units_equiv: batch.write_units_per_line(),
                    stored: *o.stored(),
                    flips: o.flips(),
                    cell_sets: sets,
                    cell_resets: resets,
                    read_before_write: true,
                    partitions_used: 0,
                }
            })
            .collect();
        Some(BatchPlan {
            service_time: total,
            plans,
            pack: Some(batch.analysis.pack_stats()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_schemes::{
        analytic, DcwWrite, FlipNWrite, SchemeConfig, ThreeStageWrite, TwoStageWrite,
    };
    use pcm_types::rng::{Rng, StdRng};
    use pcm_types::LineData;

    fn sparse_line(
        rng: &mut StdRng,
        old: &LineData,
        sets_per_unit: u32,
        resets_per_unit: u32,
    ) -> LineData {
        let mut new = *old;
        for i in 0..old.num_units() {
            let mut u = old.unit(i);
            let mut sets = 0;
            while sets < sets_per_unit {
                let b = 1u64 << rng.gen_range(0..64);
                if u & b == 0 {
                    u |= b;
                    sets += 1;
                }
            }
            let mut resets = 0;
            while resets < resets_per_unit {
                let b = 1u64 << rng.gen_range(0..64);
                if u & b != 0 && old.unit(i) & b != 0 {
                    u &= !b;
                    resets += 1;
                }
            }
            new.set_unit(i, u);
        }
        new
    }

    #[test]
    fn typical_line_takes_about_one_write_unit() {
        // Observation 1 statistics: ~6.7 SETs + ~2.9 RESETs per unit.
        let cfg = SchemeConfig::paper_baseline();
        let mut rng = StdRng::seed_from_u64(7);
        let old = LineData::from_units(&[u64::MAX >> 20; 8]);
        let new = sparse_line(&mut rng, &old, 7, 3);
        let ctx = WriteCtx {
            old_stored: &old,
            old_flips: 0,
            new_logical: &new,
            cfg: &cfg,
        };
        let scheme = TetrisWrite::paper_baseline();
        let (plan, analysis, _) = scheme.plan_detailed(&ctx);
        assert_eq!(analysis.result, 1);
        assert_eq!(analysis.subresult, 0);
        assert_eq!(plan.write_units_equiv, 1.0);
        assert!(plan.check_decodes_to(&new).is_ok());
        // Service = 50 ns read + 102.5 ns analysis + 430 ns write.
        assert_eq!(
            plan.service_time,
            Ps::from_ns(50) + Ps(102_500) + Ps::from_ns(430)
        );
    }

    #[test]
    fn beats_every_baseline_on_typical_content() {
        let cfg = SchemeConfig::paper_baseline();
        let mut rng = StdRng::seed_from_u64(11);
        let old = LineData::from_units(&[0xAAAA_5555_FFFF_0000; 8]);
        let new = sparse_line(&mut rng, &old, 7, 3);
        let ctx = WriteCtx {
            old_stored: &old,
            old_flips: 0,
            new_logical: &new,
            cfg: &cfg,
        };
        let tetris = TetrisWrite::paper_baseline().plan(&ctx);
        let dcw = DcwWrite.plan(&ctx);
        let fnw = FlipNWrite.plan(&ctx);
        let two = TwoStageWrite.plan(&ctx);
        let three = ThreeStageWrite.plan(&ctx);
        assert!(tetris.service_time < three.service_time);
        assert!(three.service_time < two.service_time);
        assert!(two.service_time < fnw.service_time);
        assert!(fnw.service_time < dcw.service_time);
    }

    #[test]
    fn energy_differential_unlike_two_stage() {
        let cfg = SchemeConfig::paper_baseline();
        let old = LineData::from_units(&[0xFFFF; 8]);
        let mut new = old;
        new.set_unit(0, 0xFFFE); // single RESET
        let ctx = WriteCtx {
            old_stored: &old,
            old_flips: 0,
            new_logical: &new,
            cfg: &cfg,
        };
        let tetris = TetrisWrite::paper_baseline().plan(&ctx);
        let two = TwoStageWrite.plan(&ctx);
        assert_eq!(tetris.cell_sets + tetris.cell_resets, 1);
        assert!(tetris.energy < two.energy, "2SW programs every bit");
    }

    #[test]
    fn worst_case_still_at_least_matches_three_stage_write_time() {
        // All units at the flip bound, all SETs: Tetris needs 2 write units
        // (860 ns) vs 3SW's 4·Treset + 2·Tset (1072 ns).
        let cfg = SchemeConfig::paper_baseline();
        let old = LineData::zeroed(64);
        let new = LineData::from_units(&[0xFFFF_FFFFu64; 8]);
        let ctx = WriteCtx {
            old_stored: &old,
            old_flips: 0,
            new_logical: &new,
            cfg: &cfg,
        };
        let scheme = TetrisWrite::paper_baseline();
        let (plan, analysis, _) = scheme.plan_detailed(&ctx);
        assert_eq!(analysis.result, 2);
        let write_time = plan.service_time - scheme.fixed_overhead();
        assert!(write_time < analytic::t_three_stage(&cfg) - cfg.timings.t_read);
    }

    #[test]
    fn batched_planning_shares_write_units() {
        let cfg = SchemeConfig::paper_baseline();
        let old = LineData::zeroed(64);
        let a = LineData::from_units(&[0x7F; 8]); // 7 SETs per unit
        let b = LineData::from_units(&[0x0F; 8]); // 4 SETs per unit
        let ctxs = [
            WriteCtx {
                old_stored: &old,
                old_flips: 0,
                new_logical: &a,
                cfg: &cfg,
            },
            WriteCtx {
                old_stored: &old,
                old_flips: 0,
                new_logical: &b,
                cfg: &cfg,
            },
        ];
        let scheme = TetrisWrite::paper_baseline();
        let batch = scheme
            .plan_batched(&ctxs)
            .expect("tetris supports batching");
        assert_eq!(batch.plans.len(), 2);
        // 88 SET-equivalents fit one shared write unit: 0.5 units/line.
        assert_eq!(batch.plans[0].write_units_equiv, 0.5);
        let pack = batch.pack.expect("tetris reports packing stats");
        assert_eq!(pack.write_units_equiv, 1.0, "one shared write unit");
        assert!(pack.utilization > 0.0);
        for (plan, new) in batch.plans.iter().zip([&a, &b]) {
            assert_eq!(plan.service_time, batch.service_time);
            assert!(plan.check_decodes_to(new).is_ok());
        }
        // A single line alone costs a full unit; the batch total matches
        // one write unit plus fixed overheads.
        let single = scheme.plan(&ctxs[0]);
        assert_eq!(single.service_time, batch.service_time);

        // Oversized batches fall back to None (serial service).
        let many = vec![ctxs[0]; 5];
        assert!(scheme.plan_batched(&many).is_none());
        assert!(scheme.plan_batched(&[]).is_none());
    }

    #[test]
    fn plan_uses_ctx_geometry() {
        // A 128 B line through the trait still decodes correctly.
        let mut cfg = SchemeConfig::paper_baseline();
        cfg.org.cache_line_bytes = 128;
        let old = LineData::zeroed(128);
        let new = LineData::from_units(&[5u64; 16]);
        let ctx = WriteCtx {
            old_stored: &old,
            old_flips: 0,
            new_logical: &new,
            cfg: &cfg,
        };
        let plan = TetrisWrite::paper_baseline().plan(&ctx);
        assert!(plan.check_decodes_to(&new).is_ok());
        assert_eq!(plan.write_units_equiv, 1.0, "16 × 2 SETs trivially pack");
    }
}
