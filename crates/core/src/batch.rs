//! Inter-line batched scheduling — the natural extension of Tetris Write
//! the authors pursue in their DATE'16 companion paper (the paper's
//! ref. \[10\], "Exploiting more parallelism from write operations on PCM").
//!
//! A drained write queue often holds several writes destined for the same
//! bank. Scheduling them *together* lets one line's write-1 pulses absorb
//! another line's write-0s (and vice versa), and amortizes the mandatory
//! minimum write unit across the batch: four sparse lines that would each
//! occupy one write unit alone can share a single one.

use crate::analysis::{analyze, AnalysisResult};
use crate::config::TetrisConfig;
use pcm_types::{LineDemand, PcmError, Ps};

/// Analysis of a batch of line writes scheduled as one unit.
#[derive(Clone, Debug)]
pub struct BatchAnalysis {
    /// The flat schedule (unit indices span all lines, in order).
    pub analysis: AnalysisResult,
    /// First flat unit index of each line in the batch.
    pub offsets: Vec<usize>,
    /// Number of lines in the batch.
    pub lines: usize,
}

impl BatchAnalysis {
    /// Fig. 10-style metric amortized per line.
    pub fn write_units_per_line(&self) -> f64 {
        self.analysis.write_units_equiv() / self.lines.max(1) as f64
    }

    /// Shared write-phase service time of the whole batch (every line in
    /// the batch completes together).
    pub fn write_time(&self, t_set: Ps) -> Ps {
        self.analysis.write_time(t_set)
    }

    /// Map a flat unit index back to `(line, unit-within-line)`.
    pub fn locate(&self, flat_unit: usize) -> (usize, usize) {
        let line = match self.offsets.binary_search(&flat_unit) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line, flat_unit - self.offsets[line])
    }
}

/// Schedule several lines' demands together under one power budget.
///
/// # Errors
/// If the combined unit count exceeds the flat-buffer capacity (batch too
/// large) or the configuration is invalid.
pub fn analyze_batch(
    demands: &[LineDemand],
    cfg: &TetrisConfig,
) -> Result<BatchAnalysis, PcmError> {
    if demands.is_empty() {
        return Err(PcmError::config("empty batch"));
    }
    let parts: Vec<&LineDemand> = demands.iter().collect();
    let flat = LineDemand::concat(&parts)
        .ok_or_else(|| PcmError::config("batch exceeds the flat unit buffer"))?;
    let mut offsets = Vec::with_capacity(demands.len());
    let mut at = 0;
    for d in demands {
        offsets.push(at);
        at += d.len();
    }
    let analysis = analyze(&flat, cfg)?;
    Ok(BatchAnalysis {
        analysis,
        offsets,
        lines: demands.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_types::UnitDemand;

    fn sparse_line() -> LineDemand {
        LineDemand::from_units(&[UnitDemand::new(7, 3); 8])
    }

    #[test]
    fn batching_amortizes_the_minimum_unit() {
        let cfg = TetrisConfig::paper_baseline();
        let one = analyze(&sparse_line(), &cfg).unwrap();
        assert_eq!(one.write_units_equiv(), 1.0);

        // Two sparse lines together: 16 units × 7 SETs = 112 ≤ 128 — still
        // one write unit, now shared: 0.5 units per line.
        let batch = analyze_batch(&[sparse_line(), sparse_line()], &cfg).unwrap();
        assert_eq!(batch.analysis.result, 1);
        assert!(
            batch.write_units_per_line() <= 0.6,
            "{}",
            batch.write_units_per_line()
        );
    }

    #[test]
    fn batch_respects_budget() {
        let cfg = TetrisConfig::paper_baseline();
        // Four heavy lines cannot all share one unit.
        let heavy = LineDemand::from_units(&[UnitDemand::new(16, 8); 8]);
        let batch = analyze_batch(&[heavy; 4], &cfg).unwrap();
        let flat = LineDemand::concat(&[&heavy, &heavy, &heavy, &heavy]).unwrap();
        batch.analysis.validate(&flat).unwrap();
        assert!(batch.analysis.peak_current() <= 128);
        // 4 × 8 × 16 = 512 SET-equivalents of write-1s → at least 4 units.
        assert!(batch.analysis.result >= 4);
        // Still cheaper per line than scheduling alone (each alone: 1 unit
        // for SETs + resets hidden ≈ 1.0; batched ≈ 1.0+overflow/4).
        assert!(batch.write_units_per_line() <= 1.6);
    }

    #[test]
    fn locate_maps_flat_units_back() {
        let cfg = TetrisConfig::paper_baseline();
        let batch = analyze_batch(&[sparse_line(), sparse_line(), sparse_line()], &cfg).unwrap();
        assert_eq!(batch.locate(0), (0, 0));
        assert_eq!(batch.locate(7), (0, 7));
        assert_eq!(batch.locate(8), (1, 0));
        assert_eq!(batch.locate(23), (2, 7));
    }

    #[test]
    fn oversized_batch_rejected() {
        let cfg = TetrisConfig::paper_baseline();
        let lines = vec![sparse_line(); 5]; // 40 units > 32 capacity
        assert!(analyze_batch(&lines, &cfg).is_err());
        assert!(analyze_batch(&[], &cfg).is_err());
    }

    #[test]
    fn cross_line_stealing_works() {
        let cfg = TetrisConfig::paper_baseline();
        // Line A: SET-heavy (long pulses, lots of slack current).
        let a = LineDemand::from_units(&[UnitDemand::new(12, 0); 8]);
        // Line B: RESET-only (alone it needs its own write unit's slots).
        let b = LineDemand::from_units(&[UnitDemand::new(0, 10); 8]);
        let alone_b = analyze(&b, &cfg).unwrap();
        assert_eq!(alone_b.result, 1, "min-one unit even for RESET-only");
        let batch = analyze_batch(&[a, b], &cfg).unwrap();
        // B's RESETs hide inside A's SET slack: one shared write unit.
        assert_eq!(batch.analysis.result, 1);
        assert_eq!(batch.analysis.subresult, 0);
        assert_eq!(batch.write_units_per_line(), 0.5);
    }
}
