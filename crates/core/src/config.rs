//! Tetris Write configuration.

use pcm_schemes::SchemeConfig;
use pcm_types::{PcmError, Ps};

/// Configuration of the Tetris Write scheme.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TetrisConfig {
    /// Shared device/organization configuration.
    pub scheme: SchemeConfig,
    /// Latency of the analysis stage added to every write's service time.
    ///
    /// The paper measured 41 cycles at the 400 MHz memory-bus clock on a
    /// Virtex-7 via Vivado HLS (worst case) = 102.5 ns, and calls that
    /// estimate "primitive and pessimistic".
    pub analysis_overhead: Ps,
    /// Sort write-1/write-0 demands in decreasing order before packing
    /// (first-fit-*decreasing*). Disable for the ablation study.
    pub sort_decreasing: bool,
    /// Allow write-0s to steal headroom inside write-1 units' sub-slots.
    /// Disabled, every write-0 needs its own overflow sub-unit (ablation).
    pub steal_write0_slack: bool,
    /// Follow the paper's Algorithm 2 initialization `result ← 1`: even a
    /// write with no changed bits occupies one write unit.
    pub min_one_write_unit: bool,
}

impl Default for TetrisConfig {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

impl TetrisConfig {
    /// Paper-faithful defaults (Table II geometry, 41-cycle analysis).
    pub fn paper_baseline() -> Self {
        TetrisConfig {
            scheme: SchemeConfig::paper_baseline(),
            analysis_overhead: Ps::from_cycles(41, 400),
            sort_decreasing: true,
            steal_write0_slack: true,
            min_one_write_unit: true,
        }
    }

    /// Validate the embedded configuration.
    pub fn validate(&self) -> Result<(), PcmError> {
        self.scheme.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analysis_overhead_matches_paper_measurement() {
        let c = TetrisConfig::paper_baseline();
        assert_eq!(c.analysis_overhead, Ps(102_500), "41 cycles @ 400 MHz");
        assert!(c.validate().is_ok());
    }

    #[test]
    fn defaults_enable_all_mechanisms() {
        let c = TetrisConfig::default();
        assert!(c.sort_decreasing);
        assert!(c.steal_write0_slack);
        assert!(c.min_one_write_unit);
    }
}
