//! The Fig. 3 measurement harness.
//!
//! Replays a profile's write stream against a model memory and counts the
//! RESET/SET bit-writes per data unit *after* flip coding — exactly the
//! quantity the paper's Fig. 3 plots. First-touch initialization writes are
//! excluded (the paper profiles steady applications). Write reuse is
//! uniform over the working set, mirroring the generator (post-LLC write
//! traffic is reuse-filtered).

use crate::content::ProfileContent;
use crate::profiles::WorkloadProfile;
use pcm_memsim::WriteContent;
use pcm_types::rng::SmallRng;
use pcm_types::{flip_units, LineData};
use std::collections::HashMap;

/// Measured per-unit bit-write statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct BitStats {
    /// Mean SET bit-writes per 64-bit unit.
    pub avg_sets: f64,
    /// Mean RESET bit-writes per 64-bit unit.
    pub avg_resets: f64,
    /// Units sampled.
    pub samples: u64,
}

impl BitStats {
    /// Mean total bit-writes per unit.
    pub fn avg_total(&self) -> f64 {
        self.avg_sets + self.avg_resets
    }
}

/// Measure Fig. 3 statistics for `profile` over `writes` line writes.
///
/// Writes reuse lines uniformly over a working set sized for ~4 rewrites
/// per line; contents come from [`ProfileContent`]; counting is done in
/// the stored domain with flip tags, as Flip-N-Write hardware would.
///
/// ```
/// use pcm_workloads::{measure_bit_stats, WorkloadProfile};
///
/// let p = WorkloadProfile::by_name("blackscholes").unwrap();
/// let s = measure_bit_stats(p, 500, 7);
/// assert!((s.avg_total() - 2.0).abs() < 0.8); // Fig. 3: ≈ 2 bits per unit
/// ```
pub fn measure_bit_stats(profile: &WorkloadProfile, writes: u64, seed: u64) -> BitStats {
    let ws_lines = ((writes as f64 / 4.0).ceil() as usize).max(16);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut content = ProfileContent::new(profile, seed ^ 0xABCD);
    // line index → (stored bits, flip mask, logical contents).
    let mut mem: HashMap<usize, (LineData, u32)> = HashMap::new();

    let mut sets = 0u64;
    let mut resets = 0u64;
    let mut samples = 0u64;
    for _ in 0..writes {
        let line_idx = pcm_types::rng::Rng::gen_range(&mut rng, 0..ws_lines);
        let first_touch = !mem.contains_key(&line_idx);
        let (stored, flips) = mem
            .entry(line_idx)
            .or_insert_with(|| (LineData::zeroed(64), 0));
        // Logical old contents (decode flips).
        let mut logical = *stored;
        for i in 0..8 {
            if *flips & (1 << i) != 0 {
                logical.set_unit(i, !logical.unit(i));
            }
        }
        let new_logical = content.generate(0, &logical);
        let fl = flip_units(stored, *flips, &new_logical);
        if !first_touch {
            let (s, r) = fl.totals();
            sets += s as u64;
            resets += r as u64;
            samples += 8;
        }
        *stored = fl.stored;
        *flips = fl.flips;
    }
    BitStats {
        avg_sets: sets as f64 / samples.max(1) as f64,
        avg_resets: resets as f64 / samples.max(1) as f64,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::ALL_PROFILES;

    #[test]
    fn fig3_reproduced_per_workload() {
        for p in &ALL_PROFILES {
            let s = measure_bit_stats(p, 3_000, 7);
            assert!(s.samples > 10_000);
            let tol = |target: f64| (target * 0.2).max(0.5);
            assert!(
                (s.avg_sets - p.set_mean).abs() < tol(p.set_mean),
                "{}: sets {:.2} vs {:.2}",
                p.name,
                s.avg_sets,
                p.set_mean
            );
            assert!(
                (s.avg_resets - p.reset_mean).abs() < tol(p.reset_mean),
                "{}: resets {:.2} vs {:.2}",
                p.name,
                s.avg_resets,
                p.reset_mean
            );
        }
    }

    #[test]
    fn fig3_suite_average_near_9_6() {
        let mut total = 0.0;
        let mut set_sum = 0.0;
        let mut reset_sum = 0.0;
        for p in &ALL_PROFILES {
            let s = measure_bit_stats(p, 2_000, 13);
            total += s.avg_total();
            set_sum += s.avg_sets;
            reset_sum += s.avg_resets;
        }
        let n = ALL_PROFILES.len() as f64;
        assert!(
            (total / n - 9.6).abs() < 1.5,
            "suite average {:.2} bit-writes per unit",
            total / n
        );
        assert!(set_sum / n > reset_sum / n, "suite is SET-dominant");
    }

    #[test]
    fn deterministic() {
        let p = &ALL_PROFILES[4];
        let a = measure_bit_stats(p, 500, 3);
        let b = measure_bit_stats(p, 500, 3);
        assert_eq!(a.avg_sets, b.avg_sets);
        assert_eq!(a.avg_resets, b.avg_resets);
    }
}
