//! The Fig. 3-calibrated write-content model.
//!
//! For each data unit of a line being written back, sample SET and RESET
//! counts around the profile's means (Poisson), then realize them as bit
//! transitions against the old contents: SETs pick '0' positions, RESETs
//! pick '1' positions. Totals are clamped below the flip threshold (half a
//! unit), so flip coding never inverts these writes and the realized
//! post-flip demand equals the sampled counts — exactly the statistics the
//! paper's Observations 1–2 are built on.
//!
//! Two regimes keep the model stationary:
//!
//! * **First touch** — a never-written (all-zero) line receives an
//!   initialization write at moderate density, modeling the application
//!   populating fresh memory (this is also where SET-dominance physically
//!   comes from).
//! * **Density guard** — units drifting above ~75% ones have their
//!   SET/RESET means swapped, pulling them back toward the middle instead
//!   of saturating (which would silently clamp the statistics).

use crate::profiles::WorkloadProfile;
use pcm_memsim::WriteContent;
use pcm_types::rng::{Rng, SmallRng};
use pcm_types::LineData;

/// Density (ones per 64) above which the drift direction is reversed.
const DENSITY_GUARD: u32 = 48;
/// Ones per 64-bit unit in an initialization write.
const INIT_ONES_PER_UNIT: u32 = 16;
/// Hard cap on changed bits per unit (stays below the flip threshold).
const MAX_CHANGED_PER_UNIT: u32 = 30;

/// Knuth's Poisson sampler (fine for the small means used here).
fn poisson<R: Rng>(rng: &mut R, mean: f64) -> u32 {
    if mean <= 0.0 {
        return 0;
    }
    let l = (-mean).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 200 {
            return k; // numerically impossible for our means; safety stop
        }
    }
}

/// Pick `n` distinct set bits of `mask` uniformly; returns the chosen mask.
fn pick_bits<R: Rng>(rng: &mut R, mask: u64, n: u32) -> u64 {
    let avail = mask.count_ones();
    let n = n.min(avail);
    if n == 0 {
        return 0;
    }
    if n == avail {
        return mask;
    }
    // Reservoir-sample positions out of the mask.
    let mut chosen = 0u64;
    let mut seen = 0u32;
    let mut m = mask;
    let mut need = n;
    while m != 0 {
        let low = m & m.wrapping_neg();
        m &= !low;
        seen += 1;
        let remaining_positions = avail - seen + 1;
        // Probability need/remaining of taking this position.
        if rng.gen_range(0..remaining_positions) < need {
            chosen |= low;
            need -= 1;
            if need == 0 {
                break;
            }
        }
    }
    chosen
}

/// Mean total changed bits per unit in a fresh-content write
/// (uniform 24..=30).
const FRESH_TOTAL_MEAN: f64 = 27.0;

/// Write-content generator for one workload profile.
#[derive(Debug)]
pub struct ProfileContent {
    /// In-place-update means, compensated so that mixing with
    /// `fresh_fraction` fresh writes reproduces the profile's Fig. 3 means.
    set_mean: f64,
    reset_mean: f64,
    /// SET share of a fresh write's changed bits.
    set_ratio: f64,
    fresh_fraction: f64,
    rng: SmallRng,
}

impl ProfileContent {
    /// Model calibrated to `profile`, deterministic under `seed`.
    pub fn new(profile: &WorkloadProfile, seed: u64) -> Self {
        let p = profile.fresh_fraction;
        let ratio = profile.set_mean / profile.total_mean().max(f64::MIN_POSITIVE);
        // target = (1-p)·base + p·fresh  ⇒  base = (target − p·fresh)/(1−p).
        let fresh_sets = FRESH_TOTAL_MEAN * ratio;
        let fresh_resets = FRESH_TOTAL_MEAN * (1.0 - ratio);
        let base_set = ((profile.set_mean - p * fresh_sets) / (1.0 - p)).max(0.0);
        let base_reset = ((profile.reset_mean - p * fresh_resets) / (1.0 - p)).max(0.0);
        ProfileContent {
            set_mean: base_set,
            reset_mean: base_reset,
            set_ratio: ratio,
            fresh_fraction: p,
            rng: SmallRng::seed_from_u64(seed ^ 0x7e7_215),
        }
    }

    /// Replace a unit with fresh content: 24–30 changed bits in the
    /// profile's SET/RESET proportion.
    fn fresh_unit(&mut self, old: u64) -> u64 {
        let total = self.rng.gen_range(24..=MAX_CHANGED_PER_UNIT);
        let n_set = (total as f64 * self.set_ratio).round() as u32;
        let n_reset = total - n_set.min(total);
        let set_mask = pick_bits(&mut self.rng, !old, n_set.min(total));
        let reset_mask = pick_bits(&mut self.rng, old, n_reset);
        (old | set_mask) & !reset_mask
    }

    /// An initialization line: every unit gets ~[`INIT_ONES_PER_UNIT`] ones.
    fn init_line(&mut self, len: usize) -> LineData {
        let mut out = LineData::zeroed(len);
        for i in 0..out.num_units() {
            out.set_unit(i, pick_bits(&mut self.rng, u64::MAX, INIT_ONES_PER_UNIT));
        }
        out
    }

    /// Draw a per-line intensity multiplier with mean exactly 1.
    ///
    /// Real write-back traffic is bursty: some lines change a few bits,
    /// some change many. Per-unit Poisson alone is too narrow to ever
    /// produce the >1-write-unit lines behind the paper's Fig. 10 range
    /// (Tetris 1.06–1.46); the {½, 1, 2} mixture (w.p. ⅓, ½, ⅙) widens the
    /// per-line distribution without moving the Fig. 3 means.
    fn intensity(&mut self) -> f64 {
        let u: f64 = self.rng.gen();
        if u < 1.0 / 3.0 {
            0.5
        } else if u < 1.0 / 3.0 + 0.5 {
            1.0
        } else {
            2.0
        }
    }

    /// Mutate one unit per the calibrated delta distribution.
    fn mutate_unit(&mut self, old: u64, intensity: f64) -> u64 {
        let ones = old.count_ones();
        // Density guard: reverse the drift for near-saturated units.
        let (sm, rm) = if ones > DENSITY_GUARD {
            (self.reset_mean, self.set_mean)
        } else {
            (self.set_mean, self.reset_mean)
        };
        let mut n_set = poisson(&mut self.rng, sm * intensity);
        let mut n_reset = poisson(&mut self.rng, rm * intensity);
        // Keep below the flip threshold so the realized demand equals the
        // sampled counts.
        while n_set + n_reset > MAX_CHANGED_PER_UNIT {
            if n_set >= n_reset {
                n_set -= 1;
            } else {
                n_reset -= 1;
            }
        }
        let set_mask = pick_bits(&mut self.rng, !old, n_set);
        let reset_mask = pick_bits(&mut self.rng, old, n_reset);
        (old | set_mask) & !reset_mask
    }
}

impl WriteContent for ProfileContent {
    fn generate(&mut self, _core: usize, old_logical: &LineData) -> LineData {
        if old_logical.popcount() == 0 {
            return self.init_line(old_logical.len());
        }
        let mut out = *old_logical;
        if self.rng.gen_bool(self.fresh_fraction) {
            // Whole-line replacement with fresh content.
            for i in 0..out.num_units() {
                let old = old_logical.unit(i);
                let fresh = self.fresh_unit(old);
                out.set_unit(i, fresh);
            }
            return out;
        }
        let intensity = self.intensity();
        for i in 0..out.num_units() {
            out.set_unit(i, self.mutate_unit(old_logical.unit(i), intensity));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::ALL_PROFILES;
    use pcm_types::rng::StdRng;
    use pcm_types::transitions;

    #[test]
    fn poisson_mean_tracks() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| poisson(&mut rng, 6.7) as u64).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 6.7).abs() < 0.15, "poisson mean {mean}");
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn pick_bits_subset_of_mask() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..1000 {
            let mask: u64 = rng.gen();
            let n = rng.gen_range(0..=70u32);
            let picked = pick_bits(&mut rng, mask, n);
            assert_eq!(picked & !mask, 0, "picked bits outside mask");
            assert_eq!(picked.count_ones(), n.min(mask.count_ones()));
        }
    }

    #[test]
    fn first_touch_initializes() {
        let p = &ALL_PROFILES[0];
        let mut m = ProfileContent::new(p, 1);
        let old = LineData::zeroed(64);
        let new = m.generate(0, &old);
        let per_unit = new.popcount() / 8;
        assert!(
            (12..=20).contains(&per_unit),
            "init density per unit: {per_unit}"
        );
    }

    #[test]
    fn steady_state_matches_profile_means() {
        for p in &ALL_PROFILES {
            let mut m = ProfileContent::new(p, 42);
            let mut line = m.generate(0, &LineData::zeroed(64)); // init
            let writes = 300usize;
            let (mut sets, mut resets) = (0u64, 0u64);
            for _ in 0..writes {
                let new = m.generate(0, &line);
                for i in 0..8 {
                    let t = transitions(line.unit(i), new.unit(i));
                    sets += t.num_sets() as u64;
                    resets += t.num_resets() as u64;
                }
                line = new;
            }
            let units = (writes * 8) as f64;
            let s = sets as f64 / units;
            let r = resets as f64 / units;
            // Repeated rewrites of ONE line are the worst case for drift;
            // totals must still land near the calibration.
            let total = s + r;
            assert!(
                (total - p.total_mean()).abs() / p.total_mean() < 0.25,
                "{}: measured total {total:.2} vs {:.2}",
                p.name,
                p.total_mean()
            );
        }
    }

    #[test]
    fn changed_bits_never_cross_flip_threshold() {
        let p = &ALL_PROFILES[7]; // vips, the heaviest
        let mut m = ProfileContent::new(p, 9);
        let mut line = m.generate(0, &LineData::zeroed(64));
        for _ in 0..500 {
            let new = m.generate(0, &line);
            for i in 0..8 {
                let t = transitions(line.unit(i), new.unit(i));
                assert!(t.num_changed() <= MAX_CHANGED_PER_UNIT);
            }
            line = new;
        }
    }

    #[test]
    fn determinism() {
        let p = &ALL_PROFILES[3];
        let old = LineData::from_units(&[0xF0F0; 8]);
        let a = ProfileContent::new(p, 11).generate(0, &old);
        let b = ProfileContent::new(p, 11).generate(0, &old);
        assert_eq!(a, b);
        let c = ProfileContent::new(p, 12).generate(0, &old);
        assert_ne!(a, c, "different seed, different data");
    }
}
