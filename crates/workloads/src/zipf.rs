//! A Zipf(α) sampler over `n` ranks, CDF-table based.
//!
//! Memory-access locality in PARSEC-class workloads is heavy-tailed: a few
//! hot lines absorb most accesses. Zipf with α ≈ 0.8–1.0 is the standard
//! stand-in. The sampler precomputes the CDF once and draws by binary
//! search (O(log n) per sample, exact).

use pcm_types::rng::Rng;

/// Zipf-distributed rank sampler (ranks `0..n`, rank 0 hottest).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Sampler over `n` ranks with exponent `alpha`.
    ///
    /// # Panics
    /// If `n == 0` or `alpha < 0`.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(alpha >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always at least one rank.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draw one rank.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // First index whose CDF ≥ u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_types::rng::StdRng;

    #[test]
    fn rank_zero_is_hottest() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[500]);
        // Rank 0 of Zipf(1.0, 1000) has probability 1/H(1000) ≈ 13.4%.
        let p0 = counts[0] as f64 / 100_000.0;
        assert!((0.10..=0.17).contains(&p0), "p0 = {p0}");
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0u32; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "uniform-ish: {counts:?}");
        }
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(37, 0.8);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 37);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
