//! The synthetic PARSEC trace generator.
//!
//! Emits per-core streams of [`TraceOp`]s whose instruction gaps reproduce
//! Table III's memory RPKI/WPKI and whose addresses exhibit zipf + stream
//! locality with profile-dependent sharing:
//!
//! * gaps: geometric with mean `1000 / (RPKI + WPKI)` instructions;
//! * kind: write with probability `WPKI / (RPKI + WPKI)`;
//! * reads: 30% sequential streaming, else zipf over the read working set
//!   (shared region with the profile's sharing fraction);
//! * writes: uniform over a write working set sized so each line is
//!   written a handful of times across the run. Post-LLC write traffic is
//!   reuse-filtered — hot lines stay cached, so PCM sees the cold tail —
//!   and the low per-line rewrite count matches the transient,
//!   allocation-driven SET-dominance the paper measures (fresh data mostly
//!   SETs bits; see `content.rs`).

use crate::profiles::WorkloadProfile;
use crate::zipf::Zipf;
use pcm_memsim::{AccessKind, RequestSource, TraceOp};
use pcm_types::rng::{Rng, SmallRng};
use pcm_types::PhysAddr;

/// Base address of the region shared between cores.
const SHARED_BASE: PhysAddr = 0x1000_0000;
/// Base address of core 0's private region; cores are 256 MB apart.
const PRIVATE_BASE: PhysAddr = 0x4000_0000;
/// Private-region stride between cores.
const PRIVATE_STRIDE: PhysAddr = 0x1000_0000;
/// Fraction of reads that stream sequentially.
const STREAM_FRACTION: f64 = 0.30;
/// Target mean rewrites per line in the write working set.
const REWRITES_PER_LINE: f64 = 4.0;

/// Generator sizing.
#[derive(Clone, Copy, Debug)]
pub struct GeneratorConfig {
    /// Instructions each core retires (gaps + memory ops).
    pub instructions_per_core: u64,
    /// Number of cores.
    pub cores: usize,
    /// Cache-line size in bytes.
    pub line_bytes: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            instructions_per_core: 2_000_000,
            cores: 4,
            line_bytes: 64,
            seed: 0xFEED_5EED,
        }
    }
}

struct CoreState {
    rng: SmallRng,
    ops_left: u64,
    stream_pos: u64,
}

/// A [`RequestSource`] producing the calibrated synthetic workload.
pub struct SyntheticParsec {
    profile: WorkloadProfile,
    cfg: GeneratorConfig,
    cores: Vec<CoreState>,
    read_zipf: Zipf,
    read_ws_lines: u64,
    write_ws_lines: u64,
    gap_p: f64,
    write_frac: f64,
}

impl SyntheticParsec {
    /// Build the generator for one profile.
    pub fn new(profile: &WorkloadProfile, cfg: GeneratorConfig) -> Self {
        let apki = profile.apki();
        let ops_per_core = (cfg.instructions_per_core as f64 * apki / 1000.0).round() as u64;
        let writes_per_core =
            (cfg.instructions_per_core as f64 * profile.wpki / 1000.0).round() as u64;
        let read_ws_lines = 16_384u64;
        let write_ws_lines = ((writes_per_core as f64 / REWRITES_PER_LINE).ceil() as u64).max(64);
        let mut cores = Vec::with_capacity(cfg.cores);
        for c in 0..cfg.cores {
            cores.push(CoreState {
                rng: SmallRng::seed_from_u64(
                    cfg.seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
                ops_left: ops_per_core,
                stream_pos: 0,
            });
        }
        SyntheticParsec {
            profile: *profile,
            cfg,
            cores,
            read_zipf: Zipf::new(read_ws_lines as usize, 0.9),
            read_ws_lines,
            write_ws_lines,
            gap_p: (apki / 1000.0).min(1.0),
            write_frac: profile.write_fraction(),
        }
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Lines in the per-core write working set.
    pub fn write_ws_lines(&self) -> u64 {
        self.write_ws_lines
    }

    fn geometric_gap(rng: &mut SmallRng, p: f64) -> u32 {
        if p >= 1.0 {
            return 0;
        }
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let g = (u.ln() / (1.0 - p).ln()).floor();
        g.min(1_000_000.0) as u32
    }

    /// Map a working-set rank to a shared or private line address.
    fn rank_to_addr(&self, core: usize, rank: u64, shared: bool, write: bool) -> PhysAddr {
        let line = self.cfg.line_bytes;
        // Reads and writes use disjoint halves of each region so read and
        // write footprints don't collapse onto the same lines.
        let region_off = if write {
            0
        } else {
            self.write_ws_lines.max(self.read_ws_lines) * line
        };
        if shared {
            SHARED_BASE + region_off + rank * line
        } else {
            PRIVATE_BASE + core as u64 * PRIVATE_STRIDE + region_off + rank * line
        }
    }
}

impl RequestSource for SyntheticParsec {
    fn next(&mut self, core: usize) -> Option<TraceOp> {
        let shared_frac = self.profile.sharing.shared_fraction();
        let st = self.cores.get_mut(core)?;
        if st.ops_left == 0 {
            return None;
        }
        st.ops_left -= 1;
        let gap = Self::geometric_gap(&mut st.rng, self.gap_p);
        let is_write = st.rng.gen_bool(self.write_frac);
        let shared = st.rng.gen_bool(shared_frac);
        let (kind, addr) = if is_write {
            // Uniform reuse: memory-level writes are the LLC's reuse-
            // filtered cold tail.
            let rank = st.rng.gen_range(0..self.write_ws_lines);
            (
                AccessKind::Write,
                self.rank_to_addr(core, rank, shared, true),
            )
        } else if st.rng.gen_bool(STREAM_FRACTION) {
            st.stream_pos = (st.stream_pos + 1) % self.read_ws_lines;
            let pos = st.stream_pos;
            (AccessKind::Read, self.rank_to_addr(core, pos, false, false))
        } else {
            let rank = self.read_zipf.sample(&mut st.rng) as u64;
            (
                AccessKind::Read,
                self.rank_to_addr(core, rank, shared, false),
            )
        };
        Some(TraceOp { gap, kind, addr })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{WorkloadProfile, ALL_PROFILES};

    fn drain(gen: &mut SyntheticParsec, core: usize) -> Vec<TraceOp> {
        std::iter::from_fn(|| gen.next(core)).collect()
    }

    #[test]
    fn op_counts_match_apki() {
        let p = WorkloadProfile::by_name("vips").unwrap();
        let cfg = GeneratorConfig {
            instructions_per_core: 1_000_000,
            ..Default::default()
        };
        let mut g = SyntheticParsec::new(p, cfg);
        let ops = drain(&mut g, 0);
        let expected = 1_000_000.0 * p.apki() / 1000.0;
        assert!(
            (ops.len() as f64 - expected).abs() / expected < 0.01,
            "{} ops vs {expected}",
            ops.len()
        );
    }

    #[test]
    fn rpki_wpki_reproduced() {
        for p in &ALL_PROFILES {
            let cfg = GeneratorConfig {
                instructions_per_core: 4_000_000,
                ..Default::default()
            };
            let mut g = SyntheticParsec::new(p, cfg);
            let ops = drain(&mut g, 0);
            let instr: u64 = ops.iter().map(|o| o.gap as u64 + 1).sum();
            let reads = ops.iter().filter(|o| o.kind == AccessKind::Read).count() as f64;
            let writes = ops.iter().filter(|o| o.kind == AccessKind::Write).count() as f64;
            let rpki = reads * 1000.0 / instr as f64;
            let wpki = writes * 1000.0 / instr as f64;
            assert!(
                (rpki - p.rpki).abs() / p.rpki.max(0.01) < 0.15,
                "{}: rpki {rpki:.3} vs {}",
                p.name,
                p.rpki
            );
            assert!(
                (wpki - p.wpki).abs() / p.wpki.max(0.01) < 0.25,
                "{}: wpki {wpki:.3} vs {}",
                p.name,
                p.wpki
            );
        }
    }

    #[test]
    fn addresses_are_line_aligned_and_bounded() {
        let p = WorkloadProfile::by_name("dedup").unwrap();
        let mut g = SyntheticParsec::new(p, GeneratorConfig::default());
        for core in 0..4 {
            for op in drain(&mut g, core) {
                assert_eq!(op.addr % 64, 0);
                assert!(op.addr < 4 << 30, "address within 4 GB: {:#x}", op.addr);
            }
        }
    }

    #[test]
    fn cores_have_disjoint_private_regions() {
        let p = WorkloadProfile::by_name("blackscholes").unwrap(); // low sharing
        let mut g = SyntheticParsec::new(p, GeneratorConfig::default());
        let a: Vec<_> = drain(&mut g, 0);
        let b: Vec<_> = drain(&mut g, 1);
        let priv_a: std::collections::HashSet<u64> = a
            .iter()
            .filter(|o| o.addr >= PRIVATE_BASE)
            .map(|o| o.addr)
            .collect();
        let priv_b: std::collections::HashSet<u64> = b
            .iter()
            .filter(|o| o.addr >= PRIVATE_BASE)
            .map(|o| o.addr)
            .collect();
        assert!(
            priv_a.is_disjoint(&priv_b),
            "private regions must not overlap"
        );
    }

    #[test]
    fn sharing_level_controls_shared_traffic() {
        let low = WorkloadProfile::by_name("blackscholes").unwrap();
        let high = WorkloadProfile::by_name("ferret").unwrap();
        let frac = |p: &WorkloadProfile| {
            let mut g = SyntheticParsec::new(
                p,
                GeneratorConfig {
                    instructions_per_core: 20_000_000,
                    ..Default::default()
                },
            );
            let ops = drain(&mut g, 0);
            let shared = ops
                .iter()
                .filter(|o| o.addr >= SHARED_BASE && o.addr < PRIVATE_BASE)
                .count();
            shared as f64 / ops.len() as f64
        };
        assert!(
            frac(high) > frac(low) + 0.2,
            "sharing fractions must separate"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let p = WorkloadProfile::by_name("canneal").unwrap();
        let cfg = GeneratorConfig {
            instructions_per_core: 100_000,
            ..Default::default()
        };
        let a = drain(&mut SyntheticParsec::new(p, cfg), 0);
        let b = drain(&mut SyntheticParsec::new(p, cfg), 0);
        assert_eq!(a, b);
        let cfg2 = GeneratorConfig { seed: 1, ..cfg };
        let c = drain(&mut SyntheticParsec::new(p, cfg2), 0);
        assert_ne!(a, c);
    }

    #[test]
    fn unknown_core_returns_none() {
        let p = &ALL_PROFILES[0];
        let mut g = SyntheticParsec::new(p, GeneratorConfig::default());
        assert!(g.next(99).is_none());
    }
}
