//! The eight PARSEC 2.0 workload profiles (Table III + Fig. 3).
//!
//! `set_mean` / `reset_mean` are the per-64-bit-unit bit-write counts
//! *after* flip coding, calibrated so the suite reproduces the paper's
//! Fig. 3: average ≈ 9.6 (6.7 SET + 2.9 RESET), blackscholes ≈ 2, vips
//! ≈ 19 with a fifty-fifty mix, ferret near fifty-fifty, the rest
//! SET-dominant.

/// Data-sharing intensity between threads (Table III).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sharing {
    /// Threads work on private data.
    Low,
    /// Moderate shared footprint.
    Medium,
    /// Heavy sharing/exchange.
    High,
}

impl Sharing {
    /// Fraction of accesses directed at the shared region.
    pub const fn shared_fraction(self) -> f64 {
        match self {
            Sharing::Low => 0.05,
            Sharing::Medium => 0.25,
            Sharing::High => 0.50,
        }
    }
}

/// One workload's published characteristics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadProfile {
    /// PARSEC program name.
    pub name: &'static str,
    /// Application domain (Table III).
    pub domain: &'static str,
    /// Data usage of sharing.
    pub sharing: Sharing,
    /// Data usage of exchange.
    pub exchange: Sharing,
    /// Memory reads per kilo-instruction (Table III).
    pub rpki: f64,
    /// Memory writes per kilo-instruction (Table III).
    pub wpki: f64,
    /// Mean SET bit-writes per 64-bit unit after flip coding (Fig. 3).
    pub set_mean: f64,
    /// Mean RESET bit-writes per 64-bit unit after flip coding (Fig. 3).
    pub reset_mean: f64,
    /// Fraction of write-backs that replace the line with fresh content
    /// (new dedup chunks, new image tiles, …) rather than update it in
    /// place. Fresh writes change ~24-30 bits per unit and are what pushes
    /// Tetris Write above one write unit on the heavy workloads (Fig. 10's
    /// 1.06-1.46 range); the content model compensates its base means so
    /// the Fig. 3 averages are unaffected.
    pub fresh_fraction: f64,
}

impl WorkloadProfile {
    /// Total mean bit-writes per unit.
    pub fn total_mean(&self) -> f64 {
        self.set_mean + self.reset_mean
    }

    /// Memory accesses per kilo-instruction.
    pub fn apki(&self) -> f64 {
        self.rpki + self.wpki
    }

    /// Probability that a memory access is a write.
    pub fn write_fraction(&self) -> f64 {
        if self.apki() == 0.0 {
            0.0
        } else {
            self.wpki / self.apki()
        }
    }

    /// Look up a profile by name.
    pub fn by_name(name: &str) -> Option<&'static WorkloadProfile> {
        ALL_PROFILES.iter().find(|p| p.name == name)
    }
}

/// The eight workloads of Table III, in the paper's order.
pub const ALL_PROFILES: [WorkloadProfile; 8] = [
    WorkloadProfile {
        name: "blackscholes",
        domain: "Financial Analysis",
        sharing: Sharing::Low,
        exchange: Sharing::Low,
        rpki: 0.04,
        wpki: 0.02,
        set_mean: 1.4,
        reset_mean: 0.6,
        fresh_fraction: 0.05,
    },
    WorkloadProfile {
        name: "bodytrack",
        domain: "Computer Vision",
        sharing: Sharing::High,
        exchange: Sharing::Medium,
        rpki: 0.72,
        wpki: 0.24,
        set_mean: 6.5,
        reset_mean: 2.0,
        fresh_fraction: 0.1,
    },
    WorkloadProfile {
        name: "canneal",
        domain: "Engineering",
        sharing: Sharing::High,
        exchange: Sharing::High,
        rpki: 2.76,
        wpki: 0.19,
        set_mean: 5.0,
        reset_mean: 1.5,
        fresh_fraction: 0.08,
    },
    WorkloadProfile {
        name: "dedup",
        domain: "Enterprise Storage",
        sharing: Sharing::High,
        exchange: Sharing::High,
        rpki: 0.82,
        wpki: 0.49,
        set_mean: 11.0,
        reset_mean: 4.5,
        fresh_fraction: 0.3,
    },
    WorkloadProfile {
        name: "ferret",
        domain: "Similarity Search",
        sharing: Sharing::High,
        exchange: Sharing::High,
        rpki: 1.67,
        wpki: 0.95,
        set_mean: 6.5,
        reset_mean: 5.5,
        fresh_fraction: 0.25,
    },
    WorkloadProfile {
        name: "freqmine",
        domain: "Data Mining",
        sharing: Sharing::High,
        exchange: Sharing::Medium,
        rpki: 0.62,
        wpki: 0.25,
        set_mean: 5.5,
        reset_mean: 2.0,
        fresh_fraction: 0.1,
    },
    WorkloadProfile {
        name: "swaptions",
        domain: "Financial Analysis",
        sharing: Sharing::Low,
        exchange: Sharing::Low,
        rpki: 0.04,
        wpki: 0.02,
        set_mean: 2.5,
        reset_mean: 1.0,
        fresh_fraction: 0.05,
    },
    WorkloadProfile {
        name: "vips",
        domain: "Media Processing",
        sharing: Sharing::Low,
        exchange: Sharing::Medium,
        rpki: 2.56,
        wpki: 1.56,
        set_mean: 9.8,
        reset_mean: 9.2,
        fresh_fraction: 0.35,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_rpki_wpki() {
        let p = WorkloadProfile::by_name("canneal").unwrap();
        assert_eq!(p.rpki, 2.76);
        assert_eq!(p.wpki, 0.19);
        let v = WorkloadProfile::by_name("vips").unwrap();
        assert_eq!((v.rpki, v.wpki), (2.56, 1.56));
        assert!(WorkloadProfile::by_name("nonsense").is_none());
    }

    #[test]
    fn fig3_suite_average_near_paper() {
        // Paper: 9.6 bit ops per unit = 6.7 SET + 2.9 RESET on average.
        let n = ALL_PROFILES.len() as f64;
        let avg_set: f64 = ALL_PROFILES.iter().map(|p| p.set_mean).sum::<f64>() / n;
        let avg_reset: f64 = ALL_PROFILES.iter().map(|p| p.reset_mean).sum::<f64>() / n;
        let avg_total = avg_set + avg_reset;
        assert!((avg_total - 9.6).abs() < 1.0, "avg total {avg_total}");
        assert!((avg_set - 6.7).abs() < 1.0, "avg set {avg_set}");
        assert!((avg_reset - 2.9).abs() < 0.7, "avg reset {avg_reset}");
    }

    #[test]
    fn fig3_extremes() {
        let b = WorkloadProfile::by_name("blackscholes").unwrap();
        assert!(
            (b.total_mean() - 2.0).abs() < 0.5,
            "blackscholes ≈ 2 bit-writes"
        );
        let v = WorkloadProfile::by_name("vips").unwrap();
        assert!((v.total_mean() - 19.0).abs() < 0.5, "vips ≈ 19 bit-writes");
        // vips and ferret are fifty-fifty; the rest SET-dominant.
        for p in &ALL_PROFILES {
            match p.name {
                "vips" | "ferret" => {
                    let ratio = p.set_mean / p.reset_mean;
                    assert!((0.8..=1.3).contains(&ratio), "{} fifty-fifty", p.name);
                }
                _ => assert!(p.set_mean > 2.0 * p.reset_mean, "{} SET-dominant", p.name),
            }
        }
    }

    #[test]
    fn flip_bound_respected() {
        // Post-flip counts must stay below half a unit, or the calibration
        // could not be realized by any data.
        for p in &ALL_PROFILES {
            assert!(p.total_mean() < 30.0, "{} exceeds flip bound", p.name);
        }
    }

    #[test]
    fn write_fraction() {
        let v = WorkloadProfile::by_name("vips").unwrap();
        assert!((v.write_fraction() - 1.56 / 4.12).abs() < 1e-12);
        assert!((v.apki() - 4.12).abs() < 1e-12);
    }

    #[test]
    fn sharing_fractions_ordered() {
        assert!(Sharing::Low.shared_fraction() < Sharing::Medium.shared_fraction());
        assert!(Sharing::Medium.shared_fraction() < Sharing::High.shared_fraction());
    }
}
