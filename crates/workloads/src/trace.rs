//! Trace recording and (de)serialization.
//!
//! Generated traces can be materialized to per-core op vectors and saved as
//! JSON, so an experiment can be replayed bit-for-bit or inspected offline.

use pcm_memsim::{AccessKind, TraceOp, TraceSource};
use pcm_types::json::field_error;
use pcm_types::{Json, JsonCodec, JsonError};
use std::io::{BufRead, Write};

/// Serializable form of one op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Instruction gap.
    pub gap: u32,
    /// `true` for a write.
    pub w: bool,
    /// Byte address.
    pub addr: u64,
}

impl From<TraceOp> for TraceRecord {
    fn from(op: TraceOp) -> Self {
        TraceRecord {
            gap: op.gap,
            w: op.kind == AccessKind::Write,
            addr: op.addr,
        }
    }
}

impl From<TraceRecord> for TraceOp {
    fn from(r: TraceRecord) -> Self {
        TraceOp {
            gap: r.gap,
            kind: if r.w {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
            addr: r.addr,
        }
    }
}

impl JsonCodec for TraceRecord {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("gap", Json::UInt(self.gap as u64)),
            ("w", Json::Bool(self.w)),
            ("addr", Json::UInt(self.addr)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let gap = v
            .get("gap")
            .and_then(Json::as_u64)
            .and_then(|g| u32::try_from(g).ok())
            .ok_or_else(|| field_error("gap"))?;
        let w = v
            .get("w")
            .and_then(Json::as_bool)
            .ok_or_else(|| field_error("w"))?;
        let addr = v
            .get("addr")
            .and_then(Json::as_u64)
            .ok_or_else(|| field_error("addr"))?;
        Ok(TraceRecord { gap, w, addr })
    }
}

/// Materialize a [`TraceSource`] into per-core op vectors.
pub fn record_trace(src: &mut dyn TraceSource, cores: usize) -> Vec<Vec<TraceOp>> {
    (0..cores)
        .map(|c| std::iter::from_fn(|| src.next(c)).collect())
        .collect()
}

/// Write a materialized trace as JSON-lines: one line per core, each an
/// array of `{"gap": .., "w": .., "addr": ..}` objects.
pub fn write_trace<W: Write>(w: &mut W, trace: &[Vec<TraceOp>]) -> std::io::Result<()> {
    for core_ops in trace {
        let records = Json::Arr(
            core_ops
                .iter()
                .map(|&o| TraceRecord::from(o).to_json())
                .collect(),
        );
        w.write_all(records.to_string_compact().as_bytes())?;
        writeln!(w)?;
    }
    Ok(())
}

/// Read a JSON-lines trace back.
pub fn read_trace<R: BufRead>(r: R) -> std::io::Result<Vec<Vec<TraceOp>>> {
    let mut out = Vec::new();
    for line in r.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let parsed = Json::parse(&line).map_err(std::io::Error::from)?;
        let records = parsed.as_array().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "trace line is not an array",
            )
        })?;
        let ops = records
            .iter()
            .map(|rec| {
                TraceRecord::from_json(rec)
                    .map(TraceOp::from)
                    .map_err(std::io::Error::from)
            })
            .collect::<std::io::Result<Vec<TraceOp>>>()?;
        out.push(ops);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, SyntheticParsec};
    use crate::profiles::ALL_PROFILES;
    use pcm_types::propcheck::{any_bool, any_u64};
    use pcm_types::{prop_assert_eq, propcheck};

    #[test]
    fn roundtrip_through_json() {
        let cfg = GeneratorConfig {
            instructions_per_core: 50_000,
            cores: 2,
            ..Default::default()
        };
        let mut gen = SyntheticParsec::new(&ALL_PROFILES[4], cfg);
        let trace = record_trace(&mut gen, 2);
        assert_eq!(trace.len(), 2);
        assert!(!trace[0].is_empty());

        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let back = read_trace(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn record_conversion() {
        let op = TraceOp {
            gap: 5,
            kind: AccessKind::Write,
            addr: 0x40,
        };
        let r: TraceRecord = op.into();
        assert!(r.w);
        let op2: TraceOp = r.into();
        assert_eq!(op, op2);
    }

    #[test]
    fn empty_lines_skipped() {
        let back = read_trace(std::io::BufReader::new("\n\n".as_bytes())).unwrap();
        assert!(back.is_empty());
    }

    propcheck! {
        /// `JsonCodec` round-trip for individual trace records.
        fn trace_record_json_roundtrip(gap in 0u64..=u32::MAX as u64, w in any_bool(), addr in any_u64()) {
            let r = TraceRecord { gap: gap as u32, w, addr };
            prop_assert_eq!(TraceRecord::from_json_str(&r.to_json_string()).unwrap(), r);
        }
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(read_trace(std::io::BufReader::new("{\"not\":\"array\"}\n".as_bytes())).is_err());
        assert!(read_trace(std::io::BufReader::new("[{\"gap\":1}]\n".as_bytes())).is_err());
        assert!(read_trace(std::io::BufReader::new("not json\n".as_bytes())).is_err());
    }
}
