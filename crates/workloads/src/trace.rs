//! Trace (de)serialization and the trace-file [`RequestSource`].
//!
//! Generated traces can be materialized (via
//! [`pcm_memsim::VecTrace::capture`]) and saved as JSON, so an experiment
//! can be replayed bit-for-bit or inspected offline; [`TraceFileSource`]
//! streams a saved trace back into the simulator.

use pcm_memsim::{AccessKind, RequestSource, TraceOp};
use pcm_types::json::field_error;
use pcm_types::{Json, JsonCodec, JsonError};
use std::collections::VecDeque;
use std::io::{BufRead, Write};

/// Serializable form of one op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Instruction gap.
    pub gap: u32,
    /// `true` for a write.
    pub w: bool,
    /// Byte address.
    pub addr: u64,
}

impl From<TraceOp> for TraceRecord {
    fn from(op: TraceOp) -> Self {
        TraceRecord {
            gap: op.gap,
            w: op.kind == AccessKind::Write,
            addr: op.addr,
        }
    }
}

impl From<TraceRecord> for TraceOp {
    fn from(r: TraceRecord) -> Self {
        TraceOp {
            gap: r.gap,
            kind: if r.w {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
            addr: r.addr,
        }
    }
}

impl JsonCodec for TraceRecord {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("gap", Json::UInt(self.gap as u64)),
            ("w", Json::Bool(self.w)),
            ("addr", Json::UInt(self.addr)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let gap = v
            .get("gap")
            .and_then(Json::as_u64)
            .and_then(|g| u32::try_from(g).ok())
            .ok_or_else(|| field_error("gap"))?;
        let w = v
            .get("w")
            .and_then(Json::as_bool)
            .ok_or_else(|| field_error("w"))?;
        let addr = v
            .get("addr")
            .and_then(Json::as_u64)
            .ok_or_else(|| field_error("addr"))?;
        Ok(TraceRecord { gap, w, addr })
    }
}

/// A [`RequestSource`] replaying a saved JSON-lines trace.
///
/// Parsing happens once at construction (the file format is validated up
/// front, so a malformed trace fails fast instead of mid-run); the ops are
/// then handed out one at a time per core, like every other source.
pub struct TraceFileSource {
    cores: Vec<VecDeque<TraceOp>>,
}

impl TraceFileSource {
    /// Parse a JSON-lines trace from `r` (one line per core).
    pub fn from_reader<R: BufRead>(r: R) -> std::io::Result<Self> {
        Ok(TraceFileSource {
            cores: read_trace(r)?.into_iter().map(VecDeque::from).collect(),
        })
    }

    /// Number of cores (lines) in the trace.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// Ops remaining across all cores.
    pub fn remaining(&self) -> usize {
        self.cores.iter().map(VecDeque::len).sum()
    }
}

impl RequestSource for TraceFileSource {
    fn next(&mut self, core: usize) -> Option<TraceOp> {
        self.cores.get_mut(core)?.pop_front()
    }
}

/// Write a materialized trace as JSON-lines: one line per core, each an
/// array of `{"gap": .., "w": .., "addr": ..}` objects.
pub fn write_trace<W: Write>(w: &mut W, trace: &[Vec<TraceOp>]) -> std::io::Result<()> {
    for core_ops in trace {
        let records = Json::Arr(
            core_ops
                .iter()
                .map(|&o| TraceRecord::from(o).to_json())
                .collect(),
        );
        w.write_all(records.to_string_compact().as_bytes())?;
        writeln!(w)?;
    }
    Ok(())
}

/// Read a JSON-lines trace back.
pub fn read_trace<R: BufRead>(r: R) -> std::io::Result<Vec<Vec<TraceOp>>> {
    let mut out = Vec::new();
    for line in r.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let parsed = Json::parse(&line).map_err(std::io::Error::from)?;
        let records = parsed.as_array().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "trace line is not an array",
            )
        })?;
        let ops = records
            .iter()
            .map(|rec| {
                TraceRecord::from_json(rec)
                    .map(TraceOp::from)
                    .map_err(std::io::Error::from)
            })
            .collect::<std::io::Result<Vec<TraceOp>>>()?;
        out.push(ops);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, SyntheticParsec};
    use crate::profiles::ALL_PROFILES;
    use pcm_types::propcheck::{any_bool, any_u64};
    use pcm_types::{prop_assert_eq, propcheck};

    #[test]
    fn roundtrip_through_json() {
        let cfg = GeneratorConfig {
            instructions_per_core: 50_000,
            cores: 2,
            ..Default::default()
        };
        let mut gen = SyntheticParsec::new(&ALL_PROFILES[4], cfg);
        let trace = pcm_memsim::VecTrace::capture(&mut gen, 2);
        assert_eq!(trace.ops().len(), 2);
        assert!(!trace.ops()[0].is_empty());

        let mut buf = Vec::new();
        write_trace(&mut buf, trace.ops()).unwrap();
        let back = read_trace(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(trace.ops(), &back[..]);

        let mut src = TraceFileSource::from_reader(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(src.cores(), 2);
        let total = src.remaining();
        assert_eq!(total, trace.ops().iter().map(Vec::len).sum::<usize>());
        let replayed = pcm_memsim::VecTrace::capture(&mut src, 2);
        assert_eq!(replayed.ops(), trace.ops());
        assert_eq!(src.remaining(), 0);
        assert!(src.next(0).is_none(), "exhausted source stays exhausted");
    }

    #[test]
    fn record_conversion() {
        let op = TraceOp {
            gap: 5,
            kind: AccessKind::Write,
            addr: 0x40,
        };
        let r: TraceRecord = op.into();
        assert!(r.w);
        let op2: TraceOp = r.into();
        assert_eq!(op, op2);
    }

    #[test]
    fn empty_lines_skipped() {
        let back = read_trace(std::io::BufReader::new("\n\n".as_bytes())).unwrap();
        assert!(back.is_empty());
    }

    propcheck! {
        /// `JsonCodec` round-trip for individual trace records.
        fn trace_record_json_roundtrip(gap in 0u64..=u32::MAX as u64, w in any_bool(), addr in any_u64()) {
            let r = TraceRecord { gap: gap as u32, w, addr };
            prop_assert_eq!(TraceRecord::from_json_str(&r.to_json_string()).unwrap(), r);
        }
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(read_trace(std::io::BufReader::new("{\"not\":\"array\"}\n".as_bytes())).is_err());
        assert!(read_trace(std::io::BufReader::new("[{\"gap\":1}]\n".as_bytes())).is_err());
        assert!(read_trace(std::io::BufReader::new("not json\n".as_bytes())).is_err());
    }
}
