//! Trace recording and (de)serialization.
//!
//! Generated traces can be materialized to per-core op vectors and saved as
//! JSON, so an experiment can be replayed bit-for-bit or inspected offline.

use pcm_memsim::{AccessKind, TraceOp, TraceSource};
use pcm_types::Json;
use std::io::{BufRead, Write};

/// Serializable form of one op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Instruction gap.
    pub gap: u32,
    /// `true` for a write.
    pub w: bool,
    /// Byte address.
    pub addr: u64,
}

impl From<TraceOp> for TraceRecord {
    fn from(op: TraceOp) -> Self {
        TraceRecord {
            gap: op.gap,
            w: op.kind == AccessKind::Write,
            addr: op.addr,
        }
    }
}

impl From<TraceRecord> for TraceOp {
    fn from(r: TraceRecord) -> Self {
        TraceOp {
            gap: r.gap,
            kind: if r.w {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
            addr: r.addr,
        }
    }
}

/// Materialize a [`TraceSource`] into per-core op vectors.
pub fn record_trace(src: &mut dyn TraceSource, cores: usize) -> Vec<Vec<TraceOp>> {
    (0..cores)
        .map(|c| std::iter::from_fn(|| src.next(c)).collect())
        .collect()
}

/// Write a materialized trace as JSON-lines: one line per core, each an
/// array of `{"gap": .., "w": .., "addr": ..}` objects.
pub fn write_trace<W: Write>(w: &mut W, trace: &[Vec<TraceOp>]) -> std::io::Result<()> {
    for core_ops in trace {
        let records = Json::Arr(
            core_ops
                .iter()
                .map(|&o| {
                    let r = TraceRecord::from(o);
                    Json::obj(vec![
                        ("gap", Json::UInt(r.gap as u64)),
                        ("w", Json::Bool(r.w)),
                        ("addr", Json::UInt(r.addr)),
                    ])
                })
                .collect(),
        );
        w.write_all(records.to_string_compact().as_bytes())?;
        writeln!(w)?;
    }
    Ok(())
}

/// Read a JSON-lines trace back.
pub fn read_trace<R: BufRead>(r: R) -> std::io::Result<Vec<Vec<TraceOp>>> {
    let mut out = Vec::new();
    for line in r.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let parsed = Json::parse(&line).map_err(std::io::Error::from)?;
        let records = parsed.as_array().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "trace line is not an array",
            )
        })?;
        let ops = records
            .iter()
            .map(|rec| {
                let gap = rec.get("gap").and_then(Json::as_u64);
                let w = rec.get("w").and_then(Json::as_bool);
                let addr = rec.get("addr").and_then(Json::as_u64);
                match (gap, w, addr) {
                    (Some(gap), Some(w), Some(addr)) => Ok(TraceOp::from(TraceRecord {
                        gap: gap as u32,
                        w,
                        addr,
                    })),
                    _ => Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "trace record missing gap/w/addr",
                    )),
                }
            })
            .collect::<std::io::Result<Vec<TraceOp>>>()?;
        out.push(ops);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, SyntheticParsec};
    use crate::profiles::ALL_PROFILES;

    #[test]
    fn roundtrip_through_json() {
        let cfg = GeneratorConfig {
            instructions_per_core: 50_000,
            cores: 2,
            ..Default::default()
        };
        let mut gen = SyntheticParsec::new(&ALL_PROFILES[4], cfg);
        let trace = record_trace(&mut gen, 2);
        assert_eq!(trace.len(), 2);
        assert!(!trace[0].is_empty());

        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let back = read_trace(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn record_conversion() {
        let op = TraceOp {
            gap: 5,
            kind: AccessKind::Write,
            addr: 0x40,
        };
        let r: TraceRecord = op.into();
        assert!(r.w);
        let op2: TraceOp = r.into();
        assert_eq!(op, op2);
    }

    #[test]
    fn empty_lines_skipped() {
        let back = read_trace(std::io::BufReader::new("\n\n".as_bytes())).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(read_trace(std::io::BufReader::new("{\"not\":\"array\"}\n".as_bytes())).is_err());
        assert!(read_trace(std::io::BufReader::new("[{\"gap\":1}]\n".as_bytes())).is_err());
        assert!(read_trace(std::io::BufReader::new("not json\n".as_bytes())).is_err());
    }
}
