//! # pcm-workloads
//!
//! Calibrated synthetic stand-ins for the paper's eight multi-threaded
//! PARSEC 2.0 workloads (Table III / Fig. 3). PARSEC itself cannot run
//! here, so each profile reproduces the *published measurements* the write
//! schemes are sensitive to:
//!
//! * memory **RPKI / WPKI** (Table III) via instruction-gap statistics,
//! * per-64-bit-unit **SET/RESET counts after flip coding** (Fig. 3:
//!   suite average ≈ 9.6 bit-writes = 2.9 RESET + 6.7 SET; blackscholes
//!   ≈ 2; vips ≈ 19 and fifty-fifty; most workloads SET-dominant),
//! * data **sharing levels** (shared address regions between cores),
//! * zipf + streaming address locality to exercise row buffers and bank
//!   parallelism.
//!
//! Modules: [`profiles`] (the eight workloads), [`content`] (the
//! Fig. 3-calibrated write-content model), [`generator`] (the
//! [`pcm_memsim::RequestSource`] producing per-core op streams), [`zipf`]
//! (the locality sampler), [`stats`] (the Fig. 3 measurement harness) and
//! [`trace`] (trace (de)serialization and the trace-file source).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod content;
pub mod generator;
pub mod profiles;
pub mod stats;
pub mod trace;
pub mod zipf;

pub use content::ProfileContent;
pub use generator::{GeneratorConfig, SyntheticParsec};
pub use profiles::{Sharing, WorkloadProfile, ALL_PROFILES};
pub use stats::{measure_bit_stats, BitStats};
pub use trace::{read_trace, write_trace, TraceFileSource, TraceRecord};
pub use zipf::Zipf;
