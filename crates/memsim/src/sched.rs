//! Pluggable write-scheduling policy for the FRFCFS controller.
//!
//! The paper's controller uses one hardcoded rule: the write queue fills
//! to capacity, then drains to a fixed low watermark while reads wait.
//! [`SchedPolicy`] generalizes that into three independently selectable
//! policies (all off by default, reproducing the paper's behaviour
//! bit-for-bit):
//!
//! 1. **Adaptive drain watermarks** — the drain-entry (high) and
//!    drain-exit (low) marks track the observed write-queue depth
//!    distribution: the high mark reserves burst-sized headroom below
//!    capacity (`cap − (p95 − p50)`), so bursty phases start draining
//!    before the queue slams into the full stop that backpressures the
//!    cores, while steady phases keep the paper's fill-to-capacity
//!    behaviour; the low mark follows the median depth. Both are
//!    recomputed incrementally every [`SchedConfig::watermark_interval`]
//!    samples from the same depth counters `TraceSummary` aggregates.
//!    A ±1 deadband provides hysteresis so the marks don't chatter.
//! 2. **Per-bank write steering** — during a drain, free banks are
//!    visited least-utilized-first (by cumulative busy time) instead of
//!    in index order, flattening the per-bank utilization spread the
//!    `report` subcommand exposes. Steering never changes *which* bank a
//!    write runs on — the address map fixes that — only which bank's
//!    backlog is serviced first when several banks are idle.
//! 3. **Read-priority windows** — a drain that has starved queued reads
//!    for longer than [`SchedConfig::max_drain_starvation`] opens a
//!    bounded window during which banks with queued reads serve those
//!    reads; banks without reads keep draining. The window length is
//!    sized from the write-pausing budget: the read service time the
//!    controller's `max_pauses_per_write` allowance would have bought.
//!
//! Every decision is emitted as a `TelemetryEvent`
//! (`WatermarkAdjust` / `WriteSteer` / `ReadWindow`), so
//! `tetris-experiments sched-ablation` can diff policies head-to-head
//! from traces alone.

use crate::bankstate::BankState;
use crate::config::ControllerConfig;
use pcm_types::{PcmTimings, Ps};

/// Which scheduling policies are active and their tuning knobs.
///
/// The default ([`SchedConfig::fixed`]) disables all three policies and
/// reproduces the paper's fixed fill-to-capacity / drain-to-watermark
/// controller exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchedConfig {
    /// Drive the drain watermarks from observed queue-depth percentiles.
    pub adaptive_watermarks: bool,
    /// Visit free banks least-utilized-first when draining writes.
    pub bank_steering: bool,
    /// Bound how long a drain may starve queued reads.
    pub read_windows: bool,
    /// Queue-depth samples between watermark recomputations.
    pub watermark_interval: u32,
    /// Minimum distance kept between the low and high marks (hysteresis
    /// floor: `low + gap <= high` always holds).
    pub min_watermark_gap: usize,
    /// Drain time after which queued reads earn a priority window.
    /// `Ps::ZERO` means auto: one SET pulse (`t_set`), the longest single
    /// operation a read could be stuck behind.
    pub max_drain_starvation: Ps,
    /// Length of an opened read-priority window. `Ps::ZERO` means auto:
    /// `max_pauses_per_write × (t_read + t_bus)` — the read service the
    /// pause budget would have allowed against one write.
    pub read_window: Ps,
}

impl SchedConfig {
    /// The paper's fixed policy: no adaptation, no steering, no windows.
    pub fn fixed() -> Self {
        SchedConfig {
            adaptive_watermarks: false,
            bank_steering: false,
            read_windows: false,
            watermark_interval: 64,
            min_watermark_gap: 4,
            max_drain_starvation: Ps::ZERO,
            read_window: Ps::ZERO,
        }
    }

    /// All three adaptive policies on, with default tuning.
    pub fn adaptive() -> Self {
        SchedConfig {
            adaptive_watermarks: true,
            bank_steering: true,
            read_windows: true,
            ..Self::fixed()
        }
    }
}

impl Default for SchedConfig {
    fn default() -> Self {
        Self::fixed()
    }
}

/// What a read-window poll decided this scheduling round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowPoll {
    /// No window is active (policy off, not draining, or reads not yet
    /// starved long enough).
    Inactive,
    /// A new window just opened, lasting until the given time — the
    /// caller should record a `ReadWindow` event.
    Opened(Ps),
    /// A previously opened window is still running.
    Active,
}

impl WindowPoll {
    /// Is a window (newly opened or ongoing) in effect?
    pub fn active(self) -> bool {
        !matches!(self, WindowPoll::Inactive)
    }
}

/// Runtime state of the scheduling policies for one controller.
///
/// Constructed by the controller from its [`ControllerConfig`]; all
/// decisions are pure functions of the observed queue/bank state, so the
/// simulation stays deterministic.
#[derive(Clone, Debug)]
pub struct SchedPolicy {
    cfg: SchedConfig,
    /// Write-queue capacity (histogram upper bound, fixed high mark).
    cap: usize,
    /// Current drain-exit mark.
    low: usize,
    /// Current drain-entry mark.
    high: usize,
    /// Effective `min_watermark_gap`, clamped so `gap + 1 <= cap`.
    gap: usize,
    /// Depth-count histogram: `hist[d]` = samples that observed depth `d`.
    hist: Vec<u64>,
    since_update: u32,
    /// When the current drain episode started starving reads.
    drain_since: Option<Ps>,
    /// End of the currently open read-priority window.
    window_until: Option<Ps>,
    /// Resolved starvation bound (auto-derived if the config said ZERO).
    starvation: Ps,
    /// Resolved window length (auto-derived if the config said ZERO).
    window: Ps,
}

impl SchedPolicy {
    /// Build the policy state for a controller, resolving the auto
    /// (`Ps::ZERO`) timing knobs from the device timings.
    pub fn new(ctrl: &ControllerConfig, timings: &PcmTimings) -> Self {
        let cfg = ctrl.sched;
        let cap = ctrl.write_queue_cap;
        let gap = cfg.min_watermark_gap.min(cap.saturating_sub(1));
        let starvation = if cfg.max_drain_starvation == Ps::ZERO {
            timings.t_set
        } else {
            cfg.max_drain_starvation
        };
        let window = if cfg.read_window == Ps::ZERO {
            (timings.t_read + ctrl.t_bus) * ctrl.max_pauses_per_write.max(1) as u64
        } else {
            cfg.read_window
        };
        SchedPolicy {
            cfg,
            cap,
            low: ctrl.write_low_watermark,
            high: cap,
            gap,
            hist: vec![0; cap + 1],
            since_update: 0,
            drain_since: None,
            window_until: None,
            starvation,
            window,
        }
    }

    /// Current drain-exit mark (the fixed `write_low_watermark` unless
    /// adaptation has moved it).
    pub fn low_watermark(&self) -> usize {
        self.low
    }

    /// Current drain-entry mark (queue capacity unless adaptation has
    /// lowered it).
    pub fn high_watermark(&self) -> usize {
        self.high
    }

    /// Is least-utilized-first bank steering enabled?
    pub fn steering_enabled(&self) -> bool {
        self.cfg.bank_steering
    }

    /// Record one write-queue depth observation. Every
    /// `watermark_interval` samples the marks are recomputed from the
    /// accumulated distribution; returns `Some((low, high))` when they
    /// actually moved (outside the ±1 deadband).
    pub fn observe_depth(&mut self, depth: usize) -> Option<(usize, usize)> {
        if !self.cfg.adaptive_watermarks {
            return None;
        }
        self.hist[depth.min(self.cap)] += 1;
        self.since_update += 1;
        if self.since_update < self.cfg.watermark_interval.max(1) {
            return None;
        }
        self.since_update = 0;
        let p95 = self.percentile_depth(0.95);
        let p50 = self.percentile_depth(0.50);
        // Reserve burst-sized headroom below capacity: when the observed
        // p95−p50 spread is wide, drains must start early enough that an
        // incoming burst doesn't hit the full-queue stall.
        let high = self
            .cap
            .saturating_sub(p95 - p50)
            .clamp(self.gap + 1, self.cap);
        let low = p50.min(high - self.gap);
        // Hysteresis: hold both marks unless at least one moved by > 1.
        if high.abs_diff(self.high) <= 1 && low.abs_diff(self.low) <= 1 {
            return None;
        }
        self.low = low;
        self.high = high;
        Some((low, high))
    }

    /// Nearest-rank percentile of the observed depth distribution
    /// (shared [`pcm_types::stats`] walk; capacity when no samples).
    fn percentile_depth(&self, p: f64) -> usize {
        pcm_types::stats::percentile_from_counts(&self.hist, p).unwrap_or(self.cap)
    }

    /// A drain episode began at `at` (reads start waiting now).
    pub fn note_drain_start(&mut self, at: Ps) {
        if self.drain_since.is_none() {
            self.drain_since = Some(at);
        }
    }

    /// The drain finished; any open window closes with it.
    pub fn note_drain_stop(&mut self) {
        self.drain_since = None;
        self.window_until = None;
    }

    /// Advance the read-window state machine one scheduling round.
    /// `draining` and `reads_waiting` describe the controller's state at
    /// `now`.
    pub fn poll_read_window(&mut self, now: Ps, draining: bool, reads_waiting: bool) -> WindowPoll {
        if !self.cfg.read_windows || !draining {
            return WindowPoll::Inactive;
        }
        if let Some(until) = self.window_until {
            if now < until {
                return WindowPoll::Active;
            }
            // Window expired: the drain resumes, starvation clock restarts.
            self.window_until = None;
            self.drain_since = Some(now);
        }
        // force_drain() has no timestamp; start the clock lazily.
        let since = *self.drain_since.get_or_insert(now);
        if reads_waiting && now.saturating_sub(since) >= self.starvation {
            let until = now + self.window;
            self.window_until = Some(until);
            return WindowPoll::Opened(until);
        }
        WindowPoll::Inactive
    }

    /// The order in which the controller should visit banks this round:
    /// index order normally, least-utilized-first under steering.
    pub fn bank_order(&self, banks: &[BankState]) -> Vec<usize> {
        if self.cfg.bank_steering {
            BankState::least_utilized_order(banks)
        } else {
            (0..banks.len()).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_types::propcheck::vec_of;
    use pcm_types::{prop_assert, propcheck};

    fn ctrl_with(sched: SchedConfig) -> ControllerConfig {
        ControllerConfig {
            sched,
            ..ControllerConfig::default()
        }
    }

    fn adaptive_policy() -> SchedPolicy {
        SchedPolicy::new(
            &ctrl_with(SchedConfig::adaptive()),
            &PcmTimings::paper_baseline(),
        )
    }

    #[test]
    fn fixed_policy_mirrors_controller_config() {
        let ctrl = ctrl_with(SchedConfig::fixed());
        let mut p = SchedPolicy::new(&ctrl, &PcmTimings::paper_baseline());
        assert_eq!(p.low_watermark(), ctrl.write_low_watermark);
        assert_eq!(p.high_watermark(), ctrl.write_queue_cap);
        assert!(!p.steering_enabled());
        for d in [0usize, 5, 31, 32] {
            assert_eq!(p.observe_depth(d), None, "fixed mode never adapts");
        }
        assert_eq!(
            p.poll_read_window(Ps::from_ns(10_000), true, true),
            WindowPoll::Inactive
        );
    }

    #[test]
    fn watermarks_track_depth_percentiles() {
        let mut p = adaptive_policy();
        // A shallow-queue phase: depths 0..=8, p95 ≈ 8, median ≈ 4.
        let mut changed = None;
        for i in 0..256usize {
            if let Some(marks) = p.observe_depth(i % 9) {
                changed = Some(marks);
            }
        }
        let (low, high) = changed.expect("marks must move off the fixed 16/32");
        assert!(
            high < 32,
            "bursty depths (p95−p50 = 4) must pull the high mark below capacity, got {high}"
        );
        assert!(low < high, "low {low} < high {high}");
        assert_eq!(p.low_watermark(), low);
        assert_eq!(p.high_watermark(), high);
    }

    #[test]
    fn deadband_suppresses_chatter() {
        let mut p = adaptive_policy();
        for i in 0..256usize {
            p.observe_depth(i % 9);
        }
        let (low, high) = (p.low_watermark(), p.high_watermark());
        // The same distribution again: marks may not move.
        for i in 0..256usize {
            assert_eq!(p.observe_depth(i % 9), None, "stable input, stable marks");
        }
        assert_eq!((p.low_watermark(), p.high_watermark()), (low, high));
    }

    #[test]
    fn read_window_opens_after_starvation_and_expires() {
        let mut p = adaptive_policy();
        let t0 = Ps::ZERO;
        p.note_drain_start(t0);
        // Immediately after drain entry: reads not yet starved.
        assert_eq!(p.poll_read_window(t0, true, true), WindowPoll::Inactive);
        // After a full SET pulse (auto starvation bound = 430 ns) a window
        // opens, sized from the pause budget: 4 × (50 + 10) ns = 240 ns.
        let t1 = Ps::from_ns(430);
        let until = match p.poll_read_window(t1, true, true) {
            WindowPoll::Opened(u) => u,
            other => panic!("expected a window, got {other:?}"),
        };
        assert_eq!(until, t1 + Ps::from_ns(240));
        assert_eq!(
            p.poll_read_window(Ps::from_ns(500), true, true),
            WindowPoll::Active
        );
        // Past the end the window closes and the starvation clock restarts.
        assert_eq!(
            p.poll_read_window(until, true, true),
            WindowPoll::Inactive,
            "expired window does not immediately reopen"
        );
        // No reads waiting → no window, however starved.
        let t2 = until + Ps::from_ns(10_000);
        assert_eq!(p.poll_read_window(t2, true, false), WindowPoll::Inactive);
        p.note_drain_stop();
        assert_eq!(p.poll_read_window(t2, false, true), WindowPoll::Inactive);
    }

    #[test]
    fn bank_order_identity_without_steering() {
        let p = SchedPolicy::new(
            &ctrl_with(SchedConfig::fixed()),
            &PcmTimings::paper_baseline(),
        );
        let banks = vec![BankState::default(); 4];
        assert_eq!(p.bank_order(&banks), vec![0, 1, 2, 3]);
    }

    propcheck! {
        /// Watermark hysteresis invariant: whatever depth stream the
        /// controller observes, the marks keep `low + gap <= high <= cap`
        /// (so a drain always makes progress and entry is never above
        /// capacity).
        fn watermark_invariants(depths in vec_of(0u64..=40, 0..=512)) {
            let ctrl = ctrl_with(SchedConfig::adaptive());
            let mut p = SchedPolicy::new(&ctrl, &PcmTimings::paper_baseline());
            for d in depths {
                p.observe_depth(d as usize);
                let (low, high) = (p.low_watermark(), p.high_watermark());
                prop_assert!(high <= ctrl.write_queue_cap, "high {} > cap", high);
                prop_assert!(
                    low + ctrl.sched.min_watermark_gap <= high,
                    "gap violated: low {} high {}",
                    low,
                    high
                );
            }
        }

        /// Steering returns a permutation of the bank indices, sorted by
        /// cumulative busy time (ties by index).
        fn steering_order_is_a_least_utilized_permutation(
            busys in vec_of(0u64..=1_000_000, 1..=32)
        ) {
            let mut banks = vec![BankState::default(); busys.len()];
            for (b, &ns) in banks.iter_mut().zip(&busys) {
                b.begin_write(Ps::ZERO, 0, Ps::from_ns(ns));
            }
            let p = adaptive_policy();
            let order = p.bank_order(&banks);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert!(sorted == (0..banks.len()).collect::<Vec<_>>(), "not a permutation");
            for w in order.windows(2) {
                let (a, b) = (w[0], w[1]);
                prop_assert!(
                    (banks[a].busy_total(), a) < (banks[b].busy_total(), b),
                    "order not least-utilized-first at {} -> {}",
                    a,
                    b
                );
            }
        }
    }
}
