//! Start-Gap wear leveling (Qureshi et al., MICRO'09 — the paper's
//! ref. \[5\]).
//!
//! PCM cells endure ~10⁸ writes, so a hot line would die in hours without
//! leveling. Start-Gap keeps one spare (gap) line and two registers:
//!
//! * `PA = (LA + start) mod N`, then skip the gap: `if PA ≥ gap { PA += 1 }`;
//! * every ψ writes, the line before the gap moves into it and the gap
//!   walks down one slot; when it reaches 0 it wraps to N and `start`
//!   advances — after N·ψ writes every line has shifted by one physical
//!   slot, spreading hot addresses across the whole region.
//!
//! Overhead: one extra line move per ψ writes (ψ = 100 ⇒ 1%).

/// A gap-move order: copy physical line `from` into physical line `to`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GapMove {
    /// Source physical line.
    pub from: u64,
    /// Destination physical line (the current gap).
    pub to: u64,
}

/// Start-Gap remapper over `n` logical lines (`n + 1` physical).
#[derive(Clone, Debug)]
pub struct StartGap {
    n: u64,
    start: u64,
    gap: u64,
    psi: u64,
    writes_since_move: u64,
    /// Total gap moves performed.
    pub moves: u64,
}

impl StartGap {
    /// A leveler over `n` logical lines, moving the gap every `psi` writes.
    ///
    /// # Panics
    /// If `n == 0` or `psi == 0`.
    pub fn new(n: u64, psi: u64) -> Self {
        assert!(n > 0, "need at least one line");
        assert!(psi > 0, "gap interval must be positive");
        StartGap {
            n,
            start: 0,
            gap: n,
            psi,
            writes_since_move: 0,
            moves: 0,
        }
    }

    /// Logical lines covered.
    pub fn lines(&self) -> u64 {
        self.n
    }

    /// Physical lines used (logical + 1 spare).
    pub fn physical_lines(&self) -> u64 {
        self.n + 1
    }

    /// Current gap position (the unused physical line).
    pub fn gap(&self) -> u64 {
        self.gap
    }

    /// Map a logical line to its physical line.
    pub fn map(&self, logical: u64) -> u64 {
        debug_assert!(logical < self.n, "logical line out of range");
        let mut pa = (logical + self.start) % self.n;
        if pa >= self.gap {
            pa += 1;
        }
        pa
    }

    /// Account one write; every ψ-th write returns the gap move to
    /// perform. The caller must copy `from → to` *before* the next `map`
    /// call, because the returned state already reflects the move.
    pub fn on_write(&mut self) -> Option<GapMove> {
        self.writes_since_move += 1;
        if self.writes_since_move < self.psi {
            return None;
        }
        self.writes_since_move = 0;
        self.moves += 1;
        if self.gap == 0 {
            // Wrap: the gap jumps back to the top and start advances,
            // completing one full rotation step.
            self.start = (self.start + 1) % self.n;
            self.gap = self.n;
            // Gap moved from slot 0 to slot N: line N's content moves down.
            Some(GapMove {
                from: self.n,
                to: 0,
            })
        } else {
            let mv = GapMove {
                from: self.gap - 1,
                to: self.gap,
            };
            self.gap -= 1;
            Some(mv)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn identity_before_any_move() {
        let sg = StartGap::new(8, 100);
        for la in 0..8 {
            assert_eq!(sg.map(la), la, "gap at N leaves mapping identity");
        }
    }

    #[test]
    fn mapping_is_always_injective() {
        let mut sg = StartGap::new(16, 1);
        for _ in 0..200 {
            let phys: HashSet<u64> = (0..16).map(|la| sg.map(la)).collect();
            assert_eq!(phys.len(), 16, "mapping must stay a bijection");
            assert!(!phys.contains(&sg.gap()), "nothing maps to the gap");
            assert!(phys.iter().all(|&p| p <= 16));
            sg.on_write();
        }
    }

    #[test]
    fn gap_walks_and_wraps() {
        let mut sg = StartGap::new(4, 1);
        assert_eq!(sg.gap(), 4);
        assert_eq!(sg.on_write(), Some(GapMove { from: 3, to: 4 }));
        assert_eq!(sg.on_write(), Some(GapMove { from: 2, to: 3 }));
        assert_eq!(sg.on_write(), Some(GapMove { from: 1, to: 2 }));
        assert_eq!(sg.on_write(), Some(GapMove { from: 0, to: 1 }));
        assert_eq!(sg.gap(), 0);
        // Wrap: start advances.
        assert_eq!(sg.on_write(), Some(GapMove { from: 4, to: 0 }));
        assert_eq!(sg.gap(), 4);
        assert_eq!(sg.moves, 5);
    }

    #[test]
    fn psi_controls_overhead() {
        let mut sg = StartGap::new(100, 100);
        let mut moves = 0;
        for _ in 0..10_000 {
            if sg.on_write().is_some() {
                moves += 1;
            }
        }
        assert_eq!(moves, 100, "1% move overhead at psi = 100");
    }

    #[test]
    fn rotation_spreads_a_hot_line() {
        // Write logical line 0 forever; with leveling its physical home
        // must keep changing.
        let mut sg = StartGap::new(8, 1);
        let mut homes = HashSet::new();
        for _ in 0..100 {
            homes.insert(sg.map(0));
            sg.on_write();
        }
        assert!(
            homes.len() >= 8,
            "hot line visited {} physical slots",
            homes.len()
        );
    }

    #[test]
    fn contents_follow_the_remap() {
        // Simulate a tiny memory and check data is never lost or aliased.
        let mut sg = StartGap::new(6, 1);
        let mut phys: Vec<Option<u64>> = vec![None; 7];
        // Write each logical line with its own tag.
        for la in 0..6u64 {
            phys[sg.map(la) as usize] = Some(la);
            if let Some(mv) = sg.on_write() {
                phys[mv.to as usize] = phys[mv.from as usize].take();
            }
        }
        // After arbitrary further churn, every logical line still reads its
        // own tag.
        for round in 0..50u64 {
            let la = round % 6;
            assert_eq!(phys[sg.map(la) as usize], Some(la), "round {round}");
            phys[sg.map(la) as usize] = Some(la);
            if let Some(mv) = sg.on_write() {
                phys[mv.to as usize] = phys[mv.from as usize].take();
            }
        }
    }
}
