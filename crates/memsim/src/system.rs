//! Full-system wiring: trace-driven cores → (optional cache hierarchy) →
//! FRFCFS controller → PCM banks, driven by the discrete-event engine.
//!
//! Two trace levels:
//!
//! * [`TraceLevel::MemoryLevel`] — ops are post-LLC memory accesses with
//!   instruction gaps, directly calibrated to Table III RPKI/WPKI. Used for
//!   the paper's figures.
//! * [`TraceLevel::CpuLevel`] — ops are CPU accesses filtered through the
//!   L1/L2/L3 hierarchy; LLC misses and write-backs reach the PCM.

use crate::config::{ConfigError, SystemConfig};
use crate::content::{UniformRandomContent, WriteContent};
use crate::controller::{MemoryController, ReadEnqueue};
use crate::cpu::{Core, CorePhase, RequestSource, VecTrace};
use crate::engine::{Event, EventQueue};
use crate::hierarchy::{CacheHierarchy, HitLevel};
use crate::memory::PcmMainMemory;
use crate::request::{AccessKind, MemRequest};
use crate::stats::{LatencyStats, SimResult};
use crate::writecache::{WriteAdmit, WriteCache, WriteCacheStats};
use pcm_schemes::{SchemeConfig, SchemeSelect, WriteScheme};
use pcm_telemetry::{NullSink, OpKind, Telemetry, TelemetryEvent, TraceDetail};
use pcm_types::{PhysAddr, Ps};
use std::collections::{HashMap, VecDeque};

/// Which abstraction level the trace describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceLevel {
    /// Post-LLC memory trace (gaps calibrated to memory RPKI/WPKI).
    MemoryLevel,
    /// CPU-level trace filtered through the cache hierarchy.
    CpuLevel,
}

/// The simulated system.
pub struct System {
    cfg: SystemConfig,
    level: TraceLevel,
    cores: Vec<Core>,
    trace: Box<dyn RequestSource>,
    content: Box<dyn WriteContent>,
    controller: MemoryController,
    memory: PcmMainMemory,
    hierarchy: Option<CacheHierarchy>,
    /// The DRAM write-cache tier; `None` reproduces the paper's pipeline
    /// bit for bit (`cfg.write_cache.frames == 0`).
    write_cache: Option<WriteCache>,
    queue: EventQueue,
    now: Ps,
    next_req_id: u64,
    read_waiters: HashMap<u64, usize>,
    stalled_write: Vec<usize>,
    stalled_read: Vec<usize>,
    /// Per-core write-backs awaiting queue space (CPU mode).
    backlog: Vec<VecDeque<PhysAddr>>,
    /// Per-core memory read awaiting read-queue space (CPU mode).
    pending_mem_read: Vec<Option<PhysAddr>>,
    read_lat: LatencyStats,
    write_lat: LatencyStats,
    workload_name: String,
    tel: Box<dyn Telemetry>,
}

impl System {
    /// Build a system from one validated configuration — the single
    /// construction entry point. The write scheme comes from
    /// `cfg.mem.select` via [`SchemeConfig::instantiate`] (with
    /// `cfg.tetris` supplying the packing knobs for
    /// [`SchemeSelect::Tetris`]); the trace level from `cfg.level`.
    ///
    /// The fresh system has an empty trace, seed-0 random write content,
    /// and the zero-cost [`pcm_telemetry::NullSink`]; chain
    /// [`System::with_trace`] / [`System::with_content`] /
    /// [`System::with_telemetry`] to replace them.
    pub fn build(cfg: SystemConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        tetris_write::register_scheme_factory();
        let scheme: Box<dyn WriteScheme> = if cfg.mem.select == SchemeSelect::Tetris {
            // Route through cfg.tetris so custom packing knobs apply; the
            // registered factory would use paper-baseline knobs.
            let mut t = cfg.tetris;
            t.scheme = cfg.mem;
            Box::new(tetris_write::TetrisWrite::new(t))
        } else {
            cfg.mem.instantiate()
        };
        let mem_cfg: SchemeConfig = cfg.mem;
        let memory = PcmMainMemory::new(mem_cfg, scheme)?;
        let controller = MemoryController::new(
            cfg.controller,
            mem_cfg.timings,
            mem_cfg.org.total_banks() as usize,
        );
        let hierarchy = match cfg.level {
            TraceLevel::MemoryLevel => None,
            TraceLevel::CpuLevel => Some(CacheHierarchy::new(&cfg)?),
        };
        let write_cache = if cfg.write_cache.enabled() {
            Some(WriteCache::new(
                cfg.write_cache,
                cfg.mem.org.cache_line_bytes,
            )?)
        } else {
            None
        };
        Ok(System {
            cores: (0..cfg.cores).map(Core::new).collect(),
            backlog: vec![VecDeque::new(); cfg.cores],
            pending_mem_read: vec![None; cfg.cores],
            level: cfg.level,
            trace: Box::new(VecTrace::new(vec![Vec::new(); cfg.cores])),
            content: Box::new(UniformRandomContent::new(0)),
            cfg,
            controller,
            memory,
            hierarchy,
            write_cache,
            queue: EventQueue::new(),
            now: Ps::ZERO,
            next_req_id: 0,
            read_waiters: HashMap::new(),
            stalled_write: Vec::new(),
            stalled_read: Vec::new(),
            read_lat: LatencyStats::default(),
            write_lat: LatencyStats::default(),
            workload_name: String::new(),
            tel: Box::new(NullSink),
        })
    }

    /// Replace the trace source (chainable after [`System::build`]).
    pub fn with_trace(mut self, trace: Box<dyn RequestSource>) -> Self {
        self.trace = trace;
        self
    }

    /// Replace the write-content model (chainable after [`System::build`]).
    pub fn with_content(mut self, content: Box<dyn WriteContent>) -> Self {
        self.content = content;
        self
    }

    /// Install a telemetry sink (chainable form of
    /// [`System::set_telemetry`]).
    pub fn with_telemetry(mut self, tel: Box<dyn Telemetry>) -> Self {
        self.tel = tel;
        self
    }

    /// Replace the write-content model in place (mutating form of
    /// [`System::with_content`]).
    pub fn set_content(&mut self, content: Box<dyn WriteContent>) {
        self.content = content;
    }

    /// Label the run's workload in the result.
    pub fn set_workload_name(&mut self, name: impl Into<String>) {
        self.workload_name = name.into();
    }

    /// Install a telemetry sink; every subsequent [`System::run`] records
    /// its events there. The default is the zero-cost
    /// [`pcm_telemetry::NullSink`].
    pub fn set_telemetry(&mut self, tel: Box<dyn Telemetry>) {
        self.tel = tel;
    }

    /// Access the memory model (stats, contents).
    pub fn memory(&self) -> &PcmMainMemory {
        &self.memory
    }

    /// Access the cache hierarchy (CPU-level runs).
    pub fn hierarchy(&self) -> Option<&CacheHierarchy> {
        self.hierarchy.as_ref()
    }

    /// Cumulative busy time per bank lane — the ground truth a recorded
    /// trace's per-bank utilization should reproduce.
    pub fn bank_busy_totals(&self) -> Vec<Ps> {
        self.controller.bank_busy_totals()
    }

    /// The controller's counters (drains, pauses, scheduling decisions).
    pub fn ctrl_stats(&self) -> crate::controller::CtrlStats {
        self.controller.stats
    }

    /// The DRAM write-cache tier's hit/coalesce/drain counters (`None`
    /// when the tier is disabled, i.e. `write_cache.frames == 0`).
    pub fn write_cache_stats(&self) -> Option<WriteCacheStats> {
        self.write_cache.as_ref().map(|wc| *wc.stats())
    }

    fn cycle(&self) -> Ps {
        self.cfg.cycle()
    }

    fn make_req(&mut self, core: usize, addr: PhysAddr, kind: AccessKind) -> MemRequest {
        let id = self.next_req_id;
        self.next_req_id += 1;
        MemRequest {
            id,
            addr,
            kind,
            core,
            arrival: self.now,
        }
    }

    /// Issue whatever the banks can take, schedule completions, and wake
    /// cores stalled on queue space.
    fn issue_and_wake(&mut self) {
        let issued = self.controller.try_issue(
            self.now,
            &mut self.memory,
            self.content.as_mut(),
            self.tel.as_mut(),
        );
        for i in &issued {
            self.queue.push(
                i.completion,
                Event::BankComplete {
                    bank: i.bank,
                    epoch: i.epoch,
                },
            );
        }
        if !self.controller.write_queue_full() {
            for core in std::mem::take(&mut self.stalled_write) {
                let since = match self.cores[core].phase {
                    CorePhase::WaitingWriteSlot { since } => since,
                    _ => self.now,
                };
                self.cores[core].write_stall += self.now - since;
                self.cores[core].phase = CorePhase::Ready;
                self.queue.push(self.now, Event::CoreStep { core });
            }
        }
        if !self.controller.read_queue_full() {
            for core in std::mem::take(&mut self.stalled_read) {
                let since = match self.cores[core].phase {
                    CorePhase::WaitingReadSlot { since } => since,
                    _ => self.now,
                };
                self.cores[core].read_stall += self.now - since;
                self.cores[core].phase = CorePhase::Ready;
                self.queue.push(self.now, Event::CoreStep { core });
            }
        }
    }

    /// Enqueue one write; returns false (and stalls the core) on
    /// backpressure. With the DRAM write-cache tier enabled the write is
    /// absorbed there instead and dirty lines reach the controller only
    /// through drains.
    fn try_enqueue_write(&mut self, core: usize, addr: PhysAddr) -> bool {
        if self.write_cache.is_some() {
            return self.write_via_cache(core, addr);
        }
        if self.controller.write_queue_full() {
            self.cores[core].phase = CorePhase::WaitingWriteSlot { since: self.now };
            self.stalled_write.push(core);
            return false;
        }
        let req = self.make_req(core, addr, AccessKind::Write);
        let d = self
            .memory
            .addr_map()
            .decode(addr)
            .expect("trace address in range");
        let fb = self.memory.addr_map().flat_bank(&d);
        self.controller
            .enqueue_write(req, &d, fb, self.tel.as_mut());
        self.sample_queue_depths();
        if self.controller.draining() {
            self.issue_and_wake();
        }
        true
    }

    /// Hand a drained (or displaced) dirty line to the controller. The
    /// caller guarantees queue room; cached addresses were line-aligned
    /// inside the mapped range at admission, so decode cannot fail.
    fn enqueue_drained_line(&mut self, core: usize, addr: PhysAddr) {
        let req = self.make_req(core, addr, AccessKind::Write);
        let Ok(d) = self.memory.addr_map().decode(addr) else {
            unreachable!("cached line left the mapped address range");
        };
        let fb = self.memory.addr_map().flat_bank(&d);
        self.controller
            .enqueue_write(req, &d, fb, self.tel.as_mut());
    }

    /// Write path with the DRAM tier in front: coalesce into a cached
    /// frame, else claim one (displacing a victim to the controller when
    /// the budget is exhausted). The core stalls only when both the frame
    /// table and the controller write queue are full.
    fn write_via_cache(&mut self, core: usize, addr: PhysAddr) -> bool {
        let ctrl_full = self.controller.write_queue_full();
        let Some(wc) = self.write_cache.as_mut() else {
            unreachable!("write_via_cache called without a write cache");
        };
        if wc.full() && ctrl_full {
            // Admission would displace a line with nowhere to go.
            self.cores[core].phase = CorePhase::WaitingWriteSlot { since: self.now };
            self.stalled_write.push(core);
            return false;
        }
        match wc.write(addr) {
            WriteAdmit::Coalesced => {
                if self.tel.wants(TraceDetail::Fine) {
                    self.tel.record(&TelemetryEvent::WriteCacheHit {
                        at: self.now,
                        kind: OpKind::Write,
                    });
                }
            }
            WriteAdmit::Admitted { evicted } => {
                if let Some(victim) = evicted {
                    self.enqueue_drained_line(core, victim);
                    self.sample_queue_depths();
                    if self.controller.draining() {
                        self.issue_and_wake();
                    }
                }
                self.drain_write_cache(core);
            }
        }
        true
    }

    /// Background drain: while the frame table sits above its watermark
    /// and the controller has room, trickle policy victims into the write
    /// queue. One burst emits one `WriteCacheDrain` event.
    fn drain_write_cache(&mut self, core: usize) {
        let mut lines = 0u32;
        loop {
            let ready = self
                .write_cache
                .as_ref()
                .is_some_and(|wc| wc.over_watermark())
                && !self.controller.write_queue_full();
            if !ready {
                break;
            }
            let Some(addr) = self.write_cache.as_mut().and_then(|wc| wc.drain_one()) else {
                break;
            };
            self.enqueue_drained_line(core, addr);
            lines += 1;
        }
        if lines > 0 {
            if self.tel.wants(TraceDetail::Coarse) {
                let depth = self
                    .write_cache
                    .as_ref()
                    .map_or(0, |wc| wc.occupancy() as u32);
                self.tel.record(&TelemetryEvent::WriteCacheDrain {
                    at: self.now,
                    lines,
                    depth,
                });
            }
            self.sample_queue_depths();
            if self.controller.draining() {
                self.issue_and_wake();
            }
        }
    }

    /// Record the instantaneous queue depths (fine-detail traces only).
    fn sample_queue_depths(&mut self) {
        if self.tel.wants(TraceDetail::Fine) {
            let (r, w) = self.controller.queue_depths();
            self.tel.record(&TelemetryEvent::QueueDepth {
                at: self.now,
                reads: r as u32,
                writes: w as u32,
            });
        }
    }

    /// Issue a blocking memory read; returns false (and stalls) if the read
    /// queue is full. On success the core is left in `WaitingRead` or
    /// scheduled to resume (forwarded).
    fn issue_mem_read(&mut self, core: usize, addr: PhysAddr) -> bool {
        // A load whose line sits dirty in the DRAM tier is answered there
        // at bus speed, like store-to-load forwarding from the write queue.
        if self
            .write_cache
            .as_mut()
            .is_some_and(|wc| wc.read_hit(addr))
        {
            if self.tel.wants(TraceDetail::Fine) {
                self.tel.record(&TelemetryEvent::WriteCacheHit {
                    at: self.now,
                    kind: OpKind::Read,
                });
            }
            let done = self.now + self.cfg.controller.t_bus;
            self.read_lat.record(done - self.now);
            self.cores[core].phase = CorePhase::Computing;
            self.queue.push(done, Event::CoreStep { core });
            return true;
        }
        if self.controller.read_queue_full() {
            self.cores[core].phase = CorePhase::WaitingReadSlot { since: self.now };
            self.stalled_read.push(core);
            return false;
        }
        let req = self.make_req(core, addr, AccessKind::Read);
        let d = self
            .memory
            .addr_map()
            .decode(addr)
            .expect("trace address in range");
        let fb = self.memory.addr_map().flat_bank(&d);
        match self.controller.enqueue_read(req, &d, fb) {
            ReadEnqueue::Forwarded(t) => {
                self.read_lat.record(t - req.arrival);
                self.cores[core].phase = CorePhase::Computing;
                self.queue.push(t, Event::CoreStep { core });
            }
            ReadEnqueue::Queued => {
                self.read_waiters.insert(req.id, core);
                self.cores[core].phase = CorePhase::WaitingRead {
                    req_id: req.id,
                    since: self.now,
                };
                self.sample_queue_depths();
                self.issue_and_wake();
            }
        }
        true
    }

    /// Run one core until it blocks, finishes, or schedules a future step.
    fn step_core(&mut self, core: usize) {
        loop {
            // Drain any pending write-backs first (CPU mode).
            while let Some(&wb) = self.backlog[core].front() {
                if !self.try_enqueue_write(core, wb) {
                    return;
                }
                self.backlog[core].pop_front();
            }
            // Then any memory read that was waiting for queue space.
            if let Some(addr) = self.pending_mem_read[core] {
                self.pending_mem_read[core] = None;
                if !self.issue_mem_read(core, addr) {
                    self.pending_mem_read[core] = Some(addr);
                }
                return;
            }

            match self.cores[core].phase {
                CorePhase::Done
                | CorePhase::WaitingRead { .. }
                | CorePhase::WaitingWriteSlot { .. }
                | CorePhase::WaitingReadSlot { .. } => return,
                CorePhase::Computing => {
                    self.cores[core].phase = CorePhase::Ready;
                }
                CorePhase::Ready => {}
            }

            // Fetch the next op if none is pending.
            if self.cores[core].pending.is_none() {
                match self.trace.next(core) {
                    None => {
                        self.cores[core].phase = CorePhase::Done;
                        self.cores[core].finish_time = self.now;
                        return;
                    }
                    Some(op) => {
                        self.cores[core].instructions += op.gap as u64;
                        self.cores[core].pending = Some(op);
                        if op.gap > 0 {
                            let wake = self.now + self.cycle() * op.gap as u64;
                            self.cores[core].phase = CorePhase::Computing;
                            self.cores[core].finish_time = wake;
                            self.queue.push(wake, Event::CoreStep { core });
                            return;
                        }
                    }
                }
            }

            let op = self.cores[core].pending.expect("op pending");
            match self.level {
                TraceLevel::MemoryLevel => match op.kind {
                    AccessKind::Read => {
                        self.cores[core].pending = None;
                        self.cores[core].instructions += 1;
                        if !self.issue_mem_read(core, op.addr) {
                            self.pending_mem_read[core] = Some(op.addr);
                        }
                        return;
                    }
                    AccessKind::Write => {
                        if !self.try_enqueue_write(core, op.addr) {
                            return;
                        }
                        self.cores[core].pending = None;
                        self.cores[core].instructions += 1;
                        self.cores[core].finish_time = self.now;
                    }
                },
                TraceLevel::CpuLevel => {
                    let h = self.hierarchy.as_mut().expect("hierarchy in CPU mode");
                    let out = h.access(core, op.addr, op.kind == AccessKind::Write);
                    self.cores[core].pending = None;
                    self.cores[core].instructions += 1;
                    self.backlog[core].extend(out.memory_writebacks);
                    let resume = self.now + self.cycle() * out.latency_cycles as u64;
                    self.cores[core].finish_time = resume;
                    if out.level == HitLevel::Memory {
                        // Write-allocate: both loads and stores fetch the
                        // line; the store's dirty data departs later as a
                        // write-back.
                        self.pending_mem_read[core] = Some(op.addr);
                        continue;
                    }
                    if resume > self.now {
                        self.cores[core].phase = CorePhase::Computing;
                        self.queue.push(resume, Event::CoreStep { core });
                        return;
                    }
                }
            }
        }
    }

    /// Pump events until the controller write queue has room — the
    /// final-flush path, where cores are quiescent and backpressure
    /// accounting no longer applies.
    fn pump_for_write_slot(&mut self) {
        while self.controller.write_queue_full() {
            self.controller.force_drain();
            self.issue_and_wake();
            if let Some((t, e)) = self.queue.pop() {
                self.now = t;
                match e {
                    Event::CoreStep { core } => self.step_core(core),
                    Event::BankComplete { bank, epoch } => self.handle_bank_complete(bank, epoch),
                }
            } else {
                unreachable!("full write queue with no pending events");
            }
        }
    }

    fn handle_bank_complete(&mut self, bank: usize, epoch: u64) {
        let reqs = self.controller.complete(bank, epoch);
        // An empty vec is a stale completion of a paused write; the resumed
        // instance will deliver its own event. Either way, completing (or
        // skipping) is a scheduling opportunity.
        if !reqs.is_empty() && self.tel.wants(TraceDetail::Fine) {
            self.tel.record(&TelemetryEvent::BankIdle {
                at: self.now,
                bank: bank as u32,
            });
        }
        for req in reqs {
            let latency = self.now - req.arrival;
            match req.kind {
                AccessKind::Read => {
                    self.read_lat.record(latency);
                    if let Some(core) = self.read_waiters.remove(&req.id) {
                        if let CorePhase::WaitingRead { since, .. } = self.cores[core].phase {
                            self.cores[core].read_stall += self.now - since;
                        }
                        self.cores[core].phase = CorePhase::Ready;
                        self.cores[core].finish_time = self.now;
                        self.queue.push(self.now, Event::CoreStep { core });
                    }
                }
                AccessKind::Write => {
                    self.write_lat.record(latency);
                }
            }
        }
        self.issue_and_wake();
    }

    /// Run the simulation to completion and return the statistics. Any
    /// installed telemetry sink receives the run's events and is flushed
    /// before returning.
    pub fn run(&mut self) -> SimResult {
        if self.tel.wants(TraceDetail::Coarse) {
            self.tel.record(&TelemetryEvent::RunMeta {
                workload: self.workload_name.clone(),
                scheme: self.memory.scheme_name().to_string(),
                banks: self.cfg.mem.org.total_banks()
                    * self.cfg.controller.subarrays_per_bank.max(1) as u32,
            });
        }
        for core in 0..self.cores.len() {
            self.queue.push(Ps::ZERO, Event::CoreStep { core });
        }
        loop {
            while let Some((t, e)) = self.queue.pop() {
                debug_assert!(t >= self.now, "time went backwards");
                self.now = t;
                match e {
                    Event::CoreStep { core } => self.step_core(core),
                    Event::BankComplete { bank, epoch } => self.handle_bank_complete(bank, epoch),
                }
            }
            // Cores are quiescent; flush leftover work (CPU-mode dirty
            // lines, then the write queue).
            if self.cores.iter().all(|c| c.is_done()) {
                let dirty = match self.hierarchy.as_mut() {
                    Some(h) => h.flush_all(),
                    None => Vec::new(),
                };
                if !dirty.is_empty() {
                    for addr in dirty {
                        // Final flush bypasses backpressure accounting.
                        self.pump_for_write_slot();
                        let req = self.make_req(0, addr, AccessKind::Write);
                        let d = self
                            .memory
                            .addr_map()
                            .decode(addr)
                            .expect("flush address in range");
                        let fb = self.memory.addr_map().flat_bank(&d);
                        self.controller
                            .enqueue_write(req, &d, fb, self.tel.as_mut());
                    }
                    continue;
                }
                // Hierarchy is clean; empty the DRAM tier next (every
                // admitted line must drain exactly once).
                let cached = self
                    .write_cache
                    .as_mut()
                    .map_or_else(Vec::new, |wc| wc.flush());
                if !cached.is_empty() {
                    if self.tel.wants(TraceDetail::Coarse) {
                        self.tel.record(&TelemetryEvent::WriteCacheDrain {
                            at: self.now,
                            lines: cached.len() as u32,
                            depth: 0,
                        });
                    }
                    for addr in cached {
                        self.pump_for_write_slot();
                        self.enqueue_drained_line(0, addr);
                    }
                    continue;
                }
            }
            if self.controller.has_pending() {
                self.controller.force_drain();
                self.issue_and_wake();
                if self.queue.is_empty() {
                    break;
                }
            } else {
                break;
            }
        }

        if let Err(e) = self.tel.flush() {
            eprintln!("warning: telemetry flush failed: {e}");
        }
        let (row_hits, row_misses) = self.controller.row_stats();
        let mem = self.memory.stats();
        SimResult {
            scheme: self.memory.scheme_name().to_string(),
            workload: self.workload_name.clone(),
            runtime: self
                .cores
                .iter()
                .map(|c| c.finish_time)
                .max()
                .unwrap_or(Ps::ZERO),
            instructions: self.cores.iter().map(|c| c.instructions).collect(),
            cycles: self
                .cores
                .iter()
                .map(|c| c.cycles(self.cfg.cpu_freq_mhz))
                .collect(),
            read_latency: self.read_lat.clone(),
            write_latency: self.write_lat.clone(),
            read_forwards: self.controller.stats.read_forwards,
            row_hits,
            row_misses,
            mem_writes: mem.writes,
            mem_reads: mem.reads,
            avg_write_units: self.memory.avg_write_units(),
            energy: mem.energy,
            cell_sets: mem.cell_sets,
            cell_resets: mem.cell_resets,
            read_stall: self.cores.iter().map(|c| c.read_stall).sum(),
            write_stall: self.cores.iter().map(|c| c.write_stall).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::TraceOp;

    fn mem_trace_ops(n: usize, gap: u32, write_every: usize, stride: u64) -> Vec<TraceOp> {
        (0..n)
            .map(|i| TraceOp {
                gap,
                kind: if write_every > 0 && i % write_every == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
                addr: i as u64 * stride,
            })
            .collect()
    }

    fn run(select: SchemeSelect, ops_per_core: Vec<Vec<TraceOp>>) -> SimResult {
        let mut cfg = SystemConfig::paper_baseline();
        cfg.cores = ops_per_core.len();
        cfg.mem.select = select;
        let mut sys = System::build(cfg)
            .unwrap()
            .with_trace(Box::new(VecTrace::new(ops_per_core)))
            .with_content(Box::new(UniformRandomContent::new(3)));
        sys.run()
    }

    #[test]
    fn read_only_trace_completes_with_sane_latency() {
        let r = run(SchemeSelect::Dcw, vec![mem_trace_ops(100, 10, 0, 64)]);
        assert_eq!(r.mem_reads, 100);
        assert_eq!(r.mem_writes, 0);
        assert_eq!(r.instructions[0], 100 * 10 + 100);
        // Unloaded read ≈ 60 ns.
        assert!(
            r.read_latency.mean_ns() >= 15.0 && r.read_latency.mean_ns() < 100.0,
            "mean read latency {}",
            r.read_latency.mean_ns()
        );
        assert!(r.runtime > Ps::ZERO);
    }

    #[test]
    fn writes_are_flushed_at_end() {
        // 10 writes never fill the 32-entry queue; the final flush must
        // still service them.
        let r = run(SchemeSelect::Dcw, vec![mem_trace_ops(10, 1, 1, 64)]);
        assert_eq!(r.mem_writes, 10);
        assert_eq!(r.write_latency.count, 10);
    }

    #[test]
    fn sparse_writes_wait_long_like_blackscholes() {
        // Paper §V-B3: with few writes the queue never fills, so writes sit
        // for nearly the whole run.
        let mut ops = mem_trace_ops(2_000, 50, 0, 64);
        ops[0].kind = AccessKind::Write; // one early write
        let r = run(SchemeSelect::Dcw, vec![ops]);
        assert_eq!(r.mem_writes, 1);
        let runtime_ns = r.runtime.as_ns_f64();
        assert!(
            r.write_latency.mean_ns() > runtime_ns * 0.5,
            "lone write waited {} ns of a {} ns run",
            r.write_latency.mean_ns(),
            runtime_ns
        );
    }

    #[test]
    fn write_heavy_trace_tetris_beats_dcw_runtime() {
        let mk = || {
            vec![
                mem_trace_ops(600, 5, 2, 64),
                mem_trace_ops(600, 5, 2, 64 * 1024),
            ]
        };
        let dcw = run(SchemeSelect::Dcw, mk());
        let tetris = run(SchemeSelect::Tetris, mk());
        assert_eq!(dcw.mem_writes, tetris.mem_writes);
        assert!(
            tetris.runtime < dcw.runtime,
            "tetris {} vs dcw {}",
            tetris.runtime,
            dcw.runtime
        );
        assert!(tetris.ipc() > dcw.ipc());
        assert!(tetris.read_latency.mean_ns() <= dcw.read_latency.mean_ns());
    }

    #[test]
    fn backpressure_throttles_but_preserves_work() {
        // Write storm: queue fills, cores stall, everything still lands.
        let r = run(SchemeSelect::Dcw, vec![mem_trace_ops(300, 1, 1, 64)]);
        assert_eq!(r.mem_writes, 300);
        assert!(r.write_stall > Ps::ZERO, "backpressure must have engaged");
    }

    #[test]
    fn forwarding_serves_reads_from_write_queue() {
        // Write then immediately read the same line while the write sits in
        // the queue.
        let ops = vec![
            TraceOp {
                gap: 1,
                kind: AccessKind::Write,
                addr: 0x40,
            },
            TraceOp {
                gap: 1,
                kind: AccessKind::Read,
                addr: 0x40,
            },
        ];
        let r = run(SchemeSelect::Dcw, vec![ops]);
        assert_eq!(r.read_forwards, 1);
    }

    #[test]
    fn cpu_level_filters_through_caches() {
        let cfg = SystemConfig::builder()
            .small_caches()
            .cores(1)
            .build()
            .unwrap();
        // Two passes over a small footprint: second pass hits in cache.
        let mut ops = Vec::new();
        for _pass in 0..2 {
            for i in 0..64u64 {
                ops.push(TraceOp {
                    gap: 3,
                    kind: AccessKind::Read,
                    addr: i * 64,
                });
            }
        }
        let mut cfg = cfg;
        cfg.level = TraceLevel::CpuLevel;
        let mut sys = System::build(cfg)
            .unwrap()
            .with_trace(Box::new(VecTrace::new(vec![ops])))
            .with_content(Box::new(UniformRandomContent::new(9)));
        let r = sys.run();
        assert_eq!(r.mem_reads, 64, "second pass is cache-resident");
        let (l1, _) = sys.hierarchy().unwrap().core_stats(0);
        assert!(l1.hits >= 64);
    }

    #[test]
    fn cpu_level_writebacks_reach_memory() {
        let cfg = SystemConfig::builder()
            .small_caches()
            .cores(1)
            .build()
            .unwrap();
        // Dirty a footprint larger than L3 to force write-backs, then the
        // final flush catches the rest.
        let lines = (cfg.l3.size_bytes / 64) * 2;
        let ops: Vec<TraceOp> = (0..lines)
            .map(|i| TraceOp {
                gap: 1,
                kind: AccessKind::Write,
                addr: i * 64,
            })
            .collect();
        let mut cfg = cfg;
        cfg.level = TraceLevel::CpuLevel;
        let mut sys = System::build(cfg)
            .unwrap()
            .with_trace(Box::new(VecTrace::new(vec![ops])))
            .with_content(Box::new(UniformRandomContent::new(9)));
        let r = sys.run();
        assert_eq!(
            r.mem_writes, lines,
            "every dirtied line eventually lands in PCM"
        );
    }

    #[test]
    fn batched_drain_services_all_writes_faster() {
        let ops = || vec![mem_trace_ops(400, 1, 1, 64)];
        let run_batched = |batch: usize| {
            let mut cfg = SystemConfig::paper_baseline();
            cfg.cores = 1;
            cfg.controller.batch_writes = batch;
            cfg.mem.select = SchemeSelect::Tetris;
            let mut sys = System::build(cfg)
                .unwrap()
                .with_trace(Box::new(VecTrace::new(ops())))
                .with_content(Box::new(UniformRandomContent::new(4)));
            sys.run()
        };
        let single = run_batched(1);
        let batched = run_batched(4);
        assert_eq!(single.mem_writes, 400);
        assert_eq!(batched.mem_writes, 400, "no write lost in batching");
        assert_eq!(batched.write_latency.count, 400);
        assert!(
            batched.runtime < single.runtime,
            "batch=4 {} vs batch=1 {}",
            batched.runtime,
            single.runtime
        );
        // Dense random content saturates the budget, so per-line units are
        // equal; the win comes from amortizing the read+analysis overhead.
        assert!(batched.avg_write_units <= single.avg_write_units + 1e-9);
    }

    #[test]
    fn telemetry_trace_reproduces_bank_busy_times() {
        use pcm_telemetry::{read_events, JsonlSink, TraceSummary};
        let path =
            std::env::temp_dir().join(format!("pcm_memsim_tel_{}.jsonl", std::process::id()));
        let mut cfg = SystemConfig::paper_baseline();
        cfg.cores = 1;
        cfg.controller.write_pausing = true;
        cfg.mem.select = SchemeSelect::Tetris;
        let mut sys = System::build(cfg)
            .unwrap()
            .with_trace(Box::new(VecTrace::new(vec![mem_trace_ops(400, 2, 2, 64)])))
            .with_content(Box::new(UniformRandomContent::new(3)));
        sys.set_workload_name("unit");
        sys.set_telemetry(Box::new(
            JsonlSink::create(&path, TraceDetail::Fine).unwrap(),
        ));
        let r = sys.run();
        let events =
            read_events(std::io::BufReader::new(std::fs::File::open(&path).unwrap())).unwrap();
        std::fs::remove_file(&path).ok();

        assert!(
            matches!(events.first(), Some(TelemetryEvent::RunMeta { .. })),
            "trace opens with run metadata"
        );
        let s = TraceSummary::from_events(&events);
        assert_eq!(s.workload, "unit");
        assert_eq!(s.scheme, r.scheme);
        // The pause-corrected busy accounting rebuilt from the trace must
        // equal the controller's ground truth, lane for lane.
        let truth = sys.bank_busy_totals();
        assert_eq!(s.banks.len(), truth.len());
        for (i, t) in truth.iter().enumerate() {
            assert_eq!(s.banks[i].busy, *t, "bank {i} busy time from trace");
        }
        assert!(s.banks.iter().map(|b| b.writes).sum::<u64>() > 0);
        assert!(s.drains > 0, "write storm must have triggered drains");
        assert!(!s.write_depths.is_empty(), "queue depths were sampled");
    }

    #[test]
    fn coarse_telemetry_drops_fine_events() {
        use pcm_telemetry::{read_events, JsonlSink, TraceSummary};
        let path = std::env::temp_dir().join(format!(
            "pcm_memsim_tel_coarse_{}.jsonl",
            std::process::id()
        ));
        let mut cfg = SystemConfig::paper_baseline();
        cfg.cores = 1;
        let mut sys = System::build(cfg)
            .unwrap()
            .with_trace(Box::new(VecTrace::new(vec![mem_trace_ops(100, 2, 2, 64)])))
            .with_content(Box::new(UniformRandomContent::new(3)));
        sys.set_telemetry(Box::new(
            JsonlSink::create(&path, TraceDetail::Coarse).unwrap(),
        ));
        sys.run();
        let events =
            read_events(std::io::BufReader::new(std::fs::File::open(&path).unwrap())).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(events.iter().all(|e| e.detail() == TraceDetail::Coarse));
        let s = TraceSummary::from_events(&events);
        assert!(s.drains > 0, "coarse trace still records drain episodes");
        assert!(s.write_depths.is_empty(), "no fine-grained samples");
    }

    #[test]
    fn adaptive_scheduling_end_to_end() {
        use pcm_telemetry::{MemorySink, TraceSummary};
        let run_with = |sched: crate::sched::SchedConfig| {
            let cfg = SystemConfig::builder()
                .cores(1)
                .sched(sched)
                .scheme(SchemeSelect::Tetris)
                .build()
                .unwrap();
            let mut sys = System::build(cfg)
                .unwrap()
                .with_trace(Box::new(VecTrace::new(vec![mem_trace_ops(800, 1, 2, 64)])))
                .with_content(Box::new(UniformRandomContent::new(3)));
            sys.set_telemetry(Box::new(MemorySink::new()));
            let r = sys.run();
            (r, sys.ctrl_stats())
        };

        let (fixed_r, fixed_s) = run_with(crate::sched::SchedConfig::fixed());
        assert_eq!(fixed_s.steered_writes, 0, "fixed policy never steers");
        assert_eq!(fixed_s.watermark_updates, 0);
        assert_eq!(fixed_s.read_windows, 0);

        let (adapt_r, adapt_s) = run_with(crate::sched::SchedConfig::adaptive());
        assert_eq!(
            adapt_r.mem_writes, fixed_r.mem_writes,
            "policy changes scheduling, never the work done"
        );
        assert_eq!(adapt_r.mem_reads, fixed_r.mem_reads);
        assert!(
            adapt_s.watermark_updates > 0,
            "write storm must move the adaptive marks"
        );

        // The trace carries the policy decisions end-to-end.
        let cfg = SystemConfig::builder()
            .cores(1)
            .adaptive_scheduling()
            .scheme(SchemeSelect::Tetris)
            .build()
            .unwrap();
        let mut sys = System::build(cfg)
            .unwrap()
            .with_trace(Box::new(VecTrace::new(vec![mem_trace_ops(800, 1, 2, 64)])))
            .with_content(Box::new(UniformRandomContent::new(3)));
        let path =
            std::env::temp_dir().join(format!("pcm_memsim_sched_{}.jsonl", std::process::id()));
        sys.set_telemetry(Box::new(
            pcm_telemetry::JsonlSink::create(&path, TraceDetail::Fine).unwrap(),
        ));
        sys.run();
        let events = pcm_telemetry::read_events(std::io::BufReader::new(
            std::fs::File::open(&path).unwrap(),
        ))
        .unwrap();
        std::fs::remove_file(&path).ok();
        let s = TraceSummary::from_events(&events);
        assert!(
            s.watermark_adjusts > 0,
            "adaptive marks recorded in the trace"
        );
        // Busy-time reproduction still holds under the new policies.
        let truth = sys.bank_busy_totals();
        for (i, t) in truth.iter().enumerate() {
            assert_eq!(s.banks[i].busy, *t, "bank {i} busy time from trace");
        }
    }

    #[test]
    fn write_cache_coalesces_and_conserves_writes() {
        use crate::replacement::PolicySelect;
        // A hot set smaller than the frame budget: every line is written
        // many times but drains to PCM exactly once.
        let ops: Vec<TraceOp> = (0..512)
            .map(|i| TraceOp {
                gap: 1,
                kind: AccessKind::Write,
                addr: (i % 16) * 64,
            })
            .collect();
        let cfg = SystemConfig::builder()
            .cores(1)
            .write_cache(32)
            .write_cache_policy(PolicySelect::Lru)
            .build()
            .unwrap();
        let mut sys = System::build(cfg)
            .unwrap()
            .with_trace(Box::new(VecTrace::new(vec![ops])))
            .with_content(Box::new(UniformRandomContent::new(3)));
        let r = sys.run();
        let stats = sys.write_cache_stats().expect("tier enabled");
        assert_eq!(r.mem_writes, 16, "each hot line reaches PCM once");
        assert_eq!(stats.admitted, 16);
        assert_eq!(stats.coalesced, 512 - 16);
        assert_eq!(stats.drained, 16, "flush empties every frame");
        assert!(stats.coalesce_ratio() > 0.9);
    }

    #[test]
    fn write_cache_serves_reads_from_dirty_lines() {
        // Write a line, then read it back immediately: the DRAM tier
        // answers without a PCM read.
        let ops = vec![
            TraceOp {
                gap: 1,
                kind: AccessKind::Write,
                addr: 0x40,
            },
            TraceOp {
                gap: 1,
                kind: AccessKind::Read,
                addr: 0x40,
            },
        ];
        let cfg = SystemConfig::builder()
            .cores(1)
            .write_cache(8)
            .build()
            .unwrap();
        let mut sys = System::build(cfg)
            .unwrap()
            .with_trace(Box::new(VecTrace::new(vec![ops])))
            .with_content(Box::new(UniformRandomContent::new(3)));
        let r = sys.run();
        let stats = sys.write_cache_stats().expect("tier enabled");
        assert_eq!(stats.read_hits, 1);
        assert_eq!(r.mem_reads, 0, "the hit never reaches the banks");
        assert_eq!(r.read_latency.count, 1, "the load still completes");
    }

    #[test]
    fn write_cache_drains_past_watermark_and_under_pressure() {
        // A write storm over a footprint much larger than the frame
        // budget: capacity evictions and watermark drains both engage,
        // and every write still lands in PCM.
        let ops = mem_trace_ops(600, 1, 1, 64);
        let mut cfg = SystemConfig::builder()
            .cores(1)
            .write_cache(16)
            .drain_watermark(8)
            .build()
            .unwrap();
        cfg.mem.select = SchemeSelect::Dcw;
        let mut sys = System::build(cfg)
            .unwrap()
            .with_trace(Box::new(VecTrace::new(vec![ops])))
            .with_content(Box::new(UniformRandomContent::new(3)));
        let r = sys.run();
        let stats = sys.write_cache_stats().expect("tier enabled");
        assert_eq!(r.mem_writes, 600, "conservation under pressure");
        assert_eq!(stats.admitted, 600);
        assert_eq!(stats.drained, 600);
        assert_eq!(stats.coalesced, 0, "unique lines never coalesce");
    }

    #[test]
    fn disabled_write_cache_matches_baseline_bit_for_bit() {
        // `frames = 0` must leave the pipeline untouched: same result,
        // same trace summary, no write-cache events.
        use pcm_telemetry::{read_events, JsonlSink, TraceSummary};
        let run_with = |frames: usize| {
            let path = std::env::temp_dir().join(format!(
                "pcm_memsim_wc_{}_{frames}.jsonl",
                std::process::id()
            ));
            let mut cfg = SystemConfig::paper_baseline();
            cfg.cores = 1;
            if frames > 0 {
                cfg.write_cache =
                    crate::config::WriteCacheConfig::with_frames(frames, Default::default());
            }
            let mut sys = System::build(cfg)
                .unwrap()
                .with_trace(Box::new(VecTrace::new(vec![mem_trace_ops(400, 2, 2, 64)])))
                .with_content(Box::new(UniformRandomContent::new(3)));
            sys.set_telemetry(Box::new(
                JsonlSink::create(&path, TraceDetail::Fine).unwrap(),
            ));
            let r = sys.run();
            let evs =
                read_events(std::io::BufReader::new(std::fs::File::open(&path).unwrap())).unwrap();
            std::fs::remove_file(&path).ok();
            (r, TraceSummary::from_events(&evs))
        };
        let (base, base_sum) = run_with(0);
        let (again, again_sum) = run_with(0);
        assert_eq!(base.runtime, again.runtime);
        assert_eq!(base.read_latency.sum_ps, again.read_latency.sum_ps);
        assert_eq!(base.write_latency.sum_ps, again.write_latency.sum_ps);
        assert_eq!(base.energy, again.energy);
        assert_eq!(base_sum.write_cache_coalesces, 0);
        assert_eq!(base_sum.write_cache_drains, 0);
        assert_eq!(base_sum.banks.len(), again_sum.banks.len());
        // And an enabled cache actually changes the profile.
        let (cached, cached_sum) = run_with(64);
        assert_eq!(cached.mem_reads, base.mem_reads);
        assert!(cached_sum.write_cache_drains > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(SchemeSelect::Dcw, vec![mem_trace_ops(200, 3, 3, 64)]);
        let b = run(SchemeSelect::Dcw, vec![mem_trace_ops(200, 3, 3, 64)]);
        assert_eq!(a.runtime, b.runtime);
        assert_eq!(a.read_latency.sum_ps, b.read_latency.sum_ps);
        assert_eq!(a.energy, b.energy);
    }
}
