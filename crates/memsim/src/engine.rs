//! The discrete-event queue.
//!
//! Events are ordered by `(time, sequence)`; the sequence number makes the
//! simulation fully deterministic when events share a timestamp (insertion
//! order wins).

use pcm_types::Ps;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Events the system reacts to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A core is ready to process its next trace operation.
    CoreStep {
        /// Core index.
        core: usize,
    },
    /// A bank finished its current operation.
    BankComplete {
        /// Flat bank index.
        bank: usize,
        /// Issue epoch; stale completions (from paused writes) carry an
        /// old epoch and are ignored.
        epoch: u64,
    },
}

/// Deterministic time-ordered event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(Ps, u64, Event)>>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at absolute time `at`.
    pub fn push(&mut self, at: Ps, event: Event) {
        self.heap.push(Reverse((at, self.seq, event)));
        self.seq += 1;
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Ps, Event)> {
        self.heap.pop().map(|Reverse((t, _, e))| (t, e))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Ps> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

// Event ordering inside the heap needs a total order on Event; derive-based
// Ord would expose field ordering, so give it an explicit stable encoding.
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        fn key(e: &Event) -> (u8, usize, u64) {
            match *e {
                Event::CoreStep { core } => (0, core, 0),
                Event::BankComplete { bank, epoch } => (1, bank, epoch),
            }
        }
        key(self).cmp(&key(other))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Ps::from_ns(30), Event::CoreStep { core: 0 });
        q.push(Ps::from_ns(10), Event::BankComplete { bank: 1, epoch: 0 });
        q.push(Ps::from_ns(20), Event::CoreStep { core: 2 });
        let order: Vec<Ps> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t).collect();
        assert_eq!(
            order,
            vec![Ps::from_ns(10), Ps::from_ns(20), Ps::from_ns(30)]
        );
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(Ps::from_ns(5), Event::CoreStep { core: 9 });
        q.push(Ps::from_ns(5), Event::CoreStep { core: 1 });
        q.push(Ps::from_ns(5), Event::BankComplete { bank: 0, epoch: 0 });
        assert_eq!(q.pop().unwrap().1, Event::CoreStep { core: 9 });
        assert_eq!(q.pop().unwrap().1, Event::CoreStep { core: 1 });
        assert_eq!(
            q.pop().unwrap().1,
            Event::BankComplete { bank: 0, epoch: 0 }
        );
    }

    #[test]
    fn stale_and_fresh_completions_at_same_time_pop_in_insertion_order() {
        // After a pause/resume, a stale completion (old epoch) and the
        // resumed write's completion (new epoch) can land on the same
        // timestamp; the consumer must see them in insertion order so the
        // stale one is discarded before the fresh one retires the write.
        let mut q = EventQueue::new();
        let t = Ps::from_ns(100);
        q.push(t, Event::BankComplete { bank: 0, epoch: 1 });
        q.push(t, Event::BankComplete { bank: 0, epoch: 2 });
        q.push(t, Event::CoreStep { core: 0 });
        assert_eq!(
            q.pop().unwrap(),
            (t, Event::BankComplete { bank: 0, epoch: 1 })
        );
        assert_eq!(
            q.pop().unwrap(),
            (t, Event::BankComplete { bank: 0, epoch: 2 })
        );
        assert_eq!(q.pop().unwrap(), (t, Event::CoreStep { core: 0 }));
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Ps::from_ns(7), Event::CoreStep { core: 0 });
        assert_eq!(q.peek_time(), Some(Ps::from_ns(7)));
        assert_eq!(q.len(), 1);
    }
}
