//! # pcm-memsim
//!
//! A discrete-event memory-system simulator standing in for the paper's
//! GEM5 + NVMain stack:
//!
//! * [`engine`] — the event queue (picosecond timestamps, deterministic
//!   tie-breaking).
//! * [`cache`] / [`hierarchy`] — set-associative write-back caches and
//!   the 3-level hierarchy of Table II (32 KB L1, 2 MB L2, 32 MB shared L3).
//! * [`replacement`] — the pluggable eviction decision (LRU / Clock / 2Q)
//!   behind both the hierarchy and the write cache, registered in the
//!   [`PolicySelect`] registry.
//! * [`writecache`] — the hybrid DRAM write-cache tier: a fixed frame
//!   budget coalescing dirty lines in front of the controller write
//!   queues, drained in the background past a watermark.
//! * [`cpu`] — trace-driven cores (2 GHz, blocking loads, fire-and-forget
//!   stores with write-queue backpressure).
//! * [`controller`] — the FRFCFS memory controller: separate 32-entry read
//!   and write queues, read priority, and write service **only when the
//!   write queue fills** (drain to a low watermark) — the policy behind the
//!   paper's blackscholes/swaptions write-latency anomaly.
//! * [`sched`] — pluggable write-scheduling policies: adaptive drain
//!   watermarks, least-utilized-first bank steering, and read-priority
//!   windows that bound drain-induced read starvation.
//! * [`bankstate`] — per-bank busy tracking and an open-row buffer model.
//! * [`memory`] — the 4 GB sparse PCM backing store: per-line stored bits,
//!   flip tags and wear, with every write planned by a pluggable
//!   [`pcm_schemes::WriteScheme`].
//! * [`content`] — write-content models: the new-vs-old bit deltas are
//!   synthesized at memory-write time (see DESIGN.md §5), letting workloads
//!   reproduce the paper's Fig. 3 SET/RESET statistics exactly where the
//!   schemes consume them.
//! * [`system`] — wires cores + controller + memory and runs to completion,
//!   producing the latency/IPC/runtime statistics of Figs. 11–14.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bankstate;
pub mod cache;
pub mod config;
pub mod content;
pub mod controller;
pub mod cpu;
pub mod engine;
pub mod hierarchy;
pub mod memory;
pub mod prelude;
pub mod replacement;
pub mod request;
pub mod sched;
pub mod shard;
pub mod stats;
pub mod system;
pub mod wear_leveling;
pub mod writecache;

pub use config::{
    CacheConfig, CacheConfigBuilder, ConfigError, ControllerConfig, SystemConfig,
    SystemConfigBuilder, WriteCacheConfig,
};
pub use content::{ExplicitContent, UniformRandomContent, WriteContent};
pub use controller::{MemoryController, ReadEnqueue};
pub use cpu::{Core, RequestSource, TraceOp, VecTrace};
pub use memory::{BatchOutcome, PcmMainMemory, WriteOutcome};
pub use pcm_schemes::{SchemeConfig, SchemeSelect, WriteCtx, WriteScheme};
pub use replacement::{ParsePolicyError, PolicySelect, ReplacementPolicy};
pub use request::{AccessKind, MemRequest};
pub use sched::{SchedConfig, SchedPolicy, WindowPoll};
pub use shard::{Rank, RankPlan, ShardedSystem};
pub use stats::{LatencyStats, SimResult};
pub use system::{System, TraceLevel};
pub use wear_leveling::{GapMove, StartGap};
pub use writecache::{WriteAdmit, WriteCache, WriteCacheStats};
