//! The FRFCFS memory controller.
//!
//! Separate 32-entry read and write queues (Table II). Reads have strict
//! priority: writes are serviced **only when the write queue fills**, and a
//! drain then runs until the low watermark — the "variable FRFCFS" policy
//! the paper credits for the blackscholes/swaptions write-latency anomaly
//! (§V-B3). Within a queue, scheduling is first-ready (row-buffer hits
//! first) then first-come-first-served, per free bank.
//!
//! Reads that hit a queued write are served by store-to-load forwarding at
//! bus latency, without touching the arrays.

use crate::bankstate::BankState;
use crate::config::ControllerConfig;
use crate::content::WriteContent;
use crate::memory::PcmMainMemory;
use crate::request::MemRequest;
use crate::sched::{SchedPolicy, WindowPoll};
use pcm_telemetry::{OpKind, Telemetry, TelemetryEvent, TraceDetail};
use pcm_types::{DecodedAddr, PcmTimings, Ps};

/// A queued request with its decoded coordinates.
#[derive(Clone, Debug)]
struct QueuedReq {
    req: MemRequest,
    row: u64,
    bank: usize,
    line: u64,
    /// Older same-line writes absorbed by this entry (DWC coalescing);
    /// they complete when this write is serviced.
    absorbed: Vec<MemRequest>,
}

/// The request(s) currently occupying a bank (several when a write batch
/// is in flight).
#[derive(Clone, Debug)]
struct InFlight {
    reqs: Vec<MemRequest>,
    epoch: u64,
    is_write: bool,
    row: u64,
    pauses: u32,
}

/// A write (batch) preempted by a read (write pausing enabled).
#[derive(Clone, Debug)]
struct PausedWrite {
    reqs: Vec<MemRequest>,
    remaining: Ps,
    row: u64,
    pauses: u32,
}

/// How an enqueued read was handled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadEnqueue {
    /// Queued for bank service.
    Queued,
    /// Forwarded from the write queue; data ready at the given time.
    Forwarded(Ps),
}

/// A request (or write batch) issued to a bank this round.
#[derive(Clone, Debug)]
pub struct Issued {
    /// Flat bank index now busy.
    pub bank: usize,
    /// When the bank completes.
    pub completion: Ps,
    /// The request being serviced (the first of a batch).
    pub req: MemRequest,
    /// Epoch tag: completions carry it back so stale events (from paused
    /// writes) are ignored.
    pub epoch: u64,
}

/// Controller statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct CtrlStats {
    /// Reads served by store-to-load forwarding.
    pub read_forwards: u64,
    /// Number of drain episodes entered.
    pub drains: u64,
    /// Writes paused to let reads through.
    pub write_pauses: u64,
    /// Same-line writes coalesced in the queue (DWC).
    pub writes_coalesced: u64,
    /// Drain writes serviced on a less-utilized bank before the bank
    /// strict FIFO order would have picked (steering policy).
    pub steered_writes: u64,
    /// Read-priority windows opened mid-drain (read-window policy).
    pub read_windows: u64,
    /// Watermark recomputations that moved the marks (adaptive policy).
    pub watermark_updates: u64,
}

/// The memory controller.
///
/// Bank state is tracked per *lane* — one subarray of one bank — so with
/// `subarrays_per_bank > 1` a read can be in flight in one subarray while
/// another subarray of the same bank writes. The shared charge pump still
/// limits each bank to one write at a time.
pub struct MemoryController {
    cfg: ControllerConfig,
    timings: PcmTimings,
    banks: Vec<BankState>,
    read_q: Vec<QueuedReq>,
    write_q: Vec<QueuedReq>,
    in_flight: Vec<Option<InFlight>>,
    paused: Vec<Option<PausedWrite>>,
    epoch: u64,
    drain: bool,
    sched: SchedPolicy,
    /// Statistics.
    pub stats: CtrlStats,
}

impl MemoryController {
    /// A controller over `num_banks` banks
    /// (`num_banks × subarrays_per_bank` lanes).
    pub fn new(cfg: ControllerConfig, timings: PcmTimings, num_banks: usize) -> Self {
        let lanes = num_banks * cfg.subarrays_per_bank.max(1);
        let sched = SchedPolicy::new(&cfg, &timings);
        MemoryController {
            cfg,
            timings,
            sched,
            banks: vec![BankState::default(); lanes],
            read_q: Vec::with_capacity(cfg.read_queue_cap),
            write_q: Vec::with_capacity(cfg.write_queue_cap),
            in_flight: vec![None; lanes],
            paused: vec![None; lanes],
            epoch: 0,
            drain: false,
            stats: CtrlStats::default(),
        }
    }

    /// Lane for a request: subarrays stripe by row within the bank.
    fn lane(&self, flat_bank: usize, row: u64) -> usize {
        let s = self.cfg.subarrays_per_bank.max(1);
        flat_bank * s + (row % s as u64) as usize
    }

    /// True if another subarray of `lane`'s bank has a write in flight or
    /// paused (the shared pump allows one write per bank).
    fn bank_write_busy(&self, lane: usize) -> bool {
        let s = self.cfg.subarrays_per_bank.max(1);
        let bank = lane / s;
        (bank * s..(bank + 1) * s).any(|l| {
            l != lane
                && (self.in_flight[l].as_ref().is_some_and(|f| f.is_write)
                    || self.paused[l].is_some())
        })
    }

    /// Is the read queue at capacity?
    pub fn read_queue_full(&self) -> bool {
        self.read_q.len() >= self.cfg.read_queue_cap
    }

    /// Is the write queue at capacity?
    pub fn write_queue_full(&self) -> bool {
        self.write_q.len() >= self.cfg.write_queue_cap
    }

    /// Current queue depths (reads, writes).
    pub fn queue_depths(&self) -> (usize, usize) {
        (self.read_q.len(), self.write_q.len())
    }

    /// Anything still queued, paused, or in a bank?
    pub fn has_pending(&self) -> bool {
        !self.read_q.is_empty()
            || !self.write_q.is_empty()
            || self.in_flight.iter().any(Option::is_some)
            || self.paused.iter().any(Option::is_some)
    }

    /// In drain mode?
    pub fn draining(&self) -> bool {
        self.drain
    }

    /// The scheduling policy's current state (watermarks, steering).
    pub fn sched(&self) -> &SchedPolicy {
        &self.sched
    }

    /// Record one write-queue depth sample with the scheduling policy and
    /// report a watermark move, if any.
    fn observe_write_depth(&mut self, at: Ps, tel: &mut dyn Telemetry) {
        if let Some((low, high)) = self.sched.observe_depth(self.write_q.len()) {
            self.stats.watermark_updates += 1;
            if tel.wants(TraceDetail::Coarse) {
                tel.record(&TelemetryEvent::WatermarkAdjust {
                    at,
                    low: low as u32,
                    high: high as u32,
                });
            }
        }
    }

    /// Force a drain (used to flush the write queue at end of run).
    pub fn force_drain(&mut self) {
        if !self.write_q.is_empty() {
            self.drain = true;
        }
    }

    /// Enqueue a read. Caller must check [`Self::read_queue_full`] first.
    ///
    /// # Panics
    /// If the read queue is full.
    pub fn enqueue_read(
        &mut self,
        req: MemRequest,
        d: &DecodedAddr,
        flat_bank: usize,
    ) -> ReadEnqueue {
        assert!(!self.read_queue_full(), "enqueue_read on a full queue");
        // Store-to-load forwarding from the write queue.
        if self.write_q.iter().any(|w| w.line == d.line) {
            self.stats.read_forwards += 1;
            return ReadEnqueue::Forwarded(req.arrival + self.cfg.t_bus);
        }
        let lane = self.lane(flat_bank, d.row);
        self.read_q.push(QueuedReq {
            req,
            row: d.row,
            bank: lane,
            line: d.line,
            absorbed: Vec::new(),
        });
        ReadEnqueue::Queued
    }

    /// Enqueue a write. Caller must check [`Self::write_queue_full`] first.
    /// Entering capacity flips the controller into drain mode (recorded as
    /// a [`TelemetryEvent::DrainStart`]).
    ///
    /// # Panics
    /// If the write queue is full.
    pub fn enqueue_write(
        &mut self,
        req: MemRequest,
        d: &DecodedAddr,
        flat_bank: usize,
        tel: &mut dyn Telemetry,
    ) {
        assert!(!self.write_queue_full(), "enqueue_write on a full queue");
        let lane = self.lane(flat_bank, d.row);
        if self.cfg.coalesce_writes {
            if let Some(existing) = self.write_q.iter_mut().find(|w| w.line == d.line) {
                // The newer write-back supersedes the queued one; carry the
                // old request along so its latency is recorded at service.
                let old = std::mem::replace(&mut existing.req, req);
                existing.absorbed.push(old);
                self.stats.writes_coalesced += 1;
                self.observe_write_depth(req.arrival, tel);
                return;
            }
        }
        self.write_q.push(QueuedReq {
            req,
            row: d.row,
            bank: lane,
            line: d.line,
            absorbed: Vec::new(),
        });
        self.observe_write_depth(req.arrival, tel);
        // Drain entry at the policy's high mark (queue capacity under the
        // fixed policy — the paper's fill-to-capacity behaviour).
        if !self.drain && self.write_q.len() >= self.sched.high_watermark() {
            self.drain = true;
            self.stats.drains += 1;
            self.sched.note_drain_start(req.arrival);
            if tel.wants(TraceDetail::Coarse) {
                tel.record(&TelemetryEvent::DrainStart {
                    at: req.arrival,
                    writes: self.write_q.len() as u32,
                });
            }
        }
    }

    /// FRFCFS pick: index of the first row-hit request for `bank`, else the
    /// oldest request for `bank`.
    fn pick(&self, q: &[QueuedReq], bank: usize) -> Option<usize> {
        let open = self.banks[bank].open_row();
        let mut first = None;
        for (i, r) in q.iter().enumerate() {
            if r.bank != bank {
                continue;
            }
            if open == Some(r.row) {
                return Some(i);
            }
            if first.is_none() {
                first = Some(i);
            }
        }
        first
    }

    /// Issue requests to every free bank. Writes are only eligible while
    /// draining; during a drain, a bank with no queued write may still take
    /// a read. Returns the newly issued requests (schedule their
    /// completions as `BankComplete` events). Bank-occupancy transitions,
    /// pause/resume decisions and batch-packing outcomes are reported to
    /// `tel` (pass [`pcm_telemetry::NullSink`] to disable).
    pub fn try_issue(
        &mut self,
        now: Ps,
        memory: &mut PcmMainMemory,
        content: &mut dyn WriteContent,
        tel: &mut dyn Telemetry,
    ) -> Vec<Issued> {
        let mut issued = Vec::new();
        // Read-window policy: a long-starving drain yields briefly to
        // queued reads (banks without queued reads keep draining).
        let window = self
            .sched
            .poll_read_window(now, self.drain, !self.read_q.is_empty());
        if let WindowPoll::Opened(until) = window {
            self.stats.read_windows += 1;
            if tel.wants(TraceDetail::Coarse) {
                tel.record(&TelemetryEvent::ReadWindow { at: now, until });
            }
        }
        let window_active = window.active();
        // Steering policy: visit free banks least-utilized-first so idle
        // banks pick up backlog before already-hot ones.
        let order = self.sched.bank_order(&self.banks);
        for bank in order {
            // Write pausing: a busy write yields to a queued read for the
            // same bank at an iteration boundary.
            if self.cfg.write_pausing
                && !self.banks[bank].is_free(now)
                && self.in_flight[bank].as_ref().is_some_and(|f| f.is_write)
                && self.pick(&self.read_q, bank).is_some()
            {
                let pauses = self.in_flight[bank].as_ref().expect("checked above").pauses;
                if pauses < self.cfg.max_pauses_per_write {
                    let f = self.in_flight[bank].take().expect("checked above");
                    let remaining = self.banks[bank].busy_until().saturating_sub(now);
                    self.paused[bank] = Some(PausedWrite {
                        reqs: f.reqs,
                        remaining,
                        row: f.row,
                        pauses: f.pauses + 1,
                    });
                    self.banks[bank].interrupt(now);
                    self.stats.write_pauses += 1;
                    if tel.wants(TraceDetail::Coarse) {
                        tel.record(&TelemetryEvent::WritePause {
                            at: now,
                            bank: bank as u32,
                            pauses: pauses + 1,
                        });
                    }
                }
            }
            if !self.banks[bank].is_free(now) || self.in_flight[bank].is_some() {
                continue;
            }
            // Drain mode: writes first for this bank; up to `batch_writes`
            // queued writes for the bank are serviced as one batched
            // operation (inter-line Tetris packing). The shared pump
            // allows one write per bank across its subarrays.
            if self.drain
                && !self.bank_write_busy(bank)
                && !(window_active && self.pick(&self.read_q, bank).is_some())
            {
                // Which bank strict index-order servicing would have
                // drained first — recorded when steering deviates.
                let fifo_bank = if self.sched.steering_enabled() {
                    (0..self.banks.len()).find(|&b| {
                        self.in_flight[b].is_none()
                            && self.banks[b].is_free(now)
                            && !self.bank_write_busy(b)
                            && self.pick(&self.write_q, b).is_some()
                    })
                } else {
                    None
                };
                let mut picked = Vec::new();
                while picked.len() < self.cfg.batch_writes.max(1) {
                    match self.pick(&self.write_q, bank) {
                        Some(i) => picked.push(self.write_q.remove(i)),
                        None => break,
                    }
                }
                if !picked.is_empty() {
                    let writes: Vec<(pcm_types::PhysAddr, pcm_types::LineData)> = picked
                        .iter()
                        .map(|q| {
                            let old = memory
                                .peek_line(q.req.addr)
                                .expect("queued write must decode");
                            (q.req.addr, content.generate(q.req.core, &old))
                        })
                        .collect();
                    let outcome = memory
                        .write_lines_batch(&writes)
                        .expect("queued writes must be writable");
                    let row = picked[0].row;
                    let completion = self.banks[bank].begin_write(now, row, outcome.service_time);
                    self.banks[bank].note_partitions(outcome.partitions_used);
                    self.epoch += 1;
                    if tel.wants(TraceDetail::Fine) {
                        tel.record(&TelemetryEvent::BankBusy {
                            at: now,
                            bank: bank as u32,
                            kind: OpKind::Write,
                            until: completion,
                            lines: picked.len() as u32,
                        });
                        if outcome.partitions_used > 0 {
                            tel.record(&TelemetryEvent::PartitionWrite {
                                at: now,
                                bank: bank as u32,
                                partitions: outcome.partitions_used,
                                lines: picked.len() as u32,
                            });
                        }
                        let rows = outcome.coset_rows;
                        if rows.iter().any(|&n| n > 0) {
                            tel.record(&TelemetryEvent::CosetChoice {
                                at: now,
                                bank: bank as u32,
                                row0: rows[0],
                                row1: rows[1],
                                row2: rows[2],
                                row3: rows[3],
                            });
                        }
                    }
                    if let Some(pack) = outcome.pack {
                        if tel.wants(TraceDetail::Coarse) {
                            tel.record(&TelemetryEvent::BatchPack {
                                at: now,
                                bank: bank as u32,
                                lines: picked.len() as u32,
                                write_units: pack.write_units_equiv,
                                stolen_write0s: pack.stolen_write0s,
                                utilization: pack.utilization,
                            });
                        }
                    }
                    let mut reqs: Vec<MemRequest> = Vec::new();
                    for q in &picked {
                        reqs.push(q.req);
                        reqs.extend(q.absorbed.iter().copied());
                    }
                    self.in_flight[bank] = Some(InFlight {
                        reqs: reqs.clone(),
                        epoch: self.epoch,
                        is_write: true,
                        row,
                        pauses: 0,
                    });
                    issued.push(Issued {
                        bank,
                        completion,
                        req: reqs[0],
                        epoch: self.epoch,
                    });
                    if let Some(over) = fifo_bank {
                        if over != bank {
                            self.stats.steered_writes += 1;
                            if tel.wants(TraceDetail::Fine) {
                                tel.record(&TelemetryEvent::WriteSteer {
                                    at: now,
                                    bank: bank as u32,
                                    over: over as u32,
                                });
                            }
                        }
                    }
                    // Drain stops at the (possibly adapted) low watermark.
                    if self.drain && self.write_q.len() <= self.sched.low_watermark() {
                        self.drain = false;
                        self.sched.note_drain_stop();
                        if tel.wants(TraceDetail::Coarse) {
                            tel.record(&TelemetryEvent::DrainStop {
                                at: now,
                                writes: self.write_q.len() as u32,
                            });
                        }
                    }
                    continue;
                }
            }
            if let Some(i) = self.pick(&self.read_q, bank) {
                let q = self.read_q.remove(i);
                memory
                    .read_line(q.req.addr)
                    .expect("queued read must decode");
                let completion = self.banks[bank].begin_read(now, q.row, &self.timings, &self.cfg);
                self.epoch += 1;
                if tel.wants(TraceDetail::Fine) {
                    tel.record(&TelemetryEvent::BankBusy {
                        at: now,
                        bank: bank as u32,
                        kind: OpKind::Read,
                        until: completion,
                        lines: 1,
                    });
                }
                self.in_flight[bank] = Some(InFlight {
                    reqs: vec![q.req],
                    epoch: self.epoch,
                    is_write: false,
                    row: q.row,
                    pauses: 0,
                });
                issued.push(Issued {
                    bank,
                    completion,
                    req: q.req,
                    epoch: self.epoch,
                });
                continue;
            }
            // Nothing else runnable: resume a paused write (re-ramp cost).
            if let Some(p) = self.paused[bank].take() {
                let completion =
                    self.banks[bank].begin_write(now, p.row, p.remaining + self.cfg.pause_overhead);
                self.epoch += 1;
                if tel.wants(TraceDetail::Coarse) {
                    tel.record(&TelemetryEvent::WriteResume {
                        at: now,
                        bank: bank as u32,
                        until: completion,
                    });
                }
                let first = p.reqs[0];
                self.in_flight[bank] = Some(InFlight {
                    reqs: p.reqs,
                    epoch: self.epoch,
                    is_write: true,
                    row: p.row,
                    pauses: p.pauses,
                });
                issued.push(Issued {
                    bank,
                    completion,
                    req: first,
                    epoch: self.epoch,
                });
            }
        }
        issued
    }

    /// A bank finished (or a stale completion of a paused write fired);
    /// returns the serviced request(s) — several for a write batch — or an
    /// empty vec for stale events.
    pub fn complete(&mut self, bank: usize, epoch: u64) -> Vec<MemRequest> {
        match &self.in_flight[bank] {
            Some(f) if f.epoch == epoch => self.in_flight[bank].take().expect("present").reqs,
            _ => Vec::new(),
        }
    }

    /// Row-buffer statistics summed over banks (hits, misses).
    pub fn row_stats(&self) -> (u64, u64) {
        self.banks
            .iter()
            .fold((0, 0), |(h, m), b| (h + b.row_hits, m + b.row_misses))
    }

    /// Cumulative busy time per lane — the ground truth a recorded trace's
    /// per-bank utilization should reproduce.
    pub fn bank_busy_totals(&self) -> Vec<Ps> {
        self.banks.iter().map(BankState::busy_total).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::UniformRandomContent;
    use crate::request::AccessKind;
    use pcm_schemes::{DcwWrite, SchemeConfig};
    use pcm_telemetry::{MemorySink, NullSink};
    use pcm_types::propcheck::vec_of;
    use pcm_types::{prop_assert, prop_assert_eq, propcheck};

    fn setup() -> (MemoryController, PcmMainMemory, UniformRandomContent) {
        let cfg = SchemeConfig::paper_baseline();
        let mem = PcmMainMemory::new(cfg, Box::new(DcwWrite)).unwrap();
        let ctrl = MemoryController::new(
            ControllerConfig::default(),
            cfg.timings,
            cfg.org.total_banks() as usize,
        );
        (ctrl, mem, UniformRandomContent::new(1))
    }

    fn read_req(id: u64, addr: u64, t: Ps) -> MemRequest {
        MemRequest {
            id,
            addr,
            kind: AccessKind::Read,
            core: 0,
            arrival: t,
        }
    }

    fn write_req(id: u64, addr: u64, t: Ps) -> MemRequest {
        MemRequest {
            id,
            addr,
            kind: AccessKind::Write,
            core: 0,
            arrival: t,
        }
    }

    fn decode(mem: &PcmMainMemory, addr: u64) -> (pcm_types::DecodedAddr, usize) {
        let d = mem.addr_map().decode(addr).unwrap();
        let fb = mem.addr_map().flat_bank(&d);
        (d, fb)
    }

    #[test]
    fn reads_issue_immediately_when_banks_free() {
        let (mut ctrl, mut mem, mut content) = setup();
        let (d, fb) = decode(&mem, 0x40);
        assert_eq!(
            ctrl.enqueue_read(read_req(1, 0x40, Ps::ZERO), &d, fb),
            ReadEnqueue::Queued
        );
        let issued = ctrl.try_issue(Ps::ZERO, &mut mem, &mut content, &mut NullSink);
        assert_eq!(issued.len(), 1);
        assert_eq!(issued[0].completion, Ps::from_ns(60));
        assert_eq!(ctrl.complete(issued[0].bank, issued[0].epoch)[0].id, 1);
    }

    #[test]
    fn writes_wait_until_queue_fills() {
        let (mut ctrl, mut mem, mut content) = setup();
        // 31 writes: no drain, nothing issues.
        for i in 0..31u64 {
            let addr = i * 64;
            let (d, fb) = decode(&mem, addr);
            ctrl.enqueue_write(write_req(i, addr, Ps::ZERO), &d, fb, &mut NullSink);
        }
        assert!(!ctrl.draining());
        assert!(ctrl
            .try_issue(Ps::ZERO, &mut mem, &mut content, &mut NullSink)
            .is_empty());
        // The 32nd write triggers the drain.
        let (d, fb) = decode(&mem, 31 * 64);
        ctrl.enqueue_write(write_req(31, 31 * 64, Ps::ZERO), &d, fb, &mut NullSink);
        assert!(ctrl.draining());
        let issued = ctrl.try_issue(Ps::ZERO, &mut mem, &mut content, &mut NullSink);
        assert_eq!(issued.len(), 8, "one write per free bank");
    }

    #[test]
    fn drain_stops_at_low_watermark() {
        let (mut ctrl, mut mem, mut content) = setup();
        for i in 0..32u64 {
            let addr = i * 64;
            let (d, fb) = decode(&mem, addr);
            ctrl.enqueue_write(write_req(i, addr, Ps::ZERO), &d, fb, &mut NullSink);
        }
        let mut now = Ps::ZERO;
        // Repeatedly complete and reissue until drain exits.
        let mut guard = 0;
        while ctrl.draining() {
            let issued = ctrl.try_issue(now, &mut mem, &mut content, &mut NullSink);
            for i in &issued {
                now = now.max(i.completion);
            }
            for i in issued {
                ctrl.complete(i.bank, i.epoch);
            }
            guard += 1;
            assert!(guard < 100, "drain must terminate");
        }
        let (_, wq) = ctrl.queue_depths();
        assert_eq!(wq, 16, "stopped at the low watermark");
    }

    #[test]
    fn read_priority_over_waiting_writes() {
        let (mut ctrl, mut mem, mut content) = setup();
        let (dw, fbw) = decode(&mem, 0x40);
        ctrl.enqueue_write(write_req(1, 0x40, Ps::ZERO), &dw, fbw, &mut NullSink);
        let (dr, fbr) = decode(&mem, 0x80);
        ctrl.enqueue_read(read_req(2, 0x80, Ps::ZERO), &dr, fbr);
        let issued = ctrl.try_issue(Ps::ZERO, &mut mem, &mut content, &mut NullSink);
        assert_eq!(issued.len(), 1);
        assert_eq!(issued[0].req.id, 2, "the read went first");
        assert_eq!(issued[0].req.kind, AccessKind::Read);
    }

    #[test]
    fn store_to_load_forwarding() {
        let (mut ctrl, mem, _c) = setup();
        let (d, fb) = decode(&mem, 0x40);
        ctrl.enqueue_write(write_req(1, 0x40, Ps::ZERO), &d, fb, &mut NullSink);
        let r = ctrl.enqueue_read(read_req(2, 0x40, Ps::from_ns(5)), &d, fb);
        assert_eq!(r, ReadEnqueue::Forwarded(Ps::from_ns(15)));
        assert_eq!(ctrl.stats.read_forwards, 1);
    }

    #[test]
    fn frfcfs_prefers_row_hits() {
        let (mut ctrl, mut mem, mut content) = setup();
        // Three reads to bank 0: rows 0, 1, 0 (addresses 0, 8·64·64, 8·64).
        let a0 = 0u64;
        let a1 = 8 * 64 * 64; // same bank, next row
        let a2 = 8 * 64; // same bank, row 0 again
        for (id, a) in [(1, a0), (2, a1), (3, a2)] {
            let (d, fb) = decode(&mem, a);
            assert_eq!(fb, 0);
            ctrl.enqueue_read(read_req(id, a, Ps::ZERO), &d, fb);
        }
        // First issue: FCFS (no open row) → id 1, opens row 0.
        let i1 = ctrl.try_issue(Ps::ZERO, &mut mem, &mut content, &mut NullSink);
        assert_eq!(i1[0].req.id, 1);
        let done = i1[0].completion;
        ctrl.complete(i1[0].bank, i1[0].epoch);
        // Second issue: row 0 open → id 3 jumps ahead of id 2.
        let i2 = ctrl.try_issue(done, &mut mem, &mut content, &mut NullSink);
        assert_eq!(i2[0].req.id, 3, "row hit preferred over older miss");
    }

    #[test]
    fn write_pausing_lets_reads_preempt() {
        let (_ctrl0, mut mem, mut content) = setup();
        let cfg = ControllerConfig {
            write_pausing: true,
            ..Default::default()
        };
        let mut ctrl = MemoryController::new(cfg, pcm_types::PcmTimings::paper_baseline(), 8);

        // Start a (long, DCW ≈ 3.44 µs) write on bank 0 via a forced drain.
        let (d, fb) = decode(&mem, 0x0);
        ctrl.enqueue_write(write_req(1, 0x0, Ps::ZERO), &d, fb, &mut NullSink);
        ctrl.force_drain();
        let w = ctrl.try_issue(Ps::ZERO, &mut mem, &mut content, &mut NullSink);
        assert_eq!(w.len(), 1);
        let write_completion = w[0].completion;
        assert!(write_completion > Ps::from_ns(3000));

        // A read to the same bank arrives mid-write.
        let t1 = Ps::from_ns(500);
        let (dr, fbr) = decode(&mem, 8 * 64); // same bank, another row
        assert_eq!(fbr, 0);
        ctrl.enqueue_read(read_req(2, 8 * 64, t1), &dr, fbr);
        let issued = ctrl.try_issue(t1, &mut mem, &mut content, &mut NullSink);
        assert_eq!(issued.len(), 1, "the read preempts the write");
        assert_eq!(issued[0].req.id, 2);
        assert_eq!(ctrl.stats.write_pauses, 1);

        // The original write's completion event is now stale.
        assert!(ctrl.complete(w[0].bank, w[0].epoch).is_empty());

        // Finish the read, then the write resumes with its remaining time
        // plus the re-ramp overhead.
        let read_done = issued[0].completion;
        assert_eq!(ctrl.complete(issued[0].bank, issued[0].epoch)[0].id, 2);
        let resumed = ctrl.try_issue(read_done, &mut mem, &mut content, &mut NullSink);
        assert_eq!(resumed.len(), 1);
        assert_eq!(resumed[0].req.id, 1);
        let expected = read_done + (write_completion - t1) + Ps::from_ns(4);
        assert_eq!(resumed[0].completion, expected);
        assert_eq!(ctrl.complete(resumed[0].bank, resumed[0].epoch)[0].id, 1);
        assert!(!ctrl.has_pending());
    }

    #[test]
    fn repeated_pause_resume_keeps_only_latest_epoch_live() {
        let (_c, mut mem, mut content) = setup();
        let cfg = ControllerConfig {
            write_pausing: true,
            max_pauses_per_write: 4,
            ..Default::default()
        };
        let mut ctrl = MemoryController::new(cfg, pcm_types::PcmTimings::paper_baseline(), 8);

        let (d, fb) = decode(&mem, 0x0);
        ctrl.enqueue_write(write_req(1, 0x0, Ps::ZERO), &d, fb, &mut NullSink);
        ctrl.force_drain();
        let w0 = ctrl.try_issue(Ps::ZERO, &mut mem, &mut content, &mut NullSink);

        // Two pause/resume cycles, each obsoleting the previous epoch.
        let mut stale = vec![(w0[0].bank, w0[0].epoch)];
        let mut now = Ps::from_ns(200);
        let mut last = w0[0].clone();
        for (pass, id) in [(1u64, 2u64), (2, 3)] {
            let addr = 8 * 64 * pass; // same bank, fresh row
            let (dr, fbr) = decode(&mem, addr);
            assert_eq!(fbr, 0);
            ctrl.enqueue_read(read_req(id, addr, now), &dr, fbr);
            let r = ctrl.try_issue(now, &mut mem, &mut content, &mut NullSink);
            assert_eq!(r[0].req.id, id, "read preempts on pass {pass}");
            // Every superseded epoch is a no-op, however often it fires.
            for &(b, e) in &stale {
                assert!(ctrl.complete(b, e).is_empty(), "epoch {e} must be stale");
            }
            assert_eq!(ctrl.complete(r[0].bank, r[0].epoch)[0].id, id);
            let resumed = ctrl.try_issue(r[0].completion, &mut mem, &mut content, &mut NullSink);
            assert_eq!(resumed[0].req.id, 1, "the write resumes");
            stale.push((last.bank, last.epoch));
            last = resumed[0].clone();
            now = r[0].completion + Ps::from_ns(100);
        }
        assert_eq!(ctrl.stats.write_pauses, 2);

        // Only the final epoch retires the write — exactly once.
        assert_eq!(ctrl.complete(last.bank, last.epoch)[0].id, 1);
        assert!(ctrl.complete(last.bank, last.epoch).is_empty());
        for &(b, e) in &stale {
            assert!(ctrl.complete(b, e).is_empty());
        }
        assert!(!ctrl.has_pending());
    }

    #[test]
    fn read_arriving_at_exact_completion_does_not_pause() {
        // Tie-break: a read that lands on the write's exact completion
        // instant must wait for the completion event, not pause a write
        // with zero time remaining (which would strand it as paused).
        let (_c, mut mem, mut content) = setup();
        let cfg = ControllerConfig {
            write_pausing: true,
            ..Default::default()
        };
        let mut ctrl = MemoryController::new(cfg, pcm_types::PcmTimings::paper_baseline(), 8);

        let (d, fb) = decode(&mem, 0x0);
        ctrl.enqueue_write(write_req(1, 0x0, Ps::ZERO), &d, fb, &mut NullSink);
        ctrl.force_drain();
        let w = ctrl.try_issue(Ps::ZERO, &mut mem, &mut content, &mut NullSink);
        let t = w[0].completion;

        let (dr, fbr) = decode(&mem, 8 * 64);
        ctrl.enqueue_read(read_req(2, 8 * 64, t), &dr, fbr);
        // Until the completion is consumed the bank stays claimed: no pause,
        // no issue.
        assert!(ctrl
            .try_issue(t, &mut mem, &mut content, &mut NullSink)
            .is_empty());
        assert_eq!(
            ctrl.stats.write_pauses, 0,
            "zero-remaining write never pauses"
        );
        // The write's epoch is still the live one.
        assert_eq!(ctrl.complete(w[0].bank, w[0].epoch)[0].id, 1);
        // Now the read goes, at the same timestamp.
        let r = ctrl.try_issue(t, &mut mem, &mut content, &mut NullSink);
        assert_eq!(r[0].req.id, 2);
        assert_eq!(ctrl.complete(r[0].bank, r[0].epoch)[0].id, 2);
        assert!(!ctrl.has_pending());
    }

    #[test]
    fn pause_limit_bounds_preemption() {
        let (_c, mut mem, mut content) = setup();
        let cfg = ControllerConfig {
            write_pausing: true,
            max_pauses_per_write: 1,
            ..Default::default()
        };
        let mut ctrl = MemoryController::new(cfg, pcm_types::PcmTimings::paper_baseline(), 8);

        let (d, fb) = decode(&mem, 0x0);
        ctrl.enqueue_write(write_req(1, 0x0, Ps::ZERO), &d, fb, &mut NullSink);
        ctrl.force_drain();
        let w = ctrl.try_issue(Ps::ZERO, &mut mem, &mut content, &mut NullSink);

        // First read pauses the write.
        let (dr, fbr) = decode(&mem, 8 * 64);
        ctrl.enqueue_read(read_req(2, 8 * 64, Ps::from_ns(100)), &dr, fbr);
        let r1 = ctrl.try_issue(Ps::from_ns(100), &mut mem, &mut content, &mut NullSink);
        assert_eq!(r1[0].req.id, 2);
        assert!(!ctrl.complete(r1[0].bank, r1[0].epoch).is_empty());
        let resumed = ctrl.try_issue(r1[0].completion, &mut mem, &mut content, &mut NullSink);
        assert_eq!(resumed[0].req.id, 1);

        // Second read must NOT pause it again (limit reached).
        let t2 = r1[0].completion + Ps::from_ns(50);
        ctrl.enqueue_read(read_req(3, 8 * 64, t2), &dr, fbr);
        let r2 = ctrl.try_issue(t2, &mut mem, &mut content, &mut NullSink);
        assert!(r2.is_empty(), "write runs to completion: {r2:?}");
        assert_eq!(ctrl.stats.write_pauses, 1);
        let _ = w;
    }

    #[test]
    fn coalescing_merges_same_line_writes() {
        let (_c, mut mem, mut content) = setup();
        let cfg = ControllerConfig {
            coalesce_writes: true,
            ..Default::default()
        };
        let mut ctrl = MemoryController::new(cfg, pcm_types::PcmTimings::paper_baseline(), 8);
        let (d, fb) = decode(&mem, 0x40);
        ctrl.enqueue_write(write_req(1, 0x40, Ps::ZERO), &d, fb, &mut NullSink);
        ctrl.enqueue_write(write_req(2, 0x40, Ps::from_ns(10)), &d, fb, &mut NullSink);
        ctrl.enqueue_write(write_req(3, 0x40, Ps::from_ns(20)), &d, fb, &mut NullSink);
        let (_, wq) = ctrl.queue_depths();
        assert_eq!(wq, 1, "three same-line writes hold one slot");
        assert_eq!(ctrl.stats.writes_coalesced, 2);
        // Service it: all three requests complete together.
        ctrl.force_drain();
        let issued = ctrl.try_issue(Ps::from_ns(30), &mut mem, &mut content, &mut NullSink);
        assert_eq!(issued.len(), 1);
        let reqs = ctrl.complete(issued[0].bank, issued[0].epoch);
        let mut ids: Vec<u64> = reqs.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3]);
        // Memory saw exactly one line write.
        assert_eq!(mem.stats().writes, 1);
    }

    #[test]
    fn coalescing_off_keeps_duplicates() {
        let (mut ctrl, mem, _c) = setup();
        let (d, fb) = decode(&mem, 0x40);
        ctrl.enqueue_write(write_req(1, 0x40, Ps::ZERO), &d, fb, &mut NullSink);
        ctrl.enqueue_write(write_req(2, 0x40, Ps::from_ns(10)), &d, fb, &mut NullSink);
        let (_, wq) = ctrl.queue_depths();
        assert_eq!(wq, 2, "paper-faithful default: no consolidation");
    }

    #[test]
    fn subarrays_let_reads_overlap_writes() {
        let (_c, mut mem, mut content) = setup();
        let cfg = ControllerConfig {
            subarrays_per_bank: 2,
            ..Default::default()
        };
        let mut ctrl = MemoryController::new(cfg, pcm_types::PcmTimings::paper_baseline(), 8);

        // A write to bank 0, row 0 (subarray 0 → lane 0) under drain.
        let (dw, fbw) = decode(&mem, 0x0);
        ctrl.enqueue_write(write_req(1, 0x0, Ps::ZERO), &dw, fbw, &mut NullSink);
        ctrl.force_drain();
        let w = ctrl.try_issue(Ps::ZERO, &mut mem, &mut content, &mut NullSink);
        assert_eq!(w.len(), 1);

        // A read to bank 0, odd row (subarray 1) proceeds mid-write…
        let odd_row_addr = 8 * 64 * 64; // bank 0, row 1
        let (dr, fbr) = decode(&mem, odd_row_addr);
        assert_eq!(fbr, 0);
        assert_eq!(dr.row % 2, 1);
        ctrl.enqueue_read(read_req(2, odd_row_addr, Ps::from_ns(100)), &dr, fbr);
        let r = ctrl.try_issue(Ps::from_ns(100), &mut mem, &mut content, &mut NullSink);
        assert_eq!(r.len(), 1, "subarray 1 services the read during the write");
        assert_eq!(r[0].req.id, 2);

        // …but a read to the same subarray as the write must wait.
        let same_sub_addr = 2 * 8 * 64 * 64; // bank 0, row 2 → subarray 0
        let (dr2, fbr2) = decode(&mem, same_sub_addr);
        assert_eq!(dr2.row % 2, 0);
        ctrl.enqueue_read(read_req(3, same_sub_addr, Ps::from_ns(120)), &dr2, fbr2);
        let r2 = ctrl.try_issue(Ps::from_ns(120), &mut mem, &mut content, &mut NullSink);
        assert!(
            r2.is_empty(),
            "same-subarray read blocked by the write: {r2:?}"
        );
    }

    #[test]
    fn one_write_per_bank_across_subarrays() {
        let (_c, mut mem, mut content) = setup();
        let cfg = ControllerConfig {
            subarrays_per_bank: 2,
            ..Default::default()
        };
        let mut ctrl = MemoryController::new(cfg, pcm_types::PcmTimings::paper_baseline(), 8);
        // Two writes to bank 0, different subarrays (rows 0 and 1).
        let a = 0x0u64;
        let b = 8 * 64 * 64;
        for (id, addr) in [(1, a), (2, b)] {
            let (d, fb) = decode(&mem, addr);
            ctrl.enqueue_write(write_req(id, addr, Ps::ZERO), &d, fb, &mut NullSink);
        }
        ctrl.force_drain();
        let issued = ctrl.try_issue(Ps::ZERO, &mut mem, &mut content, &mut NullSink);
        assert_eq!(issued.len(), 1, "shared pump: one write per bank");
        let done = issued[0].completion;
        assert!(!ctrl.complete(issued[0].bank, issued[0].epoch).is_empty());
        ctrl.force_drain();
        let issued2 = ctrl.try_issue(done, &mut mem, &mut content, &mut NullSink);
        assert_eq!(issued2.len(), 1, "second write follows after the first");
    }

    #[test]
    fn telemetry_records_drain_and_bank_occupancy() {
        let (mut ctrl, mut mem, mut content) = setup();
        let mut tel = MemorySink::new();

        // Fill the write queue: the last enqueue flips drain on.
        for i in 0..32u64 {
            let addr = i * 64;
            let (d, fb) = decode(&mem, addr);
            ctrl.enqueue_write(write_req(i, addr, Ps::ZERO), &d, fb, &mut tel);
        }
        assert!(matches!(
            tel.events.last(),
            Some(TelemetryEvent::DrainStart { writes: 32, .. })
        ));

        // Issue: every busy bank reports a BankBusy write occupancy.
        let issued = ctrl.try_issue(Ps::ZERO, &mut mem, &mut content, &mut tel);
        let busy: Vec<_> = tel
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TelemetryEvent::BankBusy {
                        kind: OpKind::Write,
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(busy.len(), issued.len());
    }

    #[test]
    fn telemetry_records_pause_and_resume() {
        let (_c, mut mem, mut content) = setup();
        let cfg = ControllerConfig {
            write_pausing: true,
            ..Default::default()
        };
        let mut ctrl = MemoryController::new(cfg, pcm_types::PcmTimings::paper_baseline(), 8);
        let mut tel = MemorySink::new();

        // One long write on bank 0, then a read to the same bank mid-write.
        let (d, fb) = decode(&mem, 0x0);
        ctrl.enqueue_write(write_req(1, 0x0, Ps::ZERO), &d, fb, &mut tel);
        ctrl.force_drain();
        ctrl.try_issue(Ps::ZERO, &mut mem, &mut content, &mut tel);
        let (dr, fbr) = decode(&mem, 8 * 64);
        ctrl.enqueue_read(read_req(2, 8 * 64, Ps::from_ns(500)), &dr, fbr);
        let r = ctrl.try_issue(Ps::from_ns(500), &mut mem, &mut content, &mut tel);
        assert_eq!(r[0].req.id, 2);
        assert!(tel.events.iter().any(|e| matches!(
            e,
            TelemetryEvent::WritePause {
                bank: 0,
                pauses: 1,
                ..
            }
        )));

        // The resume event carries the new completion time.
        ctrl.complete(r[0].bank, r[0].epoch);
        let resumed = ctrl.try_issue(r[0].completion, &mut mem, &mut content, &mut tel);
        assert!(tel.events.iter().any(|e| matches!(
            e,
            TelemetryEvent::WriteResume { bank: 0, until, .. } if *until == resumed[0].completion
        )));
    }

    #[test]
    fn telemetry_reports_drain_stop_at_watermark() {
        let (mut ctrl, mut mem, mut content) = setup();
        let mut tel = MemorySink::new();
        for i in 0..32u64 {
            let addr = i * 64;
            let (d, fb) = decode(&mem, addr);
            ctrl.enqueue_write(write_req(i, addr, Ps::ZERO), &d, fb, &mut tel);
        }
        let mut now = Ps::ZERO;
        while ctrl.draining() {
            let issued = ctrl.try_issue(now, &mut mem, &mut content, &mut tel);
            for i in &issued {
                now = now.max(i.completion);
            }
            for i in issued {
                ctrl.complete(i.bank, i.epoch);
            }
        }
        let stops: Vec<_> = tel
            .events
            .iter()
            .filter(|e| matches!(e, TelemetryEvent::DrainStop { .. }))
            .collect();
        assert_eq!(stops.len(), 1, "one drain episode, one stop");
        assert!(
            matches!(stops[0], TelemetryEvent::DrainStop { writes, .. } if *writes == 16),
            "stopped at the low watermark"
        );
    }

    #[test]
    fn steering_services_least_utilized_bank_first() {
        use crate::sched::SchedConfig;
        let (_c, mut mem, mut content) = setup();
        let cfg = ControllerConfig {
            sched: SchedConfig {
                bank_steering: true,
                ..SchedConfig::fixed()
            },
            ..Default::default()
        };
        let mut ctrl = MemoryController::new(cfg, pcm_types::PcmTimings::paper_baseline(), 8);

        // Make bank 0 the hot bank: one full write, completed.
        let (d0, fb0) = decode(&mem, 0x0);
        ctrl.enqueue_write(write_req(1, 0x0, Ps::ZERO), &d0, fb0, &mut NullSink);
        ctrl.force_drain();
        let w = ctrl.try_issue(Ps::ZERO, &mut mem, &mut content, &mut NullSink);
        let t = w[0].completion;
        ctrl.complete(w[0].bank, w[0].epoch);

        // Writes queued for banks 0 and 2; both banks now free, bank 2 cold.
        let mut tel = MemorySink::new();
        ctrl.enqueue_write(write_req(2, 8 * 64, t), &d0, fb0, &mut tel);
        let (d2, fb2) = decode(&mem, 0x80);
        assert_eq!(fb2, 2);
        ctrl.enqueue_write(write_req(3, 0x80, t), &d2, fb2, &mut tel);
        ctrl.force_drain();
        // Two queued writes are under the low watermark, so the drain
        // exits after one issue — which must pick the cold bank.
        let issued = ctrl.try_issue(t, &mut mem, &mut content, &mut tel);
        assert_eq!(issued.len(), 1);
        assert_eq!(
            issued[0].bank, 2,
            "cold bank 2 is serviced before hot bank 0"
        );
        assert_eq!(ctrl.stats.steered_writes, 1);
        assert!(tel.events.iter().any(|e| matches!(
            e,
            TelemetryEvent::WriteSteer {
                bank: 2,
                over: 0,
                ..
            }
        )));
    }

    #[test]
    fn read_window_bounds_drain_starvation() {
        use crate::sched::SchedConfig;
        let run = |windows: bool| {
            let (_c, mut mem, mut content) = setup();
            let cfg = ControllerConfig {
                sched: SchedConfig {
                    read_windows: windows,
                    ..SchedConfig::fixed()
                },
                ..Default::default()
            };
            let mut ctrl = MemoryController::new(cfg, pcm_types::PcmTimings::paper_baseline(), 8);
            let mut tel = MemorySink::new();
            // Fill the queue with bank-0 writes: drain starts at t = 0.
            for i in 0..32u64 {
                let addr = i * 8 * 64; // every row maps to bank 0
                let (d, fb) = decode(&mem, addr);
                assert_eq!(fb, 0);
                ctrl.enqueue_write(write_req(i, addr, Ps::ZERO), &d, fb, &mut tel);
            }
            assert!(ctrl.draining());
            let w = ctrl.try_issue(Ps::ZERO, &mut mem, &mut content, &mut tel);
            assert_eq!(w.len(), 1, "all writes target bank 0");
            let t = w[0].completion; // one DCW write ≈ 3.4 µs ≫ t_set
            ctrl.complete(w[0].bank, w[0].epoch);
            // A read for bank 0 has been starved by the ongoing drain.
            let (dr, fbr) = decode(&mem, 40 * 8 * 64);
            ctrl.enqueue_read(read_req(100, 40 * 8 * 64, t), &dr, fbr);
            let issued = ctrl.try_issue(t, &mut mem, &mut content, &mut tel);
            assert_eq!(issued.len(), 1);
            (issued[0].req.kind, ctrl.stats.read_windows, tel)
        };

        let (kind, windows, tel) = run(true);
        assert_eq!(kind, AccessKind::Read, "starved read wins the window");
        assert_eq!(windows, 1);
        assert!(tel
            .events
            .iter()
            .any(|e| matches!(e, TelemetryEvent::ReadWindow { .. })));

        let (kind, windows, _) = run(false);
        assert_eq!(kind, AccessKind::Write, "fixed policy keeps draining");
        assert_eq!(windows, 0);
    }

    propcheck! {
        cases = 16;
        /// Hysteresis invariants under an arbitrary write workload with
        /// the full adaptive policy on: a write admitted at or above the
        /// high mark always finds the controller draining, a drain round
        /// never pulls the queue below the low mark, and every issued
        /// write runs on the bank its address decodes to.
        fn adaptive_drain_and_steering_invariants(lines in vec_of(0u64..=255, 48..=96)) {
            let scfg = SchemeConfig::paper_baseline();
            let mut mem = PcmMainMemory::new(scfg, Box::new(DcwWrite)).unwrap();
            let cfg = ControllerConfig {
                sched: crate::sched::SchedConfig::adaptive(),
                ..Default::default()
            };
            let mut ctrl =
                MemoryController::new(cfg, scfg.timings, scfg.org.total_banks() as usize);
            let mut content = UniformRandomContent::new(7);
            let mut now = Ps::ZERO;
            let mut inflight: Vec<Issued> = Vec::new();
            for (n, &line) in lines.iter().enumerate() {
                // Make room by completing the earliest in-flight write.
                while ctrl.write_queue_full() {
                    inflight.extend(ctrl.try_issue(now, &mut mem, &mut content, &mut NullSink));
                    let k = inflight
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, i)| i.completion)
                        .map(|(k, _)| k)
                        .expect("full queue implies in-flight work");
                    let done = inflight.remove(k);
                    now = now.max(done.completion);
                    ctrl.complete(done.bank, done.epoch);
                }
                let addr = line * 64;
                let d = mem.addr_map().decode(addr).unwrap();
                let fb = mem.addr_map().flat_bank(&d);
                ctrl.enqueue_write(write_req(n as u64, addr, now), &d, fb, &mut NullSink);
                let (_, wq) = ctrl.queue_depths();
                prop_assert!(
                    wq < ctrl.sched().high_watermark() || ctrl.draining(),
                    "depth {} at/above high {} without draining",
                    wq,
                    ctrl.sched().high_watermark()
                );
                let before = wq;
                let low = ctrl.sched().low_watermark();
                let issued = ctrl.try_issue(now, &mut mem, &mut content, &mut NullSink);
                for i in &issued {
                    let dd = mem.addr_map().decode(i.req.addr).unwrap();
                    prop_assert_eq!(
                        i.bank,
                        mem.addr_map().flat_bank(&dd),
                        "request on its own address-mapped bank"
                    );
                }
                let (_, after) = ctrl.queue_depths();
                prop_assert!(
                    after >= low.min(before),
                    "drained below the low mark: {} < min({}, {})",
                    after,
                    low,
                    before
                );
                inflight.extend(issued);
            }
        }
    }

    #[test]
    fn force_drain_flushes_remaining() {
        let (mut ctrl, mut mem, mut content) = setup();
        let (d, fb) = decode(&mem, 0x40);
        ctrl.enqueue_write(write_req(1, 0x40, Ps::ZERO), &d, fb, &mut NullSink);
        assert!(ctrl
            .try_issue(Ps::ZERO, &mut mem, &mut content, &mut NullSink)
            .is_empty());
        ctrl.force_drain();
        let issued = ctrl.try_issue(Ps::ZERO, &mut mem, &mut content, &mut NullSink);
        assert_eq!(issued.len(), 1);
        ctrl.complete(issued[0].bank, issued[0].epoch);
        assert!(!ctrl.has_pending());
    }
}
