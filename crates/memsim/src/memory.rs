//! The PCM main memory: a sparse 4 GB backing store whose every line write
//! is planned by a pluggable [`WriteScheme`].
//!
//! Each touched line stores its array bits, flip-tag mask and wear counter.
//! Untouched lines read as zero (freshly manufactured cells are amorphous).

use crate::wear_leveling::StartGap;
use pcm_schemes::{PackStats, SchemeConfig, WriteCtx, WritePlan, WriteScheme};
use pcm_types::{
    coset_decode_unit, coset_row, coset_rows_available, AddrMap, LineData, PcmError, PhysAddr,
    PicoJoules, Ps,
};
use std::collections::HashMap;

/// One resident line (contents only; wear lives with the physical slot).
#[derive(Clone, Debug)]
struct StoredLine {
    data: LineData,
    flips: u32,
}

/// Outcome of one serviced line write.
#[derive(Clone, Copy, Debug)]
pub struct WriteOutcome {
    /// Bank service time for this write.
    pub service_time: Ps,
    /// Energy consumed.
    pub energy: PicoJoules,
    /// Write units consumed (Fig. 10 metric).
    pub write_units_equiv: f64,
    /// SET pulses delivered to cells.
    pub cell_sets: u32,
    /// RESET pulses delivered to cells.
    pub cell_resets: u32,
    /// Intra-bank partitions the write drove concurrently (0 for schemes
    /// without a partition model).
    pub partitions_used: u32,
    /// Coset row the stored encoding landed on, for flip-bit schemes on
    /// lines with spare tag bits (`None` otherwise). Row 0 is plain
    /// Flip-N-Write inversion; WIRE spreads across rows 0–3.
    pub coset_row: Option<u32>,
}

/// Outcome of one batched write service.
#[derive(Clone, Copy, Debug)]
pub struct BatchOutcome {
    /// Total bank-busy time for the whole batch.
    pub service_time: Ps,
    /// Packing quality, when the scheme reports it (batched Tetris plans).
    pub pack: Option<PackStats>,
    /// Most intra-bank partitions any write in the batch drove (0 for
    /// schemes without a partition model).
    pub partitions_used: u32,
    /// How many lines of the batch landed on each coset row (all zero for
    /// schemes without flip bits or lines without spare tag bits).
    pub coset_rows: [u32; 4],
}

/// Aggregate memory statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct MemoryStats {
    /// Gap moves performed by the wear leveler.
    pub gap_moves: u64,
    /// Serviced line writes.
    pub writes: u64,
    /// Serviced line reads.
    pub reads: u64,
    /// Sum of write-unit counts (for the Fig. 10 average).
    pub write_units_sum: f64,
    /// Total energy.
    pub energy: PicoJoules,
    /// Total SET pulses.
    pub cell_sets: u64,
    /// Total RESET pulses.
    pub cell_resets: u64,
}

/// The PCM main memory.
///
/// ```
/// use pcm_memsim::PcmMainMemory;
/// use pcm_schemes::{DcwWrite, SchemeConfig};
/// use pcm_types::LineData;
///
/// let mut mem = PcmMainMemory::new(
///     SchemeConfig::paper_baseline(), Box::new(DcwWrite)).unwrap();
/// let line = LineData::from_units(&[42; 8]);
/// let outcome = mem.write_line(0x40, &line).unwrap();
/// assert!(outcome.service_time > pcm_types::Ps::ZERO);
/// assert_eq!(mem.read_line(0x40).unwrap(), line);
/// ```
pub struct PcmMainMemory {
    map: AddrMap,
    cfg: SchemeConfig,
    scheme: Box<dyn WriteScheme>,
    lines: HashMap<u64, StoredLine>,
    /// Programming pulses absorbed per physical slot (cells don't move;
    /// wear stays with the slot even as contents rotate through it).
    wear: HashMap<u64, u64>,
    leveler: Option<StartGap>,
    stats: MemoryStats,
}

impl PcmMainMemory {
    /// A memory of `cfg.org` geometry written through `scheme`.
    pub fn new(cfg: SchemeConfig, scheme: Box<dyn WriteScheme>) -> Result<Self, PcmError> {
        cfg.validate()?;
        Ok(PcmMainMemory {
            map: AddrMap::with_default_rows(cfg.org)?,
            cfg,
            scheme,
            lines: HashMap::new(),
            wear: HashMap::new(),
            leveler: None,
            stats: MemoryStats::default(),
        })
    }

    /// Enable Start-Gap wear leveling (ref. \[5\]): logical lines rotate
    /// across physical slots, one gap move per `psi` writes.
    pub fn with_wear_leveling(
        cfg: SchemeConfig,
        scheme: Box<dyn WriteScheme>,
        psi: u64,
    ) -> Result<Self, PcmError> {
        let mut m = Self::new(cfg, scheme)?;
        m.leveler = Some(StartGap::new(m.cfg.org.total_lines(), psi));
        Ok(m)
    }

    /// The wear leveler, if enabled.
    pub fn leveler(&self) -> Option<&StartGap> {
        self.leveler.as_ref()
    }

    /// Resolve a logical line index to its physical slot.
    fn physical_line(&self, logical: u64) -> u64 {
        match &self.leveler {
            Some(sg) => sg.map(logical),
            None => logical,
        }
    }

    /// The address map in use.
    pub fn addr_map(&self) -> &AddrMap {
        &self.map
    }

    /// The scheme's display name.
    pub fn scheme_name(&self) -> &'static str {
        self.scheme.name()
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> &MemoryStats {
        &self.stats
    }

    /// Line size in bytes.
    fn line_len(&self) -> usize {
        self.cfg.org.cache_line_bytes as usize
    }

    /// Logical contents of the line containing `addr` (without counting a
    /// device read — used by content synthesis and tests).
    pub fn peek_line(&self, addr: PhysAddr) -> Result<LineData, PcmError> {
        let d = self.map.decode(addr)?;
        let phys = self.physical_line(d.line);
        Ok(match self.lines.get(&phys) {
            None => LineData::zeroed(self.line_len()),
            Some(s) => {
                let mut out = s.data;
                let n = out.num_units();
                for i in 0..n {
                    out.set_unit(i, coset_decode_unit(s.data.unit(i), s.flips, i, n));
                }
                out
            }
        })
    }

    /// Service a line read.
    pub fn read_line(&mut self, addr: PhysAddr) -> Result<LineData, PcmError> {
        let line = self.peek_line(addr)?;
        self.stats.reads += 1;
        Ok(line)
    }

    /// Service a line write with the configured scheme; returns its cost.
    pub fn write_line(&mut self, addr: PhysAddr, new: &LineData) -> Result<WriteOutcome, PcmError> {
        if new.len() != self.line_len() {
            return Err(PcmError::LineSizeMismatch {
                expected: self.line_len(),
                actual: new.len(),
            });
        }
        let d = self.map.decode(addr)?;
        let phys = self.physical_line(d.line);
        let (old_stored, old_flips) = match self.lines.get(&phys) {
            None => (LineData::zeroed(self.line_len()), 0),
            Some(s) => (s.data, s.flips),
        };
        let ctx = WriteCtx {
            old_stored: &old_stored,
            old_flips,
            new_logical: new,
            cfg: &self.cfg,
        };
        let plan: WritePlan = self.scheme.plan(&ctx);
        debug_assert!(
            plan.check_decodes_to(new).is_ok(),
            "scheme broke the decode invariant"
        );

        let changed = (plan.cell_sets + plan.cell_resets) as u64;
        self.lines.insert(
            phys,
            StoredLine {
                data: plan.stored,
                flips: plan.flips,
            },
        );
        *self.wear.entry(phys).or_insert(0) += changed;
        if let Some(sg) = &mut self.leveler {
            if let Some(mv) = sg.on_write() {
                // Copy the displaced line into the gap. The gap slot's
                // stale contents (left by an earlier rotation) make the
                // copy differential, like any other PCM write.
                if let Some(moved) = self.lines.get(&mv.from).cloned() {
                    let copy_pulses = match self.lines.get(&mv.to) {
                        Some(stale) if stale.data.len() == moved.data.len() => {
                            pcm_types::hamming(&stale.data, &moved.data) as u64
                        }
                        _ => moved.data.popcount() as u64,
                    };
                    *self.wear.entry(mv.to).or_insert(0) += copy_pulses;
                    // The vacated slot keeps its (now stale) contents; the
                    // mapping never points at the gap.
                    self.lines.insert(mv.to, moved);
                }
                self.stats.gap_moves += 1;
            }
        }
        self.stats.writes += 1;
        self.stats.write_units_sum += plan.write_units_equiv;
        self.stats.energy += plan.energy;
        self.stats.cell_sets += plan.cell_sets as u64;
        self.stats.cell_resets += plan.cell_resets as u64;
        Ok(WriteOutcome {
            service_time: plan.service_time,
            energy: plan.energy,
            write_units_equiv: plan.write_units_equiv,
            cell_sets: plan.cell_sets,
            cell_resets: plan.cell_resets,
            partitions_used: plan.partitions_used,
            coset_row: self.plan_coset_row(&plan),
        })
    }

    /// The coset row a plan's tag word selects, when the scheme stores
    /// flip bits and the line has spare tag bits for a row field.
    fn plan_coset_row(&self, plan: &WritePlan) -> Option<u32> {
        if self.scheme.uses_flip_bits() && coset_rows_available(plan.stored.num_units()) {
            Some(coset_row(plan.flips) as u32)
        } else {
            None
        }
    }

    /// Service several line writes as one batched operation (shared bank
    /// occupancy). Falls back to serial service when the scheme has no
    /// batched mode. Returns the total bank-busy time and, for schemes
    /// that report it, the batch's packing quality.
    pub fn write_lines_batch(
        &mut self,
        writes: &[(PhysAddr, LineData)],
    ) -> Result<BatchOutcome, PcmError> {
        if writes.len() == 1 {
            let one = self.write_line(writes[0].0, &writes[0].1)?;
            let mut coset_rows = [0u32; 4];
            if let Some(r) = one.coset_row {
                coset_rows[r as usize] += 1;
            }
            return Ok(BatchOutcome {
                service_time: one.service_time,
                pack: None,
                partitions_used: one.partitions_used,
                coset_rows,
            });
        }
        // Gather the old state of every line up front (ctxs borrow it).
        let mut phys_lines = Vec::with_capacity(writes.len());
        let mut olds = Vec::with_capacity(writes.len());
        for (addr, new) in writes {
            if new.len() != self.line_len() {
                return Err(PcmError::LineSizeMismatch {
                    expected: self.line_len(),
                    actual: new.len(),
                });
            }
            let d = self.map.decode(*addr)?;
            let phys = self.physical_line(d.line);
            let (stored, flips) = match self.lines.get(&phys) {
                None => (LineData::zeroed(self.line_len()), 0),
                Some(s) => (s.data, s.flips),
            };
            phys_lines.push(phys);
            olds.push((stored, flips));
        }
        let ctxs: Vec<WriteCtx<'_>> = writes
            .iter()
            .zip(&olds)
            .map(|((_, new), (stored, flips))| WriteCtx {
                old_stored: stored,
                old_flips: *flips,
                new_logical: new,
                cfg: &self.cfg,
            })
            .collect();
        match self.scheme.plan_batched(&ctxs) {
            Some(batch) => {
                let mut partitions_used = 0;
                let mut coset_rows = [0u32; 4];
                for ((plan, phys), (_, new)) in batch.plans.iter().zip(&phys_lines).zip(writes) {
                    debug_assert!(plan.check_decodes_to(new).is_ok());
                    partitions_used = partitions_used.max(plan.partitions_used);
                    if let Some(r) = self.plan_coset_row(plan) {
                        coset_rows[r as usize] += 1;
                    }
                    let changed = (plan.cell_sets + plan.cell_resets) as u64;
                    self.lines.insert(
                        *phys,
                        StoredLine {
                            data: plan.stored,
                            flips: plan.flips,
                        },
                    );
                    *self.wear.entry(*phys).or_insert(0) += changed;
                    self.stats.writes += 1;
                    self.stats.write_units_sum += plan.write_units_equiv;
                    self.stats.energy += plan.energy;
                    self.stats.cell_sets += plan.cell_sets as u64;
                    self.stats.cell_resets += plan.cell_resets as u64;
                }
                Ok(BatchOutcome {
                    service_time: batch.service_time,
                    pack: batch.pack,
                    partitions_used,
                    coset_rows,
                })
            }
            None => {
                // Serial fallback: sum of individual services.
                let mut total = Ps::ZERO;
                let mut partitions_used = 0;
                let mut coset_rows = [0u32; 4];
                for (addr, new) in writes {
                    let one = self.write_line(*addr, new)?;
                    total += one.service_time;
                    partitions_used = partitions_used.max(one.partitions_used);
                    if let Some(r) = one.coset_row {
                        coset_rows[r as usize] += 1;
                    }
                }
                Ok(BatchOutcome {
                    service_time: total,
                    pack: None,
                    partitions_used,
                    coset_rows,
                })
            }
        }
    }

    /// Wear (total programming pulses) of the line containing `addr`.
    pub fn line_wear(&self, addr: PhysAddr) -> Result<u64, PcmError> {
        let d = self.map.decode(addr)?;
        let phys = self.physical_line(d.line);
        Ok(self.wear.get(&phys).copied().unwrap_or(0))
    }

    /// Highest per-slot wear across touched physical lines.
    pub fn max_line_wear(&self) -> u64 {
        self.wear.values().copied().max().unwrap_or(0)
    }

    /// Number of physical slots that have absorbed any wear.
    pub fn worn_slots(&self) -> usize {
        self.wear.len()
    }

    /// Number of lines touched so far.
    pub fn resident_lines(&self) -> usize {
        self.lines.len()
    }

    /// Mean write units per serviced write (Fig. 10).
    pub fn avg_write_units(&self) -> f64 {
        if self.stats.writes == 0 {
            0.0
        } else {
            self.stats.write_units_sum / self.stats.writes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_schemes::{DcwWrite, FlipNWrite};
    use tetris_write::TetrisWrite;

    fn mem(scheme: Box<dyn WriteScheme>) -> PcmMainMemory {
        PcmMainMemory::new(SchemeConfig::paper_baseline(), scheme).unwrap()
    }

    #[test]
    fn fresh_memory_reads_zero() {
        let mut m = mem(Box::new(DcwWrite));
        let l = m.read_line(0x1000).unwrap();
        assert_eq!(l.popcount(), 0);
        assert_eq!(m.stats().reads, 1);
    }

    #[test]
    fn write_then_read_roundtrip_dcw() {
        let mut m = mem(Box::new(DcwWrite));
        let line = LineData::from_units(&[0xDEAD, 0xBEEF, 1, 2, 3, 4, 5, u64::MAX]);
        let out = m.write_line(0x40, &line).unwrap();
        assert!(out.service_time > Ps::ZERO);
        assert_eq!(m.read_line(0x40).unwrap(), line);
        assert_eq!(m.resident_lines(), 1);
    }

    #[test]
    fn write_then_read_roundtrip_with_flip_schemes() {
        for scheme in [
            Box::new(FlipNWrite) as Box<dyn WriteScheme>,
            Box::new(TetrisWrite::paper_baseline()),
        ] {
            let mut m = mem(scheme);
            // Dense line forces inversions.
            let line = LineData::from_units(&[u64::MAX; 8]);
            m.write_line(0x80, &line).unwrap();
            assert_eq!(m.read_line(0x80).unwrap(), line);
            // Overwrite with sparse data (forces un-flip decisions).
            let line2 = LineData::from_units(&[1; 8]);
            m.write_line(0x80, &line2).unwrap();
            assert_eq!(m.read_line(0x80).unwrap(), line2);
        }
    }

    #[test]
    fn wear_accumulates_with_changed_bits() {
        let mut m = mem(Box::new(DcwWrite));
        let mut line = LineData::zeroed(64);
        line.set_unit(0, 0b11);
        m.write_line(0, &line).unwrap();
        assert_eq!(m.line_wear(0).unwrap(), 2);
        m.write_line(0, &line).unwrap();
        assert_eq!(m.line_wear(0).unwrap(), 2, "identical rewrite adds no wear");
    }

    #[test]
    fn stats_track_write_units() {
        let mut m = mem(Box::new(DcwWrite));
        let line = LineData::from_units(&[1; 8]);
        m.write_line(0, &line).unwrap();
        m.write_line(64, &line).unwrap();
        assert_eq!(m.stats().writes, 2);
        assert_eq!(m.avg_write_units(), 8.0, "DCW always costs N/M units");
    }

    #[test]
    fn tetris_write_units_reflect_content() {
        let mut m = mem(Box::new(TetrisWrite::paper_baseline()));
        let mut line = LineData::zeroed(64);
        for i in 0..8 {
            line.set_unit(i, 0x7F); // 7 SETs per unit
        }
        m.write_line(0, &line).unwrap();
        assert_eq!(
            m.avg_write_units(),
            1.0,
            "56 SET-equivalents pack into one unit"
        );
    }

    #[test]
    fn wear_leveling_spreads_a_hot_line() {
        // Shrink the memory so the gap rotation is visible quickly.
        let mut cfg = SchemeConfig::paper_baseline();
        cfg.org.capacity_bytes = 8 * 64; // 8 lines
        let hot = 0u64;
        let mut line = LineData::zeroed(64);

        // Without leveling: all wear lands on one physical line.
        let mut plain = PcmMainMemory::new(cfg, Box::new(DcwWrite)).unwrap();
        for i in 0..640u64 {
            line.xor_unit(0, 1 << (i % 60));
            plain.write_line(hot, &line).unwrap();
        }
        let plain_max = plain.max_line_wear();
        assert_eq!(plain.resident_lines(), 1);

        // With Start-Gap (psi = 10): the hot line rotates through slots.
        let mut lev = PcmMainMemory::with_wear_leveling(cfg, Box::new(DcwWrite), 10).unwrap();
        let mut line = LineData::zeroed(64);
        for i in 0..640u64 {
            line.xor_unit(0, 1 << (i % 60));
            lev.write_line(hot, &line).unwrap();
            assert_eq!(lev.peek_line(hot).unwrap(), line, "contents follow the gap");
        }
        assert_eq!(lev.stats().gap_moves, 64);
        assert!(
            lev.max_line_wear() < plain_max / 2,
            "leveled max wear {} vs unleveled {}",
            lev.max_line_wear(),
            plain_max
        );
        assert!(lev.worn_slots() >= 8, "wear spread across physical slots");
    }

    #[test]
    fn wear_leveling_preserves_all_contents() {
        let mut cfg = SchemeConfig::paper_baseline();
        cfg.org.capacity_bytes = 16 * 64;
        let mut mem = PcmMainMemory::with_wear_leveling(cfg, Box::new(DcwWrite), 3).unwrap();
        // Tag every line, churn, then verify.
        for i in 0..16u64 {
            let tag = LineData::from_units(&[i + 1; 8]);
            mem.write_line(i * 64, &tag).unwrap();
        }
        for round in 0..100u64 {
            let i = round % 16;
            let tag = LineData::from_units(&[i + 1; 8]);
            mem.write_line(i * 64, &tag).unwrap();
        }
        for i in 0..16u64 {
            assert_eq!(
                mem.peek_line(i * 64).unwrap(),
                LineData::from_units(&[i + 1; 8]),
                "line {i} contents survived rotation"
            );
        }
    }

    #[test]
    fn wrong_line_size_rejected() {
        let mut m = mem(Box::new(DcwWrite));
        let line = LineData::zeroed(128);
        assert!(matches!(
            m.write_line(0, &line),
            Err(PcmError::LineSizeMismatch { .. })
        ));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut m = mem(Box::new(DcwWrite));
        assert!(m.read_line(u64::MAX).is_err());
    }
}
