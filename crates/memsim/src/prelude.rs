//! One-stop imports for driving the simulator.
//!
//! The workspace splits the stack across several crates (types, schemes,
//! the Tetris scheduler, telemetry, the simulator itself); a typical
//! experiment or example needs a handful of names from each. Instead of
//! five `use` blocks, pull in the prelude:
//!
//! ```
//! use pcm_memsim::prelude::*;
//!
//! let cfg = SystemConfig::builder().small_caches().build().unwrap();
//! let scheme: Box<dyn WriteScheme> = Box::new(DcwWrite);
//! assert_eq!(scheme.name(), "DCW (baseline)");
//! assert!(cfg.validate().is_ok());
//! ```
//!
//! The prelude re-exports only names that are unambiguous across the
//! workspace; crate-specific detail (cache internals, the event engine,
//! analytic models) stays behind its module path.

pub use crate::config::{
    CacheConfig, CacheConfigBuilder, ConfigError, ControllerConfig, SystemConfig,
    SystemConfigBuilder, WriteCacheConfig,
};
pub use crate::content::{ExplicitContent, UniformRandomContent, WriteContent};
pub use crate::cpu::{RequestSource, TraceOp, VecTrace};
pub use crate::memory::{BatchOutcome, PcmMainMemory, WriteOutcome};
pub use crate::replacement::{ParsePolicyError, PolicySelect, ReplacementPolicy};
pub use crate::request::{AccessKind, MemRequest};
pub use crate::sched::SchedConfig;
pub use crate::shard::{Rank, RankPlan, ShardedSystem};
pub use crate::stats::{LatencyStats, SimResult};
pub use crate::system::{System, TraceLevel};
pub use crate::writecache::{WriteAdmit, WriteCache, WriteCacheStats};

pub use pcm_schemes::{
    ConventionalWrite, DcwWrite, FlipNWrite, PreSetWrite, SchemeConfig, SchemeConfigBuilder,
    SchemeSelect, ThreeStageWrite, TwoStageWrite, WriteCtx, WritePlan, WriteScheme,
};

pub use pcm_telemetry::{
    AsyncRankSink, AsyncTraceWriter, JsonlSink, MemorySink, NullSink, OpKind, RingBufferSink,
    Telemetry, TelemetryEvent, TraceDetail, TraceSummary,
};

pub use pcm_types::{
    LineData, LineDemand, PcmError, PcmTimings, PhysAddr, PicoJoules, PowerParams, Ps, UnitDemand,
};

pub use tetris_write::{analyze, render_gantt, TetrisConfig, TetrisWrite};
