//! Pluggable cache replacement: the eviction decision behind both the
//! demand hierarchy ([`crate::cache::Cache`]) and the DRAM write cache
//! ([`crate::writecache::WriteCache`]).
//!
//! The split mirrors a database buffer pool: the frame table owns
//! validity, tags and dirty bits, while a small [`ReplacementPolicy`]
//! trait owns *which occupied slot to give up*. Policies see caches as a
//! grid of `(set, way)` slots and are told about hits ([`touch`]), fills
//! ([`insert`]) and explicit removals ([`evict`]); [`victim`] picks among
//! the slots currently occupied. A fully-associative structure like the
//! write cache is simply `sets = 1`.
//!
//! Three classic policies are provided — true-LRU (bit-for-bit the
//! behaviour the hierarchy had when LRU was hard-coded), Clock
//! (second-chance, one reference bit per slot and a sweeping hand) and 2Q
//! (a probationary FIFO for once-touched lines plus an LRU main queue for
//! re-referenced ones) — registered in the [`PolicySelect`] registry,
//! which follows the same four-surface contract as
//! `pcm_schemes::SchemeSelect` (`ALL`, `tag()`, `Display`/`FromStr`,
//! `instantiate()`); the `registry-parity-generic` lint keeps the surfaces
//! in lockstep.
//!
//! [`touch`]: ReplacementPolicy::touch
//! [`insert`]: ReplacementPolicy::insert
//! [`evict`]: ReplacementPolicy::evict
//! [`victim`]: ReplacementPolicy::victim

use std::fmt;
use std::str::FromStr;

/// The eviction decision for a set-associative slot grid.
///
/// Contract: the owning cache calls [`insert`](Self::insert) when a slot
/// becomes occupied, [`touch`](Self::touch) on every hit,
/// [`evict`](Self::evict) when a slot is emptied *without* an immediate
/// refill (e.g. a write-cache drain), and [`victim`](Self::victim) only
/// when it needs to sacrifice an occupied slot. Overwriting a victim via
/// a fresh `insert` needs no intervening `evict`.
pub trait ReplacementPolicy: fmt::Debug + Send {
    /// Record a hit on an occupied slot.
    fn touch(&mut self, set: usize, way: usize);

    /// Record a fill: the slot is now occupied and most-recently used.
    /// Resets any per-slot policy state left by a previous tenant.
    fn insert(&mut self, set: usize, way: usize);

    /// Record an explicit removal: the slot is empty until re-inserted
    /// and must not be returned by [`victim`](Self::victim).
    fn evict(&mut self, set: usize, way: usize);

    /// Choose the occupied way in `set` to sacrifice. Returns way 0 if
    /// the set is empty (the caller never asks in that state).
    fn victim(&mut self, set: usize) -> usize;

    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Clone into a fresh box (lets caches stay `Clone`).
    fn clone_box(&self) -> Box<dyn ReplacementPolicy>;
}

impl Clone for Box<dyn ReplacementPolicy> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// True-LRU: a monotone stamp per slot, victim is the first occupied slot
/// with the minimal stamp — exactly the `min_by_key` the hierarchy used
/// when LRU was hard-coded, so the default policy is bit-for-bit
/// unchanged.
#[derive(Clone, Debug)]
pub struct LruPolicy {
    assoc: usize,
    stamp: Vec<u64>,
    present: Vec<bool>,
    tick: u64,
}

impl LruPolicy {
    /// A policy for `sets × assoc` slots, all initially empty.
    pub fn new(sets: usize, assoc: usize) -> Self {
        LruPolicy {
            assoc,
            stamp: vec![0; sets * assoc],
            present: vec![false; sets * assoc],
            tick: 0,
        }
    }
}

impl ReplacementPolicy for LruPolicy {
    fn touch(&mut self, set: usize, way: usize) {
        self.tick += 1;
        self.stamp[set * self.assoc + way] = self.tick;
    }

    fn insert(&mut self, set: usize, way: usize) {
        self.tick += 1;
        let i = set * self.assoc + way;
        self.stamp[i] = self.tick;
        self.present[i] = true;
    }

    fn evict(&mut self, set: usize, way: usize) {
        self.present[set * self.assoc + way] = false;
    }

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.assoc;
        (0..self.assoc)
            .filter(|w| self.present[base + w])
            .min_by_key(|w| self.stamp[base + w])
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "LRU"
    }

    fn clone_box(&self) -> Box<dyn ReplacementPolicy> {
        Box::new(self.clone())
    }
}

/// Clock (second-chance): one reference bit per slot, a hand per set.
/// The hand sweeps occupied slots, clearing reference bits; the first
/// unreferenced occupied slot it meets is the victim, so anything touched
/// since the last sweep survives one more revolution.
#[derive(Clone, Debug)]
pub struct ClockPolicy {
    assoc: usize,
    referenced: Vec<bool>,
    present: Vec<bool>,
    hand: Vec<usize>,
}

impl ClockPolicy {
    /// A policy for `sets × assoc` slots, all initially empty.
    pub fn new(sets: usize, assoc: usize) -> Self {
        ClockPolicy {
            assoc,
            referenced: vec![false; sets * assoc],
            present: vec![false; sets * assoc],
            hand: vec![0; sets],
        }
    }
}

impl ReplacementPolicy for ClockPolicy {
    fn touch(&mut self, set: usize, way: usize) {
        self.referenced[set * self.assoc + way] = true;
    }

    fn insert(&mut self, set: usize, way: usize) {
        let i = set * self.assoc + way;
        self.referenced[i] = true;
        self.present[i] = true;
    }

    fn evict(&mut self, set: usize, way: usize) {
        let i = set * self.assoc + way;
        self.present[i] = false;
        self.referenced[i] = false;
    }

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.assoc;
        if !(0..self.assoc).any(|w| self.present[base + w]) {
            return 0;
        }
        // At most two sweeps: the first clears every reference bit, the
        // second must find an unreferenced occupied slot.
        for _ in 0..2 * self.assoc {
            let w = self.hand[set];
            self.hand[set] = (w + 1) % self.assoc;
            if !self.present[base + w] {
                continue;
            }
            if self.referenced[base + w] {
                self.referenced[base + w] = false;
            } else {
                return w;
            }
        }
        0
    }

    fn name(&self) -> &'static str {
        "Clock"
    }

    fn clone_box(&self) -> Box<dyn ReplacementPolicy> {
        Box::new(self.clone())
    }
}

/// Per-slot queue membership for [`TwoQPolicy`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TwoQState {
    /// Slot is empty.
    Empty,
    /// Probationary FIFO: inserted, never re-referenced.
    A1,
    /// Main queue: re-referenced at least once, managed LRU.
    Am,
}

/// Simplified 2Q (Johnson & Shasha, VLDB'94): fresh fills enter a
/// probationary FIFO (`A1`); a hit promotes the slot to the main LRU
/// queue (`Am`). Victims come from the oldest `A1` slot while one exists
/// — so a line re-referenced since its fill is never sacrificed ahead of
/// a one-touch wonder — and only then from the LRU end of `Am`.
#[derive(Clone, Debug)]
pub struct TwoQPolicy {
    assoc: usize,
    state: Vec<TwoQState>,
    stamp: Vec<u64>,
    tick: u64,
}

impl TwoQPolicy {
    /// A policy for `sets × assoc` slots, all initially empty.
    pub fn new(sets: usize, assoc: usize) -> Self {
        TwoQPolicy {
            assoc,
            state: vec![TwoQState::Empty; sets * assoc],
            stamp: vec![0; sets * assoc],
            tick: 0,
        }
    }

    fn oldest(&self, set: usize, want: TwoQState) -> Option<usize> {
        let base = set * self.assoc;
        (0..self.assoc)
            .filter(|w| self.state[base + w] == want)
            .min_by_key(|w| self.stamp[base + w])
    }
}

impl ReplacementPolicy for TwoQPolicy {
    fn touch(&mut self, set: usize, way: usize) {
        self.tick += 1;
        let i = set * self.assoc + way;
        self.state[i] = TwoQState::Am;
        self.stamp[i] = self.tick;
    }

    fn insert(&mut self, set: usize, way: usize) {
        self.tick += 1;
        let i = set * self.assoc + way;
        self.state[i] = TwoQState::A1;
        self.stamp[i] = self.tick;
    }

    fn evict(&mut self, set: usize, way: usize) {
        self.state[set * self.assoc + way] = TwoQState::Empty;
    }

    fn victim(&mut self, set: usize) -> usize {
        self.oldest(set, TwoQState::A1)
            .or_else(|| self.oldest(set, TwoQState::Am))
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "2Q"
    }

    fn clone_box(&self) -> Box<dyn ReplacementPolicy> {
        Box::new(self.clone())
    }
}

/// Which replacement policy a cache instantiates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum PolicySelect {
    /// True-LRU — the hierarchy's historical (and default) behaviour.
    #[default]
    Lru,
    /// Clock / second-chance.
    Clock,
    /// 2Q: probationary FIFO + main LRU queue.
    TwoQ,
}

impl PolicySelect {
    /// Every policy, in presentation order — the registry surface for
    /// sweeps and registry-driven tests that must cover all of them.
    pub const ALL: [PolicySelect; 3] = [PolicySelect::Lru, PolicySelect::Clock, PolicySelect::TwoQ];

    /// Stable lowercase tag (CLI / JSON).
    pub const fn tag(&self) -> &'static str {
        match self {
            PolicySelect::Lru => "lru",
            PolicySelect::Clock => "clock",
            PolicySelect::TwoQ => "2q",
        }
    }

    /// Construct the policy this tag selects, sized for `sets × assoc`
    /// slots. The single factory every cache goes through.
    pub fn instantiate(&self, sets: usize, assoc: usize) -> Box<dyn ReplacementPolicy> {
        match self {
            PolicySelect::Lru => Box::new(LruPolicy::new(sets, assoc)),
            PolicySelect::Clock => Box::new(ClockPolicy::new(sets, assoc)),
            PolicySelect::TwoQ => Box::new(TwoQPolicy::new(sets, assoc)),
        }
    }
}

impl fmt::Display for PolicySelect {
    /// Renders the stable [`PolicySelect::tag`]; round-trips through
    /// [`FromStr`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// Error from parsing a [`PolicySelect`] tag that names no policy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsePolicyError {
    /// The input that failed to parse.
    pub input: String,
}

impl fmt::Display for ParsePolicyError {
    /// The valid-tag list is derived from [`PolicySelect::ALL`] so it can
    /// never drift as the registry grows.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown policy '{}' (expected one of ", self.input)?;
        for (i, p) in PolicySelect::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(p.tag())?;
        }
        f.write_str(")")
    }
}

impl std::error::Error for ParsePolicyError {}

impl FromStr for PolicySelect {
    type Err = ParsePolicyError;

    /// Parse a policy tag, case-insensitively. The canonical tags from
    /// [`PolicySelect::tag`] always parse (so `Display` → `FromStr`
    /// round-trips); common literature spellings are accepted as aliases.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "lru" | "least-recently-used" => Ok(PolicySelect::Lru),
            "clock" | "second-chance" => Ok(PolicySelect::Clock),
            "2q" | "twoq" | "two-queue" => Ok(PolicySelect::TwoQ),
            _ => Err(ParsePolicyError { input: s.into() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive `(set=0, assoc=4)` through fills of ways 0..4.
    fn filled(p: &mut dyn ReplacementPolicy) {
        for w in 0..4 {
            p.insert(0, w);
        }
    }

    #[test]
    fn lru_victim_is_least_recently_used() {
        let mut p = LruPolicy::new(1, 4);
        filled(&mut p);
        p.touch(0, 0); // order now: 1, 2, 3, 0
        assert_eq!(p.victim(0), 1);
        p.touch(0, 1);
        assert_eq!(p.victim(0), 2);
    }

    #[test]
    fn lru_evict_frees_the_slot() {
        let mut p = LruPolicy::new(1, 4);
        filled(&mut p);
        p.evict(0, 0); // oldest slot emptied — not a victim candidate
        assert_eq!(p.victim(0), 1);
        p.insert(0, 0); // refilled — now the newest
        assert_eq!(p.victim(0), 1);
    }

    #[test]
    fn clock_grants_second_chance() {
        let mut p = ClockPolicy::new(1, 4);
        filled(&mut p);
        // Every slot is referenced; the first sweep clears 0..3 and the
        // second evicts way 0.
        assert_eq!(p.victim(0), 0);
        p.insert(0, 0);
        // Way 1's bit was cleared by the sweep; an untouched way 1 is the
        // next victim, but a re-referenced one survives.
        p.touch(0, 1);
        assert_eq!(p.victim(0), 2);
    }

    #[test]
    fn clock_skips_emptied_slots() {
        let mut p = ClockPolicy::new(1, 4);
        filled(&mut p);
        p.evict(0, 0);
        let v = p.victim(0);
        assert_ne!(v, 0);
        assert!(v < 4);
    }

    #[test]
    fn two_q_sacrifices_probation_before_main() {
        let mut p = TwoQPolicy::new(1, 4);
        filled(&mut p);
        p.touch(0, 0); // promote way 0 to Am
                       // Oldest A1 slot is way 1 — the re-referenced way 0 survives.
        assert_eq!(p.victim(0), 1);
        p.touch(0, 1);
        p.touch(0, 2);
        p.touch(0, 3);
        // All promoted: fall back to LRU over Am — way 0 is now oldest.
        assert_eq!(p.victim(0), 0);
    }

    #[test]
    fn registry_instantiates_every_policy() {
        for (sel, name) in [
            (PolicySelect::Lru, "LRU"),
            (PolicySelect::Clock, "Clock"),
            (PolicySelect::TwoQ, "2Q"),
        ] {
            assert_eq!(sel.instantiate(4, 2).name(), name, "select {sel:?}");
        }
    }

    #[test]
    fn default_policy_is_lru() {
        assert_eq!(PolicySelect::default(), PolicySelect::Lru);
    }

    #[test]
    fn fromstr_accepts_aliases_case_insensitively() {
        for (alias, want) in [
            ("LRU", PolicySelect::Lru),
            ("least-recently-used", PolicySelect::Lru),
            ("Second-Chance", PolicySelect::Clock),
            ("2Q", PolicySelect::TwoQ),
            ("two-queue", PolicySelect::TwoQ),
        ] {
            assert_eq!(alias.parse::<PolicySelect>(), Ok(want), "{alias}");
        }
        let err = "bogus".parse::<PolicySelect>().unwrap_err();
        assert_eq!(err.input, "bogus");
        // The message is derived from ALL — every canonical tag appears.
        for p in PolicySelect::ALL {
            assert!(err.to_string().contains(p.tag()), "lists {}", p.tag());
        }
    }

    pcm_types::propcheck! {
        /// Display → FromStr is the identity over the whole registry,
        /// in any ASCII case.
        fn display_fromstr_roundtrip(i in 0usize..3, upper in pcm_types::propcheck::any_bool()) {
            let policy = PolicySelect::ALL[i];
            let mut tag = policy.to_string();
            pcm_types::prop_assert_eq!(tag.as_str(), policy.tag());
            if upper {
                tag = tag.to_ascii_uppercase();
            }
            pcm_types::prop_assert_eq!(tag.parse::<PolicySelect>(), Ok(policy));
        }

        /// Whatever the interleaving of fills/touches/evicts, `victim`
        /// never names an emptied slot and stays within the set.
        fn victim_is_always_an_occupied_slot(seed in pcm_types::propcheck::any_u64()) {
            let mut rng = pcm_types::rng::SplitMix64::new(seed);
            for sel in PolicySelect::ALL {
                let (sets, assoc) = (2usize, 4usize);
                let mut p = sel.instantiate(sets, assoc);
                let mut occupied = vec![false; sets * assoc];
                for _ in 0..64 {
                    let set = (rng.next_u64() % sets as u64) as usize;
                    let way = (rng.next_u64() % assoc as u64) as usize;
                    match rng.next_u64() % 3 {
                        0 => {
                            p.insert(set, way);
                            occupied[set * assoc + way] = true;
                        }
                        1 if occupied[set * assoc + way] => p.touch(set, way),
                        2 if occupied[set * assoc + way] => {
                            p.evict(set, way);
                            occupied[set * assoc + way] = false;
                        }
                        _ => {}
                    }
                    if occupied[set * assoc..(set + 1) * assoc].iter().any(|o| *o) {
                        let v = p.victim(set);
                        pcm_types::prop_assert!(v < assoc, "{sel}: victim in range");
                        pcm_types::prop_assert!(
                            occupied[set * assoc + v],
                            "{sel}: victim {v} in set {set} is occupied"
                        );
                    }
                }
            }
        }
    }
}
