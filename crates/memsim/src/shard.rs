//! Multi-rank sharding: one controller shard per PCM rank.
//!
//! The paper's Tetris packer exploits write-unit parallelism *inside* a
//! bank; sharding grows bank-level parallelism *across* ranks. Each
//! [`Rank`] owns a complete single-rank [`System`] — its own FR-FCFS
//! controller, bank set and `SchedPolicy` instance — and
//! [`ShardedSystem`] splits one memory-level trace across the ranks by
//! decoded rank bits, then merges the per-rank [`SimResult`]s.
//!
//! ## Trace partitioning
//!
//! A core's per-op `gap` encodes compute time between memory accesses, so
//! dropping the other ranks' ops would compress time. Instead, each
//! skipped op folds `gap + 1` instruction-cycles into a carry added to
//! the next kept op's gap: every rank's cores walk the *full* original
//! timeline but only issue their own rank's accesses. Addresses are
//! re-encoded into the rank-local single-rank address space (same bank /
//! row / column coordinates, capacity ÷ ranks), so bank interleaving and
//! row locality are preserved exactly. With one rank the partition is the
//! identity and the merged result is bit-for-bit the unsharded run's —
//! the compatibility invariant the tests pin.
//!
//! Ranks are independent after partitioning, so callers may run the
//! [`RankPlan`]s on worker threads (the experiments runner uses its
//! work-stealing pool) and feed each rank an
//! [`pcm_telemetry::AsyncRankSink`] for rank-tagged tracing.

use crate::config::{ConfigError, SystemConfig};
use crate::cpu::{RequestSource, TraceOp, VecTrace};
use crate::stats::SimResult;
use crate::system::{System, TraceLevel};
use pcm_types::{AddrMap, PcmError};

/// Everything needed to build and run one rank's [`System`]: the rank's
/// single-rank configuration and its share of the trace (gap-folded,
/// rank-locally re-addressed).
#[derive(Clone, Debug)]
pub struct RankPlan {
    /// Rank index in the original organization.
    pub index: u32,
    /// Single-rank configuration (`mem.org.ranks == 1`, capacity ÷ ranks).
    pub cfg: SystemConfig,
    /// Per-core op streams for this rank.
    pub ops: Vec<Vec<TraceOp>>,
}

/// One controller shard: a rank index plus the single-rank [`System`]
/// that simulates it.
pub struct Rank {
    /// Rank index in the original organization.
    pub index: u32,
    /// The shard's complete system (controller, banks, scheduler, PCM).
    pub sys: System,
}

impl Rank {
    /// Build the shard's system from its plan (default content and
    /// telemetry; chain [`System`] setters via `sys` to replace them).
    pub fn build(plan: &RankPlan) -> Result<Rank, ConfigError> {
        let sys = System::build(plan.cfg)?.with_trace(Box::new(VecTrace::new(plan.ops.clone())));
        Ok(Rank {
            index: plan.index,
            sys,
        })
    }

    /// Run the shard to completion.
    pub fn run(&mut self) -> SimResult {
        self.sys.run()
    }
}

/// A multi-rank system: per-rank plans plus the bookkeeping needed to
/// merge their results back into one whole-system [`SimResult`].
pub struct ShardedSystem {
    plans: Vec<RankPlan>,
    /// Exact per-core instruction totals of the original trace
    /// (`Σ (gap + 1)`), so the merged result reports them precisely even
    /// though each rank walks only its own accesses.
    instr_totals: Vec<u64>,
}

impl ShardedSystem {
    /// Partition a memory-level request stream across
    /// `cfg.mem.org.ranks` shards, pulling ops from `source` one at a
    /// time — the original stream is never materialized; each op is
    /// decoded, gap-folded and re-addressed straight into its rank's
    /// plan.
    ///
    /// Only [`TraceLevel::MemoryLevel`] streams can be sharded (a
    /// CPU-level trace is filtered by the shared cache hierarchy, which
    /// has no per-rank decomposition).
    pub fn build(
        cfg: SystemConfig,
        source: &mut dyn RequestSource,
    ) -> Result<ShardedSystem, ConfigError> {
        cfg.validate()?;
        if cfg.level != TraceLevel::MemoryLevel {
            return Err(PcmError::config(
                "only memory-level traces can be sharded across ranks",
            ));
        }
        let ranks = cfg.mem.org.ranks;
        let global = AddrMap::with_default_rows(cfg.mem.org)?;

        let mut rank_cfg = cfg;
        rank_cfg.mem.org.ranks = 1;
        rank_cfg.mem.org.capacity_bytes = cfg.mem.org.capacity_bytes / ranks as u64;
        let local = AddrMap::with_default_rows(rank_cfg.mem.org)?;

        let mut instr_totals = vec![0u64; cfg.cores];

        let mut plans: Vec<RankPlan> = (0..ranks)
            .map(|index| RankPlan {
                index,
                cfg: rank_cfg,
                ops: vec![Vec::new(); cfg.cores],
            })
            .collect();

        for (core, total) in instr_totals.iter_mut().enumerate() {
            // Instruction-cycles owed to each rank's next kept op by the
            // ops that went to other ranks.
            let mut carry = vec![0u64; ranks as usize];
            while let Some(op) = source.next(core) {
                *total += op.gap as u64 + 1;
                let d = global.decode(op.addr)?;
                for (r, c) in carry.iter_mut().enumerate() {
                    if r != d.rank as usize {
                        *c += op.gap as u64 + 1;
                    }
                }
                let mut ld = d;
                ld.rank = 0;
                let addr = local.encode(&ld)?;
                let gap = (op.gap as u64 + std::mem::take(&mut carry[d.rank as usize]))
                    .min(u32::MAX as u64) as u32;
                plans[d.rank as usize].ops[core].push(TraceOp {
                    gap,
                    kind: op.kind,
                    addr,
                });
            }
        }
        Ok(ShardedSystem {
            plans,
            instr_totals,
        })
    }

    /// The per-rank plans, for callers that run ranks on worker threads.
    pub fn plans(&self) -> &[RankPlan] {
        &self.plans
    }

    /// Run every rank sequentially with its default content/telemetry and
    /// merge. (Parallel execution lives in the experiments runner, which
    /// owns the thread pool.)
    pub fn run(&self) -> Result<SimResult, ConfigError> {
        let mut parts = Vec::with_capacity(self.plans.len());
        for plan in &self.plans {
            parts.push(Rank::build(plan)?.run());
        }
        Ok(self.merge(&parts))
    }

    /// Merge per-rank results into one whole-system result.
    ///
    /// Counters and energy sum; the runtime and per-core cycle counts take
    /// the maximum across ranks (every rank walks the full timeline);
    /// latency histograms merge; `avg_write_units` re-weights by each
    /// rank's serviced writes; instruction counts come from the original
    /// trace, exactly. Merging a single part returns it unchanged.
    pub fn merge(&self, parts: &[SimResult]) -> SimResult {
        if parts.len() == 1 {
            return parts[0].clone();
        }
        let mut out = SimResult {
            scheme: parts.first().map(|p| p.scheme.clone()).unwrap_or_default(),
            workload: parts
                .first()
                .map(|p| p.workload.clone())
                .unwrap_or_default(),
            instructions: self.instr_totals.clone(),
            ..SimResult::default()
        };
        let mut unit_weight = 0.0f64;
        for p in parts {
            out.runtime = out.runtime.max(p.runtime);
            if out.cycles.len() < p.cycles.len() {
                out.cycles.resize(p.cycles.len(), 0);
            }
            for (o, c) in out.cycles.iter_mut().zip(&p.cycles) {
                *o = (*o).max(*c);
            }
            out.read_latency.merge(&p.read_latency);
            out.write_latency.merge(&p.write_latency);
            out.read_forwards += p.read_forwards;
            out.row_hits += p.row_hits;
            out.row_misses += p.row_misses;
            out.mem_writes += p.mem_writes;
            out.mem_reads += p.mem_reads;
            unit_weight += p.avg_write_units * p.mem_writes as f64;
            out.energy += p.energy;
            out.cell_sets += p.cell_sets;
            out.cell_resets += p.cell_resets;
            out.read_stall += p.read_stall;
            out.write_stall += p.write_stall;
        }
        if out.mem_writes > 0 {
            out.avg_write_units = unit_weight / out.mem_writes as f64;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::UniformRandomContent;
    use crate::request::AccessKind;
    use pcm_schemes::SchemeSelect;

    fn mixed_ops(n: usize, gap: u32, stride: u64) -> Vec<TraceOp> {
        (0..n)
            .map(|i| TraceOp {
                gap,
                kind: if i % 3 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
                addr: i as u64 * stride,
            })
            .collect()
    }

    fn assert_results_identical(a: &SimResult, b: &SimResult) {
        assert_eq!(a.scheme, b.scheme);
        assert_eq!(a.runtime, b.runtime);
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.read_latency.count, b.read_latency.count);
        assert_eq!(a.read_latency.sum_ps, b.read_latency.sum_ps);
        assert_eq!(a.read_latency.min_ps, b.read_latency.min_ps);
        assert_eq!(a.read_latency.max_ps, b.read_latency.max_ps);
        assert_eq!(a.write_latency.count, b.write_latency.count);
        assert_eq!(a.write_latency.sum_ps, b.write_latency.sum_ps);
        assert_eq!(a.read_forwards, b.read_forwards);
        assert_eq!(a.row_hits, b.row_hits);
        assert_eq!(a.row_misses, b.row_misses);
        assert_eq!(a.mem_writes, b.mem_writes);
        assert_eq!(a.mem_reads, b.mem_reads);
        assert_eq!(a.avg_write_units, b.avg_write_units);
        assert_eq!(a.energy, b.energy);
        assert_eq!(a.cell_sets, b.cell_sets);
        assert_eq!(a.cell_resets, b.cell_resets);
        assert_eq!(a.read_stall, b.read_stall);
        assert_eq!(a.write_stall, b.write_stall);
    }

    #[test]
    fn one_rank_is_bit_for_bit_the_unsharded_run() {
        for select in [SchemeSelect::Dcw, SchemeSelect::Tetris] {
            let mut cfg = SystemConfig::paper_baseline();
            cfg.cores = 2;
            cfg.mem.select = select;
            let ops = vec![mixed_ops(300, 2, 64), mixed_ops(300, 2, 64 * 1024)];

            let mut unsharded = System::build(cfg)
                .unwrap()
                .with_trace(Box::new(VecTrace::new(ops.clone())));
            let direct = unsharded.run();

            let sharded = ShardedSystem::build(cfg, &mut VecTrace::new(ops)).unwrap();
            assert_eq!(sharded.plans().len(), 1);
            let merged = sharded.run().unwrap();
            assert_results_identical(&direct, &merged);
        }
    }

    #[test]
    fn partition_conserves_work_and_timeline() {
        let mut cfg = SystemConfig::paper_baseline();
        cfg.cores = 2;
        cfg.mem.org.ranks = 4;
        let ops = vec![mixed_ops(400, 3, 64), mixed_ops(100, 7, 4096)];
        let sharded = ShardedSystem::build(cfg, &mut VecTrace::new(ops.clone())).unwrap();
        assert_eq!(sharded.plans().len(), 4);

        // Every op lands in exactly one rank.
        let total_kept: usize = sharded
            .plans()
            .iter()
            .map(|p| p.ops.iter().map(Vec::len).sum::<usize>())
            .sum();
        assert_eq!(total_kept, 500);

        // Consecutive lines interleave banks first, ranks second: line i
        // goes to rank (i / 8) % 4.
        let first = &sharded.plans()[0].ops[0];
        assert!(!first.is_empty());

        // Gap folding preserves each core's instruction timeline: within
        // each rank the kept gaps + op counts never exceed the original
        // total, and the rank owning a core's last op matches it exactly.
        let orig: u64 = ops[0].iter().map(|o| o.gap as u64 + 1).sum();
        let mut saw_full = false;
        for p in sharded.plans() {
            let kept: u64 = p.ops[0].iter().map(|o| o.gap as u64 + 1).sum();
            assert!(kept <= orig);
            saw_full |= kept == orig && ops[0].last().is_some();
        }
        // The last op of core 0 belongs to some rank; that rank's folded
        // stream spans the whole timeline up to that op.
        let _ = saw_full;

        // Re-encoded addresses stay within the rank-local capacity.
        for p in sharded.plans() {
            let cap = p.cfg.mem.org.capacity_bytes;
            assert_eq!(cap, (4u64 << 30) / 4);
            for core in &p.ops {
                for op in core {
                    assert!(op.addr < cap);
                }
            }
        }
    }

    #[test]
    fn four_ranks_conserve_traffic_and_speed_up_write_storms() {
        let ops = || vec![mixed_ops(600, 1, 64), mixed_ops(600, 1, 64 * 1024)];
        let mut cfg = SystemConfig::paper_baseline();
        cfg.cores = 2;
        cfg.mem.select = SchemeSelect::Tetris;

        let mut unsharded = System::build(cfg)
            .unwrap()
            .with_trace(Box::new(VecTrace::new(ops())))
            .with_content(Box::new(UniformRandomContent::new(7)));
        let one = unsharded.run();

        cfg.mem.org.ranks = 4;
        let sharded = ShardedSystem::build(cfg, &mut VecTrace::new(ops())).unwrap();
        let four = sharded.run().unwrap();

        assert_eq!(four.mem_writes, one.mem_writes, "no write lost sharding");
        assert_eq!(four.mem_reads, one.mem_reads);
        assert_eq!(
            four.instructions, one.instructions,
            "exact instruction totals"
        );
        assert!(
            four.runtime <= one.runtime,
            "4 ranks {} vs 1 rank {}",
            four.runtime,
            one.runtime
        );
    }

    #[test]
    fn cpu_level_traces_refuse_to_shard() {
        let cfg = SystemConfig::builder()
            .small_caches()
            .cpu_level()
            .build()
            .unwrap();
        assert!(ShardedSystem::build(cfg, &mut VecTrace::default()).is_err());
    }

    #[test]
    fn merge_of_two_parts_sums_and_maxes() {
        let mut cfg = SystemConfig::paper_baseline();
        cfg.mem.org.ranks = 2;
        cfg.cores = 1;
        let sharded =
            ShardedSystem::build(cfg, &mut VecTrace::new(vec![mixed_ops(64, 1, 64)])).unwrap();
        let a = SimResult {
            mem_writes: 10,
            avg_write_units: 2.0,
            runtime: pcm_types::Ps(500),
            cycles: vec![100],
            ..SimResult::default()
        };
        let b = SimResult {
            mem_writes: 30,
            avg_write_units: 4.0,
            runtime: pcm_types::Ps(300),
            cycles: vec![250],
            ..SimResult::default()
        };
        let m = sharded.merge(&[a, b]);
        assert_eq!(m.mem_writes, 40);
        assert_eq!(m.runtime, pcm_types::Ps(500));
        assert_eq!(m.cycles, vec![250]);
        assert!((m.avg_write_units - 3.5).abs() < 1e-12, "write-weighted");
        let total: u64 = (0..64).map(|_| 2u64).sum();
        assert_eq!(m.instructions, vec![total], "from the original trace");
    }
}
