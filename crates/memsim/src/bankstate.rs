//! Per-bank state: busy tracking and an open-row buffer.

use crate::config::ControllerConfig;
use pcm_types::{PcmTimings, Ps};

/// One PCM bank's controller-visible state.
#[derive(Clone, Copy, Debug, Default)]
pub struct BankState {
    busy_until: Ps,
    open_row: Option<u64>,
    busy_total: Ps,
    partition_busy_total: u64,
    /// Row-buffer hits serviced.
    pub row_hits: u64,
    /// Row-buffer misses serviced.
    pub row_misses: u64,
}

impl BankState {
    /// Is the bank free at `now`?
    pub fn is_free(&self, now: Ps) -> bool {
        self.busy_until <= now
    }

    /// When the bank frees up.
    pub fn busy_until(&self) -> Ps {
        self.busy_until
    }

    /// Cumulative time spent (or scheduled) busy; interrupting an
    /// operation retracts its unrun tail, so after a run this is exactly
    /// the time the bank's array was occupied.
    pub fn busy_total(&self) -> Ps {
        self.busy_total
    }

    /// Cumulative intra-bank partitions driven by writes serviced here
    /// (PALP-style plans; stays 0 for schemes without a partition model).
    /// A proxy for partition-level disturb/wear pressure.
    pub fn partition_busy_total(&self) -> u64 {
        self.partition_busy_total
    }

    /// Record the partition occupancy of a write just issued to this bank.
    pub fn note_partitions(&mut self, partitions: u32) {
        self.partition_busy_total += partitions as u64;
    }

    /// Currently open row.
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// Would a request to `row` hit the row buffer?
    pub fn is_row_hit(&self, row: u64) -> bool {
        self.open_row == Some(row)
    }

    /// Service a read of `row`: row-buffer hit or array read, plus bus.
    /// Marks the bank busy and returns the completion time.
    pub fn begin_read(
        &mut self,
        now: Ps,
        row: u64,
        timings: &PcmTimings,
        ctrl: &ControllerConfig,
    ) -> Ps {
        let service = if self.is_row_hit(row) {
            self.row_hits += 1;
            ctrl.t_row_hit
        } else {
            self.row_misses += 1;
            timings.t_read + ctrl.t_bus
        };
        self.open_row = Some(row);
        self.busy_until = now + service;
        self.busy_total += service;
        self.busy_until
    }

    /// Occupy the bank for a write of the given service time; the written
    /// row becomes the open row.
    pub fn begin_write(&mut self, now: Ps, row: u64, service: Ps) -> Ps {
        self.open_row = Some(row);
        self.busy_until = now + service;
        self.busy_total += service;
        self.busy_until
    }

    /// Abort the current operation (write pausing): the bank frees at
    /// `now`. The caller is responsible for rescheduling the remainder.
    pub fn interrupt(&mut self, now: Ps) {
        self.busy_total = self
            .busy_total
            .saturating_sub(self.busy_until.saturating_sub(now));
        self.busy_until = now;
    }

    /// Bank indices sorted least-utilized-first (cumulative busy time,
    /// then cumulative partition occupancy, ties broken by index so the
    /// order is deterministic). The steering policy visits free banks in
    /// this order to flatten the per-bank utilization spread; the
    /// partition key only matters for partition-parallel schemes, where
    /// equal-busy banks are told apart by disturb pressure.
    pub fn least_utilized_order(banks: &[BankState]) -> Vec<usize> {
        let mut order: Vec<usize> = (0..banks.len()).collect();
        order.sort_by_key(|&i| (banks[i].busy_total(), banks[i].partition_busy_total(), i));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_hit_is_faster() {
        let t = PcmTimings::paper_baseline();
        let c = ControllerConfig::default();
        let mut b = BankState::default();
        let done1 = b.begin_read(Ps::ZERO, 7, &t, &c);
        assert_eq!(done1, Ps::from_ns(60), "miss: 50 ns array + 10 ns bus");
        assert_eq!(b.row_misses, 1);
        let done2 = b.begin_read(done1, 7, &t, &c);
        assert_eq!(done2 - done1, Ps::from_ns(15), "hit: 15 ns");
        assert_eq!(b.row_hits, 1);
    }

    #[test]
    fn busy_tracking() {
        let mut b = BankState::default();
        assert!(b.is_free(Ps::ZERO));
        b.begin_write(Ps::ZERO, 3, Ps::from_ns(430));
        assert!(!b.is_free(Ps::from_ns(100)));
        assert!(b.is_free(Ps::from_ns(430)));
        assert_eq!(b.open_row(), Some(3));
    }

    #[test]
    fn busy_total_retracts_interrupted_tail() {
        let mut b = BankState::default();
        b.begin_write(Ps::ZERO, 1, Ps::from_ns(430));
        assert_eq!(b.busy_total(), Ps::from_ns(430));
        // Pause at 100 ns: the 330 ns unrun tail is retracted.
        b.interrupt(Ps::from_ns(100));
        assert_eq!(b.busy_total(), Ps::from_ns(100));
        // Resume for the remainder.
        b.begin_write(Ps::from_ns(160), 1, Ps::from_ns(330));
        assert_eq!(b.busy_total(), Ps::from_ns(430));
    }

    #[test]
    fn least_utilized_order_sorts_by_busy_total_then_index() {
        let mut banks = vec![BankState::default(); 4];
        banks[0].begin_write(Ps::ZERO, 0, Ps::from_ns(300));
        banks[1].begin_write(Ps::ZERO, 0, Ps::from_ns(100));
        banks[3].begin_write(Ps::ZERO, 0, Ps::from_ns(100));
        // bank 2 idle (0 ns) < banks 1,3 (100 ns, index tiebreak) < bank 0.
        assert_eq!(BankState::least_utilized_order(&banks), vec![2, 1, 3, 0]);
        // Partition pressure breaks the 1-vs-3 busy tie the other way.
        banks[1].note_partitions(4);
        assert_eq!(banks[1].partition_busy_total(), 4);
        assert_eq!(BankState::least_utilized_order(&banks), vec![2, 3, 1, 0]);
        assert_eq!(
            BankState::least_utilized_order(&[]),
            Vec::<usize>::new(),
            "empty bank set"
        );
    }

    #[test]
    fn write_opens_row_for_following_read() {
        let t = PcmTimings::paper_baseline();
        let c = ControllerConfig::default();
        let mut b = BankState::default();
        let done = b.begin_write(Ps::ZERO, 9, Ps::from_ns(430));
        let done2 = b.begin_read(done, 9, &t, &c);
        assert_eq!(done2 - done, c.t_row_hit);
    }
}
