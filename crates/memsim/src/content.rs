//! Write-content models.
//!
//! Tracking every store's bytes through three cache levels would be
//! expensive and is irrelevant to the write schemes, which only see the
//! old-vs-new bit deltas at the memory controller. Instead, the new line
//! contents are synthesized *at memory-write time* from the old logical
//! contents by a [`WriteContent`] model; the `pcm-workloads` crate provides
//! models calibrated to the paper's Fig. 3 per-workload SET/RESET
//! statistics (see DESIGN.md §5).

use pcm_types::rng::{Rng, SmallRng};
use pcm_types::LineData;

/// Synthesizes the new contents of a line being written back.
pub trait WriteContent: Send {
    /// Produce the new logical line given the old logical contents.
    fn generate(&mut self, core: usize, old_logical: &LineData) -> LineData;
}

/// Replaces the line with uniform random bits (worst-case-ish content:
/// ~50% of bits change). Useful for stress tests.
#[derive(Debug)]
pub struct UniformRandomContent {
    rng: SmallRng,
}

impl UniformRandomContent {
    /// Seeded model (deterministic).
    pub fn new(seed: u64) -> Self {
        UniformRandomContent {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl WriteContent for UniformRandomContent {
    fn generate(&mut self, _core: usize, old_logical: &LineData) -> LineData {
        let mut out = *old_logical;
        for i in 0..out.num_units() {
            out.set_unit(i, self.rng.gen());
        }
        out
    }
}

/// Always writes a fixed payload (for API users and deterministic tests).
#[derive(Debug, Clone)]
pub struct ExplicitContent {
    line: LineData,
}

impl ExplicitContent {
    /// Model that always produces `line`.
    pub fn new(line: LineData) -> Self {
        ExplicitContent { line }
    }
}

impl WriteContent for ExplicitContent {
    fn generate(&mut self, _core: usize, _old_logical: &LineData) -> LineData {
        self.line
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_types::hamming;

    #[test]
    fn uniform_random_changes_about_half() {
        let mut m = UniformRandomContent::new(42);
        let old = LineData::zeroed(64);
        let new = m.generate(0, &old);
        let changed = hamming(&old, &new);
        assert!(
            (150..=360).contains(&changed),
            "~50% of 512 bits: {changed}"
        );
    }

    #[test]
    fn uniform_random_is_deterministic() {
        let old = LineData::zeroed(64);
        let a = UniformRandomContent::new(7).generate(0, &old);
        let b = UniformRandomContent::new(7).generate(0, &old);
        assert_eq!(a, b);
    }

    #[test]
    fn explicit_returns_payload() {
        let line = LineData::from_units(&[9; 8]);
        let mut m = ExplicitContent::new(line);
        assert_eq!(m.generate(3, &LineData::zeroed(64)), line);
    }
}
