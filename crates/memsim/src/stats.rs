//! Simulation statistics.

use pcm_types::{Json, JsonCodec, JsonError, PicoJoules, Ps};

/// Histogram geometry: `SUB` sub-buckets per octave over `OCTAVES`
/// power-of-two ranges of nanoseconds (1 ns … ~16 ms).
const OCTAVES: usize = 24;
/// Sub-buckets per octave.
const SUB: usize = 4;
/// Total histogram buckets.
const BUCKETS: usize = OCTAVES * SUB;

/// Map a latency to its log-scale bucket.
fn bucket_of(ps: u64) -> usize {
    let ns = (ps / 1_000).max(1);
    let octave = (63 - ns.leading_zeros()) as usize; // floor(log2 ns)
    let base = 1u64 << octave;
    let sub = ((ns - base) * SUB as u64 / base) as usize;
    (octave * SUB + sub).min(BUCKETS - 1)
}

/// Lower edge (ns) of a bucket.
fn bucket_floor_ns(b: usize) -> u64 {
    let octave = b / SUB;
    let sub = b % SUB;
    let base = 1u64 << octave;
    base + base * sub as u64 / SUB as u64
}

/// Streaming latency statistics: count / mean / min / max plus a
/// log-bucketed histogram for percentiles.
#[derive(Clone, Debug, Default)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples (ps).
    pub sum_ps: u64,
    /// Smallest sample (ps); 0 when empty.
    pub min_ps: u64,
    /// Largest sample (ps).
    pub max_ps: u64,
    /// Log-scale histogram buckets (empty until the first sample).
    buckets: Vec<u64>,
}

impl LatencyStats {
    /// Record one latency sample.
    pub fn record(&mut self, latency: Ps) {
        let v = latency.as_ps();
        if self.count == 0 || v < self.min_ps {
            self.min_ps = v;
        }
        if v > self.max_ps {
            self.max_ps = v;
        }
        self.count += 1;
        self.sum_ps += v;
        if self.buckets.is_empty() {
            self.buckets = vec![0; BUCKETS];
        }
        self.buckets[bucket_of(v)] += 1;
    }

    /// Approximate percentile (`p` in [0, 1]) in nanoseconds, from the
    /// log-scale histogram (resolution ~25% of the value; exact min/max
    /// are tracked separately).
    pub fn percentile_ns(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((self.count as f64) * p.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_floor_ns(b) as f64;
            }
        }
        self.max_ps as f64 / 1_000.0
    }

    /// Mean latency in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ps as f64 / self.count as f64 / 1_000.0
        }
    }

    /// Merge another stats block into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 || other.min_ps < self.min_ps {
            self.min_ps = other.min_ps;
        }
        if other.max_ps > self.max_ps {
            self.max_ps = other.max_ps;
        }
        self.count += other.count;
        self.sum_ps += other.sum_ps;
        if !other.buckets.is_empty() {
            if self.buckets.is_empty() {
                self.buckets = vec![0; BUCKETS];
            }
            for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
                *a += b;
            }
        }
    }
}

impl JsonCodec for LatencyStats {
    /// The histogram is included, so percentiles survive a round trip
    /// through `results_full.json`.
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", Json::UInt(self.count)),
            ("sum_ps", Json::UInt(self.sum_ps)),
            ("min_ps", Json::UInt(self.min_ps)),
            ("max_ps", Json::UInt(self.max_ps)),
            ("buckets", Json::u64_array(&self.buckets)),
        ])
    }

    /// Missing fields default to zero/empty (forward compatibility), so
    /// this never fails on object input.
    fn from_json(j: &Json) -> Result<LatencyStats, JsonError> {
        let u = |k: &str| j.get(k).and_then(Json::as_u64).unwrap_or(0);
        let buckets = j
            .get("buckets")
            .and_then(Json::as_array)
            .map(|a| a.iter().filter_map(Json::as_u64).collect())
            .unwrap_or_default();
        Ok(LatencyStats {
            count: u("count"),
            sum_ps: u("sum_ps"),
            min_ps: u("min_ps"),
            max_ps: u("max_ps"),
            buckets,
        })
    }
}

/// Result of one full-system simulation run.
#[derive(Clone, Debug, Default)]
pub struct SimResult {
    /// Scheme under test.
    pub scheme: String,
    /// Workload name.
    pub workload: String,
    /// Wall-clock of the simulated run (last core retires).
    pub runtime: Ps,
    /// Instructions retired per core.
    pub instructions: Vec<u64>,
    /// Cycles each core was live.
    pub cycles: Vec<u64>,
    /// Memory read latency (arrival → data back).
    pub read_latency: LatencyStats,
    /// Memory write latency (arrival → service complete).
    pub write_latency: LatencyStats,
    /// Reads serviced by forwarding from the write queue.
    pub read_forwards: u64,
    /// Row-buffer hit reads.
    pub row_hits: u64,
    /// Row-buffer miss reads.
    pub row_misses: u64,
    /// Total line writes serviced by the PCM.
    pub mem_writes: u64,
    /// Total line reads serviced by the PCM arrays.
    pub mem_reads: u64,
    /// Mean write units per serviced line write (Fig. 10 metric).
    pub avg_write_units: f64,
    /// Total programming + read energy.
    pub energy: PicoJoules,
    /// Total SET pulses delivered.
    pub cell_sets: u64,
    /// Total RESET pulses delivered.
    pub cell_resets: u64,
    /// Time cores spent blocked on reads (sum over cores).
    pub read_stall: Ps,
    /// Time cores spent blocked on write-queue backpressure.
    pub write_stall: Ps,
}

impl SimResult {
    /// Aggregate instructions per cycle across all cores
    /// (total instructions / cycles of the longest-running core).
    pub fn ipc(&self) -> f64 {
        let instr: u64 = self.instructions.iter().sum();
        let cycles = self.cycles.iter().copied().max().unwrap_or(0);
        if cycles == 0 {
            0.0
        } else {
            instr as f64 / cycles as f64
        }
    }

    /// Memory RPKI given the retired instruction count.
    pub fn rpki(&self) -> f64 {
        let instr: u64 = self.instructions.iter().sum();
        if instr == 0 {
            0.0
        } else {
            self.mem_reads as f64 * 1000.0 / instr as f64
        }
    }

    /// Memory WPKI given the retired instruction count.
    pub fn wpki(&self) -> f64 {
        let instr: u64 = self.instructions.iter().sum();
        if instr == 0 {
            0.0
        } else {
            self.mem_writes as f64 * 1000.0 / instr as f64
        }
    }
}

impl JsonCodec for SimResult {
    /// One key per field (the `results_full.json` record shape).
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("scheme", Json::str(&self.scheme)),
            ("workload", Json::str(&self.workload)),
            ("runtime_ps", Json::UInt(self.runtime.0)),
            ("instructions", Json::u64_array(&self.instructions)),
            ("cycles", Json::u64_array(&self.cycles)),
            ("read_latency", self.read_latency.to_json()),
            ("write_latency", self.write_latency.to_json()),
            ("read_forwards", Json::UInt(self.read_forwards)),
            ("row_hits", Json::UInt(self.row_hits)),
            ("row_misses", Json::UInt(self.row_misses)),
            ("mem_writes", Json::UInt(self.mem_writes)),
            ("mem_reads", Json::UInt(self.mem_reads)),
            ("avg_write_units", Json::Num(self.avg_write_units)),
            ("energy_pj", Json::UInt(self.energy.0)),
            ("cell_sets", Json::UInt(self.cell_sets)),
            ("cell_resets", Json::UInt(self.cell_resets)),
            ("read_stall_ps", Json::UInt(self.read_stall.0)),
            ("write_stall_ps", Json::UInt(self.write_stall.0)),
        ])
    }

    /// Missing fields default to zero/empty (forward compatibility), so
    /// this never fails on object input.
    fn from_json(j: &Json) -> Result<SimResult, JsonError> {
        let u = |k: &str| j.get(k).and_then(Json::as_u64).unwrap_or(0);
        let s = |k: &str| {
            j.get(k)
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string()
        };
        let vu = |k: &str| {
            j.get(k)
                .and_then(Json::as_array)
                .map(|a| a.iter().filter_map(Json::as_u64).collect::<Vec<u64>>())
                .unwrap_or_default()
        };
        let stats = |k: &str| {
            j.get(k)
                .and_then(|v| LatencyStats::from_json(v).ok())
                .unwrap_or_default()
        };
        Ok(SimResult {
            scheme: s("scheme"),
            workload: s("workload"),
            runtime: Ps(u("runtime_ps")),
            instructions: vu("instructions"),
            cycles: vu("cycles"),
            read_latency: stats("read_latency"),
            write_latency: stats("write_latency"),
            read_forwards: u("read_forwards"),
            row_hits: u("row_hits"),
            row_misses: u("row_misses"),
            mem_writes: u("mem_writes"),
            mem_reads: u("mem_reads"),
            avg_write_units: j
                .get("avg_write_units")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            energy: PicoJoules(u("energy_pj")),
            cell_sets: u("cell_sets"),
            cell_resets: u("cell_resets"),
            read_stall: Ps(u("read_stall_ps")),
            write_stall: Ps(u("write_stall_ps")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_types::propcheck::vec_of;
    use pcm_types::{prop_assert_eq, propcheck};

    #[test]
    fn latency_stats_stream() {
        let mut s = LatencyStats::default();
        s.record(Ps::from_ns(10));
        s.record(Ps::from_ns(30));
        s.record(Ps::from_ns(20));
        assert_eq!(s.count, 3);
        assert_eq!(s.mean_ns(), 20.0);
        assert_eq!(s.min_ps, 10_000);
        assert_eq!(s.max_ps, 30_000);
    }

    #[test]
    fn percentiles_from_histogram() {
        let mut s = LatencyStats::default();
        // 90 fast samples at ~60 ns, 10 slow at ~3.5 µs.
        for _ in 0..90 {
            s.record(Ps::from_ns(60));
        }
        for _ in 0..10 {
            s.record(Ps::from_ns(3_500));
        }
        let p50 = s.percentile_ns(0.50);
        let p99 = s.percentile_ns(0.99);
        assert!((48.0..=64.0).contains(&p50), "p50 = {p50}");
        assert!((2_048.0..=4_096.0).contains(&p99), "p99 = {p99}");
        assert!(p99 > p50 * 10.0);
        assert_eq!(LatencyStats::default().percentile_ns(0.5), 0.0);
    }

    #[test]
    fn merge_combines_histograms() {
        let mut a = LatencyStats::default();
        let mut b = LatencyStats::default();
        for _ in 0..50 {
            a.record(Ps::from_ns(100));
            b.record(Ps::from_ns(10_000));
        }
        a.merge(&b);
        assert!(a.percentile_ns(0.25) < 200.0);
        assert!(a.percentile_ns(0.75) > 5_000.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyStats::default();
        a.record(Ps::from_ns(10));
        let mut b = LatencyStats::default();
        b.record(Ps::from_ns(50));
        b.record(Ps::from_ns(2));
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.min_ps, 2_000);
        assert_eq!(a.max_ps, 50_000);
        let empty = LatencyStats::default();
        a.merge(&empty);
        assert_eq!(a.count, 3);
    }

    #[test]
    fn ipc_uses_longest_core() {
        let r = SimResult {
            instructions: vec![1000, 1000],
            cycles: vec![500, 2000],
            ..Default::default()
        };
        assert_eq!(r.ipc(), 1.0);
    }

    #[test]
    fn sim_result_json_roundtrip() {
        let mut r = SimResult {
            scheme: "tetris".into(),
            workload: "gups \"quoted\"".into(),
            runtime: Ps::from_ns(123_456),
            instructions: vec![1000, 2000],
            cycles: vec![500, 2500],
            read_forwards: 7,
            row_hits: 40,
            row_misses: 60,
            mem_writes: 190,
            mem_reads: 2760,
            avg_write_units: 1.625,
            energy: PicoJoules(987_654_321),
            cell_sets: 11,
            cell_resets: 22,
            read_stall: Ps::from_ns(9),
            write_stall: Ps::from_ns(8),
            ..Default::default()
        };
        r.read_latency.record(Ps::from_ns(60));
        r.read_latency.record(Ps::from_ns(3_500));
        r.write_latency.record(Ps::from_ns(430));

        let text = r.to_json().to_string_pretty();
        let back = SimResult::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.scheme, r.scheme);
        assert_eq!(back.workload, r.workload);
        assert_eq!(back.runtime, r.runtime);
        assert_eq!(back.instructions, r.instructions);
        assert_eq!(back.cycles, r.cycles);
        assert_eq!(back.read_latency.count, 2);
        assert_eq!(back.read_latency.buckets, r.read_latency.buckets);
        assert_eq!(back.write_latency.max_ps, 430_000);
        assert_eq!(back.energy, r.energy);
        assert_eq!(back.avg_write_units, r.avg_write_units);
        // Percentiles survive because the histogram does.
        assert_eq!(
            back.read_latency.percentile_ns(0.99),
            r.read_latency.percentile_ns(0.99)
        );
    }

    #[test]
    fn sim_result_from_empty_object() {
        let r = SimResult::from_json(&Json::parse("{}").unwrap()).unwrap();
        assert_eq!(r.scheme, "");
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.read_latency.count, 0);
    }

    propcheck! {
        /// `JsonCodec` round-trip: any stream of samples re-parses to the
        /// identical histogram (count, bounds, every bucket).
        fn latency_stats_json_roundtrip(samples in vec_of(0u64..=1 << 40, 0..=48)) {
            let mut s = LatencyStats::default();
            for &ps in &samples {
                s.record(Ps(ps));
            }
            let back = LatencyStats::from_json_str(&s.to_json_string()).unwrap();
            prop_assert_eq!(back.count, s.count);
            prop_assert_eq!(back.sum_ps, s.sum_ps);
            prop_assert_eq!(back.min_ps, s.min_ps);
            prop_assert_eq!(back.max_ps, s.max_ps);
            prop_assert_eq!(back.buckets, s.buckets);
        }

        /// `JsonCodec` round-trip for whole results, through compact text.
        fn sim_result_json_roundtrip_prop(
            writes in 0u64..=1 << 40,
            reads in 0u64..=1 << 40,
            units in 0u64..=64,
        ) {
            let r = SimResult {
                scheme: "s".into(),
                workload: "w".into(),
                mem_writes: writes,
                mem_reads: reads,
                avg_write_units: units as f64 / 8.0,
                ..Default::default()
            };
            let back = SimResult::from_json_str(&r.to_json_string()).unwrap();
            prop_assert_eq!(back.mem_writes, r.mem_writes);
            prop_assert_eq!(back.mem_reads, r.mem_reads);
            prop_assert_eq!(back.avg_write_units, r.avg_write_units);
        }
    }

    #[test]
    fn rpki_wpki() {
        let r = SimResult {
            instructions: vec![500_000, 500_000],
            mem_reads: 2_760,
            mem_writes: 190,
            ..Default::default()
        };
        assert!((r.rpki() - 2.76).abs() < 1e-9);
        assert!((r.wpki() - 0.19).abs() < 1e-9);
    }
}
