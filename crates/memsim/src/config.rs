//! System configuration (Table II of the paper).

use crate::replacement::PolicySelect;
use crate::sched::SchedConfig;
use crate::system::TraceLevel;
use pcm_schemes::{SchemeConfig, SchemeSelect};
use pcm_types::{PcmError, Ps};
use tetris_write::TetrisConfig;

/// The error [`crate::System::build`] and the config builders return on an
/// invalid configuration (an alias of [`PcmError`], whose `Config` variant
/// carries the explanation).
pub type ConfigError = PcmError;

/// One cache level's geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways).
    pub assoc: u32,
    /// Access latency in CPU cycles.
    pub latency_cycles: u32,
    /// Replacement policy ([`PolicySelect::Lru`] reproduces the
    /// historical hard-coded LRU bit for bit).
    pub policy: PolicySelect,
}

impl CacheConfig {
    /// Start a fluent builder from the Table II L1 geometry
    /// (32 KB, 4-way, 2-cycle, LRU).
    pub fn builder() -> CacheConfigBuilder {
        CacheConfigBuilder {
            cfg: CacheConfig {
                size_bytes: 32 << 10,
                assoc: 4,
                latency_cycles: 2,
                policy: PolicySelect::Lru,
            },
        }
    }
}

/// Fluent construction of a [`CacheConfig`];
/// [`CacheConfigBuilder::build`] validates the line-independent geometry
/// (non-zero capacity and ways, capacity divisible into ways), so an
/// invalid level never reaches [`crate::cache::Cache::new`] — which re-checks
/// against the concrete cache-line size.
///
/// ```
/// use pcm_memsim::CacheConfig;
/// let l2 = CacheConfig::builder()
///     .size_bytes(2 << 20)
///     .assoc(8)
///     .latency_cycles(20)
///     .build()
///     .unwrap();
/// assert_eq!(l2.size_bytes, 2 << 20);
/// assert!(CacheConfig::builder().assoc(0).build().is_err());
/// ```
#[derive(Clone, Copy, Debug)]
#[must_use = "call .build() to obtain the validated CacheConfig"]
pub struct CacheConfigBuilder {
    cfg: CacheConfig,
}

impl CacheConfigBuilder {
    /// Capacity in bytes.
    pub fn size_bytes(mut self, n: u64) -> Self {
        self.cfg.size_bytes = n;
        self
    }

    /// Associativity (ways).
    pub fn assoc(mut self, n: u32) -> Self {
        self.cfg.assoc = n;
        self
    }

    /// Access latency in CPU cycles.
    pub fn latency_cycles(mut self, n: u32) -> Self {
        self.cfg.latency_cycles = n;
        self
    }

    /// Replacement policy.
    pub fn policy(mut self, p: PolicySelect) -> Self {
        self.cfg.policy = p;
        self
    }

    /// Validate and return the finished level geometry.
    pub fn build(self) -> Result<CacheConfig, PcmError> {
        if self.cfg.assoc == 0 {
            return Err(PcmError::config("cache associativity must be ≥ 1"));
        }
        if self.cfg.size_bytes == 0 {
            return Err(PcmError::config("cache capacity must be non-zero"));
        }
        if self.cfg.size_bytes % self.cfg.assoc as u64 != 0 {
            return Err(PcmError::config("cache capacity must divide into ways"));
        }
        Ok(self.cfg)
    }
}

/// The DRAM write-cache tier in front of the PCM banks
/// ([`crate::writecache::WriteCache`]): a fixed budget of line-sized
/// frames that coalesce repeated writes before they reach the controller
/// write queues. `frames = 0` (the default) disables the tier entirely —
/// the pipeline is bit-for-bit the paper's.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteCacheConfig {
    /// Frame budget (cache lines held in DRAM); 0 disables the tier.
    pub frames: usize,
    /// Background drain starts once this many frames are dirty.
    pub drain_watermark: usize,
    /// Which frame to sacrifice when the budget is exhausted.
    pub policy: PolicySelect,
}

impl WriteCacheConfig {
    /// The disabled tier (`frames = 0`).
    pub fn disabled() -> Self {
        WriteCacheConfig {
            frames: 0,
            drain_watermark: 0,
            policy: PolicySelect::Lru,
        }
    }

    /// An enabled tier with `frames` frames, the drain watermark at 3/4
    /// of the budget, and the given policy.
    pub fn with_frames(frames: usize, policy: PolicySelect) -> Self {
        WriteCacheConfig {
            frames,
            drain_watermark: (frames * 3 / 4).max(1),
            policy,
        }
    }

    /// Is the tier enabled?
    pub fn enabled(&self) -> bool {
        self.frames > 0
    }

    /// Validate the knobs: an enabled tier needs a watermark within
    /// `1..=frames` so the background drain can both start and finish.
    pub fn validate(&self) -> Result<(), PcmError> {
        if self.frames == 0 {
            return Ok(());
        }
        if self.drain_watermark == 0 {
            return Err(PcmError::config(
                "write-cache drain watermark must be ≥ 1 when frames > 0",
            ));
        }
        if self.drain_watermark > self.frames {
            return Err(PcmError::config(
                "write-cache drain watermark cannot exceed the frame budget",
            ));
        }
        Ok(())
    }
}

impl Default for WriteCacheConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Memory-controller parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ControllerConfig {
    /// Read-queue capacity (Table II: 32 entries).
    pub read_queue_cap: usize,
    /// Write-queue capacity (Table II: 32 entries).
    pub write_queue_cap: usize,
    /// Drain stops once the write queue falls to this level.
    pub write_low_watermark: usize,
    /// Extra bus/transfer time added to each read's service.
    pub t_bus: Ps,
    /// Row-buffer-hit read service (bus + sense from the open row).
    pub t_row_hit: Ps,
    /// Write pausing (Qureshi et al., HPCA'10 — the paper's ref. \[24\]):
    /// a queued read may preempt an in-flight write at iteration
    /// boundaries; the write resumes afterwards with a re-ramp penalty.
    /// Off by default (the paper's controller does not pause).
    pub write_pausing: bool,
    /// Re-ramp penalty added each time a paused write resumes.
    pub pause_overhead: Ps,
    /// Maximum times one write may be paused (bounds read-storm livelock).
    pub max_pauses_per_write: u32,
    /// Writes drained together per bank as one batched operation (Tetris
    /// inter-line packing; 1 = the paper's per-line behaviour).
    pub batch_writes: usize,
    /// Coalesce queued writes to the same line (DWC, Xia et al., ICS'14 —
    /// the paper's ref. \[18\]): a newer write-back absorbs an older queued
    /// one; both complete when the merged write is serviced. Off by
    /// default (the paper's controller does not consolidate).
    pub coalesce_writes: bool,
    /// Subarrays per bank (Yue & Zhu, DATE'13 — the paper's ref. \[15\]).
    /// Rows stripe across subarrays; a read may proceed in one subarray
    /// while another subarray of the same bank writes (reads draw
    /// negligible current, §II), but the shared charge pump still allows
    /// only one write per bank at a time. 1 = the paper's organization.
    pub subarrays_per_bank: usize,
    /// Write-scheduling policy selection (adaptive watermarks, bank
    /// steering, read-priority windows). The default
    /// [`SchedConfig::fixed`] reproduces the paper's controller exactly.
    pub sched: SchedConfig,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            read_queue_cap: 32,
            write_queue_cap: 32,
            write_low_watermark: 16,
            t_bus: Ps::from_ns(10),
            t_row_hit: Ps::from_ns(15),
            write_pausing: false,
            pause_overhead: Ps::from_ns(4),
            max_pauses_per_write: 4,
            batch_writes: 1,
            coalesce_writes: false,
            subarrays_per_bank: 1,
            sched: SchedConfig::fixed(),
        }
    }
}

/// Full system configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SystemConfig {
    /// Number of cores (Table II: 4).
    pub cores: usize,
    /// CPU clock in MHz (Table II: 2 GHz).
    pub cpu_freq_mhz: u64,
    /// L1 data cache.
    pub l1: CacheConfig,
    /// Private L2.
    pub l2: CacheConfig,
    /// Shared L3 (the paper's 32 MB DRAM cache).
    pub l3: CacheConfig,
    /// DRAM write-cache tier in front of the controller write queues
    /// (disabled by default — the paper has no such tier).
    pub write_cache: WriteCacheConfig,
    /// Memory controller.
    pub controller: ControllerConfig,
    /// PCM device + write-scheme geometry (including which scheme
    /// [`crate::System::build`] instantiates, via `mem.select`).
    pub mem: SchemeConfig,
    /// Which abstraction level the trace describes.
    pub level: TraceLevel,
    /// Packing knobs used when `mem.select` is [`SchemeSelect::Tetris`]
    /// (its embedded `scheme` field is overridden with `mem` at build
    /// time, so `mem` stays the single source of device geometry).
    pub tetris: TetrisConfig,
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

/// Fluent construction of a [`SystemConfig`], starting from the Table II
/// baseline; [`SystemConfigBuilder::build`] folds in
/// [`SystemConfig::validate`], so an invalid combination never escapes.
///
/// ```
/// use pcm_memsim::SystemConfig;
/// let cfg = SystemConfig::builder()
///     .cores(2)
///     .write_queue(64)
///     .batch_writes(4)
///     .build()
///     .unwrap();
/// assert_eq!(cfg.cores, 2);
/// assert_eq!(cfg.controller.write_queue_cap, 64);
/// ```
#[derive(Clone, Copy, Debug)]
#[must_use = "call .build() to obtain the validated SystemConfig"]
pub struct SystemConfigBuilder {
    cfg: SystemConfig,
}

impl SystemConfigBuilder {
    /// Number of cores.
    pub fn cores(mut self, n: usize) -> Self {
        self.cfg.cores = n;
        self
    }

    /// CPU clock in MHz.
    pub fn cpu_freq_mhz(mut self, mhz: u64) -> Self {
        self.cfg.cpu_freq_mhz = mhz;
        self
    }

    /// L1 data-cache geometry.
    pub fn l1(mut self, c: CacheConfig) -> Self {
        self.cfg.l1 = c;
        self
    }

    /// Private L2 geometry.
    pub fn l2(mut self, c: CacheConfig) -> Self {
        self.cfg.l2 = c;
        self
    }

    /// Shared L3 geometry.
    pub fn l3(mut self, c: CacheConfig) -> Self {
        self.cfg.l3 = c;
        self
    }

    /// Replace the whole write-cache configuration.
    pub fn write_cache_config(mut self, c: WriteCacheConfig) -> Self {
        self.cfg.write_cache = c;
        self
    }

    /// Enable the DRAM write-cache tier with `frames` frames (0 keeps it
    /// disabled); the drain watermark defaults to 3/4 of the budget.
    pub fn write_cache(mut self, frames: usize) -> Self {
        self.cfg.write_cache = if frames == 0 {
            WriteCacheConfig::disabled()
        } else {
            WriteCacheConfig::with_frames(frames, self.cfg.write_cache.policy)
        };
        self
    }

    /// Write-cache replacement policy.
    pub fn write_cache_policy(mut self, p: PolicySelect) -> Self {
        self.cfg.write_cache.policy = p;
        self
    }

    /// Write-cache drain watermark (frames dirty before background drain
    /// starts).
    pub fn drain_watermark(mut self, n: usize) -> Self {
        self.cfg.write_cache.drain_watermark = n;
        self
    }

    /// Replace the whole controller configuration.
    pub fn controller(mut self, c: ControllerConfig) -> Self {
        self.cfg.controller = c;
        self
    }

    /// PCM device + write-scheme geometry.
    pub fn mem(mut self, m: SchemeConfig) -> Self {
        self.cfg.mem = m;
        self
    }

    /// Number of PCM ranks; [`crate::ShardedSystem`] runs one controller
    /// shard per rank.
    pub fn ranks(mut self, n: u32) -> Self {
        self.cfg.mem.org.ranks = n;
        self
    }

    /// Which write scheme [`crate::System::build`] instantiates.
    pub fn scheme(mut self, s: SchemeSelect) -> Self {
        self.cfg.mem.select = s;
        self
    }

    /// Tetris packing knobs (only used with [`SchemeSelect::Tetris`]).
    pub fn tetris(mut self, t: TetrisConfig) -> Self {
        self.cfg.tetris = t;
        self
    }

    /// Which abstraction level the trace describes.
    pub fn level(mut self, l: TraceLevel) -> Self {
        self.cfg.level = l;
        self
    }

    /// Shorthand: CPU-level trace filtered through the cache hierarchy.
    pub fn cpu_level(mut self) -> Self {
        self.cfg.level = TraceLevel::CpuLevel;
        self
    }

    /// Read-queue capacity.
    pub fn read_queue(mut self, cap: usize) -> Self {
        self.cfg.controller.read_queue_cap = cap;
        self
    }

    /// Write-queue capacity.
    pub fn write_queue(mut self, cap: usize) -> Self {
        self.cfg.controller.write_queue_cap = cap;
        self
    }

    /// Drain-exit watermark.
    pub fn write_low_watermark(mut self, n: usize) -> Self {
        self.cfg.controller.write_low_watermark = n;
        self
    }

    /// Writes drained together per bank as one batched operation.
    pub fn batch_writes(mut self, n: usize) -> Self {
        self.cfg.controller.batch_writes = n;
        self
    }

    /// Subarrays per bank.
    pub fn subarrays_per_bank(mut self, n: usize) -> Self {
        self.cfg.controller.subarrays_per_bank = n;
        self
    }

    /// Enable or disable write pausing.
    pub fn write_pausing(mut self, on: bool) -> Self {
        self.cfg.controller.write_pausing = on;
        self
    }

    /// Enable or disable same-line write coalescing (DWC).
    pub fn coalesce_writes(mut self, on: bool) -> Self {
        self.cfg.controller.coalesce_writes = on;
        self
    }

    /// Replace the whole write-scheduling policy configuration.
    pub fn sched(mut self, s: SchedConfig) -> Self {
        self.cfg.controller.sched = s;
        self
    }

    /// Turn on all three adaptive scheduling policies
    /// ([`SchedConfig::adaptive`]): percentile-driven drain watermarks,
    /// least-utilized-first bank steering and read-priority windows.
    pub fn adaptive_scheduling(mut self) -> Self {
        self.cfg.controller.sched = SchedConfig::adaptive();
        self
    }

    /// Enable or disable percentile-driven drain watermarks.
    pub fn adaptive_watermarks(mut self, on: bool) -> Self {
        self.cfg.controller.sched.adaptive_watermarks = on;
        self
    }

    /// Enable or disable least-utilized-first bank steering.
    pub fn bank_steering(mut self, on: bool) -> Self {
        self.cfg.controller.sched.bank_steering = on;
        self
    }

    /// Enable or disable read-priority windows during drains.
    pub fn read_windows(mut self, on: bool) -> Self {
        self.cfg.controller.sched.read_windows = on;
        self
    }

    /// Scaled-down preset for fast tests: 2 cores, 4 KB L1 / 32 KB L2 /
    /// 256 KB L3 (the old `small_test()` shape).
    pub fn small_caches(mut self) -> Self {
        self.cfg.cores = 2;
        self.cfg.l1 = CacheConfig {
            size_bytes: 4 << 10,
            assoc: 2,
            latency_cycles: 2,
            policy: PolicySelect::Lru,
        };
        self.cfg.l2 = CacheConfig {
            size_bytes: 32 << 10,
            assoc: 4,
            latency_cycles: 20,
            policy: PolicySelect::Lru,
        };
        self.cfg.l3 = CacheConfig {
            size_bytes: 256 << 10,
            assoc: 8,
            latency_cycles: 50,
            policy: PolicySelect::Lru,
        };
        self
    }

    /// Validate and return the finished configuration.
    pub fn build(self) -> Result<SystemConfig, PcmError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

impl SystemConfig {
    /// Start a fluent builder from the Table II baseline.
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder {
            cfg: Self::paper_baseline(),
        }
    }

    /// Table II values.
    pub fn paper_baseline() -> Self {
        SystemConfig {
            cores: 4,
            cpu_freq_mhz: 2_000,
            l1: CacheConfig {
                size_bytes: 32 << 10,
                assoc: 4,
                latency_cycles: 2,
                policy: PolicySelect::Lru,
            },
            l2: CacheConfig {
                size_bytes: 2 << 20,
                assoc: 8,
                latency_cycles: 20,
                policy: PolicySelect::Lru,
            },
            l3: CacheConfig {
                size_bytes: 32 << 20,
                assoc: 16,
                latency_cycles: 50,
                policy: PolicySelect::Lru,
            },
            write_cache: WriteCacheConfig::disabled(),
            controller: ControllerConfig::default(),
            mem: SchemeConfig::paper_baseline(),
            level: TraceLevel::MemoryLevel,
            tetris: TetrisConfig::paper_baseline(),
        }
    }

    /// One CPU cycle.
    pub fn cycle(&self) -> Ps {
        Ps::from_cycles(1, self.cpu_freq_mhz)
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), PcmError> {
        if self.cores == 0 {
            return Err(PcmError::config("need at least one core"));
        }
        if self.controller.write_low_watermark >= self.controller.write_queue_cap {
            return Err(PcmError::config(
                "low watermark must be below queue capacity",
            ));
        }
        if self.controller.read_queue_cap == 0 || self.controller.write_queue_cap == 0 {
            return Err(PcmError::config("queues must be non-empty"));
        }
        if self.controller.batch_writes == 0 || self.controller.subarrays_per_bank == 0 {
            return Err(PcmError::config("batch_writes and subarrays must be ≥ 1"));
        }
        if self.controller.sched.watermark_interval == 0 {
            return Err(PcmError::config("watermark_interval must be ≥ 1"));
        }
        if self.controller.sched.min_watermark_gap >= self.controller.write_queue_cap {
            return Err(PcmError::config(
                "min_watermark_gap must be below queue capacity",
            ));
        }
        self.write_cache.validate()?;
        for c in [&self.l1, &self.l2, &self.l3] {
            let line = self.mem.org.cache_line_bytes as u64;
            if c.size_bytes % (line * c.assoc as u64) != 0 {
                return Err(PcmError::config("cache size must divide into sets"));
            }
        }
        // Rank × bank × power-budget consistency: sharding splits the
        // address space and the per-bank current budget must make sense in
        // every shard.
        let org = &self.mem.org;
        if org.ranks == 0 || org.banks_per_rank == 0 {
            return Err(PcmError::config(
                "ranks and banks_per_rank must be at least 1",
            ));
        }
        if org.total_banks() > 1024 {
            return Err(PcmError::config(
                "ranks × banks_per_rank exceeds 1024 banks",
            ));
        }
        if org.capacity_bytes % (org.ranks as u64 * org.cache_line_bytes as u64) != 0 {
            return Err(PcmError::config(
                "capacity must split into a whole number of lines per rank",
            ));
        }
        if self.mem.power.chips_per_bank != org.chips_per_bank {
            return Err(PcmError::config(
                "power budget and organization disagree on chips per bank",
            ));
        }
        if self.mem.power.budget_per_bank < self.mem.power.set_cost(1) {
            return Err(PcmError::config(
                "per-bank power budget cannot program even one bit",
            ));
        }
        self.mem.validate()?;
        // The packing knobs must be coherent with the device geometry they
        // will be rebound to at build time.
        let mut t = self.tetris;
        t.scheme = self.mem;
        t.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table2() {
        let c = SystemConfig::paper_baseline();
        assert_eq!(c.cores, 4);
        assert_eq!(c.cycle(), Ps(500), "2 GHz → 500 ps");
        assert_eq!(c.l1.latency_cycles, 2);
        assert_eq!(c.l2.latency_cycles, 20);
        assert_eq!(c.l3.latency_cycles, 50);
        assert_eq!(c.controller.read_queue_cap, 32);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_watermark() {
        let mut c = SystemConfig::paper_baseline();
        c.controller.write_low_watermark = 32;
        assert!(c.validate().is_err());
    }

    #[test]
    fn small_test_config_valid() {
        assert!(SystemConfig::builder()
            .small_caches()
            .build()
            .unwrap()
            .validate()
            .is_ok());
    }

    #[test]
    fn builder_overrides_and_validates() {
        let cfg = SystemConfig::builder()
            .cores(8)
            .cpu_freq_mhz(1_000)
            .write_queue(64)
            .write_low_watermark(8)
            .batch_writes(4)
            .subarrays_per_bank(2)
            .write_pausing(true)
            .coalesce_writes(true)
            .build()
            .unwrap();
        assert_eq!(cfg.cores, 8);
        assert_eq!(cfg.cycle(), Ps(1_000));
        assert_eq!(cfg.controller.write_queue_cap, 64);
        assert_eq!(cfg.controller.batch_writes, 4);
        assert!(cfg.controller.write_pausing);

        // validate() is folded into build(): a bad watermark never escapes.
        assert!(SystemConfig::builder()
            .write_queue(16)
            .write_low_watermark(16)
            .build()
            .is_err());
        assert!(SystemConfig::builder().cores(0).build().is_err());
    }

    #[test]
    fn write_cache_knobs_validate() {
        // Default: disabled, LRU, bit-for-bit the paper's pipeline.
        let base = SystemConfig::paper_baseline();
        assert_eq!(base.write_cache, WriteCacheConfig::disabled());
        assert!(!base.write_cache.enabled());

        let cfg = SystemConfig::builder()
            .write_cache(64)
            .write_cache_policy(PolicySelect::Clock)
            .build()
            .unwrap();
        assert_eq!(cfg.write_cache.frames, 64);
        assert_eq!(cfg.write_cache.drain_watermark, 48, "3/4 of the budget");
        assert_eq!(cfg.write_cache.policy, PolicySelect::Clock);

        // Explicit watermark override, still validated.
        let cfg = SystemConfig::builder()
            .write_cache(16)
            .drain_watermark(4)
            .build()
            .unwrap();
        assert_eq!(cfg.write_cache.drain_watermark, 4);
        assert!(SystemConfig::builder()
            .write_cache(16)
            .drain_watermark(17)
            .build()
            .is_err());
        assert!(SystemConfig::builder()
            .write_cache(16)
            .drain_watermark(0)
            .build()
            .is_err());
        // frames = 0 ignores the other knobs entirely.
        assert!(SystemConfig::builder().write_cache(0).build().is_ok());
    }

    #[test]
    fn cache_config_builder_takes_a_policy() {
        let c = CacheConfig::builder()
            .size_bytes(512)
            .assoc(2)
            .policy(PolicySelect::TwoQ)
            .build()
            .unwrap();
        assert_eq!(c.policy, PolicySelect::TwoQ);
        // The default stays LRU so existing configs are unchanged.
        assert_eq!(
            CacheConfig::builder().build().unwrap().policy,
            PolicySelect::Lru
        );
    }

    #[test]
    fn sched_builder_knobs_and_validation() {
        let cfg = SystemConfig::builder()
            .adaptive_scheduling()
            .build()
            .unwrap();
        assert_eq!(cfg.controller.sched, SchedConfig::adaptive());

        let cfg = SystemConfig::builder()
            .adaptive_watermarks(true)
            .read_windows(true)
            .build()
            .unwrap();
        assert!(cfg.controller.sched.adaptive_watermarks);
        assert!(!cfg.controller.sched.bank_steering);
        assert!(cfg.controller.sched.read_windows);

        // Defaults stay paper-faithful: everything off.
        assert_eq!(
            SystemConfig::paper_baseline().controller.sched,
            SchedConfig::fixed()
        );

        // A gap as wide as the queue can never hold low + gap <= high.
        let mut bad = SchedConfig::adaptive();
        bad.min_watermark_gap = 32;
        assert!(SystemConfig::builder().sched(bad).build().is_err());
        bad.min_watermark_gap = 4;
        bad.watermark_interval = 0;
        assert!(SystemConfig::builder().sched(bad).build().is_err());
    }
}
