//! The 3-level cache hierarchy of Table II: private L1/L2 per core, one
//! shared L3 (the 32 MB DRAM cache in front of PCM).
//!
//! Inclusive-enough approximation without a coherence protocol: each
//! level is looked up in turn; misses allocate on the way back. Write-backs
//! cascade downward and anything leaving the L3 heads to the PCM write
//! queue. Sharing effects between cores appear through L3 contention.

use crate::cache::{Cache, CacheStats};
use crate::config::SystemConfig;
use pcm_types::{PcmError, PhysAddr};

/// Where an access was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HitLevel {
    /// L1 data cache.
    L1,
    /// Private L2.
    L2,
    /// Shared L3.
    L3,
    /// Missed everywhere — a PCM read is required.
    Memory,
}

/// Outcome of pushing one CPU access through the hierarchy.
#[derive(Clone, Debug)]
pub struct HierarchyOutcome {
    /// Deepest level consulted.
    pub level: HitLevel,
    /// Total lookup latency in CPU cycles (sum of levels consulted).
    pub latency_cycles: u32,
    /// Dirty lines pushed out of the L3 toward memory.
    pub memory_writebacks: Vec<PhysAddr>,
}

/// The hierarchy.
pub struct CacheHierarchy {
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    l3: Cache,
    l1_lat: u32,
    l2_lat: u32,
    l3_lat: u32,
    line_bytes: u32,
}

impl CacheHierarchy {
    /// Build per the system configuration.
    pub fn new(cfg: &SystemConfig) -> Result<Self, PcmError> {
        let line = cfg.mem.org.cache_line_bytes;
        let mut l1 = Vec::with_capacity(cfg.cores);
        let mut l2 = Vec::with_capacity(cfg.cores);
        for _ in 0..cfg.cores {
            l1.push(Cache::new(cfg.l1, line)?);
            l2.push(Cache::new(cfg.l2, line)?);
        }
        Ok(CacheHierarchy {
            l1,
            l2,
            l3: Cache::new(cfg.l3, line)?,
            l1_lat: cfg.l1.latency_cycles,
            l2_lat: cfg.l2.latency_cycles,
            l3_lat: cfg.l3.latency_cycles,
            line_bytes: line,
        })
    }

    /// Line-align an address.
    fn align(&self, addr: PhysAddr) -> PhysAddr {
        addr - addr % self.line_bytes as u64
    }

    /// Run one access through the hierarchy for `core`.
    pub fn access(&mut self, core: usize, addr: PhysAddr, is_write: bool) -> HierarchyOutcome {
        let addr = self.align(addr);
        let mut wbs = Vec::new();
        let mut latency = self.l1_lat;

        let a1 = self.l1[core].access(addr, is_write);
        if a1.hit {
            return HierarchyOutcome {
                level: HitLevel::L1,
                latency_cycles: latency,
                memory_writebacks: wbs,
            };
        }
        // L1 victim write-back lands in L2.
        if let Some(v) = a1.writeback {
            let a2 = self.l2[core].access(v, true);
            if let Some(v2) = a2.writeback {
                let a3 = self.l3.access(v2, true);
                if let Some(v3) = a3.writeback {
                    wbs.push(v3);
                }
            }
        }

        latency += self.l2_lat;
        let a2 = self.l2[core].access(addr, false);
        if a2.hit {
            return HierarchyOutcome {
                level: HitLevel::L2,
                latency_cycles: latency,
                memory_writebacks: wbs,
            };
        }
        if let Some(v2) = a2.writeback {
            let a3 = self.l3.access(v2, true);
            if let Some(v3) = a3.writeback {
                wbs.push(v3);
            }
        }

        latency += self.l3_lat;
        let a3 = self.l3.access(addr, false);
        if let Some(v3) = a3.writeback {
            wbs.push(v3);
        }
        let level = if a3.hit {
            HitLevel::L3
        } else {
            HitLevel::Memory
        };
        HierarchyOutcome {
            level,
            latency_cycles: latency,
            memory_writebacks: wbs,
        }
    }

    /// Flush every dirty line in all levels down to memory (end of run).
    pub fn flush_all(&mut self) -> Vec<PhysAddr> {
        let mut out = Vec::new();
        for c in self.l1.iter_mut().chain(self.l2.iter_mut()) {
            for addr in c.flush_dirty() {
                let a3 = self.l3.access(addr, true);
                if let Some(v) = a3.writeback {
                    out.push(v);
                }
            }
        }
        out.extend(self.l3.flush_dirty());
        out
    }

    /// Statistics of (L1[core], L2[core]).
    pub fn core_stats(&self, core: usize) -> (CacheStats, CacheStats) {
        (*self.l1[core].stats(), *self.l2[core].stats())
    }

    /// Shared L3 statistics.
    pub fn l3_stats(&self) -> CacheStats {
        *self.l3.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn hier() -> CacheHierarchy {
        CacheHierarchy::new(&SystemConfig::builder().small_caches().build().unwrap()).unwrap()
    }

    #[test]
    fn first_touch_misses_to_memory() {
        let mut h = hier();
        let o = h.access(0, 0x10000, false);
        assert_eq!(o.level, HitLevel::Memory);
        assert_eq!(o.latency_cycles, 2 + 20 + 50);
        assert!(o.memory_writebacks.is_empty());
    }

    #[test]
    fn second_touch_hits_l1() {
        let mut h = hier();
        h.access(0, 0x10000, false);
        let o = h.access(0, 0x10000, false);
        assert_eq!(o.level, HitLevel::L1);
        assert_eq!(o.latency_cycles, 2);
    }

    #[test]
    fn cross_core_sharing_through_l3() {
        let mut h = hier();
        h.access(0, 0x20000, false); // core 0 brings the line in everywhere
        let o = h.access(1, 0x20000, false); // core 1 misses L1/L2, hits L3
        assert_eq!(o.level, HitLevel::L3);
    }

    #[test]
    fn dirty_data_eventually_writes_back_to_memory() {
        let cfg = SystemConfig::builder().small_caches().build().unwrap();
        let mut h = CacheHierarchy::new(&cfg).unwrap();
        // Write a large streaming footprint (≥ 2× L3) through core 0.
        let span = cfg.l3.size_bytes * 2;
        let mut wbs = 0usize;
        let mut addr = 0u64;
        while addr < span {
            wbs += h.access(0, addr, true).memory_writebacks.len();
            addr += 64;
        }
        assert!(wbs > 0, "L3 must shed dirty lines under streaming writes");
    }

    #[test]
    fn flush_returns_all_dirty_lines() {
        let mut h = hier();
        h.access(0, 0, true);
        h.access(0, 64, true);
        h.access(1, 4096, true);
        let flushed = h.flush_all();
        assert_eq!(flushed.len(), 3);
    }

    #[test]
    fn read_only_traffic_never_writes_back() {
        let cfg = SystemConfig::builder().small_caches().build().unwrap();
        let mut h = CacheHierarchy::new(&cfg).unwrap();
        let mut addr = 0u64;
        while addr < cfg.l3.size_bytes * 2 {
            assert!(h.access(0, addr, false).memory_writebacks.is_empty());
            addr += 64;
        }
        assert!(h.flush_all().is_empty());
    }
}
