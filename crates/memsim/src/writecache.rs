//! The hybrid DRAM write-cache tier: a buffer-pool-style frame table in
//! front of the PCM banks.
//!
//! A real PCM main memory sits behind a managed DRAM tier that absorbs
//! the write stream before it ever reaches the banks. The model here is
//! a database buffer pool scaled to cache lines: a **fixed budget of
//! frames** (one dirty line each, fully associative), **dirty-line
//! coalescing** (a write to a cached line merges in DRAM — the line will
//! drain to PCM once, no matter how many times it was rewritten), and a
//! **watermark-triggered background drain** that trickles victims into
//! the controller write queues while room exists. Which frame to give up
//! is the [`ReplacementPolicy`]'s decision — the same trait the demand
//! hierarchy uses, selected per cache by [`PolicySelect`].
//!
//! The tier is *engine-agnostic*: it never touches the event queue or
//! telemetry. [`crate::System`] and `pcm-serve`'s engine own the
//! scheduling and event emission; this module owns only the frame table,
//! so both front ends share one coalescing model. `frames = 0` systems
//! never construct a `WriteCache` at all — the pipeline is bit-for-bit
//! the paper's.
//!
//! [`PolicySelect`]: crate::replacement::PolicySelect

use crate::config::WriteCacheConfig;
use crate::replacement::ReplacementPolicy;
use pcm_types::{PcmError, PhysAddr};

/// One DRAM frame: a line-aligned dirty address, or empty.
#[derive(Clone, Copy, Debug, Default)]
struct Frame {
    valid: bool,
    line: PhysAddr,
}

/// Counters for hit/coalesce/drain accounting. Conservation invariant:
/// `admitted == drained` once the cache is flushed, and every trace write
/// is either `coalesced` or `admitted`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WriteCacheStats {
    /// Writes absorbed by an already-cached line (merged in DRAM).
    pub coalesced: u64,
    /// Writes that claimed a frame (first write to the line since it
    /// last drained).
    pub admitted: u64,
    /// Reads served from a cached dirty line at DRAM speed.
    pub read_hits: u64,
    /// Lines handed to the controller (watermark drains, capacity
    /// evictions and the final flush).
    pub drained: u64,
}

impl WriteCacheStats {
    /// Fraction of writes absorbed in DRAM, in `[0, 1]`.
    pub fn coalesce_ratio(&self) -> f64 {
        let total = self.coalesced + self.admitted;
        if total == 0 {
            0.0
        } else {
            self.coalesced as f64 / total as f64
        }
    }
}

/// What [`WriteCache::write`] did with a write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteAdmit {
    /// The line was already cached; the write merged into its frame.
    Coalesced,
    /// The line claimed a frame; if the budget was exhausted, `evicted`
    /// is the victim line the caller must enqueue at the controller.
    Admitted {
        /// Victim displaced to make room (`None` while frames are free).
        evicted: Option<PhysAddr>,
    },
}

/// The frame table. See the module docs for the model; see
/// [`crate::System`] for the drain scheduling built on top.
#[derive(Clone, Debug)]
pub struct WriteCache {
    frames: Vec<Frame>,
    policy: Box<dyn ReplacementPolicy>,
    line_bytes: u64,
    drain_watermark: usize,
    occupancy: usize,
    stats: WriteCacheStats,
}

impl WriteCache {
    /// Build the tier from validated knobs and the system's line size.
    /// `cfg.frames` must be non-zero — a disabled tier is represented by
    /// *not constructing* a `WriteCache`.
    pub fn new(cfg: WriteCacheConfig, line_bytes: u32) -> Result<Self, PcmError> {
        cfg.validate()?;
        if cfg.frames == 0 {
            return Err(PcmError::config(
                "a disabled write cache (frames = 0) must not be constructed",
            ));
        }
        if line_bytes == 0 || !line_bytes.is_power_of_two() {
            return Err(PcmError::config("bad write-cache line size"));
        }
        Ok(WriteCache {
            frames: vec![Frame::default(); cfg.frames],
            // Fully associative: one set, `frames` ways.
            policy: cfg.policy.instantiate(1, cfg.frames),
            line_bytes: line_bytes as u64,
            drain_watermark: cfg.drain_watermark,
            occupancy: 0,
            stats: WriteCacheStats::default(),
        })
    }

    fn align(&self, addr: PhysAddr) -> PhysAddr {
        addr & !(self.line_bytes - 1)
    }

    fn find(&self, line: PhysAddr) -> Option<usize> {
        self.frames.iter().position(|f| f.valid && f.line == line)
    }

    /// Dirty frames currently held.
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// Total frame budget.
    pub fn frames(&self) -> usize {
        self.frames.len()
    }

    /// The configured background-drain threshold.
    pub fn drain_watermark(&self) -> usize {
        self.drain_watermark
    }

    /// Is the background drain due?
    pub fn over_watermark(&self) -> bool {
        self.occupancy >= self.drain_watermark
    }

    /// Counters so far.
    pub fn stats(&self) -> &WriteCacheStats {
        &self.stats
    }

    /// The replacement policy's display name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Absorb one write. Coalesces into an existing frame when the line
    /// is cached; otherwise claims a frame, evicting the policy's victim
    /// if the budget is exhausted. Callers that cannot take an eviction
    /// right now (controller queue full) must check [`Self::full`] first
    /// and apply backpressure instead of calling.
    pub fn write(&mut self, addr: PhysAddr) -> WriteAdmit {
        let line = self.align(addr);
        if let Some(w) = self.find(line) {
            self.policy.touch(0, w);
            self.stats.coalesced += 1;
            return WriteAdmit::Coalesced;
        }
        self.stats.admitted += 1;
        let (slot, evicted) = match self.frames.iter().position(|f| !f.valid) {
            Some(free) => (free, None),
            None => {
                let v = self.policy.victim(0);
                let out = self.frames[v].line;
                self.stats.drained += 1;
                self.occupancy -= 1;
                (v, Some(out))
            }
        };
        self.frames[slot] = Frame { valid: true, line };
        self.policy.insert(0, slot);
        self.occupancy += 1;
        evicted
            .map(|out| WriteAdmit::Admitted { evicted: Some(out) })
            .unwrap_or(WriteAdmit::Admitted { evicted: None })
    }

    /// Is every frame occupied (the next admit must evict)?
    pub fn full(&self) -> bool {
        self.occupancy == self.frames.len()
    }

    /// Serve a read from a cached dirty line, refreshing its recency.
    /// Returns `true` on a hit (the caller completes the read at DRAM
    /// latency instead of enqueueing it).
    pub fn read_hit(&mut self, addr: PhysAddr) -> bool {
        let line = self.align(addr);
        let Some(w) = self.find(line) else {
            return false;
        };
        self.policy.touch(0, w);
        self.stats.read_hits += 1;
        true
    }

    /// Pop one line for the background drain: the policy's victim leaves
    /// its frame and must be enqueued at the controller by the caller.
    /// Returns `None` when the cache is empty.
    pub fn drain_one(&mut self) -> Option<PhysAddr> {
        if self.occupancy == 0 {
            return None;
        }
        let v = self.policy.victim(0);
        if !self.frames[v].valid {
            return None;
        }
        let line = self.frames[v].line;
        self.frames[v].valid = false;
        self.policy.evict(0, v);
        self.occupancy -= 1;
        self.stats.drained += 1;
        Some(line)
    }

    /// Empty every frame in deterministic frame order (end-of-run flush);
    /// the caller enqueues the returned lines.
    pub fn flush(&mut self) -> Vec<PhysAddr> {
        let mut out = Vec::with_capacity(self.occupancy);
        for (w, f) in self.frames.iter_mut().enumerate() {
            if f.valid {
                f.valid = false;
                self.policy.evict(0, w);
                out.push(f.line);
            }
        }
        self.occupancy = 0;
        self.stats.drained += out.len() as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::PolicySelect;

    fn cache(frames: usize, watermark: usize, policy: PolicySelect) -> WriteCache {
        WriteCache::new(
            WriteCacheConfig {
                frames,
                drain_watermark: watermark,
                policy,
            },
            64,
        )
        .unwrap()
    }

    #[test]
    fn construction_rejects_disabled_and_bad_lines() {
        assert!(WriteCache::new(WriteCacheConfig::disabled(), 64).is_err());
        let cfg = WriteCacheConfig::with_frames(8, PolicySelect::Lru);
        assert!(WriteCache::new(cfg, 48).is_err());
        assert!(WriteCache::new(cfg, 64).is_ok());
    }

    #[test]
    fn repeated_writes_coalesce_into_one_frame() {
        let mut c = cache(8, 6, PolicySelect::Lru);
        assert_eq!(c.write(0x1000), WriteAdmit::Admitted { evicted: None });
        // Same line, any offset: merged in DRAM.
        assert_eq!(c.write(0x1004), WriteAdmit::Coalesced);
        assert_eq!(c.write(0x103F), WriteAdmit::Coalesced);
        assert_eq!(c.occupancy(), 1);
        assert_eq!(c.stats().coalesced, 2);
        assert_eq!(c.stats().admitted, 1);
        assert!((c.stats().coalesce_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn full_cache_evicts_via_policy() {
        let mut c = cache(2, 2, PolicySelect::Lru);
        c.write(0x0);
        c.write(0x40);
        assert!(c.full());
        // LRU victim is the first line.
        assert_eq!(c.write(0x80), WriteAdmit::Admitted { evicted: Some(0x0) });
        assert_eq!(c.occupancy(), 2);
        assert_eq!(c.stats().drained, 1);
    }

    #[test]
    fn reads_hit_cached_lines_and_refresh_recency() {
        let mut c = cache(2, 2, PolicySelect::Lru);
        c.write(0x0);
        c.write(0x40);
        assert!(c.read_hit(0x4), "offset within the cached line");
        assert!(!c.read_hit(0x80));
        // The read refreshed line 0; the victim is now line 0x40.
        assert_eq!(
            c.write(0x80),
            WriteAdmit::Admitted {
                evicted: Some(0x40)
            }
        );
        assert_eq!(c.stats().read_hits, 1);
    }

    #[test]
    fn drain_one_pops_policy_victims_until_empty() {
        let mut c = cache(4, 2, PolicySelect::Lru);
        for i in 0..3u64 {
            c.write(i * 64);
        }
        assert!(c.over_watermark());
        assert_eq!(c.drain_one(), Some(0));
        assert_eq!(c.drain_one(), Some(64));
        assert!(!c.over_watermark());
        assert_eq!(c.drain_one(), Some(128));
        assert_eq!(c.drain_one(), None);
        assert_eq!(c.stats().drained, 3);
    }

    #[test]
    fn flush_returns_everything_in_frame_order() {
        let mut c = cache(4, 4, PolicySelect::TwoQ);
        c.write(0x100);
        c.write(0x40);
        c.write(0x1C0);
        assert_eq!(c.flush(), vec![0x100, 0x40, 0x1C0]);
        assert_eq!(c.occupancy(), 0);
        assert!(c.flush().is_empty(), "second flush finds nothing");
    }

    #[test]
    fn conservation_holds_for_every_policy() {
        for policy in PolicySelect::ALL {
            let mut c = cache(8, 6, policy);
            let mut writes = 0u64;
            let mut background = 0u64;
            // A skewed stream: lines 0..16, with heavy re-writes of 0..4.
            for i in 0..200u64 {
                c.write((i % 16) * 64);
                c.write((i % 4) * 64);
                writes += 2;
                while c.over_watermark() {
                    assert!(c.drain_one().is_some());
                    background += 1;
                }
                assert!(c.occupancy() <= c.frames(), "{policy}: budget exceeded");
            }
            let flushed = c.flush().len() as u64;
            let s = *c.stats();
            assert_eq!(s.coalesced + s.admitted, writes, "{policy}");
            assert_eq!(s.drained, s.admitted, "{policy}: every admit drains once");
            assert!(background + flushed == s.drained, "{policy}");
            assert!(s.coalesce_ratio() > 0.0, "{policy}: rewrites must coalesce");
        }
    }
}
