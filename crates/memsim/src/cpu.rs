//! Trace-driven cores.
//!
//! Each core replays a stream of [`TraceOp`]s: execute `gap` non-memory
//! instructions at one instruction per cycle, then perform a memory
//! operation. Loads block the core until the data returns (an in-order
//! approximation of the paper's O3 ALPHA cores — see DESIGN.md §4); stores
//! are fire-and-forget unless the memory write queue exerts backpressure.

use crate::request::AccessKind;
use pcm_types::{PhysAddr, Ps};

/// One trace operation: `gap` compute instructions then a memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceOp {
    /// Non-memory instructions preceding the access.
    pub gap: u32,
    /// Load or store.
    pub kind: AccessKind,
    /// Byte address accessed.
    pub addr: PhysAddr,
}

/// A pull-based, per-core stream of memory requests.
///
/// Everything that feeds the simulator — synthetic generators, trace
/// files, the `pcm-serve` socket front end — implements this trait; the
/// engine pulls one op at a time, so sources never need to materialize
/// the whole request stream up front.
pub trait RequestSource: Send {
    /// Next operation for `core`, or `None` when the core's work is done.
    fn next(&mut self, core: usize) -> Option<TraceOp>;
}

/// A fixed list of ops per core (tests, examples, and the explicit
/// materialization point for sources that must be replayed or saved).
#[derive(Clone, Debug, Default)]
pub struct VecTrace {
    ops: Vec<Vec<TraceOp>>,
    pos: Vec<usize>,
}

impl VecTrace {
    /// Trace with the given per-core op lists.
    pub fn new(ops: Vec<Vec<TraceOp>>) -> Self {
        let pos = vec![0; ops.len()];
        VecTrace { ops, pos }
    }

    /// Drain a [`RequestSource`] into a materialized trace — the one
    /// sanctioned eager path, for callers that genuinely need the whole
    /// stream at once (saving a trace to disk, replay comparisons).
    pub fn capture(src: &mut dyn RequestSource, cores: usize) -> Self {
        VecTrace::new(
            (0..cores)
                .map(|c| std::iter::from_fn(|| src.next(c)).collect())
                .collect(),
        )
    }

    /// The per-core op lists.
    pub fn ops(&self) -> &[Vec<TraceOp>] {
        &self.ops
    }
}

impl RequestSource for VecTrace {
    fn next(&mut self, core: usize) -> Option<TraceOp> {
        let op = self.ops.get(core)?.get(self.pos[core]).copied();
        if op.is_some() {
            self.pos[core] += 1;
        }
        op
    }
}

/// What a core is doing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CorePhase {
    /// Ready to fetch/execute the next op.
    Ready,
    /// Executing a compute gap; the pending op issues when it ends.
    Computing,
    /// Blocked on an outstanding memory read (request id attached).
    WaitingRead {
        /// The read request the core is blocked on.
        req_id: u64,
        /// When the stall began.
        since: Ps,
    },
    /// Blocked on write-queue backpressure.
    WaitingWriteSlot {
        /// When the stall began.
        since: Ps,
    },
    /// Blocked on read-queue backpressure.
    WaitingReadSlot {
        /// When the stall began.
        since: Ps,
    },
    /// Trace exhausted.
    Done,
}

/// One core's architectural state.
#[derive(Clone, Copy, Debug)]
pub struct Core {
    /// Core index.
    pub id: usize,
    /// Current phase.
    pub phase: CorePhase,
    /// The memory op awaiting issue (set while Computing/Waiting*Slot).
    pub pending: Option<TraceOp>,
    /// Instructions retired (gaps + memory ops).
    pub instructions: u64,
    /// Time the core retired its last instruction.
    pub finish_time: Ps,
    /// Cumulative read-stall time.
    pub read_stall: Ps,
    /// Cumulative write-backpressure stall time.
    pub write_stall: Ps,
}

impl Core {
    /// A fresh core.
    pub fn new(id: usize) -> Self {
        Core {
            id,
            phase: CorePhase::Ready,
            pending: None,
            instructions: 0,
            finish_time: Ps::ZERO,
            read_stall: Ps::ZERO,
            write_stall: Ps::ZERO,
        }
    }

    /// Cycles the core was live, at the given clock.
    pub fn cycles(&self, freq_mhz: u64) -> u64 {
        self.finish_time.cycles_at(freq_mhz)
    }

    /// True when the trace has been fully retired.
    pub fn is_done(&self) -> bool {
        self.phase == CorePhase::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_trace_feeds_per_core() {
        let mut t = VecTrace::new(vec![
            vec![TraceOp {
                gap: 10,
                kind: AccessKind::Read,
                addr: 0,
            }],
            vec![
                TraceOp {
                    gap: 1,
                    kind: AccessKind::Write,
                    addr: 64,
                },
                TraceOp {
                    gap: 2,
                    kind: AccessKind::Read,
                    addr: 128,
                },
            ],
        ]);
        assert_eq!(t.next(0).unwrap().gap, 10);
        assert_eq!(t.next(0), None);
        assert_eq!(t.next(1).unwrap().addr, 64);
        assert_eq!(t.next(1).unwrap().addr, 128);
        assert_eq!(t.next(1), None);
        assert_eq!(t.next(5), None, "unknown core has no trace");
    }

    #[test]
    fn core_cycle_accounting() {
        let mut c = Core::new(0);
        c.finish_time = Ps::from_ns(1_000);
        assert_eq!(c.cycles(2_000), 2_000, "1 µs at 2 GHz");
        assert!(!c.is_done());
        c.phase = CorePhase::Done;
        assert!(c.is_done());
    }
}
