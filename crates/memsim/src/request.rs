//! Memory requests flowing between cores and the controller.

use pcm_types::{PhysAddr, Ps};

/// Read or write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// A demand read (LLC miss). Blocks the issuing core.
    Read,
    /// A write-back. Fire-and-forget, subject to write-queue backpressure.
    Write,
}

/// One memory request.
#[derive(Clone, Copy, Debug)]
pub struct MemRequest {
    /// Unique, monotonically increasing id.
    pub id: u64,
    /// Line-aligned physical address.
    pub addr: PhysAddr,
    /// Read or write.
    pub kind: AccessKind,
    /// Issuing core.
    pub core: usize,
    /// Arrival time at the controller.
    pub arrival: Ps,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let r = MemRequest {
            id: 1,
            addr: 0x40,
            kind: AccessKind::Read,
            core: 0,
            arrival: Ps::from_ns(5),
        };
        assert_eq!(r.kind, AccessKind::Read);
        assert_ne!(r.kind, AccessKind::Write);
    }
}
