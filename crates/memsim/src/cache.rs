//! A set-associative, write-back, write-allocate cache. Tag-only
//! (contents are synthesized at the memory, see [`crate::content`]),
//! tracking dirty bits so evictions produce write-backs. The eviction
//! decision is delegated to a pluggable
//! [`ReplacementPolicy`] selected
//! by [`CacheConfig::policy`]; the default LRU reproduces the historical
//! hard-coded behaviour bit for bit.

use crate::config::CacheConfig;
use crate::replacement::ReplacementPolicy;
use pcm_types::{PcmError, PhysAddr};

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u64,
}

/// Result of one cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheAccess {
    /// Hit in this cache?
    pub hit: bool,
    /// Dirty victim evicted by the fill (line-aligned address).
    pub writeback: Option<PhysAddr>,
}

/// Cache statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Dirty evictions.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss ratio in [0, 1].
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// One cache level.
#[derive(Clone, Debug)]
pub struct Cache {
    lines: Vec<Line>,
    sets: usize,
    assoc: usize,
    line_bytes: usize,
    policy: Box<dyn ReplacementPolicy>,
    stats: CacheStats,
}

impl Cache {
    /// Build a cache level from its validated geometry
    /// ([`CacheConfig::builder`]) and the system's cache-line size.
    pub fn new(cfg: CacheConfig, line_bytes: u32) -> Result<Self, PcmError> {
        let size_bytes = cfg.size_bytes;
        let assoc = cfg.assoc as usize;
        let line_bytes = line_bytes as usize;
        if assoc == 0 || line_bytes == 0 || !line_bytes.is_power_of_two() {
            return Err(PcmError::config("bad cache geometry"));
        }
        let total_lines = size_bytes as usize / line_bytes;
        if total_lines == 0 || total_lines % assoc != 0 {
            return Err(PcmError::config("cache size must divide into sets"));
        }
        let sets = total_lines / assoc;
        if !sets.is_power_of_two() {
            return Err(PcmError::config("set count must be a power of two"));
        }
        Ok(Cache {
            lines: vec![Line::default(); total_lines],
            sets,
            assoc,
            line_bytes,
            policy: cfg.policy.instantiate(sets, assoc),
            stats: CacheStats::default(),
        })
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn index(&self, addr: PhysAddr) -> (usize, u64) {
        let line_addr = addr / self.line_bytes as u64;
        (
            (line_addr as usize) % self.sets,
            line_addr / self.sets as u64,
        )
    }

    /// Access the cache; on a miss the line is allocated (the caller is
    /// responsible for fetching from the next level) and a dirty victim, if
    /// any, is returned for write-back.
    pub fn access(&mut self, addr: PhysAddr, is_write: bool) -> CacheAccess {
        let (set, tag) = self.index(addr);
        let (sets, line_bytes) = (self.sets as u64, self.line_bytes as u64);
        let ways = &mut self.lines[set * self.assoc..(set + 1) * self.assoc];

        if let Some((w, way)) = ways
            .iter_mut()
            .enumerate()
            .find(|(_, l)| l.valid && l.tag == tag)
        {
            way.dirty |= is_write;
            self.policy.touch(set, w);
            self.stats.hits += 1;
            return CacheAccess {
                hit: true,
                writeback: None,
            };
        }

        self.stats.misses += 1;
        // Victim: invalid way first, else ask the replacement policy.
        let victim = match ways.iter().position(|l| !l.valid) {
            Some(i) => i,
            None => self.policy.victim(set),
        };
        let evicted = ways[victim];
        let writeback = (evicted.valid && evicted.dirty)
            .then(|| (evicted.tag * sets + set as u64) * line_bytes);
        if writeback.is_some() {
            self.stats.writebacks += 1;
        }
        ways[victim] = Line {
            valid: true,
            dirty: is_write,
            tag,
        };
        self.policy.insert(set, victim);
        CacheAccess {
            hit: false,
            writeback,
        }
    }

    /// Probe without disturbing LRU/dirty state.
    pub fn contains(&self, addr: PhysAddr) -> bool {
        let (set, tag) = self.index(addr);
        self.lines[set * self.assoc..(set + 1) * self.assoc]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Flush every dirty line, returning their addresses.
    pub fn flush_dirty(&mut self) -> Vec<PhysAddr> {
        let mut out = Vec::new();
        for set in 0..self.sets {
            for way in 0..self.assoc {
                let l = &mut self.lines[set * self.assoc + way];
                if l.valid && l.dirty {
                    l.dirty = false;
                    out.push((l.tag * self.sets as u64 + set as u64) * self.line_bytes as u64);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::replacement::PolicySelect;

    fn geom(size_bytes: u64, assoc: u32) -> CacheConfig {
        CacheConfig {
            size_bytes,
            assoc,
            latency_cycles: 1,
            policy: PolicySelect::Lru,
        }
    }

    fn small() -> Cache {
        // 4 sets × 2 ways × 64 B = 512 B.
        Cache::new(geom(512, 2), 64).unwrap()
    }

    #[test]
    fn geometry() {
        let c = small();
        assert_eq!(c.num_sets(), 4);
        assert!(Cache::new(geom(500, 2), 64).is_err());
        assert!(Cache::new(geom(512, 0), 64).is_err());
        assert!(Cache::new(geom(512, 2), 48).is_err());
    }

    #[test]
    fn builder_validates_before_the_cache_does() {
        let cfg = CacheConfig::builder()
            .size_bytes(512)
            .assoc(2)
            .latency_cycles(1)
            .build()
            .unwrap();
        assert_eq!(Cache::new(cfg, 64).unwrap().num_sets(), 4);
        assert!(CacheConfig::builder().assoc(0).build().is_err());
        assert!(CacheConfig::builder().size_bytes(0).build().is_err());
        assert!(CacheConfig::builder()
            .size_bytes(511)
            .assoc(2)
            .build()
            .is_err());
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small();
        assert!(!c.access(0x1000, false).hit);
        assert!(c.access(0x1000, false).hit);
        assert!(c.access(0x1004, false).hit, "same line, different offset");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small();
        // Three lines mapping to set 0 (stride = sets × line = 256 B).
        c.access(0, false);
        c.access(256, false);
        c.access(0, false); // touch line 0 again
        let res = c.access(2 * 256, false); // evicts line 1 (LRU)
        assert!(!res.hit);
        assert!(c.contains(0));
        assert!(!c.contains(256));
        assert!(c.contains(512));
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let mut c = small();
        c.access(0, true); // dirty
        c.access(256, false);
        let res = c.access(512, false); // evicts addr 0 (dirty)
        assert_eq!(res.writeback, Some(0));
        assert_eq!(c.stats().writebacks, 1);
        // Clean eviction produces none.
        let res = c.access(768, false); // evicts addr 256 (clean)
        assert_eq!(res.writeback, None);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        c.access(0, false);
        c.access(0, true); // hit, now dirty
        c.access(256, false);
        let res = c.access(512, false);
        assert_eq!(res.writeback, Some(0));
    }

    #[test]
    fn flush_dirty_returns_and_cleans() {
        let mut c = small();
        c.access(0, true);
        c.access(64, true);
        c.access(128, false);
        let mut dirty = c.flush_dirty();
        dirty.sort_unstable();
        assert_eq!(dirty, vec![0, 64]);
        assert!(c.flush_dirty().is_empty(), "second flush finds nothing");
    }

    #[test]
    fn writeback_address_roundtrip() {
        let mut c = small();
        let addr = 0xABCD40 & !63u64;
        c.access(addr, true);
        // Force eviction by filling the set.
        let (set, _) = (addr / 64 % 4, ());
        let stride = 4 * 64;
        let mut wb = None;
        for i in 1..=2 {
            let a = addr + i * stride;
            if let Some(w) = c.access(a, false).writeback {
                wb = Some(w);
            }
        }
        assert_eq!(
            wb,
            Some(addr),
            "victim address reconstructed exactly (set {set})"
        );
    }
}
