//! Cross-scheme acceptance gates for the newly registered PALP and WIRE
//! schemes, mirroring what the CI `scheme-matrix` job exercises per tag:
//!
//! * every registered scheme tag simulates vips `--quick` to a non-empty
//!   [`SimResult`] (the matrix cell must not silently produce nothing);
//! * WIRE's restricted coset coding never delivers more SET pulses than
//!   Flip-N-Write — row 0 of the codebook *is* FNW's flip choice, so the
//!   lexicographic (sets, changed) minimum can only improve on it;
//! * PALP's partition-parallel slot packing services writes no slower
//!   than single-pulse-train DCW — concurrent slots at a 25 ns partition
//!   stagger strictly undercut DCW's serial `rounds × Tset` train.

use pcm_schemes::SchemeSelect;
use pcm_workloads::WorkloadProfile;
use tetris_experiments::{run_one, RunConfig, SchemeKind};

fn vips_quick(kind: SchemeKind) -> pcm_memsim::SimResult {
    let profile = WorkloadProfile::by_name("vips").expect("vips profile exists");
    let cfg = RunConfig::builder().quick().build().expect("quick config");
    run_one(profile, kind, &cfg)
}

#[test]
fn every_registered_scheme_simulates_vips_quick() {
    for select in SchemeSelect::ALL {
        let kind = SchemeKind::from_select(select);
        let r = vips_quick(kind);
        assert!(r.mem_writes > 0, "{}: no writes serviced", select.tag());
        assert!(r.mem_reads > 0, "{}: no reads serviced", select.tag());
        assert!(
            r.runtime > pcm_types::Ps::ZERO,
            "{}: zero runtime",
            select.tag()
        );
        assert!(
            r.cell_sets + r.cell_resets > 0,
            "{}: no pulses delivered",
            select.tag()
        );
    }
}

#[test]
fn wire_never_sets_more_cells_than_fnw() {
    let wire = vips_quick(SchemeKind::Wire);
    let fnw = vips_quick(SchemeKind::Fnw);
    assert_eq!(wire.mem_writes, fnw.mem_writes, "same write stream");
    assert!(
        wire.cell_sets <= fnw.cell_sets,
        "WIRE delivered {} SET pulses vs FNW's {}",
        wire.cell_sets,
        fnw.cell_sets
    );
}

#[test]
fn palp_services_writes_no_slower_than_dcw() {
    let palp = vips_quick(SchemeKind::Palp);
    let dcw = vips_quick(SchemeKind::Dcw);
    assert_eq!(palp.mem_writes, dcw.mem_writes, "same write stream");
    assert!(
        palp.write_latency.mean_ns() <= dcw.write_latency.mean_ns(),
        "PALP mean write latency {:.1} ns vs DCW's {:.1} ns",
        palp.write_latency.mean_ns(),
        dcw.write_latency.mean_ns()
    );
    assert!(
        palp.runtime <= dcw.runtime,
        "PALP runtime {:?} vs DCW's {:?}",
        palp.runtime,
        dcw.runtime
    );
}
