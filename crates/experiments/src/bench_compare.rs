//! Diff two `BENCH_<n>.json` perf snapshots and gate on regressions.
//!
//! The comparing half of the perf trajectory (the producing half lives in
//! `pcm-bench`): load a committed baseline and a fresh snapshot, compute
//! per-bench deltas, and flag anything whose median drifted beyond the
//! [`GatePolicy`] band `max(tolerance% · base, k · MAD)`. Output is a
//! markdown delta table (for humans and PR comments) plus a JSON report
//! (for machines); [`CompareReport::has_failures`] drives the CI exit
//! code.
//!
//! Benches present on only one side are reported as `added` / `missing`
//! rather than silently dropped — a missing bench usually means a suite
//! rename, which would otherwise sever the trajectory unnoticed.

use pcm_types::json::{field_error, Json, JsonCodec, JsonError};
use pcm_types::perf::{BenchSnapshot, GatePolicy};

/// Verdict for one benchmark id across the two snapshots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaStatus {
    /// Within the gate band (no meaningful change).
    Ok,
    /// Faster by more than the band (informational).
    Improved,
    /// Slower by more than the band — fails the gate.
    Regressed,
    /// Present only in the fresh snapshot (new bench; informational).
    Added,
    /// Present only in the baseline — fails the gate (suite rename or
    /// dropped coverage).
    Missing,
}

impl DeltaStatus {
    /// Stable lowercase tag used in JSON and the markdown table.
    pub const fn tag(&self) -> &'static str {
        match self {
            DeltaStatus::Ok => "ok",
            DeltaStatus::Improved => "improved",
            DeltaStatus::Regressed => "REGRESSED",
            DeltaStatus::Added => "added",
            DeltaStatus::Missing => "MISSING",
        }
    }
}

/// One row of the delta table.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchDelta {
    /// Benchmark id (`group/name`).
    pub id: String,
    /// Baseline median, ns (None when `Added`).
    pub base_median_ns: Option<f64>,
    /// Fresh median, ns (None when `Missing`).
    pub fresh_median_ns: Option<f64>,
    /// Gate threshold for this pair, ns (None when one side is absent).
    pub threshold_ns: Option<f64>,
    /// Verdict.
    pub status: DeltaStatus,
}

impl BenchDelta {
    /// `fresh − base` in ns, when both sides exist.
    pub fn delta_ns(&self) -> Option<f64> {
        Some(self.fresh_median_ns? - self.base_median_ns?)
    }

    /// Delta as a percentage of the baseline median, when defined.
    pub fn delta_pct(&self) -> Option<f64> {
        let base = self.base_median_ns?;
        if base > 0.0 {
            Some(self.delta_ns()? / base * 100.0)
        } else {
            None
        }
    }
}

/// Full comparison outcome: one [`BenchDelta`] per id seen on either side
/// (baseline order first, then fresh-only additions).
#[derive(Clone, Debug, PartialEq)]
pub struct CompareReport {
    /// The gate the comparison ran under.
    pub policy: GatePolicy,
    /// Short git revisions of the two snapshots (`base`, `fresh`).
    pub revs: (String, String),
    /// Per-bench rows.
    pub deltas: Vec<BenchDelta>,
}

/// Compare `fresh` against the `base` snapshot under `policy`.
pub fn compare(base: &BenchSnapshot, fresh: &BenchSnapshot, policy: GatePolicy) -> CompareReport {
    let mut deltas = Vec::new();
    for b in &base.benches {
        let row = match fresh.find(&b.id) {
            Some(f) => {
                let status = if policy.is_regression(b, f) {
                    DeltaStatus::Regressed
                } else if policy.is_improvement(b, f) {
                    DeltaStatus::Improved
                } else {
                    DeltaStatus::Ok
                };
                BenchDelta {
                    id: b.id.clone(),
                    base_median_ns: Some(b.median_ns),
                    fresh_median_ns: Some(f.median_ns),
                    threshold_ns: Some(policy.threshold_ns(b, f)),
                    status,
                }
            }
            None => BenchDelta {
                id: b.id.clone(),
                base_median_ns: Some(b.median_ns),
                fresh_median_ns: None,
                threshold_ns: None,
                status: DeltaStatus::Missing,
            },
        };
        deltas.push(row);
    }
    for f in &fresh.benches {
        if base.find(&f.id).is_none() {
            deltas.push(BenchDelta {
                id: f.id.clone(),
                base_median_ns: None,
                fresh_median_ns: Some(f.median_ns),
                threshold_ns: None,
                status: DeltaStatus::Added,
            });
        }
    }
    CompareReport {
        policy,
        revs: (base.meta.git_rev.clone(), fresh.meta.git_rev.clone()),
        deltas,
    }
}

fn ns(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.1} ns"),
        None => "—".to_string(),
    }
}

fn signed_ns(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:+.1} ns"),
        None => "—".to_string(),
    }
}

fn signed_pct(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:+.1}%"),
        None => "—".to_string(),
    }
}

impl CompareReport {
    /// True when any bench regressed or went missing — the CI gate.
    pub fn has_failures(&self) -> bool {
        self.deltas
            .iter()
            .any(|d| matches!(d.status, DeltaStatus::Regressed | DeltaStatus::Missing))
    }

    /// Rows with a given status (convenience for summaries).
    pub fn count(&self, status: DeltaStatus) -> usize {
        self.deltas.iter().filter(|d| d.status == status).count()
    }

    /// The human-facing delta table. Byte-stable for fixed inputs (golden
    /// fixtures pin it), so formatting changes are deliberate diffs.
    pub fn markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("# bench-compare\n\n");
        out.push_str(&format!(
            "base `{}` → fresh `{}` · gate: Δ > max({:.1}% · base, {:.1} · MAD)\n\n",
            self.revs.0, self.revs.1, self.policy.tolerance_pct, self.policy.k_mad
        ));
        out.push_str("| bench | base | fresh | Δ | Δ% | threshold | status |\n");
        out.push_str("|---|---:|---:|---:|---:|---:|---|\n");
        for d in &self.deltas {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} |\n",
                d.id,
                ns(d.base_median_ns),
                ns(d.fresh_median_ns),
                signed_ns(d.delta_ns()),
                signed_pct(d.delta_pct()),
                ns(d.threshold_ns),
                d.status.tag(),
            ));
        }
        out.push_str(&format!(
            "\n{} ok, {} improved, {} regressed, {} added, {} missing → {}\n",
            self.count(DeltaStatus::Ok),
            self.count(DeltaStatus::Improved),
            self.count(DeltaStatus::Regressed),
            self.count(DeltaStatus::Added),
            self.count(DeltaStatus::Missing),
            if self.has_failures() { "FAIL" } else { "PASS" }
        ));
        out
    }
}

impl JsonCodec for CompareReport {
    fn to_json(&self) -> Json {
        let delta = |d: &BenchDelta| {
            Json::obj(vec![
                ("id", Json::str(d.id.clone())),
                (
                    "base_median_ns",
                    d.base_median_ns.map_or(Json::Null, Json::Num),
                ),
                (
                    "fresh_median_ns",
                    d.fresh_median_ns.map_or(Json::Null, Json::Num),
                ),
                ("delta_ns", d.delta_ns().map_or(Json::Null, Json::Num)),
                ("threshold_ns", d.threshold_ns.map_or(Json::Null, Json::Num)),
                ("status", Json::str(d.status.tag())),
            ])
        };
        Json::obj(vec![
            ("schema", Json::str("pcm-bench-compare")),
            ("base_rev", Json::str(self.revs.0.clone())),
            ("fresh_rev", Json::str(self.revs.1.clone())),
            ("tolerance_pct", Json::Num(self.policy.tolerance_pct)),
            ("k_mad", Json::Num(self.policy.k_mad)),
            ("failed", Json::Bool(self.has_failures())),
            ("deltas", Json::Arr(self.deltas.iter().map(delta).collect())),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if v.get("schema").and_then(Json::as_str) != Some("pcm-bench-compare") {
            return Err(field_error("schema"));
        }
        let policy = GatePolicy {
            tolerance_pct: v
                .get("tolerance_pct")
                .and_then(Json::as_f64)
                .ok_or_else(|| field_error("tolerance_pct"))?,
            k_mad: v
                .get("k_mad")
                .and_then(Json::as_f64)
                .ok_or_else(|| field_error("k_mad"))?,
        };
        let revs = (
            v.get("base_rev")
                .and_then(Json::as_str)
                .ok_or_else(|| field_error("base_rev"))?
                .to_string(),
            v.get("fresh_rev")
                .and_then(Json::as_str)
                .ok_or_else(|| field_error("fresh_rev"))?
                .to_string(),
        );
        let status = |tag: Option<&str>| match tag {
            Some("ok") => Ok(DeltaStatus::Ok),
            Some("improved") => Ok(DeltaStatus::Improved),
            Some("REGRESSED") => Ok(DeltaStatus::Regressed),
            Some("added") => Ok(DeltaStatus::Added),
            Some("MISSING") => Ok(DeltaStatus::Missing),
            _ => Err(field_error("status")),
        };
        let deltas = v
            .get("deltas")
            .and_then(Json::as_array)
            .ok_or_else(|| field_error("deltas"))?
            .iter()
            .map(|d| {
                let opt = |field: &str| match d.get(field) {
                    None | Some(Json::Null) => Ok(None),
                    Some(x) => match x.as_f64() {
                        Some(v) => Ok(Some(v)),
                        None => Err(field_error(field)),
                    },
                };
                Ok(BenchDelta {
                    id: d
                        .get("id")
                        .and_then(Json::as_str)
                        .ok_or_else(|| field_error("id"))?
                        .to_string(),
                    base_median_ns: opt("base_median_ns")?,
                    fresh_median_ns: opt("fresh_median_ns")?,
                    threshold_ns: opt("threshold_ns")?,
                    status: status(d.get("status").and_then(Json::as_str))?,
                })
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        Ok(CompareReport {
            policy,
            revs,
            deltas,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_types::perf::{BenchRecord, SnapshotMeta};

    fn rec(id: &str, median: f64, mad: f64) -> BenchRecord {
        BenchRecord {
            id: id.to_string(),
            median_ns: median,
            mad_ns: mad,
            samples: 20,
            iters_per_sample: 64,
            throughput: None,
        }
    }

    fn snap(rev: &str, benches: Vec<BenchRecord>) -> BenchSnapshot {
        BenchSnapshot {
            version: BenchSnapshot::SCHEMA_VERSION,
            meta: SnapshotMeta {
                git_rev: rev.into(),
                profile: "release".into(),
                threads: 8,
                quick: true,
                scheme: "tetris".into(),
                ranks: 1,
            },
            benches,
        }
    }

    #[test]
    fn self_comparison_passes_clean() {
        let s = snap(
            "aaaa111",
            vec![rec("g/a", 100.0, 2.0), rec("g/b", 5000.0, 0.0)],
        );
        let report = compare(&s, &s, GatePolicy::default());
        assert!(!report.has_failures());
        assert!(
            report.deltas.iter().all(|d| d.status == DeltaStatus::Ok),
            "{report:?}"
        );
    }

    #[test]
    fn added_and_missing_are_tracked() {
        let base = snap("aaaa111", vec![rec("g/old", 10.0, 1.0)]);
        let fresh = snap("bbbb222", vec![rec("g/new", 10.0, 1.0)]);
        let report = compare(&base, &fresh, GatePolicy::default());
        assert_eq!(report.count(DeltaStatus::Missing), 1);
        assert_eq!(report.count(DeltaStatus::Added), 1);
        assert!(report.has_failures(), "missing coverage must gate");
    }

    /// Golden fixture: the exact markdown table and JSON report bytes for
    /// a fixed comparison containing a synthetic regression. Any change
    /// to the rendering is a deliberate, reviewed diff of this test.
    #[test]
    fn report_matches_golden_fixture() {
        let base = snap(
            "aaaa111",
            vec![
                rec("canonical/analysis/analyze_line", 100.0, 2.0),
                rec("canonical/system/vips", 2_000_000.0, 40_000.0),
            ],
        );
        // analyze_line doubled (regression far beyond 5%/3·MAD); the
        // system run only drifted inside its MAD band.
        let fresh = snap(
            "bbbb222",
            vec![
                rec("canonical/analysis/analyze_line", 200.0, 1.0),
                rec("canonical/system/vips", 2_050_000.0, 40_000.0),
            ],
        );
        let report = compare(&base, &fresh, GatePolicy::default());
        assert!(report.has_failures(), "synthetic regression must gate");

        let expected_md = "\
# bench-compare

base `aaaa111` → fresh `bbbb222` · gate: Δ > max(5.0% · base, 3.0 · MAD)

| bench | base | fresh | Δ | Δ% | threshold | status |
|---|---:|---:|---:|---:|---:|---|
| canonical/analysis/analyze_line | 100.0 ns | 200.0 ns | +100.0 ns | +100.0% | 6.0 ns | REGRESSED |
| canonical/system/vips | 2000000.0 ns | 2050000.0 ns | +50000.0 ns | +2.5% | 120000.0 ns | ok |

1 ok, 0 improved, 1 regressed, 0 added, 0 missing → FAIL
";
        assert_eq!(report.markdown(), expected_md);

        let expected_json = "\
{\"schema\":\"pcm-bench-compare\",\"base_rev\":\"aaaa111\",\"fresh_rev\":\"bbbb222\",\
\"tolerance_pct\":5,\"k_mad\":3,\"failed\":true,\"deltas\":[\
{\"id\":\"canonical/analysis/analyze_line\",\"base_median_ns\":100,\"fresh_median_ns\":200,\
\"delta_ns\":100,\"threshold_ns\":6,\"status\":\"REGRESSED\"},\
{\"id\":\"canonical/system/vips\",\"base_median_ns\":2000000,\"fresh_median_ns\":2050000,\
\"delta_ns\":50000,\"threshold_ns\":120000,\"status\":\"ok\"}]}";
        assert_eq!(report.to_json().to_string_compact(), expected_json);

        // And the JSON form round-trips to the same report.
        let back = CompareReport::from_json_str(&report.to_json_string()).unwrap();
        assert_eq!(back, report);
    }
}
