//! The paper's reported numbers, kept as constants so every figure can
//! print paper-vs-measured side by side.

/// Average reductions vs the DCW baseline reported in §V (fractions of the
/// baseline value removed; e.g. read latency: Tetris removes 65%).
pub struct PaperAverages {
    /// Scheme short name.
    pub scheme: &'static str,
    /// Read-latency reduction (Fig. 11).
    pub read_latency_reduction: f64,
    /// Write-latency reduction (Fig. 12).
    pub write_latency_reduction: f64,
    /// Running-time reduction (Fig. 14).
    pub running_time_reduction: f64,
    /// IPC improvement factor (Fig. 13).
    pub ipc_improvement: f64,
    /// Average write units per cache-line write (Fig. 10).
    pub write_units: f64,
}

/// §V-B numbers for the four non-baseline schemes.
pub const PAPER_AVERAGES: [PaperAverages; 4] = [
    PaperAverages {
        scheme: "FNW",
        read_latency_reduction: 0.39,
        write_latency_reduction: 0.25,
        running_time_reduction: 0.24,
        ipc_improvement: 1.4,
        write_units: 4.0,
    },
    PaperAverages {
        scheme: "2SW",
        read_latency_reduction: 0.50,
        write_latency_reduction: 0.33,
        running_time_reduction: 0.34,
        ipc_improvement: 1.6,
        write_units: 3.0,
    },
    PaperAverages {
        scheme: "3SW",
        read_latency_reduction: 0.56,
        write_latency_reduction: 0.35,
        running_time_reduction: 0.39,
        ipc_improvement: 1.8,
        write_units: 2.5,
    },
    PaperAverages {
        scheme: "Tetris",
        read_latency_reduction: 0.65,
        write_latency_reduction: 0.40,
        running_time_reduction: 0.46,
        ipc_improvement: 2.0,
        write_units: 1.26, // midpoint of the reported 1.06–1.46 range
    },
];

/// Fig. 10: Tetris Write's measured write-unit range.
pub const TETRIS_WRITE_UNITS_RANGE: (f64, f64) = (1.06, 1.46);

/// Observation 1: average bit-writes per 64-bit unit after flip coding.
pub const OBS1_AVG_TOTAL: f64 = 9.6;
/// Observation 1: the SET share of that average.
pub const OBS1_AVG_SETS: f64 = 6.7;
/// Observation 1: the RESET share.
pub const OBS1_AVG_RESETS: f64 = 2.9;

/// Look up paper averages by short scheme name.
pub fn paper_averages(short: &str) -> Option<&'static PaperAverages> {
    PAPER_AVERAGES.iter().find(|p| p.scheme == short)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_consistent_with_abstract() {
        // Abstract: Tetris earns 26/15/10% *more* read-latency reduction
        // than FNW/2SW/3SW.
        let t = paper_averages("Tetris").unwrap();
        assert!(
            (t.read_latency_reduction
                - paper_averages("FNW").unwrap().read_latency_reduction
                - 0.26)
                .abs()
                < 1e-9
        );
        assert!(
            (t.read_latency_reduction
                - paper_averages("2SW").unwrap().read_latency_reduction
                - 0.15)
                .abs()
                < 1e-9
        );
        assert!(
            (t.read_latency_reduction
                - paper_averages("3SW").unwrap().read_latency_reduction
                - 0.09)
                .abs()
                < 0.011
        );
        // Write latency: 15/7/5% more.
        assert!(
            (t.write_latency_reduction
                - paper_averages("FNW").unwrap().write_latency_reduction
                - 0.15)
                .abs()
                < 1e-9
        );
        // Running time: 22/12/7% more.
        assert!(
            (t.running_time_reduction
                - paper_averages("FNW").unwrap().running_time_reduction
                - 0.22)
                .abs()
                < 1e-9
        );
        assert_eq!(t.ipc_improvement, 2.0);
    }

    #[test]
    fn observation1_split() {
        assert!((OBS1_AVG_SETS + OBS1_AVG_RESETS - OBS1_AVG_TOTAL).abs() < 1e-9);
    }
}
