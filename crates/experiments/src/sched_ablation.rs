//! Head-to-head comparison of the controller's scheduling policies.
//!
//! Runs the same workload twice — once with the paper's fixed
//! fill-to-capacity drain ([`pcm_memsim::SchedConfig::fixed`]), once with
//! the adaptive policies on ([`pcm_memsim::SchedConfig::adaptive`]) —
//! recording a fine-detail telemetry trace of each, then diffs the
//! telemetry-derived metrics: queue-depth percentiles, per-bank
//! utilization spread, and read/write latency. The `sched-ablation`
//! subcommand prints the delta table; `--assert` turns the comparison
//! into the CI regression gate (adaptive must not be worse than the
//! baseline on p95 write-queue depth, mean read latency, or utilization
//! spread, within tolerance).

use crate::report::{f2, Table};
use crate::runner::{run_one_to_file, RunConfig};
use crate::schemes::SchemeKind;
use pcm_memsim::{SchedConfig, SimResult};
use pcm_telemetry::{percentile, read_tagged_events, TraceDetail, TraceSummary};
use pcm_types::PcmError;
use pcm_workloads::WorkloadProfile;
use std::path::{Path, PathBuf};

/// Telemetry-derived metrics of one policy's run, ready for diffing.
#[derive(Clone, Debug)]
pub struct PolicySummary {
    /// Policy label ("fixed" / "adaptive").
    pub label: String,
    /// End-to-end runtime in µs.
    pub runtime_us: f64,
    /// Mean read latency in ns.
    pub mean_read_ns: f64,
    /// p95 read latency in ns.
    pub p95_read_ns: f64,
    /// Mean write latency in ns.
    pub mean_write_ns: f64,
    /// Mean write-queue depth over all fine-detail samples.
    pub mean_wq_depth: f64,
    /// p95 write-queue depth (nearest-rank, exact).
    pub p95_wq_depth: u32,
    /// Per-bank utilization spread (max − min) in percentage points.
    pub util_spread_pct: f64,
    /// Mean per-bank utilization in percent.
    pub mean_util_pct: f64,
    /// Drain episodes entered.
    pub drains: u64,
    /// Writes steered to a colder bank than FIFO order would pick.
    pub steered_writes: u64,
    /// Read-priority windows opened mid-drain.
    pub read_windows: u64,
    /// Watermark moves recorded.
    pub watermark_adjusts: u64,
}

/// Reduce one run (result + summarized trace) to its policy metrics.
pub fn summarize(label: &str, r: &SimResult, s: &TraceSummary) -> PolicySummary {
    let utils: Vec<f64> = (0..s.banks.len()).map(|b| s.utilization(b)).collect();
    let max_u = utils.iter().cloned().fold(0.0f64, f64::max);
    let min_u = utils.iter().cloned().fold(f64::INFINITY, f64::min);
    let spread = if utils.is_empty() { 0.0 } else { max_u - min_u };
    let mean_wq = if s.write_depths.is_empty() {
        0.0
    } else {
        s.write_depths.iter().map(|&d| d as f64).sum::<f64>() / s.write_depths.len() as f64
    };
    PolicySummary {
        label: label.to_string(),
        runtime_us: r.runtime.as_ns_f64() / 1000.0,
        mean_read_ns: r.read_latency.mean_ns(),
        p95_read_ns: r.read_latency.percentile_ns(0.95),
        mean_write_ns: r.write_latency.mean_ns(),
        mean_wq_depth: mean_wq,
        p95_wq_depth: percentile(&s.write_depths, 0.95),
        util_spread_pct: spread * 100.0,
        mean_util_pct: s.mean_utilization() * 100.0,
        drains: s.drains,
        steered_writes: s.steered_writes,
        read_windows: s.read_windows,
        watermark_adjusts: s.watermark_adjusts,
    }
}

/// Signed percentage change from `base` to `new` ("-12.5%"); "n/a" when
/// the baseline is zero.
fn delta_pct(base: f64, new: f64) -> String {
    if base == 0.0 {
        "n/a".to_string()
    } else {
        format!("{:+.1}%", (new - base) / base * 100.0)
    }
}

/// The fixed-vs-adaptive delta table the `sched-ablation` subcommand
/// prints (and the golden-fixture test pins down).
pub fn delta_table(base: &PolicySummary, adaptive: &PolicySummary) -> Table {
    let mut t = Table::new(
        "Scheduler ablation — fixed vs adaptive",
        &["metric", &base.label, &adaptive.label, "delta"],
    );
    let mut push = |metric: &str, b: f64, a: f64| {
        t.row(vec![metric.to_string(), f2(b), f2(a), delta_pct(b, a)]);
    };
    push("runtime (µs)", base.runtime_us, adaptive.runtime_us);
    push(
        "mean read latency (ns)",
        base.mean_read_ns,
        adaptive.mean_read_ns,
    );
    push(
        "p95 read latency (ns)",
        base.p95_read_ns,
        adaptive.p95_read_ns,
    );
    push(
        "mean write latency (ns)",
        base.mean_write_ns,
        adaptive.mean_write_ns,
    );
    push(
        "mean write-queue depth",
        base.mean_wq_depth,
        adaptive.mean_wq_depth,
    );
    push(
        "p95 write-queue depth",
        base.p95_wq_depth as f64,
        adaptive.p95_wq_depth as f64,
    );
    push(
        "bank utilization spread (pp)",
        base.util_spread_pct,
        adaptive.util_spread_pct,
    );
    push(
        "mean bank utilization (%)",
        base.mean_util_pct,
        adaptive.mean_util_pct,
    );
    push("drain episodes", base.drains as f64, adaptive.drains as f64);
    t.note(format!(
        "adaptive decisions: {} watermark moves, {} steered writes, {} read windows",
        adaptive.watermark_adjusts, adaptive.steered_writes, adaptive.read_windows
    ));
    t
}

/// Regression gate: is the adaptive policy no worse than the baseline?
/// Returns the list of violated checks (empty = pass). Tolerances: p95
/// write-queue depth may exceed the baseline by 1 entry, mean read
/// latency by 5%, utilization spread by 0.5 percentage points.
pub fn regression_check(base: &PolicySummary, adaptive: &PolicySummary) -> Vec<String> {
    let mut violations = Vec::new();
    if adaptive.p95_wq_depth > base.p95_wq_depth + 1 {
        violations.push(format!(
            "p95 write-queue depth regressed: {} -> {} (tolerance +1)",
            base.p95_wq_depth, adaptive.p95_wq_depth
        ));
    }
    if adaptive.mean_read_ns > base.mean_read_ns * 1.05 {
        violations.push(format!(
            "mean read latency regressed: {:.1} ns -> {:.1} ns (tolerance +5%)",
            base.mean_read_ns, adaptive.mean_read_ns
        ));
    }
    if adaptive.util_spread_pct > base.util_spread_pct + 0.5 {
        violations.push(format!(
            "bank utilization spread regressed: {:.1} pp -> {:.1} pp (tolerance +0.5 pp)",
            base.util_spread_pct, adaptive.util_spread_pct
        ));
    }
    violations
}

/// Both runs of one ablation: summaries plus the trace files they were
/// derived from (kept for `report` rendering and CI artifacts).
#[derive(Debug)]
pub struct AblationOutcome {
    /// Fixed-policy metrics.
    pub base: PolicySummary,
    /// Adaptive-policy metrics.
    pub adaptive: PolicySummary,
    /// JSONL trace of the fixed run.
    pub base_trace: PathBuf,
    /// JSONL trace of the adaptive run.
    pub adaptive_trace: PathBuf,
    /// Per-rank trace summaries of the fixed run, indexed by rank
    /// (length 1 for unsharded runs).
    pub base_ranks: Vec<TraceSummary>,
    /// Per-rank trace summaries of the adaptive run.
    pub adaptive_ranks: Vec<TraceSummary>,
}

/// Run `profile` under Tetris Write with the fixed and the adaptive
/// scheduling policy, tracing both into `trace_dir` (asynchronously,
/// rank-tagged when `cfg` shards across ranks), and summarize.
pub fn run_sched_ablation(
    profile: &WorkloadProfile,
    cfg: &RunConfig,
    trace_dir: &Path,
) -> Result<AblationOutcome, PcmError> {
    std::fs::create_dir_all(trace_dir)
        .map_err(|e| PcmError::config(format!("cannot create {}: {e}", trace_dir.display())))?;
    let run_policy = |label: &str, sched: SchedConfig| -> Result<_, PcmError> {
        let mut cfg = *cfg;
        cfg.system.controller.sched = sched;
        let path = trace_dir.join(format!("{}_{}.jsonl", profile.name, label));
        let (result, _written) =
            run_one_to_file(profile, SchemeKind::Tetris, &cfg, &path, TraceDetail::Fine)
                .map_err(|e| PcmError::config(format!("cannot trace {}: {e}", path.display())))?;
        let file = std::fs::File::open(&path)
            .map_err(|e| PcmError::config(format!("cannot reopen {}: {e}", path.display())))?;
        let tagged = read_tagged_events(std::io::BufReader::new(file))
            .map_err(|e| PcmError::config(format!("cannot parse {}: {e}", path.display())))?;
        let ranks = TraceSummary::by_rank(&tagged);
        let summary = if ranks.len() == 1 {
            ranks[0].clone()
        } else {
            TraceSummary::merged(&ranks)
        };
        Ok((summarize(label, &result, &summary), ranks, path))
    };
    let (base, base_ranks, base_trace) = run_policy("fixed", SchedConfig::fixed())?;
    let (adaptive, adaptive_ranks, adaptive_trace) =
        run_policy("adaptive", SchedConfig::adaptive())?;
    Ok(AblationOutcome {
        base,
        adaptive,
        base_trace,
        adaptive_trace,
        base_ranks,
        adaptive_ranks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_workloads::ALL_PROFILES;

    fn fixture(label: &str, scale: f64) -> PolicySummary {
        PolicySummary {
            label: label.to_string(),
            runtime_us: 1000.0 * scale,
            mean_read_ns: 80.0 * scale,
            p95_read_ns: 400.0 * scale,
            mean_write_ns: 5000.0 * scale,
            mean_wq_depth: 20.0 * scale,
            p95_wq_depth: (30.0 * scale) as u32,
            util_spread_pct: 40.0 * scale,
            mean_util_pct: 50.0,
            drains: 10,
            steered_writes: if label == "adaptive" { 42 } else { 0 },
            read_windows: if label == "adaptive" { 3 } else { 0 },
            watermark_adjusts: if label == "adaptive" { 7 } else { 0 },
        }
    }

    /// Golden fixture: two hand-built summaries must render into exactly
    /// this delta table.
    #[test]
    fn delta_table_matches_golden_fixture() {
        let base = fixture("fixed", 1.0);
        let adaptive = fixture("adaptive", 0.8);
        let t = delta_table(&base, &adaptive);
        assert_eq!(
            t.to_csv(),
            "# adaptive decisions: 7 watermark moves, 42 steered writes, 3 read windows\n\
             metric,fixed,adaptive,delta\n\
             runtime (µs),1000.00,800.00,-20.0%\n\
             mean read latency (ns),80.00,64.00,-20.0%\n\
             p95 read latency (ns),400.00,320.00,-20.0%\n\
             mean write latency (ns),5000.00,4000.00,-20.0%\n\
             mean write-queue depth,20.00,16.00,-20.0%\n\
             p95 write-queue depth,30.00,24.00,-20.0%\n\
             bank utilization spread (pp),40.00,32.00,-20.0%\n\
             mean bank utilization (%),50.00,50.00,+0.0%\n\
             drain episodes,10.00,10.00,+0.0%\n"
        );
    }

    #[test]
    fn regression_check_flags_each_metric() {
        let base = fixture("fixed", 1.0);
        assert!(regression_check(&base, &fixture("adaptive", 1.0)).is_empty());
        assert!(
            regression_check(&base, &fixture("adaptive", 0.8)).is_empty(),
            "an improvement always passes"
        );
        let worse = fixture("adaptive", 1.5);
        let violations = regression_check(&base, &worse);
        assert_eq!(violations.len(), 3, "{violations:?}");
        assert!(violations[0].contains("p95 write-queue depth"));
        assert!(violations[1].contains("mean read latency"));
        assert!(violations[2].contains("utilization spread"));

        // Tolerances: +1 queue entry and +5% read latency are not flagged.
        let mut near = fixture("adaptive", 1.0);
        near.p95_wq_depth = base.p95_wq_depth + 1;
        near.mean_read_ns = base.mean_read_ns * 1.049;
        assert!(regression_check(&base, &near).is_empty());
    }

    #[test]
    fn delta_pct_handles_zero_baseline() {
        assert_eq!(delta_pct(0.0, 5.0), "n/a");
        assert_eq!(delta_pct(10.0, 5.0), "-50.0%");
    }

    /// End-to-end on a small run: the adaptive policy must actually make
    /// decisions, and the regression gate must hold on the write-heaviest
    /// workload (the acceptance criterion the CI job enforces at --quick
    /// scale).
    #[test]
    fn vips_ablation_adaptive_not_worse() {
        let p = &ALL_PROFILES[7]; // vips
        let cfg = RunConfig::builder()
            .instructions_per_core(120_000)
            .build()
            .unwrap();
        let dir = std::env::temp_dir().join(format!("sched_ablation_{}", std::process::id()));
        let out = run_sched_ablation(p, &cfg, &dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(out.base.steered_writes, 0);
        assert_eq!(out.base.watermark_adjusts, 0);
        assert!(
            out.adaptive.watermark_adjusts > 0,
            "adaptive run never moved the marks"
        );
        assert!(
            out.adaptive.util_spread_pct <= out.base.util_spread_pct + 0.5,
            "steering must not widen the utilization spread: {} -> {}",
            out.base.util_spread_pct,
            out.adaptive.util_spread_pct
        );
        let violations = regression_check(&out.base, &out.adaptive);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
