//! Scoped work-stealing thread pool (the workspace's `rayon` replacement).
//!
//! [`parallel_map`] fans a slice of independent jobs out across OS threads
//! using `std::thread::scope`, so borrowed data (profiles, configs) can be
//! shared without `Arc`. Each worker owns a contiguous index range and pops
//! jobs from its *front*; when its range drains it *steals from the back*
//! of the fullest remaining victim. Ranges are packed `(pos, end)` into a
//! single `AtomicU64`, so both pop and steal are one CAS with no locks.
//!
//! Determinism: workers tag every result with its job index and the pool
//! merges by index after the scope joins, so the output order is exactly
//! the input order — byte-identical to the sequential path — no matter how
//! the steals interleave. With `threads == 1` the pool does not spawn at
//! all; it runs the plain sequential loop.
//!
//! Panics: a panicking worker trips a shared abort flag (via a drop guard)
//! so the other workers stop taking new jobs, then the pool re-raises the
//! original panic payload once every thread has joined — a poisoned run
//! can never deadlock or return partial results.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// One worker's index range, packed `(pos << 32) | end`.
///
/// Invariant: `pos <= end` at all times; the range is empty when equal.
struct WorkRange(AtomicU64);

fn pack(pos: u32, end: u32) -> u64 {
    (pos as u64) << 32 | end as u64
}

fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

impl WorkRange {
    fn new(start: u32, end: u32) -> Self {
        WorkRange(AtomicU64::new(pack(start, end)))
    }

    /// Pop the next index from the front of the range (owner side).
    fn take_front(&self) -> Option<u32> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (pos, end) = unpack(cur);
            if pos >= end {
                return None;
            }
            match self.0.compare_exchange_weak(
                cur,
                pack(pos + 1, end),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(pos),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Steal one index from the back of the range (thief side).
    fn take_back(&self) -> Option<u32> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (pos, end) = unpack(cur);
            if pos >= end {
                return None;
            }
            match self.0.compare_exchange_weak(
                cur,
                pack(pos, end - 1),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(end - 1),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Jobs left in the range (racy, used only to pick steal victims).
    fn remaining(&self) -> u32 {
        let (pos, end) = unpack(self.0.load(Ordering::Relaxed));
        end.saturating_sub(pos)
    }
}

/// Sets the abort flag if its thread unwinds, so peers stop early.
struct AbortOnPanic<'a>(&'a AtomicBool);

impl Drop for AbortOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::Release);
        }
    }
}

/// Default worker count: one per available core.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` on `threads` workers, preserving input order.
///
/// Equivalent to `items.iter().map(|t| f(t)).collect()` — including
/// bit-for-bit when `f` is deterministic per item — but wall-clock scales
/// with the slowest *item*, not the slowest *chunk*, thanks to stealing.
///
/// # Panics
/// Re-raises the first observed worker panic after all threads join.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    assert!(n <= u32::MAX as usize, "job count exceeds u32 index space");
    if threads <= 1 || n <= 1 {
        return items.iter().map(&f).collect();
    }
    let workers = threads.min(n);

    // Contiguous initial partition; stealing rebalances dynamically.
    let ranges: Vec<WorkRange> = (0..workers)
        .map(|w| {
            let start = (n * w / workers) as u32;
            let end = (n * (w + 1) / workers) as u32;
            WorkRange::new(start, end)
        })
        .collect();
    let abort = AtomicBool::new(false);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let ranges = &ranges;
                let abort = &abort;
                let slots = &slots;
                let f = &f;
                scope.spawn(move || {
                    let _guard = AbortOnPanic(abort);
                    loop {
                        if abort.load(Ordering::Acquire) {
                            return;
                        }
                        let idx = ranges[w].take_front().or_else(|| {
                            // Own range drained: steal from the back of
                            // the victim with the most work left.
                            (0..workers)
                                .filter(|&v| v != w)
                                .max_by_key(|&v| ranges[v].remaining())
                                .and_then(|v| ranges[v].take_back())
                        });
                        match idx {
                            Some(i) => {
                                let r = f(&items[i as usize]);
                                *slots[i as usize].lock().unwrap() = Some(r);
                            }
                            None => return,
                        }
                    }
                })
            })
            .collect();
        // Join explicitly so the first panic payload is re-raised verbatim
        // (scope would otherwise also abort-join, but this keeps the
        // original message).
        let mut panic_payload = None;
        for h in handles {
            if let Err(p) = h.join() {
                panic_payload.get_or_insert(p);
            }
        }
        if let Some(p) = panic_payload {
            std::panic::resume_unwind(p);
        }
    });

    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result mutex poisoned")
                .expect("every job index produced a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn output_order_matches_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = parallel_map(&items, 8, |&v| v * v);
        let seq: Vec<u64> = items.iter().map(|&v| v * v).collect();
        assert_eq!(out, seq);
    }

    #[test]
    fn one_thread_is_sequential() {
        // threads == 1 must not spawn: items are visited in exact input
        // order, which no multi-worker schedule guarantees.
        let order = Mutex::new(Vec::new());
        let items: Vec<usize> = (0..50).collect();
        let out = parallel_map(&items, 1, |&v| {
            order.lock().unwrap().push(v);
            v + 1
        });
        assert_eq!(*order.lock().unwrap(), items);
        assert_eq!(out, (1..=50).collect::<Vec<_>>());
    }

    #[test]
    fn all_jobs_run_exactly_once() {
        let count = AtomicUsize::new(0);
        let items: Vec<u32> = (0..1000).collect();
        let out = parallel_map(&items, 7, |&v| {
            count.fetch_add(1, Ordering::Relaxed);
            v
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
        assert_eq!(out, items);
    }

    #[test]
    fn stealing_rebalances_skewed_work() {
        // Front-loaded cost: worker 0's chunk is ~100× the others'. With
        // stealing, peers drain it; we only assert completeness and order
        // (timing asserts would be flaky in CI).
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, 4, |&v| {
            if v < 16 {
                // Busy work on the skewed chunk.
                (0..50_000u64).fold(v, |a, b| a.wrapping_add(b ^ a))
            } else {
                v
            }
        });
        assert_eq!(out.len(), 64);
        assert_eq!(out[32], 32);
    }

    #[test]
    fn panics_propagate_without_deadlock() {
        let items: Vec<u32> = (0..100).collect();
        let res = std::panic::catch_unwind(|| {
            parallel_map(&items, 4, |&v| {
                if v == 37 {
                    panic!("job 37 exploded");
                }
                v
            })
        });
        let payload = res.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("job 37 exploded"), "payload: {msg}");
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, 8, |&v| v).is_empty());
        assert_eq!(parallel_map(&[5u32], 8, |&v| v * 2), vec![10]);
    }

    #[test]
    fn more_threads_than_items() {
        let items = [1u32, 2, 3];
        assert_eq!(parallel_map(&items, 64, |&v| v + 1), vec![2, 3, 4]);
    }

    #[test]
    fn work_range_front_and_back() {
        let r = WorkRange::new(0, 4);
        assert_eq!(r.take_front(), Some(0));
        assert_eq!(r.take_back(), Some(3));
        assert_eq!(r.take_back(), Some(2));
        assert_eq!(r.take_front(), Some(1));
        assert_eq!(r.take_front(), None);
        assert_eq!(r.take_back(), None);
        assert_eq!(r.remaining(), 0);
    }
}
