//! Full-system experiment runs.

use crate::pool;
use crate::schemes::SchemeKind;
use pcm_memsim::{SimResult, System, SystemConfig, TraceLevel};
use pcm_telemetry::{NullSink, Telemetry};
use pcm_types::PcmError;
use pcm_workloads::{GeneratorConfig, ProfileContent, SyntheticParsec, WorkloadProfile};
use tetris_write::TetrisConfig;

/// Sizing/seeding for one experiment run.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Instructions each core retires.
    pub instructions_per_core: u64,
    /// System configuration (cores, caches, controller, PCM).
    pub system: SystemConfig,
    /// RNG seed shared by trace generation and content synthesis.
    pub seed: u64,
    /// Tetris configuration (ignored by other schemes).
    pub tetris: TetrisConfig,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            instructions_per_core: 8_000_000,
            system: SystemConfig::paper_baseline(),
            seed: 0xC0FFEE,
            tetris: TetrisConfig::paper_baseline(),
        }
    }
}

impl RunConfig {
    /// Start a fluent builder from the full-length defaults.
    pub fn builder() -> RunConfigBuilder {
        RunConfigBuilder {
            cfg: Self::default(),
        }
    }
}

/// Fluent construction of a [`RunConfig`];
/// [`RunConfigBuilder::build`] validates the system and Tetris
/// configurations, so an invalid combination never escapes.
///
/// ```
/// use tetris_experiments::RunConfig;
/// let cfg = RunConfig::builder()
///     .quick()
///     .instructions_per_core(100_000)
///     .seed(42)
///     .build()
///     .unwrap();
/// assert_eq!(cfg.instructions_per_core, 100_000);
/// ```
#[derive(Clone, Copy, Debug)]
#[must_use = "call .build() to obtain the validated RunConfig"]
pub struct RunConfigBuilder {
    cfg: RunConfig,
}

impl RunConfigBuilder {
    /// Instructions each core retires.
    pub fn instructions_per_core(mut self, n: u64) -> Self {
        self.cfg.instructions_per_core = n;
        self
    }

    /// System configuration (cores, caches, controller, PCM).
    pub fn system(mut self, s: SystemConfig) -> Self {
        self.cfg.system = s;
        self
    }

    /// RNG seed shared by trace generation and content synthesis.
    pub fn seed(mut self, s: u64) -> Self {
        self.cfg.seed = s;
        self
    }

    /// Tetris configuration (ignored by other schemes).
    pub fn tetris(mut self, t: TetrisConfig) -> Self {
        self.cfg.tetris = t;
        self
    }

    /// Fast preset for tests and `--quick` runs (500 k instructions/core).
    pub fn quick(mut self) -> Self {
        self.cfg.instructions_per_core = 500_000;
        self
    }

    /// Validate and return the finished configuration.
    pub fn build(self) -> Result<RunConfig, PcmError> {
        self.cfg.system.validate()?;
        self.cfg.tetris.validate()?;
        Ok(self.cfg)
    }
}

/// Run one workload under one scheme.
pub fn run_one(profile: &WorkloadProfile, scheme: SchemeKind, cfg: &RunConfig) -> SimResult {
    run_one_traced(profile, scheme, cfg, Box::new(NullSink))
}

/// [`run_one`] with a telemetry sink observing the memory hierarchy —
/// pass a [`pcm_telemetry::JsonlSink`] to record the run to disk, or a
/// [`pcm_telemetry::MemorySink`] to inspect events in-process. Telemetry
/// adds nothing to the result; the sink sees bank occupancy, queue depths,
/// drain episodes, pause/resume decisions and batch-packing outcomes.
pub fn run_one_traced(
    profile: &WorkloadProfile,
    scheme: SchemeKind,
    cfg: &RunConfig,
    tel: Box<dyn Telemetry>,
) -> SimResult {
    let gen_cfg = GeneratorConfig {
        instructions_per_core: cfg.instructions_per_core,
        cores: cfg.system.cores,
        line_bytes: cfg.system.mem.org.cache_line_bytes as u64,
        seed: cfg.seed ^ fxhash(profile.name),
    };
    let trace = SyntheticParsec::new(profile, gen_cfg);
    let content = ProfileContent::new(profile, gen_cfg.seed ^ 0x51);
    let mut tetris = cfg.tetris;
    tetris.scheme = cfg.system.mem;
    let mut sys = System::new(
        cfg.system,
        scheme.build_with(tetris),
        Box::new(trace),
        Box::new(content),
        TraceLevel::MemoryLevel,
    )
    .expect("valid system configuration");
    sys.set_workload_name(profile.name);
    sys.set_telemetry(tel);
    sys.run()
}

/// Run the full workload × scheme matrix in parallel on the in-repo
/// work-stealing pool ([`crate::pool`]), one worker per core.
///
/// Results are ordered `profiles × schemes` (workload-major), identical to
/// the sequential order — each run is independently seeded, so the output
/// is byte-identical whatever the thread count.
pub fn run_matrix(
    profiles: &[WorkloadProfile],
    schemes: &[SchemeKind],
    cfg: &RunConfig,
) -> Vec<SimResult> {
    run_matrix_threads(profiles, schemes, cfg, pool::default_threads())
}

/// [`run_matrix`] with an explicit worker count (`1` = fully sequential,
/// no threads spawned).
pub fn run_matrix_threads(
    profiles: &[WorkloadProfile],
    schemes: &[SchemeKind],
    cfg: &RunConfig,
    threads: usize,
) -> Vec<SimResult> {
    let jobs: Vec<(usize, usize)> = (0..profiles.len())
        .flat_map(|p| (0..schemes.len()).map(move |s| (p, s)))
        .collect();
    pool::parallel_map(&jobs, threads, |&(p, s)| {
        run_one(&profiles[p], schemes[s], cfg)
    })
}

/// Tiny deterministic string hash for seed derivation.
fn fxhash(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_workloads::ALL_PROFILES;

    #[test]
    fn single_run_produces_traffic() {
        let p = &ALL_PROFILES[7]; // vips, heaviest
        let cfg = RunConfig::builder().quick().build().unwrap();
        let r = run_one(p, SchemeKind::Dcw, &cfg);
        assert!(r.mem_writes > 100, "writes: {}", r.mem_writes);
        assert!(r.mem_reads > 100);
        assert_eq!(r.workload, "vips");
        // Measured RPKI within 25% of Table III.
        assert!(
            (r.rpki() - p.rpki).abs() / p.rpki < 0.25,
            "rpki {}",
            r.rpki()
        );
    }

    #[test]
    fn matrix_order_is_workload_major() {
        let cfg = RunConfig::builder()
            .instructions_per_core(100_000)
            .build()
            .unwrap();
        let profiles = [ALL_PROFILES[0], ALL_PROFILES[7]];
        let schemes = [SchemeKind::Dcw, SchemeKind::Tetris];
        let m = run_matrix(&profiles, &schemes, &cfg);
        assert_eq!(m.len(), 4);
        assert_eq!(m[0].workload, "blackscholes");
        assert_eq!(m[1].workload, "blackscholes");
        assert_eq!(m[2].workload, "vips");
        assert_eq!(m[3].scheme, "Tetris Write");
    }

    #[test]
    fn tetris_beats_baseline_on_write_heavy_workload() {
        let p = &ALL_PROFILES[7]; // vips
        let cfg = RunConfig::builder().quick().build().unwrap();
        let dcw = run_one(p, SchemeKind::Dcw, &cfg);
        let tetris = run_one(p, SchemeKind::Tetris, &cfg);
        assert!(tetris.runtime < dcw.runtime);
        assert!(tetris.ipc() > dcw.ipc());
        assert!(
            tetris.avg_write_units < 2.0,
            "tetris units {}",
            tetris.avg_write_units
        );
        assert_eq!(dcw.avg_write_units, 8.0);
    }

    #[test]
    fn parallel_matrix_matches_sequential_bit_for_bit() {
        let cfg = RunConfig::builder()
            .instructions_per_core(100_000)
            .build()
            .unwrap();
        let profiles = [ALL_PROFILES[0], ALL_PROFILES[2]];
        let schemes = [SchemeKind::Dcw, SchemeKind::Tetris];
        let seq = run_matrix_threads(&profiles, &schemes, &cfg, 1);
        let par = run_matrix_threads(&profiles, &schemes, &cfg, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.scheme, b.scheme);
            assert_eq!(a.runtime, b.runtime);
            assert_eq!(a.energy, b.energy);
            assert_eq!(a.instructions, b.instructions);
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.read_latency.sum_ps, b.read_latency.sum_ps);
            assert_eq!(a.write_latency.sum_ps, b.write_latency.sum_ps);
            assert_eq!(a.cell_sets, b.cell_sets);
            assert_eq!(a.cell_resets, b.cell_resets);
        }
    }

    /// Wall-clock acceptance check: the pooled matrix must beat the
    /// sequential path on a multicore host. Timing-sensitive, so ignored
    /// by default — run with `cargo test --release -- --ignored`.
    #[test]
    #[ignore = "timing-sensitive; run explicitly in release mode"]
    fn parallel_matrix_is_faster_on_multicore() {
        if pool::default_threads() < 4 {
            return; // too few cores for a meaningful comparison
        }
        let cfg = RunConfig::builder()
            .instructions_per_core(200_000)
            .build()
            .unwrap();
        let profiles = [
            ALL_PROFILES[0],
            ALL_PROFILES[2],
            ALL_PROFILES[4],
            ALL_PROFILES[7],
        ];
        let schemes = [SchemeKind::Dcw, SchemeKind::Tetris];
        let t0 = std::time::Instant::now();
        let seq = run_matrix_threads(&profiles, &schemes, &cfg, 1);
        let t_seq = t0.elapsed();
        let t1 = std::time::Instant::now();
        let par = run_matrix_threads(&profiles, &schemes, &cfg, 4);
        let t_par = t1.elapsed();
        assert_eq!(seq.len(), par.len());
        eprintln!("sequential {t_seq:?} vs 4 threads {t_par:?}");
        assert!(
            t_par < t_seq,
            "4-thread matrix ({t_par:?}) not faster than sequential ({t_seq:?})"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let p = &ALL_PROFILES[2];
        let cfg = RunConfig::builder()
            .instructions_per_core(200_000)
            .build()
            .unwrap();
        let a = run_one(p, SchemeKind::ThreeStage, &cfg);
        let b = run_one(p, SchemeKind::ThreeStage, &cfg);
        assert_eq!(a.runtime, b.runtime);
        assert_eq!(a.energy, b.energy);
        assert_eq!(a.read_latency.sum_ps, b.read_latency.sum_ps);
    }
}
