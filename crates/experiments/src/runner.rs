//! Full-system experiment runs.

use crate::pool;
use crate::schemes::SchemeKind;
use pcm_memsim::{Rank, ShardedSystem, SimResult, System, SystemConfig};
use pcm_telemetry::{AsyncTraceWriter, NullSink, Telemetry, TraceDetail};
use pcm_types::PcmError;
use pcm_workloads::{GeneratorConfig, ProfileContent, SyntheticParsec, WorkloadProfile};
use tetris_write::TetrisConfig;

/// Per-rank content-seed perturbation (rank 0 keeps the unsharded seed).
const RANK_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Sizing/seeding for one experiment run.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Instructions each core retires.
    pub instructions_per_core: u64,
    /// System configuration (cores, caches, controller, PCM, Tetris
    /// tuning, rank count).
    pub system: SystemConfig,
    /// RNG seed shared by trace generation and content synthesis.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            instructions_per_core: 8_000_000,
            system: SystemConfig::paper_baseline(),
            seed: 0xC0FFEE,
        }
    }
}

impl RunConfig {
    /// Start a fluent builder from the full-length defaults.
    pub fn builder() -> RunConfigBuilder {
        RunConfigBuilder {
            cfg: Self::default(),
        }
    }
}

/// Fluent construction of a [`RunConfig`];
/// [`RunConfigBuilder::build`] validates the system and Tetris
/// configurations, so an invalid combination never escapes.
///
/// ```
/// use tetris_experiments::RunConfig;
/// let cfg = RunConfig::builder()
///     .quick()
///     .instructions_per_core(100_000)
///     .seed(42)
///     .build()
///     .unwrap();
/// assert_eq!(cfg.instructions_per_core, 100_000);
/// ```
#[derive(Clone, Copy, Debug)]
#[must_use = "call .build() to obtain the validated RunConfig"]
pub struct RunConfigBuilder {
    cfg: RunConfig,
}

impl RunConfigBuilder {
    /// Instructions each core retires.
    pub fn instructions_per_core(mut self, n: u64) -> Self {
        self.cfg.instructions_per_core = n;
        self
    }

    /// System configuration (cores, caches, controller, PCM).
    pub fn system(mut self, s: SystemConfig) -> Self {
        self.cfg.system = s;
        self
    }

    /// RNG seed shared by trace generation and content synthesis.
    pub fn seed(mut self, s: u64) -> Self {
        self.cfg.seed = s;
        self
    }

    /// Tetris configuration (ignored by other schemes).
    pub fn tetris(mut self, t: TetrisConfig) -> Self {
        self.cfg.system.tetris = t;
        self
    }

    /// Number of PCM ranks; above 1 the runner shards the trace across
    /// per-rank controllers ([`run_sharded`]).
    pub fn ranks(mut self, n: u32) -> Self {
        self.cfg.system.mem.org.ranks = n;
        self
    }

    /// Fast preset for tests and `--quick` runs (500 k instructions/core).
    pub fn quick(mut self) -> Self {
        self.cfg.instructions_per_core = 500_000;
        self
    }

    /// Validate and return the finished configuration.
    pub fn build(self) -> Result<RunConfig, PcmError> {
        self.cfg.system.validate()?;
        Ok(self.cfg)
    }
}

/// Generator settings for a (workload, run-config) pair.
fn gen_cfg(profile: &WorkloadProfile, cfg: &RunConfig) -> GeneratorConfig {
    GeneratorConfig {
        instructions_per_core: cfg.instructions_per_core,
        cores: cfg.system.cores,
        line_bytes: cfg.system.mem.org.cache_line_bytes as u64,
        seed: cfg.seed ^ fxhash(profile.name),
    }
}

/// The scheme-selected system configuration for one run.
fn sys_cfg(scheme: SchemeKind, cfg: &RunConfig) -> SystemConfig {
    let mut sys = cfg.system;
    sys.mem.select = scheme.select();
    sys
}

/// Run one workload under one scheme. Shards across ranks automatically
/// when `cfg.system.mem.org.ranks > 1` (see [`run_sharded`]).
pub fn run_one(profile: &WorkloadProfile, scheme: SchemeKind, cfg: &RunConfig) -> SimResult {
    if cfg.system.mem.org.ranks > 1 {
        run_sharded(profile, scheme, cfg, pool::default_threads(), |_| {
            Box::new(NullSink)
        })
    } else {
        run_one_traced(profile, scheme, cfg, Box::new(NullSink))
    }
}

/// Single-controller run with a telemetry sink observing the memory
/// hierarchy — pass a [`pcm_telemetry::JsonlSink`] to record the run to
/// disk, or a [`pcm_telemetry::MemorySink`] to inspect events in-process.
/// Telemetry adds nothing to the result; the sink sees bank occupancy,
/// queue depths, drain episodes, pause/resume decisions and batch-packing
/// outcomes. For multi-rank configurations use [`run_sharded`] (one sink
/// per rank) or [`run_one_to_file`] (async rank-tagged JSONL).
pub fn run_one_traced(
    profile: &WorkloadProfile,
    scheme: SchemeKind,
    cfg: &RunConfig,
    tel: Box<dyn Telemetry>,
) -> SimResult {
    let gen_cfg = gen_cfg(profile, cfg);
    let trace = SyntheticParsec::new(profile, gen_cfg);
    let content = ProfileContent::new(profile, gen_cfg.seed ^ 0x51);
    let mut sys = System::build(sys_cfg(scheme, cfg))
        .expect("valid system configuration")
        .with_trace(Box::new(trace))
        .with_content(Box::new(content));
    sys.set_workload_name(profile.name);
    sys.set_telemetry(tel);
    sys.run()
}

/// Shard one run across per-rank controllers, executing the ranks on the
/// in-repo work-stealing pool.
///
/// The workload stream is pulled op-by-op straight from the generator,
/// partitioned by decoded rank bits (gap-folded so every rank sees the
/// full instruction timeline — the unsharded stream is never held), and
/// each rank runs its own [`System`] — controller, bank set, scheduler —
/// on a pool worker. `rank_sink` builds the telemetry sink each rank
/// records into (called on the worker thread; use
/// [`pcm_telemetry::AsyncTraceWriter::rank_sink`] for rank-tagged JSONL,
/// or `|_| Box::new(NullSink)` for none). Per-rank results are merged into
/// one whole-system [`SimResult`]; with one rank this is bit-for-bit the
/// [`run_one_traced`] result.
pub fn run_sharded<F>(
    profile: &WorkloadProfile,
    scheme: SchemeKind,
    cfg: &RunConfig,
    threads: usize,
    rank_sink: F,
) -> SimResult
where
    F: Fn(u32) -> Box<dyn Telemetry> + Sync,
{
    let gen_cfg = gen_cfg(profile, cfg);
    let mut trace = SyntheticParsec::new(profile, gen_cfg);
    let sharded = ShardedSystem::build(sys_cfg(scheme, cfg), &mut trace)
        .expect("valid sharded configuration");
    let parts = pool::parallel_map(sharded.plans(), threads, |plan| {
        let seed = (gen_cfg.seed ^ 0x51) ^ (plan.index as u64).wrapping_mul(RANK_SEED_STRIDE);
        let mut rank = Rank::build(plan).expect("valid rank configuration");
        rank.sys
            .set_content(Box::new(ProfileContent::new(profile, seed)));
        rank.sys.set_workload_name(profile.name);
        rank.sys.set_telemetry(rank_sink(plan.index));
        rank.run()
    });
    sharded.merge(&parts)
}

/// Run one workload under one scheme while streaming rank-tagged JSONL
/// telemetry to `path` through a bounded channel drained by a background
/// writer thread. Works for both single- and multi-rank configurations;
/// returns the merged result and the number of events written.
pub fn run_one_to_file(
    profile: &WorkloadProfile,
    scheme: SchemeKind,
    cfg: &RunConfig,
    path: &std::path::Path,
    level: TraceDetail,
) -> std::io::Result<(SimResult, u64)> {
    let writer = AsyncTraceWriter::create(path, level)?;
    let result = if cfg.system.mem.org.ranks > 1 {
        run_sharded(profile, scheme, cfg, pool::default_threads(), |r| {
            Box::new(writer.rank_sink(r))
        })
    } else {
        run_one_traced(profile, scheme, cfg, Box::new(writer.rank_sink(0)))
    };
    let (_file, written) = writer.finish()?;
    Ok((result, written))
}

/// Run the full workload × scheme matrix in parallel on the in-repo
/// work-stealing pool ([`crate::pool`]), one worker per core.
///
/// Results are ordered `profiles × schemes` (workload-major), identical to
/// the sequential order — each run is independently seeded, so the output
/// is byte-identical whatever the thread count.
pub fn run_matrix(
    profiles: &[WorkloadProfile],
    schemes: &[SchemeKind],
    cfg: &RunConfig,
) -> Vec<SimResult> {
    run_matrix_threads(profiles, schemes, cfg, pool::default_threads())
}

/// [`run_matrix`] with an explicit worker count (`1` = fully sequential,
/// no threads spawned).
pub fn run_matrix_threads(
    profiles: &[WorkloadProfile],
    schemes: &[SchemeKind],
    cfg: &RunConfig,
    threads: usize,
) -> Vec<SimResult> {
    let jobs: Vec<(usize, usize)> = (0..profiles.len())
        .flat_map(|p| (0..schemes.len()).map(move |s| (p, s)))
        .collect();
    pool::parallel_map(&jobs, threads, |&(p, s)| {
        run_one(&profiles[p], schemes[s], cfg)
    })
}

/// Tiny deterministic string hash for seed derivation.
fn fxhash(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_workloads::ALL_PROFILES;

    #[test]
    fn single_run_produces_traffic() {
        let p = &ALL_PROFILES[7]; // vips, heaviest
        let cfg = RunConfig::builder().quick().build().unwrap();
        let r = run_one(p, SchemeKind::Dcw, &cfg);
        assert!(r.mem_writes > 100, "writes: {}", r.mem_writes);
        assert!(r.mem_reads > 100);
        assert_eq!(r.workload, "vips");
        // Measured RPKI within 25% of Table III.
        assert!(
            (r.rpki() - p.rpki).abs() / p.rpki < 0.25,
            "rpki {}",
            r.rpki()
        );
    }

    #[test]
    fn matrix_order_is_workload_major() {
        let cfg = RunConfig::builder()
            .instructions_per_core(100_000)
            .build()
            .unwrap();
        let profiles = [ALL_PROFILES[0], ALL_PROFILES[7]];
        let schemes = [SchemeKind::Dcw, SchemeKind::Tetris];
        let m = run_matrix(&profiles, &schemes, &cfg);
        assert_eq!(m.len(), 4);
        assert_eq!(m[0].workload, "blackscholes");
        assert_eq!(m[1].workload, "blackscholes");
        assert_eq!(m[2].workload, "vips");
        assert_eq!(m[3].scheme, "Tetris Write");
    }

    #[test]
    fn tetris_beats_baseline_on_write_heavy_workload() {
        let p = &ALL_PROFILES[7]; // vips
        let cfg = RunConfig::builder().quick().build().unwrap();
        let dcw = run_one(p, SchemeKind::Dcw, &cfg);
        let tetris = run_one(p, SchemeKind::Tetris, &cfg);
        assert!(tetris.runtime < dcw.runtime);
        assert!(tetris.ipc() > dcw.ipc());
        assert!(
            tetris.avg_write_units < 2.0,
            "tetris units {}",
            tetris.avg_write_units
        );
        assert_eq!(dcw.avg_write_units, 8.0);
    }

    #[test]
    fn parallel_matrix_matches_sequential_bit_for_bit() {
        let cfg = RunConfig::builder()
            .instructions_per_core(100_000)
            .build()
            .unwrap();
        let profiles = [ALL_PROFILES[0], ALL_PROFILES[2]];
        let schemes = [SchemeKind::Dcw, SchemeKind::Tetris];
        let seq = run_matrix_threads(&profiles, &schemes, &cfg, 1);
        let par = run_matrix_threads(&profiles, &schemes, &cfg, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.scheme, b.scheme);
            assert_eq!(a.runtime, b.runtime);
            assert_eq!(a.energy, b.energy);
            assert_eq!(a.instructions, b.instructions);
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.read_latency.sum_ps, b.read_latency.sum_ps);
            assert_eq!(a.write_latency.sum_ps, b.write_latency.sum_ps);
            assert_eq!(a.cell_sets, b.cell_sets);
            assert_eq!(a.cell_resets, b.cell_resets);
        }
    }

    /// Wall-clock acceptance check: the pooled matrix must beat the
    /// sequential path on a multicore host. Timing-sensitive, so ignored
    /// by default — run with `cargo test --release -- --ignored`.
    #[test]
    #[ignore = "timing-sensitive; run explicitly in release mode"]
    fn parallel_matrix_is_faster_on_multicore() {
        if pool::default_threads() < 4 {
            return; // too few cores for a meaningful comparison
        }
        let cfg = RunConfig::builder()
            .instructions_per_core(200_000)
            .build()
            .unwrap();
        let profiles = [
            ALL_PROFILES[0],
            ALL_PROFILES[2],
            ALL_PROFILES[4],
            ALL_PROFILES[7],
        ];
        let schemes = [SchemeKind::Dcw, SchemeKind::Tetris];
        let t0 = std::time::Instant::now();
        let seq = run_matrix_threads(&profiles, &schemes, &cfg, 1);
        let t_seq = t0.elapsed();
        let t1 = std::time::Instant::now();
        let par = run_matrix_threads(&profiles, &schemes, &cfg, 4);
        let t_par = t1.elapsed();
        assert_eq!(seq.len(), par.len());
        eprintln!("sequential {t_seq:?} vs 4 threads {t_par:?}");
        assert!(
            t_par < t_seq,
            "4-thread matrix ({t_par:?}) not faster than sequential ({t_seq:?})"
        );
    }

    #[test]
    fn sharded_one_rank_matches_single_controller_bit_for_bit() {
        let p = &ALL_PROFILES[7]; // vips, heaviest
        let cfg = RunConfig::builder()
            .instructions_per_core(100_000)
            .build()
            .unwrap();
        for scheme in [SchemeKind::Dcw, SchemeKind::Tetris] {
            let direct = run_one_traced(p, scheme, &cfg, Box::new(NullSink));
            let sharded = run_sharded(p, scheme, &cfg, 1, |_| Box::new(NullSink));
            assert_eq!(direct.runtime, sharded.runtime);
            assert_eq!(direct.energy, sharded.energy);
            assert_eq!(direct.instructions, sharded.instructions);
            assert_eq!(direct.cycles, sharded.cycles);
            assert_eq!(direct.read_latency.sum_ps, sharded.read_latency.sum_ps);
            assert_eq!(direct.write_latency.sum_ps, sharded.write_latency.sum_ps);
            assert_eq!(direct.mem_writes, sharded.mem_writes);
            assert_eq!(direct.mem_reads, sharded.mem_reads);
            assert_eq!(direct.avg_write_units, sharded.avg_write_units);
            assert_eq!(direct.cell_sets, sharded.cell_sets);
            assert_eq!(direct.cell_resets, sharded.cell_resets);
        }
    }

    /// The streaming pull path (generator fed straight into
    /// `ShardedSystem::build`) must be bit-for-bit identical to running the
    /// same stream through the sanctioned eager materialization point
    /// (`VecTrace::capture`) — the compatibility pin for the
    /// `RequestSource` redesign that replaced the old `record_trace` path.
    #[test]
    fn streaming_source_matches_materialized_trace_bit_for_bit() {
        use pcm_memsim::VecTrace;
        use pcm_workloads::SyntheticParsec;
        let p = &ALL_PROFILES[7]; // vips, heaviest
        let cfg = RunConfig::builder()
            .instructions_per_core(100_000)
            .ranks(2)
            .build()
            .unwrap();
        let streamed = run_sharded(p, SchemeKind::Tetris, &cfg, 1, |_| Box::new(NullSink));

        // Re-derive the identical stream, but materialize it first.
        let gen_cfg = super::gen_cfg(p, &cfg);
        let mut gen = SyntheticParsec::new(p, gen_cfg);
        let mut captured = VecTrace::capture(&mut gen, gen_cfg.cores);
        let sharded =
            ShardedSystem::build(super::sys_cfg(SchemeKind::Tetris, &cfg), &mut captured).unwrap();
        let parts: Vec<SimResult> = sharded
            .plans()
            .iter()
            .map(|plan| {
                let seed =
                    (gen_cfg.seed ^ 0x51) ^ (plan.index as u64).wrapping_mul(RANK_SEED_STRIDE);
                let mut rank = Rank::build(plan).unwrap();
                rank.sys.set_content(Box::new(ProfileContent::new(p, seed)));
                rank.sys.set_workload_name(p.name);
                rank.run()
            })
            .collect();
        let materialized = sharded.merge(&parts);

        assert_eq!(streamed.runtime, materialized.runtime);
        assert_eq!(streamed.energy, materialized.energy);
        assert_eq!(streamed.instructions, materialized.instructions);
        assert_eq!(streamed.cycles, materialized.cycles);
        assert_eq!(
            streamed.read_latency.sum_ps,
            materialized.read_latency.sum_ps
        );
        assert_eq!(
            streamed.write_latency.sum_ps,
            materialized.write_latency.sum_ps
        );
        assert_eq!(streamed.mem_reads, materialized.mem_reads);
        assert_eq!(streamed.mem_writes, materialized.mem_writes);
        assert_eq!(streamed.cell_sets, materialized.cell_sets);
        assert_eq!(streamed.cell_resets, materialized.cell_resets);
    }

    #[test]
    fn four_rank_run_conserves_traffic_and_instructions() {
        let p = &ALL_PROFILES[7];
        let one_cfg = RunConfig::builder()
            .instructions_per_core(100_000)
            .build()
            .unwrap();
        let four_cfg = RunConfig::builder()
            .instructions_per_core(100_000)
            .ranks(4)
            .build()
            .unwrap();
        let one = run_one(p, SchemeKind::Tetris, &one_cfg);
        let four = run_one(p, SchemeKind::Tetris, &four_cfg);
        assert_eq!(four.instructions, one.instructions);
        assert_eq!(four.mem_writes, one.mem_writes);
        assert_eq!(four.mem_reads, one.mem_reads);
        assert!(four.runtime <= one.runtime, "more ranks, no slower");
    }

    #[test]
    fn sharded_runs_are_deterministic_across_thread_counts() {
        let p = &ALL_PROFILES[2];
        let cfg = RunConfig::builder()
            .instructions_per_core(100_000)
            .ranks(2)
            .build()
            .unwrap();
        let a = run_sharded(p, SchemeKind::Tetris, &cfg, 1, |_| Box::new(NullSink));
        let b = run_sharded(p, SchemeKind::Tetris, &cfg, 4, |_| Box::new(NullSink));
        assert_eq!(a.runtime, b.runtime);
        assert_eq!(a.energy, b.energy);
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.read_latency.sum_ps, b.read_latency.sum_ps);
    }

    #[test]
    fn traced_file_run_tags_every_rank() {
        use pcm_telemetry::read_tagged_events;
        let p = &ALL_PROFILES[7];
        let cfg = RunConfig::builder()
            .instructions_per_core(100_000)
            .ranks(2)
            .build()
            .unwrap();
        let path = std::env::temp_dir().join("tetris-runner-tagged-trace.jsonl");
        let (r, written) =
            run_one_to_file(p, SchemeKind::Tetris, &cfg, &path, TraceDetail::Coarse).unwrap();
        assert!(r.mem_writes > 0);
        assert!(written > 0);
        let tagged =
            read_tagged_events(std::io::BufReader::new(std::fs::File::open(&path).unwrap()))
                .unwrap();
        assert_eq!(tagged.len() as u64, written);
        let ranks: std::collections::BTreeSet<u32> = tagged.iter().map(|(r, _)| *r).collect();
        assert_eq!(ranks.into_iter().collect::<Vec<_>>(), vec![0, 1]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn deterministic_across_runs() {
        let p = &ALL_PROFILES[2];
        let cfg = RunConfig::builder()
            .instructions_per_core(200_000)
            .build()
            .unwrap();
        let a = run_one(p, SchemeKind::ThreeStage, &cfg);
        let b = run_one(p, SchemeKind::ThreeStage, &cfg);
        assert_eq!(a.runtime, b.runtime);
        assert_eq!(a.energy, b.energy);
        assert_eq!(a.read_latency.sum_ps, b.read_latency.sum_ps);
    }
}
